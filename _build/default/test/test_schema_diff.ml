(* Schema evolution: compatible vs breaking classification, checked both
   on classification decisions and semantically — a breaking verdict must
   be witnessed by some graph, a compatible verdict must preserve all
   conformant graphs we can generate. *)

module D = Graphql_pg.Schema_diff
module Vi = Graphql_pg.Violation
module Val = Graphql_pg.Validate

let check_bool = Alcotest.(check bool)
let schema = Graphql_pg.schema_of_string_exn

let base_text =
  {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  pet: Animal
  knows(since: Int): [Person]
}
type Animal {
  species: String! @required
}
enum Color { RED GREEN }
|}

let base = schema base_text

let diff_with text = D.diff base (schema text)
let compatible text = D.breaking (diff_with text) = []

let test_identity () =
  check_bool "no changes" true (D.diff base base = []);
  check_bool "identity compatible" true (D.is_compatible base base)

let test_additions_compatible () =
  check_bool "new type" true
    (compatible (base_text ^ "\ntype City { name: String }"));
  check_bool "new optional field" true
    (compatible (String.concat "" [ {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  nickname: String
  pet: Animal
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|} ]));
  check_bool "new enum value" true
    (compatible
       {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  pet: Animal
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN BLUE }
|})

let expect_breaking text rule =
  let changes = D.breaking (diff_with text) in
  check_bool "breaking reported" true (changes <> []);
  check_bool
    (Printf.sprintf "rule %s named" (Vi.rule_name rule))
    true
    (List.exists (fun (c : D.change) -> c.D.rule = Some rule) changes)

let test_removals_breaking () =
  expect_breaking
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|}
    Vi.SS4 (* removing the pet relationship orphans edges *);
  expect_breaking
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  pet: Animal
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|}
    Vi.SS2 (* removing the name attribute orphans properties *);
  expect_breaking
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  pet: Animal
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED }
|}
    Vi.WS1 (* removing an enum value strands stored values *)

let test_constraint_tightening_breaking () =
  expect_breaking
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String @required
  pet: Animal
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|}
    Vi.DS5;
  expect_breaking
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  pet: Animal
  knows(since: Int): [Person] @distinct
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|}
    Vi.DS1;
  expect_breaking
    {|
type Person @key(fields: ["id"]) @key(fields: ["name"]) {
  id: ID! @required
  name: String
  pet: Animal
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|}
    Vi.DS7

let test_constraint_relaxing_compatible () =
  check_bool "dropping @required relaxes" true
    (compatible
       {|
type Person @key(fields: ["id"]) {
  id: ID!
  name: String
  pet: Animal
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|});
  check_bool "dropping @key relaxes" true
    (compatible
       {|
type Person {
  id: ID! @required
  name: String
  pet: Animal
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|})

let test_type_changes () =
  (* non-list relationship -> list relaxes WS4 *)
  check_bool "pet widens to [Animal]" true
    (compatible
       {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  pet: [Animal]
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|});
  (* list -> non-list tightens WS4 *)
  expect_breaking
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  pet: Animal
  knows(since: Int): Person
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|}
    Vi.WS3 (* reported as a type change; rule approximates *);
  (* attribute scalar change breaks WS1 *)
  expect_breaking
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: Int
  pet: Animal
  knows(since: Int): [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|}
    Vi.WS1

let test_target_widening () =
  (* Animal -> union containing Animal widens WS3 *)
  check_bool "target widens into union" true
    (compatible
       {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  pet: Creature
  knows(since: Int): [Person]
}
union Creature = Animal | Robot
type Animal { species: String! @required }
type Robot { model: String }
enum Color { RED GREEN }
|})

let test_argument_changes () =
  expect_breaking
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  pet: Animal
  knows: [Person]
}
type Animal { species: String! @required }
enum Color { RED GREEN }
|}
    Vi.SS3 (* removing the since argument orphans edge properties *)

(* semantic check: on a conformant instance, compatible schema changes keep
   conformance *)
let test_compatible_semantically () =
  let new_text =
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  nickname: String
  pet: [Animal]
  knows(since: Int note: String): [Person]
}
type Animal { species: String! @required }
type City { name: String }
enum Color { RED GREEN BLUE }
|}
  in
  check_bool "classified compatible" true (compatible new_text);
  let new_schema = schema new_text in
  match Graphql_pg.Instance_gen.conformant ~target_nodes:30 base with
  | None -> Alcotest.fail "no conformant instance for the base schema"
  | Some g ->
    check_bool "old instance conforms to base" true (Val.conforms base g);
    check_bool "old instance conforms to the new schema" true (Val.conforms new_schema g)

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "additions are compatible" `Quick test_additions_compatible;
    Alcotest.test_case "removals are breaking" `Quick test_removals_breaking;
    Alcotest.test_case "tightening constraints is breaking" `Quick
      test_constraint_tightening_breaking;
    Alcotest.test_case "relaxing constraints is compatible" `Quick
      test_constraint_relaxing_compatible;
    Alcotest.test_case "field type changes" `Quick test_type_changes;
    Alcotest.test_case "target widening" `Quick test_target_widening;
    Alcotest.test_case "argument changes" `Quick test_argument_changes;
    Alcotest.test_case "compatible changes preserve conformance" `Quick
      test_compatible_semantically;
  ]
