(* Parser tests: the SDL type-system grammar (spec Section 3). *)

module P = Graphql_pg.Sdl.Parser
module Ast = Graphql_pg.Sdl.Ast

let parse_ok src =
  match P.parse src with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "parse error: %s" (Graphql_pg.Sdl.Source.error_to_string e)

let parse_fails src = match P.parse src with Ok _ -> false | Error _ -> true
let check_bool = Alcotest.(check bool)

let first_object src =
  match parse_ok src with
  | Ast.Type_definition (Ast.Object_type d) :: _ -> d
  | _ -> Alcotest.fail "expected an object type first"

let test_object_type () =
  let d = first_object "type Foo { a: Int b: [String!]! }" in
  Alcotest.(check string) "name" "Foo" d.Ast.o_name;
  Alcotest.(check int) "fields" 2 (List.length d.Ast.o_fields);
  let b = List.nth d.Ast.o_fields 1 in
  check_bool "wrapped type" true
    (Ast.equal_type_ref b.Ast.f_type
       (Ast.Non_null_type (Ast.List_type (Ast.Non_null_type (Ast.Named_type "String")))))

let test_empty_fields_block () =
  (* Example 6.1 of the paper relies on "type OT1 { }" *)
  let d = first_object "type OT1 {\n}" in
  Alcotest.(check int) "no fields" 0 (List.length d.Ast.o_fields)

let test_implements () =
  let d = first_object "type A implements I & J { x: Int }" in
  check_bool "interfaces" true (d.Ast.o_interfaces = [ "I"; "J" ]);
  let d = first_object "type A implements & I { x: Int }" in
  check_bool "leading ampersand" true (d.Ast.o_interfaces = [ "I" ])

let test_arguments_and_defaults () =
  let d = first_object "type A { len(unit: LenUnit = METER other: Int): Float }" in
  let f = List.nth d.Ast.o_fields 0 in
  Alcotest.(check int) "two args" 2 (List.length f.Ast.f_arguments);
  let unit = List.nth f.Ast.f_arguments 0 in
  check_bool "default" true (unit.Ast.iv_default = Some (Ast.Enum_value "METER"))

let test_directives () =
  let d = first_object {|type A @key(fields: ["id"]) @key(fields: ["x"]) { id: ID! @required }|} in
  Alcotest.(check int) "two type directives" 2 (List.length d.Ast.o_directives);
  let key = List.hd d.Ast.o_directives in
  check_bool "key args" true
    (key.Ast.d_arguments = [ ("fields", Ast.List_value [ Ast.String_value "id" ]) ]);
  let f = List.hd d.Ast.o_fields in
  check_bool "field directive" true
    (List.exists (fun (dr : Ast.directive) -> dr.Ast.d_name = "required") f.Ast.f_directives)

let test_values () =
  let value src =
    match P.parse_value src with
    | Ok v -> v
    | Error e -> Alcotest.failf "value error: %s" (Graphql_pg.Sdl.Source.error_to_string e)
  in
  check_bool "int" true (value "3" = Ast.Int_value 3);
  check_bool "float" true (value "1.5" = Ast.Float_value 1.5);
  check_bool "bools" true (value "true" = Ast.Boolean_value true);
  check_bool "null" true (value "null" = Ast.Null_value);
  check_bool "enum" true (value "METER" = Ast.Enum_value "METER");
  check_bool "list" true (value "[1, 2]" = Ast.List_value [ Ast.Int_value 1; Ast.Int_value 2 ]);
  check_bool "object" true
    (value "{a: 1, b: \"x\"}"
    = Ast.Object_value [ ("a", Ast.Int_value 1); ("b", Ast.String_value "x") ]);
  check_bool "nested" true
    (value "[[1], {x: []}]"
    = Ast.List_value
        [ Ast.List_value [ Ast.Int_value 1 ]; Ast.Object_value [ ("x", Ast.List_value []) ] ])

let test_type_refs () =
  let ty src =
    match P.parse_type_ref src with
    | Ok t -> t
    | Error e -> Alcotest.failf "type error: %s" (Graphql_pg.Sdl.Source.error_to_string e)
  in
  check_bool "named" true (ty "Foo" = Ast.Named_type "Foo");
  check_bool "non-null" true (ty "Foo!" = Ast.Non_null_type (Ast.Named_type "Foo"));
  check_bool "list" true (ty "[Foo]" = Ast.List_type (Ast.Named_type "Foo"));
  check_bool "all wrappers" true
    (ty "[Foo!]!" = Ast.Non_null_type (Ast.List_type (Ast.Non_null_type (Ast.Named_type "Foo"))));
  check_bool "double bang rejected" true
    (match P.parse_type_ref "Foo!!" with Ok _ -> false | Error _ -> true)

let test_interface_union_enum_scalar_input () =
  let doc =
    parse_ok
      {|
interface Character { id: ID! }
union SearchResult = Human | Droid
enum Episode { NEWHOPE EMPIRE JEDI }
scalar Time
input Filter { limit: Int = 10 }
|}
  in
  Alcotest.(check int) "five definitions" 5 (List.length doc);
  (match List.nth doc 1 with
  | Ast.Type_definition (Ast.Union_type u) ->
    check_bool "members" true (u.Ast.u_members = [ "Human"; "Droid" ])
  | _ -> Alcotest.fail "expected union");
  match List.nth doc 2 with
  | Ast.Type_definition (Ast.Enum_type e) ->
    check_bool "enum values" true
      (List.map (fun (ev : Ast.enum_value_def) -> ev.Ast.ev_name) e.Ast.e_values
      = [ "NEWHOPE"; "EMPIRE"; "JEDI" ])
  | _ -> Alcotest.fail "expected enum"

let test_union_leading_pipe () =
  match parse_ok "union U = | A | B" with
  | [ Ast.Type_definition (Ast.Union_type u) ] ->
    check_bool "members" true (u.Ast.u_members = [ "A"; "B" ])
  | _ -> Alcotest.fail "expected union"

let test_schema_definition () =
  match parse_ok "schema { query: Q mutation: M }" with
  | [ Ast.Schema_definition sd ] ->
    check_bool "ops" true (sd.Ast.sd_operations = [ (Ast.Query, "Q"); (Ast.Mutation, "M") ])
  | _ -> Alcotest.fail "expected schema definition"

let test_directive_definition () =
  match parse_ok "directive @auth(role: String!) on FIELD_DEFINITION | OBJECT" with
  | [ Ast.Directive_definition dd ] ->
    Alcotest.(check string) "name" "auth" dd.Ast.dd_name;
    check_bool "locations" true
      (dd.Ast.dd_locations = [ Ast.Loc_field_definition; Ast.Loc_object ])
  | _ -> Alcotest.fail "expected directive definition"

let test_descriptions () =
  let doc =
    parse_ok
      "\"A scalar.\"\nscalar Time\n\n\"\"\"\nBlock description.\n\"\"\"\ntype A { \"field desc\" x: Int }"
  in
  (match List.nth doc 0 with
  | Ast.Type_definition (Ast.Scalar_type s) ->
    check_bool "scalar desc" true (s.Ast.s_description = Some "A scalar.")
  | _ -> Alcotest.fail "expected scalar");
  match List.nth doc 1 with
  | Ast.Type_definition (Ast.Object_type d) ->
    check_bool "type desc" true (d.Ast.o_description = Some "Block description.");
    check_bool "field desc" true
      ((List.hd d.Ast.o_fields).Ast.f_description = Some "field desc")
  | _ -> Alcotest.fail "expected object"

let test_extensions () =
  let doc = parse_ok "type A { x: Int }\nextend type A { y: Int }\nextend enum E { C }" in
  check_bool "three definitions" true (List.length doc = 3);
  match List.nth doc 1 with
  | Ast.Type_extension (Ast.Object_extension d) ->
    check_bool "extension fields" true (List.length d.Ast.o_fields = 1)
  | _ -> Alcotest.fail "expected object extension"

let test_errors () =
  check_bool "executable rejected" true (parse_fails "query { hero }");
  check_bool "fragment rejected" true (parse_fails "fragment F on T { x }");
  check_bool "empty document" true (parse_fails "");
  check_bool "missing colon" true (parse_fails "type A { x Int }");
  check_bool "variable in value" true (parse_fails "type A { x(y: Int = $v): Int }");
  check_bool "empty args" true (parse_fails "type A { x(): Int }");
  check_bool "empty schema def" true (parse_fails "schema { }");
  check_bool "enum value true" true (parse_fails "enum E { true }");
  check_bool "junk after document" true (parse_fails "type A { x: Int } }")

let test_paper_figure_1 () =
  (* the appendix example, verbatim modulo whitespace *)
  let doc =
    parse_ok
      {|
type Starship {
  id: ID!
  name: String
  length(unit: LenUnit = METER): Float
}
enum LenUnit { METER FEET }
interface Character {
  id: ID!
  name: String
  friends: [Character]
}
type Human implements Character {
  id: ID!
  name: String
  friends: [Character]
  starships: [Starship]
}
type Droid implements Character {
  id: ID!
  name: String
  friends: [Character]
  primaryFunction: String!
}
type Query {
  hero(episode: Episode): Character
  search(text: String): [SearchResult]
}
enum Episode { NEWHOPE EMPIRE JEDI }
union SearchResult = Human | Droid | Starship
schema {
  query: Query
}
|}
  in
  Alcotest.(check int) "nine definitions" 9 (List.length doc)

let suite =
  [
    Alcotest.test_case "object types" `Quick test_object_type;
    Alcotest.test_case "empty fields block (Example 6.1)" `Quick test_empty_fields_block;
    Alcotest.test_case "implements" `Quick test_implements;
    Alcotest.test_case "arguments and defaults" `Quick test_arguments_and_defaults;
    Alcotest.test_case "directives" `Quick test_directives;
    Alcotest.test_case "constant values" `Quick test_values;
    Alcotest.test_case "type references" `Quick test_type_refs;
    Alcotest.test_case "interface/union/enum/scalar/input" `Quick
      test_interface_union_enum_scalar_input;
    Alcotest.test_case "union leading pipe" `Quick test_union_leading_pipe;
    Alcotest.test_case "schema definition" `Quick test_schema_definition;
    Alcotest.test_case "directive definition" `Quick test_directive_definition;
    Alcotest.test_case "descriptions" `Quick test_descriptions;
    Alcotest.test_case "type extensions" `Quick test_extensions;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "Figure 1 parses" `Quick test_paper_figure_1;
  ]
