(* Validation tests: every rule of Section 5 (WS1-WS4, DS1-DS7, SS1-SS4),
   exercised positively and negatively through both engines. *)

module G = Graphql_pg.Property_graph
module V = Graphql_pg.Value
module Val = Graphql_pg.Validate
module Vi = Graphql_pg.Violation

let check_bool = Alcotest.(check bool)

let schema = Graphql_pg.schema_of_string_exn

(* run both engines, assert they agree, and return the violated rules *)
let rules_of sch g =
  let naive = Val.check ~engine:Val.Naive sch g in
  let indexed = Val.check ~engine:Val.Indexed sch g in
  check_bool "engines agree" true
    (List.equal Vi.equal naive.Val.violations indexed.Val.violations);
  Val.violated_rules indexed

let violates rule sch g = List.mem rule (rules_of sch g)
let conforms sch g = rules_of sch g = []

let base =
  schema
    {|
type A {
  name: String! @required
  score: Float
  tags: [String!]
  single: B
  many(weight: Float certainty: Float!): [B]
}
type B {
  id: ID!
}
|}

let ab ?(a_props = [ ("name", V.String "a") ]) () =
  let g, a = G.add_node G.empty ~label:"A" ~props:a_props () in
  let g, b = G.add_node g ~label:"B" () in
  (g, a, b)

let test_conformant () =
  let g, a, b = ab () in
  let g, _ = G.add_edge g ~label:"single" a b in
  let g, e = G.add_edge g ~label:"many" ~props:[ ("weight", V.Float 1.0) ] a b in
  ignore e;
  check_bool "conforms" true (conforms base g)

let test_ws1 () =
  let g, a, _ = ab () in
  let g = G.set_node_prop g a "score" (V.String "high") in
  check_bool "ill-typed scalar" true (violates Vi.WS1 base g);
  let g2, a2, _ = ab () in
  let g2 = G.set_node_prop g2 a2 "tags" (V.String "not-a-list") in
  check_bool "atom for list" true (violates Vi.WS1 base g2);
  let g3, a3, _ = ab () in
  let g3 = G.set_node_prop g3 a3 "tags" (V.List [ V.String "x"; V.Int 1 ]) in
  check_bool "bad element" true (violates Vi.WS1 base g3);
  let g4, a4, _ = ab () in
  let g4 = G.set_node_prop g4 a4 "tags" (V.List [ V.String "x" ]) in
  check_bool "good list fine" false (violates Vi.WS1 base g4)

let test_ws2 () =
  let g, a, b = ab () in
  let g, _ = G.add_edge g ~label:"many" ~props:[ ("weight", V.String "heavy") ] a b in
  check_bool "ill-typed edge property" true (violates Vi.WS2 base g);
  check_bool "only WS2 (and nothing else)" true (rules_of base g = [ Vi.WS2 ])

let test_ws3 () =
  let g, a, _ = ab () in
  let g, a2 = G.add_node g ~label:"A" ~props:[ ("name", V.String "a2") ] () in
  let g, _ = G.add_edge g ~label:"single" a a2 in
  check_bool "wrong target type" true (violates Vi.WS3 base g)

let test_ws4 () =
  let g, a, b = ab () in
  let g, b2 = G.add_node g ~label:"B" () in
  let g, _ = G.add_edge g ~label:"single" a b in
  let g, _ = G.add_edge g ~label:"single" a b2 in
  check_bool "two edges on non-list field" true (violates Vi.WS4 base g);
  (* list fields allow several *)
  let g2, a2, b2' = ab () in
  let g2, c = G.add_node g2 ~label:"B" () in
  let g2, _ = G.add_edge g2 ~label:"many" a2 b2' in
  let g2, _ = G.add_edge g2 ~label:"many" a2 c in
  check_bool "list field many edges fine" false (violates Vi.WS4 base g2)

(* --- directive rules --- *)

let directed =
  schema
    {|
type A {
  x: ID
  rel: [B] @distinct
  self: [A] @noLoops
  one: [B] @uniqueForTarget
  must: B @required
}
type B @key(fields: ["k"]) {
  k: ID
  back: [A] @requiredForTarget
}
|}

let test_ds1 () =
  let g, a = G.add_node G.empty ~label:"A" () in
  let g, b = G.add_node g ~label:"B" () in
  let g, _ = G.add_edge g ~label:"rel" a b in
  let g, _ = G.add_edge g ~label:"rel" a b in
  check_bool "parallel @distinct edges" true (violates Vi.DS1 directed g);
  let g2, a2 = G.add_node G.empty ~label:"A" () in
  let g2, b2 = G.add_node g2 ~label:"B" () in
  let g2, b3 = G.add_node g2 ~label:"B" () in
  let g2, _ = G.add_edge g2 ~label:"rel" a2 b2 in
  let g2, _ = G.add_edge g2 ~label:"rel" a2 b3 in
  check_bool "different targets fine" false (violates Vi.DS1 directed g2)

let test_ds2 () =
  let g, a = G.add_node G.empty ~label:"A" () in
  let g, _ = G.add_edge g ~label:"self" a a in
  check_bool "loop on @noLoops" true (violates Vi.DS2 directed g);
  let g2, a2 = G.add_node G.empty ~label:"A" () in
  let g2, a3 = G.add_node g2 ~label:"A" () in
  let g2, _ = G.add_edge g2 ~label:"self" a2 a3 in
  check_bool "non-loop fine" false (violates Vi.DS2 directed g2)

let test_ds3 () =
  let g, a1 = G.add_node G.empty ~label:"A" () in
  let g, a2 = G.add_node g ~label:"A" () in
  let g, b = G.add_node g ~label:"B" () in
  let g, _ = G.add_edge g ~label:"one" a1 b in
  let g, _ = G.add_edge g ~label:"one" a2 b in
  check_bool "two incoming on @uniqueForTarget" true (violates Vi.DS3 directed g);
  let g2, a1' = G.add_node G.empty ~label:"A" () in
  let g2, b1 = G.add_node g2 ~label:"B" () in
  let g2, b2 = G.add_node g2 ~label:"B" () in
  let g2, _ = G.add_edge g2 ~label:"one" a1' b1 in
  let g2, _ = G.add_edge g2 ~label:"one" a1' b2 in
  check_bool "different targets fine" false (violates Vi.DS3 directed g2)

let test_ds4 () =
  (* every A needs an incoming "back" edge from a B *)
  let g, _ = G.add_node G.empty ~label:"A" () in
  check_bool "missing incoming @requiredForTarget" true (violates Vi.DS4 directed g);
  let g2, a = G.add_node G.empty ~label:"A" () in
  let g2, b = G.add_node g2 ~label:"B" () in
  let g2, _ = G.add_edge g2 ~label:"back" b a in
  check_bool "incoming present" false (violates Vi.DS4 directed g2)

let test_ds5 () =
  let sch = schema "type A { p: String @required q: [Int] @required }" in
  let g, _ =
    G.add_node G.empty ~label:"A" ~props:[ ("q", V.List [ V.Int 1 ]) ] ()
  in
  check_bool "missing required property" true (violates Vi.DS5 sch g);
  let g2, _ =
    G.add_node G.empty ~label:"A" ~props:[ ("p", V.String "x"); ("q", V.List []) ] ()
  in
  check_bool "empty list for required list" true (violates Vi.DS5 sch g2);
  let g3, _ =
    G.add_node G.empty ~label:"A"
      ~props:[ ("p", V.String "x"); ("q", V.List [ V.Int 1 ]) ]
      ()
  in
  check_bool "both present" false (violates Vi.DS5 sch g3)

let test_ds6 () =
  let g, a = G.add_node G.empty ~label:"A" () in
  let g, b = G.add_node g ~label:"B" () in
  let g, _ = G.add_edge g ~label:"back" b a in
  (* A lacks its required "must" edge *)
  check_bool "missing required edge" true (violates Vi.DS6 directed g);
  let g2, _ = G.add_edge g ~label:"must" a b in
  check_bool "edge present" false (violates Vi.DS6 directed (fst (G.add_edge g2 ~label:"back" b a)))

let test_ds7 () =
  let sch = schema {|type B @key(fields: ["k"]) { k: ID }|} in
  let g, _ = G.add_node G.empty ~label:"B" ~props:[ ("k", V.Id "same") ] () in
  let g, _ = G.add_node g ~label:"B" ~props:[ ("k", V.Id "same") ] () in
  check_bool "key collision" true (violates Vi.DS7 sch g);
  let g2, _ = G.add_node G.empty ~label:"B" ~props:[ ("k", V.Id "x") ] () in
  let g2, _ = G.add_node g2 ~label:"B" ~props:[ ("k", V.Id "y") ] () in
  check_bool "distinct keys" false (violates Vi.DS7 sch g2);
  (* both-absent counts as agreement (Definition 5.2 as written) *)
  let g3, _ = G.add_node G.empty ~label:"B" () in
  let g3, _ = G.add_node g3 ~label:"B" () in
  check_bool "both absent collide" true (violates Vi.DS7 sch g3);
  (* one absent, one present: no agreement *)
  let g4, _ = G.add_node G.empty ~label:"B" ~props:[ ("k", V.Id "x") ] () in
  let g4, _ = G.add_node g4 ~label:"B" () in
  check_bool "absent vs present differ" false (violates Vi.DS7 sch g4)

let test_ds7_multi_field () =
  let sch = schema {|type B @key(fields: ["k1", "k2"]) { k1: ID k2: Int }|} in
  let g, _ =
    G.add_node G.empty ~label:"B" ~props:[ ("k1", V.Id "x"); ("k2", V.Int 1) ] ()
  in
  let g, _ =
    G.add_node g ~label:"B" ~props:[ ("k1", V.Id "x"); ("k2", V.Int 2) ] ()
  in
  check_bool "second field separates" false (violates Vi.DS7 sch g);
  let g2, _ =
    G.add_node G.empty ~label:"B" ~props:[ ("k1", V.Id "x"); ("k2", V.Int 1) ] ()
  in
  let g2, _ =
    G.add_node g2 ~label:"B" ~props:[ ("k1", V.Id "x"); ("k2", V.Int 1) ] ()
  in
  check_bool "full agreement collides" true (violates Vi.DS7 sch g2)

let test_ds_on_interface () =
  (* constraints declared on an interface field apply to implementations *)
  let sch =
    schema
      {|
interface I { rel: [B] @distinct }
type A implements I { rel: [B] }
type B { x: Int }
|}
  in
  let g, a = G.add_node G.empty ~label:"A" () in
  let g, b = G.add_node g ~label:"B" () in
  let g, _ = G.add_edge g ~label:"rel" a b in
  let g, _ = G.add_edge g ~label:"rel" a b in
  check_bool "interface constraint applies to implementation" true (violates Vi.DS1 sch g)

(* --- strong satisfaction --- *)

let test_ss1 () =
  let g, _ = G.add_node G.empty ~label:"Ghost" () in
  check_bool "unknown label" true (violates Vi.SS1 base g);
  let sch = schema "interface I { x: Int }\ntype A implements I { x: Int }" in
  let g2, _ = G.add_node G.empty ~label:"I" () in
  check_bool "interface label not allowed" true (violates Vi.SS1 sch g2)

let test_ss2 () =
  let g, a, _ = ab () in
  let g = G.set_node_prop g a "bogus" (V.Int 1) in
  check_bool "undeclared property" true (violates Vi.SS2 base g);
  (* a relationship field name used as a property is not justified *)
  let g2, a2, _ = ab () in
  let g2 = G.set_node_prop g2 a2 "single" (V.Int 1) in
  check_bool "relationship name as property" true (violates Vi.SS2 base g2)

let test_ss3 () =
  let g, a, b = ab () in
  let g, _ = G.add_edge g ~label:"many" ~props:[ ("bogus", V.Int 1) ] a b in
  check_bool "undeclared edge property" true (violates Vi.SS3 base g)

let test_ss4 () =
  let g, a, b = ab () in
  let g, _ = G.add_edge g ~label:"bogusEdge" a b in
  check_bool "undeclared edge label" true (violates Vi.SS4 base g);
  (* an attribute field name used as an edge is not justified *)
  let g2, a2, b2 = ab () in
  let g2, _ = G.add_edge g2 ~label:"score" a2 b2 in
  check_bool "attribute name as edge" true (violates Vi.SS4 base g2)

let test_weak_vs_strong () =
  let g, a, b = ab () in
  let g, _ = G.add_edge g ~label:"bogusEdge" a b in
  (* unjustified edges pass weak satisfaction but fail strong *)
  check_bool "weak ok" true (Val.weakly_satisfies base g);
  check_bool "strong fails" false (Val.conforms base g)

let test_modes_partition_rules () =
  let g, a, b = ab ~a_props:[] () in
  let g = G.set_node_prop g a "score" (V.Bool true) in
  let g, _ = G.add_edge g ~label:"bogusEdge" a b in
  let weak = Val.check ~mode:Val.Weak base g in
  let dir = Val.check ~mode:Val.Directives base g in
  let strong = Val.check ~mode:Val.Strong base g in
  check_bool "weak sees WS1" true (Val.violated_rules weak = [ Vi.WS1 ]);
  check_bool "directives sees DS5 (missing name)" true (Val.violated_rules dir = [ Vi.DS5 ]);
  check_bool "strong sees all" true
    (Val.violated_rules strong = [ Vi.WS1; Vi.DS5; Vi.SS4 ])

let test_empty_graph_conforms () =
  check_bool "empty graph strongly satisfies" true (Val.conforms base G.empty);
  (* ... unless a @requiredForTarget exists? no: it quantifies over nodes *)
  check_bool "empty graph vs directives" true (Val.conforms directed G.empty)

let test_report_counts () =
  let g, a, b = ab () in
  let g, _ = G.add_edge g ~label:"single" a b in
  let r = Val.check base g in
  Alcotest.(check int) "nodes counted" 2 r.Val.nodes_checked;
  Alcotest.(check int) "edges counted" 1 r.Val.edges_checked

let suite =
  [
    Alcotest.test_case "conformant graph" `Quick test_conformant;
    Alcotest.test_case "WS1 node property types" `Quick test_ws1;
    Alcotest.test_case "WS2 edge property types" `Quick test_ws2;
    Alcotest.test_case "WS3 target types" `Quick test_ws3;
    Alcotest.test_case "WS4 non-list multiplicity" `Quick test_ws4;
    Alcotest.test_case "DS1 @distinct" `Quick test_ds1;
    Alcotest.test_case "DS2 @noLoops" `Quick test_ds2;
    Alcotest.test_case "DS3 @uniqueForTarget" `Quick test_ds3;
    Alcotest.test_case "DS4 @requiredForTarget" `Quick test_ds4;
    Alcotest.test_case "DS5 required property" `Quick test_ds5;
    Alcotest.test_case "DS6 required edge" `Quick test_ds6;
    Alcotest.test_case "DS7 keys" `Quick test_ds7;
    Alcotest.test_case "DS7 multi-field keys" `Quick test_ds7_multi_field;
    Alcotest.test_case "directives via interfaces" `Quick test_ds_on_interface;
    Alcotest.test_case "SS1 node labels justified" `Quick test_ss1;
    Alcotest.test_case "SS2 node properties justified" `Quick test_ss2;
    Alcotest.test_case "SS3 edge properties justified" `Quick test_ss3;
    Alcotest.test_case "SS4 edges justified" `Quick test_ss4;
    Alcotest.test_case "weak vs strong" `Quick test_weak_vs_strong;
    Alcotest.test_case "modes partition the rules" `Quick test_modes_partition_rules;
    Alcotest.test_case "empty graph" `Quick test_empty_graph_conforms;
    Alcotest.test_case "report counts" `Quick test_report_counts;
  ]
