(* Lexer tests: the GraphQL lexical grammar (spec Section 2.1). *)

module L = Graphql_pg.Sdl.Lexer
module T = Graphql_pg.Sdl.Token

let tokens src =
  match L.tokenize src with
  | Ok located -> List.map (fun (l : T.located) -> l.T.token) located
  | Error e -> Alcotest.failf "lex error: %s" (Graphql_pg.Sdl.Source.error_to_string e)

let lex_fails src =
  match L.tokenize src with Ok _ -> false | Error _ -> true

let check_tokens name src expected = Alcotest.(check bool) name true (tokens src = expected)

let test_punctuators () =
  check_tokens "all punctuators" "! $ & ( ) ... : = @ [ ] { } |"
    [
      T.Bang; T.Dollar; T.Amp; T.Paren_open; T.Paren_close; T.Ellipsis; T.Colon; T.Equals;
      T.At; T.Bracket_open; T.Bracket_close; T.Brace_open; T.Brace_close; T.Pipe; T.Eof;
    ]

let test_names () =
  check_tokens "names" "type _foo Bar9 __typename"
    [ T.Name "type"; T.Name "_foo"; T.Name "Bar9"; T.Name "__typename"; T.Eof ]

let test_ints () =
  check_tokens "ints" "0 42 -17" [ T.Int 0; T.Int 42; T.Int (-17); T.Eof ]

let test_floats () =
  check_tokens "floats" "1.5 -0.25 2e3 1.5e-2 0.0"
    [ T.Float 1.5; T.Float (-0.25); T.Float 2000.0; T.Float 0.015; T.Float 0.0; T.Eof ]

let test_bad_numbers () =
  Alcotest.(check bool) "leading zero" true (lex_fails "012");
  Alcotest.(check bool) "name after number" true (lex_fails "123abc");
  Alcotest.(check bool) "double dot" true (lex_fails "1.2.3");
  Alcotest.(check bool) "trailing dot" true (lex_fails "1.");
  Alcotest.(check bool) "lonely minus" true (lex_fails "-");
  Alcotest.(check bool) "bad exponent" true (lex_fails "1e")

let test_strings () =
  check_tokens "plain" {|"hello"|} [ T.String "hello"; T.Eof ];
  check_tokens "escapes" {|"a\"b\\c\nd\te"|} [ T.String "a\"b\\c\nd\te"; T.Eof ];
  check_tokens "unicode escape" {|"Aé"|} [ T.String "A\xc3\xa9"; T.Eof ];
  check_tokens "empty" {|""|} [ T.String ""; T.Eof ]

let test_bad_strings () =
  Alcotest.(check bool) "unterminated" true (lex_fails {|"abc|});
  Alcotest.(check bool) "raw newline" true (lex_fails "\"a\nb\"");
  Alcotest.(check bool) "bad escape" true (lex_fails {|"\q"|});
  Alcotest.(check bool) "truncated unicode" true (lex_fails {|"\u00"|})

let test_block_strings () =
  check_tokens "simple block" {|"""hello"""|} [ T.Block_string "hello"; T.Eof ];
  check_tokens "dedent"
    "\"\"\"\n    first\n      second\n    \"\"\""
    [ T.Block_string "first\n  second"; T.Eof ];
  check_tokens "escaped triple quote" {|"""a\"""b"""|} [ T.Block_string "a\"\"\"b"; T.Eof ];
  check_tokens "keeps quotes" {|"""a "quoted" b"""|}
    [ T.Block_string "a \"quoted\" b"; T.Eof ]

let test_ignored_tokens () =
  check_tokens "commas are ignored" "a, b,,c" [ T.Name "a"; T.Name "b"; T.Name "c"; T.Eof ];
  check_tokens "comments" "a # a comment ! $ \nb" [ T.Name "a"; T.Name "b"; T.Eof ];
  check_tokens "comment at eof" "a # trailing" [ T.Name "a"; T.Eof ];
  check_tokens "bom" "\xEF\xBB\xBFa" [ T.Name "a"; T.Eof ];
  check_tokens "crlf" "a\r\nb" [ T.Name "a"; T.Name "b"; T.Eof ]

let test_positions () =
  match L.tokenize "type\n  Foo" with
  | Error _ -> Alcotest.fail "lex error"
  | Ok located ->
    let (second : T.located) = List.nth located 1 in
    Alcotest.(check int) "line" 2 second.T.at.Graphql_pg.Sdl.Source.span_start.line;
    Alcotest.(check int) "column" 3 second.T.at.Graphql_pg.Sdl.Source.span_start.column

let test_ellipsis_errors () =
  Alcotest.(check bool) "single dot" true (lex_fails ".");
  Alcotest.(check bool) "double dot" true (lex_fails "..")

let test_int_range () =
  check_tokens "big int ok" "4611686018427387903" [ T.Int 4611686018427387903; T.Eof ]

let suite =
  [
    Alcotest.test_case "punctuators" `Quick test_punctuators;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "integers" `Quick test_ints;
    Alcotest.test_case "floats" `Quick test_floats;
    Alcotest.test_case "malformed numbers rejected" `Quick test_bad_numbers;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "malformed strings rejected" `Quick test_bad_strings;
    Alcotest.test_case "block strings + dedent" `Quick test_block_strings;
    Alcotest.test_case "ignored tokens" `Quick test_ignored_tokens;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "dots" `Quick test_ellipsis_errors;
    Alcotest.test_case "int range" `Quick test_int_range;
  ]
