(* Section 3.6 / experiment E12: extending PG schemas into GraphQL API
   schemas. *)

module Api = Graphql_pg.Api_extension
module Ast = Graphql_pg.Sdl.Ast

let check_bool = Alcotest.(check bool)

let base =
  Graphql_pg.schema_of_string_exn
    {|
type UserSession {
  id: ID! @required
  user: User! @required
  startTime: Time! @required
}
type User @key(fields: ["id"]) {
  id: ID! @required
  login: String! @required
}
scalar Time
|}

let extended () =
  match Api.extend base with
  | Ok doc -> doc
  | Error msg -> Alcotest.failf "extend: %s" msg

let find_object doc name =
  List.find_map
    (function
      | Ast.Type_definition (Ast.Object_type d) when d.Ast.o_name = name -> Some d
      | _ -> None)
    doc

let test_query_type () =
  let doc = extended () in
  match find_object doc "Query" with
  | None -> Alcotest.fail "no Query type"
  | Some q ->
    let names = List.map (fun (f : Ast.field_def) -> f.Ast.f_name) q.Ast.o_fields in
    check_bool "allUser" true (List.mem "allUser" names);
    check_bool "allUserSession" true (List.mem "allUserSession" names);
    check_bool "key lookup" true (List.mem "userById" names)

let test_schema_block () =
  let doc = extended () in
  check_bool "schema block present" true
    (List.exists
       (function
         | Ast.Schema_definition sd -> sd.Ast.sd_operations = [ (Ast.Query, "Query") ]
         | _ -> false)
       doc)

let test_inverse_fields () =
  let doc = extended () in
  match find_object doc "User" with
  | None -> Alcotest.fail "no User type"
  | Some u ->
    check_bool "inverse field for user edge" true
      (List.exists
         (fun (f : Ast.field_def) -> f.Ast.f_name = "_inverse_user_of_userSession")
         u.Ast.o_fields)

let test_reparses_cleanly () =
  let text = Graphql_pg.Sdl.Printer.document_to_string (extended ()) in
  match Graphql_pg.Sdl.Parser.parse text with
  | Error e -> Alcotest.failf "re-parse: %s" (Graphql_pg.Sdl.Source.error_to_string e)
  | Ok doc ->
    check_bool "no lint errors" true
      (Graphql_pg.Sdl.Lint.errors (Graphql_pg.Sdl.Lint.check doc) = [])

let test_query_conflict () =
  let sch = Graphql_pg.schema_of_string_exn "type Query { x: Int }" in
  check_bool "existing Query rejected" true (Result.is_error (Api.extend sch))

let test_interface_targets_get_inverses () =
  let sch =
    Graphql_pg.schema_of_string_exn
      {|
type Person { likes: [Item] }
interface Item { id: ID! }
type Book implements Item { id: ID! }
type Film implements Item { id: ID! }
|}
  in
  match Api.extend sch with
  | Error msg -> Alcotest.failf "extend: %s" msg
  | Ok doc ->
    List.iter
      (fun target ->
        match find_object doc target with
        | Some d ->
          check_bool (target ^ " has inverse") true
            (List.exists
               (fun (f : Ast.field_def) -> f.Ast.f_name = "_inverse_likes_of_person")
               d.Ast.o_fields)
        | None -> Alcotest.failf "missing %s" target)
      [ "Book"; "Film" ]

let suite =
  [
    Alcotest.test_case "Query entry points" `Quick test_query_type;
    Alcotest.test_case "schema block" `Quick test_schema_block;
    Alcotest.test_case "inverse fields" `Quick test_inverse_fields;
    Alcotest.test_case "output re-parses" `Quick test_reparses_cleanly;
    Alcotest.test_case "Query name conflict" `Quick test_query_conflict;
    Alcotest.test_case "interface targets get inverses" `Quick
      test_interface_targets_get_inverses;
  ]
