(* Schema-enforced GraphQL mutations: successful writes, rejected writes
   (with the violating rule reported), and transactionality. *)

module J = Graphql_pg.Json
module Inc = Graphql_pg.Incremental
module Mu = Graphql_pg.Mutation
module G = Graphql_pg.Property_graph
module V = Graphql_pg.Value
module Vi = Graphql_pg.Violation

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let schema =
  Graphql_pg.schema_of_string_exn
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String! @required
  age: Int
  boss: Person
  knows(since: Int!): [Person] @distinct @noLoops
}
type Tag @key(fields: ["label"]) {
  label: String! @required
  applied: [Person] @uniqueForTarget
}
|}

let fresh () = Inc.create schema G.empty

let run ?variables state text =
  match Mu.execute ?variables state text with
  | Ok (data, state') -> (data, state')
  | Error e -> Alcotest.failf "mutation failed: %a" Mu.pp_error e

let run_err state text =
  match Mu.execute state text with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error e -> e

let test_create () =
  let data, state =
    run (fresh ())
      {|mutation { createPerson(id: "p1", name: "Ada", age: 36) { id name age __typename } }|}
  in
  let p = J.member "createPerson" data in
  check_bool "id" true (J.member "id" p = J.String "p1");
  check_bool "name" true (J.member "name" p = J.String "Ada");
  check_bool "age" true (J.member "age" p = J.Int 36);
  check_bool "typename" true (J.member "__typename" p = J.String "Person");
  check_int "one node" 1 (G.node_count (Inc.graph state));
  check_bool "state valid" true (Inc.is_valid state)

let test_create_rejected_missing_required () =
  let e = run_err (fresh ()) {|mutation { createPerson(id: "p1") { id } }|} in
  check_bool "violations reported" true
    (List.exists (fun v -> v.Vi.rule = Vi.DS5) e.Mu.violations)

let test_create_rejected_duplicate_key () =
  let _, state = run (fresh ()) {|mutation { createPerson(id: "p1", name: "A") { id } }|} in
  let e = run_err state {|mutation { createPerson(id: "p1", name: "B") { id } }|} in
  check_bool "DS7 reported" true (List.exists (fun v -> v.Vi.rule = Vi.DS7) e.Mu.violations);
  check_int "state unchanged" 1 (G.node_count (Inc.graph state))

let test_create_rejects_bad_value () =
  let e = run_err (fresh ()) {|mutation { createPerson(id: "p1", name: "A", age: "old") { id } }|} in
  check_bool "coercion error" true (e.Mu.violations = [])

let two_people () =
  let _, state = run (fresh ()) {|mutation { createPerson(id: "p1", name: "A") { id } }|} in
  let _, state = run state {|mutation { createPerson(id: "p2", name: "B") { id } }|} in
  state

let test_link_and_unlink () =
  let state = two_people () in
  let data, state =
    run state
      {|mutation { linkPersonKnows(from: "p1", to: "p2", since: 2020) { id knows { id } } }|}
  in
  check_bool "edge visible" true
    (J.member "knows" (J.member "linkPersonKnows" data)
    = J.List [ J.Assoc [ ("id", J.String "p2") ] ]);
  (* the edge carries its mandatory property *)
  let g = Inc.graph state in
  let e = List.hd (G.edges g) in
  check_bool "edge property stored" true (G.edge_prop g e "since" = Some (V.Int 2020));
  (* duplicate link violates @distinct *)
  let e2 =
    run_err state {|mutation { linkPersonKnows(from: "p1", to: "p2", since: 2021) { id } }|}
  in
  check_bool "DS1" true (List.exists (fun v -> v.Vi.rule = Vi.DS1) e2.Mu.violations);
  (* self link violates @noLoops *)
  let e3 =
    run_err state {|mutation { linkPersonKnows(from: "p1", to: "p1", since: 2021) { id } }|}
  in
  check_bool "DS2" true (List.exists (fun v -> v.Vi.rule = Vi.DS2) e3.Mu.violations);
  (* unlink removes it *)
  let data, state = run state {|mutation { unlinkPersonKnows(from: "p1", to: "p2") }|} in
  check_bool "one removed" true (J.member "unlinkPersonKnows" data = J.Int 1);
  check_int "no edges left" 0 (G.edge_count (Inc.graph state))

let test_ws4_on_non_list () =
  let state = two_people () in
  let _, state = run state {|mutation { linkPersonBoss(from: "p1", to: "p2") { id } }|} in
  let _, state' = run state {|mutation { createPerson(id: "p3", name: "C") { id } }|} in
  let e = run_err state' {|mutation { linkPersonBoss(from: "p1", to: "p3") { id } }|} in
  check_bool "WS4" true (List.exists (fun v -> v.Vi.rule = Vi.WS4) e.Mu.violations)

let test_set_and_remove () =
  let state = two_people () in
  let data, state =
    run state {|mutation { setPersonAge(id: "p1", value: 30) { id age } }|}
  in
  check_bool "set" true (J.member "age" (J.member "setPersonAge" data) = J.Int 30);
  let data, state = run state {|mutation { setPersonAge(id: "p1", value: null) { age } }|} in
  check_bool "removed" true (J.member "age" (J.member "setPersonAge" data) = J.Null);
  (* removing a required property is rejected *)
  let e = run_err state {|mutation { setPersonName(id: "p1", value: null) { id } }|} in
  check_bool "DS5" true (List.exists (fun v -> v.Vi.rule = Vi.DS5) e.Mu.violations)

let test_delete () =
  let state = two_people () in
  let data, state = run state {|mutation { deletePerson(id: "p2") }|} in
  check_bool "deleted" true (J.member "deletePerson" data = J.Bool true);
  check_int "one left" 1 (G.node_count (Inc.graph state));
  let data, _ = run state {|mutation { deletePerson(id: "nobody") }|} in
  check_bool "missing gives false" true (J.member "deletePerson" data = J.Bool false)

let test_delete_cascades_safely () =
  (* deleting a tag target is fine; deleting a person with a unique tag
     keeps validity because edges cascade *)
  let state = two_people () in
  let _, state = run state {|mutation { createTag(label: "vip") { label } }|} in
  let _, state = run state {|mutation { linkTagApplied(from: "vip", to: "p1") { label } }|} in
  let _, state = run state {|mutation { deletePerson(id: "p1") }|} in
  check_bool "still valid" true (Inc.is_valid state)

let test_transactionality () =
  (* second field fails: the whole mutation is rejected, state unchanged *)
  let state = two_people () in
  match
    Mu.execute state
      {|mutation {
  a: createPerson(id: "p3", name: "C") { id }
  b: createPerson(id: "p1", name: "Dup") { id }
}|}
  with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error _ -> check_int "state unchanged" 2 (G.node_count (Inc.graph state))

let test_variables () =
  let data, _ =
    run (fresh ())
      ~variables:[ ("pid", J.String "p9"); ("n", J.String "Niner") ]
      {|mutation M($pid: ID!, $n: String!) { createPerson(id: $pid, name: $n) { id name } }|}
  in
  check_bool "vars" true
    (J.member "name" (J.member "createPerson" data) = J.String "Niner")

let test_invalid_initial_state () =
  let g, _ = G.add_node G.empty ~label:"Ghost" () in
  let state = Inc.create schema g in
  match Mu.execute state {|mutation { createPerson(id: "x", name: "y") { id } }|} with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error e -> check_bool "pre-existing violations reported" true (e.Mu.violations <> [])

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "create rejected: missing required" `Quick
      test_create_rejected_missing_required;
    Alcotest.test_case "create rejected: duplicate key" `Quick
      test_create_rejected_duplicate_key;
    Alcotest.test_case "create rejected: bad value" `Quick test_create_rejects_bad_value;
    Alcotest.test_case "link / unlink" `Quick test_link_and_unlink;
    Alcotest.test_case "WS4 on non-list link" `Quick test_ws4_on_non_list;
    Alcotest.test_case "set / remove property" `Quick test_set_and_remove;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "delete cascades" `Quick test_delete_cascades_safely;
    Alcotest.test_case "transactionality" `Quick test_transactionality;
    Alcotest.test_case "variables" `Quick test_variables;
    Alcotest.test_case "invalid initial state" `Quick test_invalid_initial_state;
  ]
