(* Consistency tests (Definitions 4.3-4.5). *)

module C = Graphql_pg.Consistency
module Of_ast = Graphql_pg.Of_ast

let check_bool = Alcotest.(check bool)

let schema_lenient src =
  match Of_ast.parse_lenient src with
  | Ok sch -> sch
  | Error msg -> Alcotest.failf "parse error: %s" msg

let issues src = C.check (schema_lenient src)

let has_issue pred src = List.exists pred (issues src)

let test_consistent_schema () =
  check_bool "no issues" true
    (issues
       {|
interface I { x: Int f(a: Int): J }
type A implements I { x: Int f(a: Int b: String): J extra: Float }
type J { y: Int }
|}
    = [])

let test_missing_field () =
  check_bool "missing field reported" true
    (has_issue
       (function C.Missing_field { field = "x"; _ } -> true | _ -> false)
       "interface I { x: Int }\ntype A implements I { y: Int }")

let test_field_type_covariance () =
  (* A! <= A: fine; Int vs String: not *)
  check_bool "covariant non-null ok" true
    (issues "interface I { x: Int }\ntype A implements I { x: Int! }" = []);
  check_bool "object subtype ok" true
    (issues
       {|
interface Food { n: Int }
interface I { f: Food }
type Pizza implements Food { n: Int }
type A implements I { f: Pizza }
|}
    = []);
  check_bool "wrong type reported" true
    (has_issue
       (function C.Field_type_not_subtype _ -> true | _ -> false)
       "interface I { x: Int }\ntype A implements I { x: String }");
  (* the paper's Example 6.1 pattern: [T] is not <= T (erratum) *)
  check_bool "list vs named reported (Example 6.1 erratum)" true
    (has_issue
       (function C.Field_type_not_subtype _ -> true | _ -> false)
       {|
type OT1 { }
interface IT { hasOT1: OT1 }
type OT2 implements IT { hasOT1: [OT1] }
|})

let test_argument_rules () =
  check_bool "missing argument" true
    (has_issue
       (function C.Missing_argument { argument = "a"; _ } -> true | _ -> false)
       "interface I { f(a: Int): Int }\ntype A implements I { f: Int }");
  check_bool "argument type must be equal, not covariant" true
    (has_issue
       (function C.Argument_type_mismatch _ -> true | _ -> false)
       "interface I { f(a: Int): Int }\ntype A implements I { f(a: Int!): Int }");
  check_bool "extra nullable argument ok" true
    (issues "interface I { f: Int }\ntype A implements I { f(extra: Int): Int }" = []);
  check_bool "extra non-null argument reported" true
    (has_issue
       (function C.Extra_non_null_argument { argument = "extra"; _ } -> true | _ -> false)
       "interface I { f: Int }\ntype A implements I { f(extra: Int!): Int }")

let test_unknown_directive () =
  check_bool "unknown directive" true
    (has_issue
       (function C.Unknown_directive { directive = "nope"; _ } -> true | _ -> false)
       "type A { x: Int @nope }");
  check_bool "declared directive ok" true
    (issues "directive @nope on FIELD_DEFINITION\ntype A { x: Int @nope }" = [])

let test_directive_arguments () =
  (* @key requires fields: [String!]! *)
  check_bool "missing non-null argument" true
    (has_issue
       (function
         | C.Missing_directive_argument { directive = "key"; argument = "fields"; _ } -> true
         | _ -> false)
       "type A @key { x: ID }");
  check_bool "ill-typed argument value" true
    (has_issue
       (function C.Directive_argument_type_error { directive = "key"; _ } -> true | _ -> false)
       "type A @key(fields: [1, 2]) { x: ID }");
  check_bool "null for non-null argument" true
    (has_issue
       (function C.Directive_argument_type_error _ -> true | _ -> false)
       "type A @key(fields: null) { x: ID }");
  check_bool "undeclared argument" true
    (has_issue
       (function C.Unknown_directive_argument { argument = "bogus"; _ } -> true | _ -> false)
       {|type A @key(fields: ["x"] bogus: 1) { x: ID }|});
  check_bool "well-typed use ok" true (issues {|type A @key(fields: ["x"]) { x: ID }|} = []);
  check_bool "declared default satisfies requirement" true
    (issues
       {|directive @limit(n: Int! = 10) on FIELD_DEFINITION
type A { x: Int @limit }|}
    = [])

let test_is_consistent () =
  check_bool "consistent" true (C.is_consistent (schema_lenient "type A { x: Int }"));
  check_bool "inconsistent" false
    (C.is_consistent (schema_lenient "type A { x: Int @nope }"))

let suite =
  [
    Alcotest.test_case "consistent schema" `Quick test_consistent_schema;
    Alcotest.test_case "missing interface field" `Quick test_missing_field;
    Alcotest.test_case "field type covariance" `Quick test_field_type_covariance;
    Alcotest.test_case "argument rules" `Quick test_argument_rules;
    Alcotest.test_case "unknown directive" `Quick test_unknown_directive;
    Alcotest.test_case "directive argument checks" `Quick test_directive_arguments;
    Alcotest.test_case "is_consistent" `Quick test_is_consistent;
  ]
