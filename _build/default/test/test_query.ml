(* The GraphQL query engine (parser + executor) against Property Graphs. *)

module J = Graphql_pg.Json
module QP = Graphql_pg.Query_parser
module Q = Graphql_pg.Query_ast
module V = Graphql_pg.Value
module B = Graphql_pg.Builder

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let schema =
  Graphql_pg.schema_of_string_exn
    {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String! @required
  age: Int
  favoriteFood: Food
  knows(since: Int!): [Person] @distinct @noLoops
}
union Food = Pizza | Pasta
type Pizza @key(fields: ["name"]) {
  name: String! @required
  toppings: [String!]!
}
type Pasta {
  name: String! @required
}
|}

let graph =
  let b = B.create () in
  let person h name age =
    ignore
      (B.node b h ~label:"Person"
         ~props:
           (( "id", V.Id h ) :: ("name", V.String name)
           :: (match age with Some a -> [ ("age", V.Int a) ] | None -> []))
         ())
  in
  person "olaf" "Olaf" (Some 40);
  person "jan" "Jan" None;
  ignore
    (B.node b "margherita" ~label:"Pizza"
       ~props:[ ("name", V.String "Margherita"); ("toppings", V.List [ V.String "tomato" ]) ]
       ());
  ignore (B.node b "carbonara" ~label:"Pasta" ~props:[ ("name", V.String "Carbonara") ] ());
  ignore (B.edge b "olaf" "margherita" ~label:"favoriteFood" ());
  ignore (B.edge b "jan" "carbonara" ~label:"favoriteFood" ());
  ignore (B.edge b "olaf" "jan" ~label:"knows" ~props:[ ("since", V.Int 2017) ] ());
  ignore (B.edge b "jan" "olaf" ~label:"knows" ~props:[ ("since", V.Int 2018) ] ());
  B.graph b

let run ?operation ?variables text =
  match Graphql_pg.query ?operation ?variables schema graph text with
  | Ok data -> data
  | Error msg -> Alcotest.failf "query failed: %s" msg

let run_err ?variables text =
  match Graphql_pg.query ?variables schema graph text with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> msg

(* --- parser --- *)

let test_parser_shapes () =
  let doc src = match QP.parse src with Ok d -> d | Error e -> Alcotest.failf "%s" (Graphql_pg.Sdl.Source.error_to_string e) in
  let d = doc "{ a b { c } }" in
  Alcotest.(check int) "one op" 1 (List.length d.Q.operations);
  let d2 = doc "query Q($x: Int! = 3) { a(v: $x) }\nfragment F on Person { name }" in
  Alcotest.(check int) "fragments" 1 (List.length d2.Q.fragments);
  (match (List.hd d2.Q.operations).Q.o_variables with
  | [ vd ] -> check_bool "default" true (vd.Q.v_default = Some (Q.Int_value 3))
  | _ -> Alcotest.fail "expected one variable");
  check_bool "mutation rejected" true (Result.is_error (QP.parse "mutation { x }"));
  check_bool "empty selection rejected" true (Result.is_error (QP.parse "{ }"));
  check_bool "alias parsed" true
    (match doc "{ renamed: a }" with
    | { Q.operations = [ { Q.o_selection = [ Q.Field f ]; _ } ]; _ } ->
      f.Q.f_alias = Some "renamed" && f.Q.f_name = "a"
    | _ -> false)

(* --- execution --- *)

let test_all_and_leaves () =
  let data = run "{ allPerson { id name age } }" in
  let people = J.member "allPerson" data in
  check_bool "two people" true (people |> function J.List l -> List.length l = 2 | _ -> false);
  check_string "name" "Olaf" (match J.member "name" (J.index 0 people) with J.String s -> s | _ -> "?");
  check_bool "absent property is null (sigma partial)" true
    (J.member "age" (J.index 1 people) = J.Null)

let test_lookup_and_alias () =
  let data = run {|{ p: personById(id: "jan") { who: name } }|} in
  check_string "aliased" "Jan"
    (match J.member "who" (J.member "p" data) with J.String s -> s | _ -> "?");
  check_bool "missing key gives null" true
    (J.member "personById" (run {|{ personById(id: "nobody") { name } }|}) = J.Null)

let test_relationships () =
  let data = run {|{ personById(id: "olaf") { knows { name } favoriteFood { __typename } } }|} in
  let olaf = J.member "personById" data in
  check_bool "knows list" true
    (J.member "knows" olaf = J.List [ J.Assoc [ ("name", J.String "Jan") ] ]);
  check_string "union typename" "Pizza"
    (match J.member "__typename" (J.member "favoriteFood" olaf) with J.String s -> s | _ -> "?")

let test_edge_property_filters () =
  (* knows(since: 2017) keeps only matching edges *)
  let data = run {|{ allPerson { name knows(since: 2017) { name } } }|} in
  let people = match J.member "allPerson" data with J.List l -> l | _ -> [] in
  let by_name n = List.find (fun p -> J.member "name" p = J.String n) people in
  check_bool "olaf's 2017 edge kept" true
    (J.member "knows" (by_name "Olaf") = J.List [ J.Assoc [ ("name", J.String "Jan") ] ]);
  check_bool "jan's 2018 edge filtered out" true (J.member "knows" (by_name "Jan") = J.List [])

let test_fragments () =
  let data =
    run
      {|
query {
  allPerson {
    favoriteFood {
      ... on Pizza { toppings }
      ...pastaName
    }
  }
}
fragment pastaName on Pasta { name }
|}
  in
  let foods =
    match J.member "allPerson" data with
    | J.List l -> List.map (J.member "favoriteFood") l
    | _ -> []
  in
  check_bool "pizza got toppings" true
    (List.exists (fun f -> J.member "toppings" f <> J.Null) foods);
  check_bool "pasta got name via named fragment" true
    (List.exists (fun f -> J.member "name" f = J.String "Carbonara") foods)

let test_fragment_errors () =
  check_bool "unknown fragment" true
    (String.length (run_err "{ allPerson { ...nope } }") > 0);
  check_bool "fragment cycle detected" true
    (String.length
       (run_err
          "query { allPerson { ...a } }\nfragment a on Person { ...b }\nfragment b on Person { ...a }")
    > 0)

let test_variables () =
  let data =
    run ~variables:[ ("who", J.String "olaf") ]
      {|query Q($who: ID!) { personById(id: $who) { name } }|}
  in
  check_string "variable used" "Olaf"
    (match J.member "name" (J.member "personById" data) with J.String s -> s | _ -> "?");
  (* defaults apply *)
  let data2 = run {|query Q($who: ID! = "jan") { personById(id: $who) { name } }|} in
  check_string "default used" "Jan"
    (match J.member "name" (J.member "personById" data2) with J.String s -> s | _ -> "?");
  check_bool "missing non-null variable" true
    (String.length (run_err {|query Q($who: ID!) { personById(id: $who) { name } }|}) > 0)

let test_inverse_fields () =
  let data =
    run {|{ pizzaByName(name: "Margherita") { _inverse_favoriteFood_of_person { name } } }|}
  in
  check_bool "inverse traversal" true
    (J.member "_inverse_favoriteFood_of_person" (J.member "pizzaByName" data)
    = J.List [ J.Assoc [ ("name", J.String "Olaf") ] ])

let test_execution_errors () =
  check_bool "unknown root field" true (String.length (run_err "{ nope { x } }") > 0);
  check_bool "unknown field on type" true
    (String.length (run_err "{ allPerson { salary } }") > 0);
  check_bool "leaf with selection" true
    (String.length (run_err "{ allPerson { name { x } } }") > 0);
  check_bool "relationship without selection" true
    (String.length (run_err "{ allPerson { knows } }") > 0);
  check_bool "undeclared argument" true
    (String.length (run_err "{ allPerson { knows(color: 1) { name } } }") > 0)

let test_operation_selection () =
  let text = "query A { allPerson { name } }\nquery B { allPizza { name } }" in
  check_bool "select B" true
    (J.member "allPizza" (run ~operation:"B" text) <> J.Null);
  check_bool "ambiguous without name" true
    (String.length (run_err text) > 0)

let test_skip_include () =
  let data =
    run ~variables:[ ("yes", J.Bool true); ("no", J.Bool false) ]
      {|query Q($yes: Boolean!, $no: Boolean!) {
  allPerson {
    name @include(if: $yes)
    age @include(if: $no)
    id @skip(if: $yes)
    kept: id @skip(if: $no)
  }
}|}
  in
  let first = J.index 0 (J.member "allPerson" data) in
  check_bool "included" true (J.member "name" first <> J.Null);
  check_bool "excluded by include(false)" true (J.member "age" first = J.Null && not (List.mem_assoc "age" (match first with J.Assoc l -> l | _ -> [])));
  check_bool "excluded by skip(true)" true
    (not (List.mem_assoc "id" (match first with J.Assoc l -> l | _ -> [])));
  check_bool "kept by skip(false)" true (J.member "kept" first <> J.Null);
  (* literals work too; fragments honour the directives *)
  let data2 =
    run
      {|query {
  allPizza {
    ... on Pizza @skip(if: true) { toppings }
    name @include(if: true)
  }
}|}
  in
  let pizza = J.index 0 (J.member "allPizza" data2) in
  check_bool "fragment skipped" true
    (not (List.mem_assoc "toppings" (match pizza with J.Assoc l -> l | _ -> [])));
  check_bool "field included" true (J.member "name" pizza <> J.Null);
  (* missing if argument is an error *)
  check_bool "missing if" true (String.length (run_err "{ allPerson { name @skip } }") > 0)

let test_multiple_operations_social () =
  (* smoke on the bigger social workload *)
  let sch = Graphql_pg.Social.schema () in
  let g = Graphql_pg.Social.generate ~persons:30 () in
  match
    Graphql_pg.query sch g
      {|{ allForum { title moderator { name livesIn { name } } containerOf { id author { name } } } }|}
  with
  | Ok data ->
    check_bool "forums returned" true
      (match J.member "allForum" data with J.List (_ :: _) -> true | _ -> false)
  | Error msg -> Alcotest.failf "social query failed: %s" msg

let suite =
  [
    Alcotest.test_case "parser shapes" `Quick test_parser_shapes;
    Alcotest.test_case "all<Type> + leaf fields" `Quick test_all_and_leaves;
    Alcotest.test_case "key lookup + aliases" `Quick test_lookup_and_alias;
    Alcotest.test_case "relationships + __typename" `Quick test_relationships;
    Alcotest.test_case "arguments filter edge properties" `Quick test_edge_property_filters;
    Alcotest.test_case "fragments (inline + named)" `Quick test_fragments;
    Alcotest.test_case "fragment errors" `Quick test_fragment_errors;
    Alcotest.test_case "variables" `Quick test_variables;
    Alcotest.test_case "inverse fields" `Quick test_inverse_fields;
    Alcotest.test_case "execution errors" `Quick test_execution_errors;
    Alcotest.test_case "operation selection" `Quick test_operation_selection;
    Alcotest.test_case "@skip / @include" `Quick test_skip_include;
    Alcotest.test_case "social workload queries" `Quick test_multiple_operations_social;
  ]
