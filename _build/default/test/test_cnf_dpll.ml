(* CNF representation, DIMACS, and the DPLL solver. *)

module Cnf = Graphql_pg.Cnf
module Dpll = Graphql_pg.Dpll

let check_bool = Alcotest.(check bool)

let test_lit () =
  check_bool "positive" true (Cnf.lit 3 = { Cnf.var = 3; positive = true });
  check_bool "negative" true (Cnf.lit (-3) = { Cnf.var = 3; positive = false });
  Alcotest.check_raises "zero" (Invalid_argument "Cnf.lit: variable 0") (fun () ->
      ignore (Cnf.lit 0))

let test_make_bounds () =
  Alcotest.check_raises "var out of range"
    (Invalid_argument "Cnf.make: variable 5 out of range") (fun () ->
      ignore (Cnf.make ~num_vars:3 [ [ Cnf.lit 5 ] ]))

let test_eval () =
  let f = Cnf.paper_example in
  check_bool "satisfying" true (Cnf.eval f [| true; false; false; true |]);
  check_bool "falsifying" false (Cnf.eval f [| true; false; true; false |])

let test_dimacs_round_trip () =
  let f = Cnf.paper_example in
  match Cnf.parse_dimacs (Cnf.to_dimacs f) with
  | Ok f' ->
    check_bool "same clauses" true (f.Cnf.clauses = f'.Cnf.clauses);
    check_bool "same vars" true (f.Cnf.num_vars = f'.Cnf.num_vars)
  | Error e -> Alcotest.failf "dimacs: %s" e

let test_dimacs_parsing () =
  (match Cnf.parse_dimacs "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" with
  | Ok f ->
    Alcotest.(check int) "vars" 3 f.Cnf.num_vars;
    Alcotest.(check int) "clauses" 2 (List.length f.Cnf.clauses)
  | Error e -> Alcotest.failf "dimacs: %s" e);
  check_bool "bad token" true (Result.is_error (Cnf.parse_dimacs "1 x 0"))

let test_dpll_basic () =
  check_bool "single clause sat" true (Dpll.satisfiable (Cnf.make ~num_vars:1 [ [ Cnf.lit 1 ] ]));
  check_bool "contradiction unsat" false
    (Dpll.satisfiable (Cnf.make ~num_vars:1 [ [ Cnf.lit 1 ]; [ Cnf.lit (-1) ] ]));
  check_bool "empty clause unsat" false (Dpll.satisfiable (Cnf.make ~num_vars:1 [ [] ]));
  check_bool "empty formula sat" true (Dpll.satisfiable (Cnf.make ~num_vars:0 []));
  check_bool "paper formula sat" true (Dpll.satisfiable Cnf.paper_example)

let test_dpll_pigeonhole () =
  (* 3 pigeons, 2 holes: classic small unsat instance.
     var (p, h) = p * 2 + h + 1 for p in 0..2, h in 0..1 *)
  let v p h = Cnf.lit ((p * 2) + h + 1) in
  let nv p h = Cnf.lit (-((p * 2) + h + 1)) in
  let clauses =
    (* each pigeon in some hole *)
    [ [ v 0 0; v 0 1 ]; [ v 1 0; v 1 1 ]; [ v 2 0; v 2 1 ] ]
    (* no two pigeons share a hole *)
    @ [
        [ nv 0 0; nv 1 0 ]; [ nv 0 0; nv 2 0 ]; [ nv 1 0; nv 2 0 ];
        [ nv 0 1; nv 1 1 ]; [ nv 0 1; nv 2 1 ]; [ nv 1 1; nv 2 1 ];
      ]
  in
  check_bool "pigeonhole(3,2) unsat" false (Dpll.satisfiable (Cnf.make ~num_vars:6 clauses))

let test_dpll_model_valid () =
  match Dpll.solve Cnf.paper_example with
  | Dpll.Sat a -> check_bool "model satisfies" true (Cnf.eval Cnf.paper_example a)
  | Dpll.Unsat -> Alcotest.fail "should be satisfiable"

(* qcheck: DPLL models always satisfy; DPLL agrees with brute force on
   small instances *)
let brute_force (f : Cnf.t) =
  let n = f.Cnf.num_vars in
  let rec go i a = if i = n then Cnf.eval f a else (a.(i) <- false; go (i + 1) a) || (a.(i) <- true; go (i + 1) a) in
  if n > 12 then invalid_arg "brute_force" else go 0 (Array.make n false)

let prop_dpll_sound_and_complete =
  QCheck2.Test.make ~name:"DPLL = brute force on random 3-SAT" ~count:120
    QCheck2.Gen.(tup3 (int_range 1 6) (int_range 1 14) (int_bound 1_000_000))
    (fun (vars, clauses, seed) ->
      let f =
        Graphql_pg.Ksat.random ~seed ~num_vars:vars ~num_clauses:clauses ~clause_size:3 ()
      in
      (match Dpll.solve f with
      | Dpll.Sat a -> Cnf.eval f a
      | Dpll.Unsat -> true)
      && Dpll.satisfiable f = brute_force f)

let suite =
  [
    Alcotest.test_case "literals" `Quick test_lit;
    Alcotest.test_case "make bounds" `Quick test_make_bounds;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "DIMACS round-trip" `Quick test_dimacs_round_trip;
    Alcotest.test_case "DIMACS parsing" `Quick test_dimacs_parsing;
    Alcotest.test_case "DPLL basics" `Quick test_dpll_basic;
    Alcotest.test_case "DPLL pigeonhole" `Quick test_dpll_pigeonhole;
    Alcotest.test_case "DPLL models are valid" `Quick test_dpll_model_valid;
    QCheck_alcotest.to_alcotest prop_dpll_sound_and_complete;
  ]
