(* Differential and fault-injection testing of the validation engines.

   - Naive and Indexed must agree on arbitrary (schema, graph) pairs,
     including garbage graphs (fuzz).
   - Conformant graphs generated from random schemas must validate.
   - Every Corruption mutator must make its targeted rule fire, in both
     engines. *)

module G = Graphql_pg.Property_graph
module Val = Graphql_pg.Validate
module Vi = Graphql_pg.Violation
module Schema_gen = Graphql_pg.Schema_gen
module Instance_gen = Graphql_pg.Instance_gen
module Corruption = Graphql_pg.Corruption

let check_bool = Alcotest.(check bool)

let engines_agree sch g =
  let naive = (Val.check ~engine:Val.Naive sch g).Val.violations in
  let indexed = (Val.check ~engine:Val.Indexed sch g).Val.violations in
  List.equal Vi.equal naive indexed

let seeded_rng seed = Random.State.make [| seed; 0xBEEF |]

let prop_engines_agree_on_fuzz =
  QCheck2.Test.make ~name:"Naive = Indexed on fuzz graphs" ~count:150
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = seeded_rng seed in
      let sch = Schema_gen.random_schema rng in
      let g = Instance_gen.fuzz rng sch ~max_nodes:10 in
      engines_agree sch g)

let prop_engines_agree_on_social =
  QCheck2.Test.make ~name:"Naive = Indexed on corrupted social graphs" ~count:10
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sch = Graphql_pg.Social.schema () in
      let g = Graphql_pg.Social.generate ~seed ~persons:30 () in
      let g = Graphql_pg.Social.corrupt_uniformly ~seed ~rate:0.1 sch g in
      engines_agree sch g)

let prop_conformant_graphs_validate =
  QCheck2.Test.make ~name:"Instance_gen.conformant graphs strongly satisfy" ~count:40
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = seeded_rng seed in
      let sch = Schema_gen.random_schema rng in
      match Instance_gen.conformant ~target_nodes:20 sch with
      | Some g -> Val.conforms sch g && engines_agree sch g
      | None -> true (* all object types unsatisfiable within bounds: fine *))

(* fault injection: per-rule mutators *)
let corruption_case rule =
  let name = Printf.sprintf "corruption fires %s" (Vi.rule_name rule) in
  QCheck2.Test.make ~name ~count:25
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sch = Graphql_pg.Social.schema () in
      let g = Graphql_pg.Social.generate ~seed:(seed mod 97) ~persons:12 () in
      let rng = seeded_rng seed in
      match Corruption.mutate rule sch rng g with
      | None -> QCheck2.assume_fail () (* mutator not applicable on this graph *)
      | Some g' ->
        let report = Val.check ~engine:Val.Indexed sch g' in
        let fired = List.mem rule (Val.violated_rules report) in
        fired && engines_agree sch g')

let test_mutate_any_always_invalidates () =
  let sch = Graphql_pg.Social.schema () in
  let g = Graphql_pg.Social.generate ~persons:15 () in
  let rng = seeded_rng 5 in
  for _ = 1 to 20 do
    match Corruption.mutate_any sch rng g with
    | Some (rule, g') ->
      let report = Val.check sch g' in
      check_bool
        (Printf.sprintf "mutation %s invalidates" (Vi.rule_name rule))
        true
        (List.mem rule (Val.violated_rules report))
    | None -> Alcotest.fail "no mutator applicable on a rich graph"
  done

let suite =
  [
    QCheck_alcotest.to_alcotest prop_engines_agree_on_fuzz;
    QCheck_alcotest.to_alcotest prop_engines_agree_on_social;
    QCheck_alcotest.to_alcotest prop_conformant_graphs_validate;
  ]
  @ List.map (fun rule -> QCheck_alcotest.to_alcotest (corruption_case rule)) Vi.all_rules
  @ [ Alcotest.test_case "mutate_any invalidates" `Quick test_mutate_any_always_invalidates ]
