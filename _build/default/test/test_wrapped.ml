(* Wrapping types (Section 4.1): the six allowed forms and basetype. *)

module W = Graphql_pg.Wrapped
module Ast = Graphql_pg.Sdl.Ast

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let of_string src =
  match Graphql_pg.Sdl.Parser.parse_type_ref src with
  | Ok t -> W.of_ast t
  | Error _ -> Alcotest.failf "parse error on %s" src

let ok src = match of_string src with Ok w -> w | Error e -> Alcotest.failf "%s: %s" src e

let test_of_ast () =
  check_bool "named" true (ok "T" = W.Named "T");
  check_bool "non-null" true (ok "T!" = W.Non_null "T");
  check_bool "list" true (ok "[T]" = W.List { item = "T"; item_non_null = false; non_null = false });
  check_bool "list of non-null" true
    (ok "[T!]" = W.List { item = "T"; item_non_null = true; non_null = false });
  check_bool "non-null list" true
    (ok "[T]!" = W.List { item = "T"; item_non_null = false; non_null = true });
  check_bool "non-null list of non-null" true
    (ok "[T!]!" = W.List { item = "T"; item_non_null = true; non_null = true })

let test_nested_lists_rejected () =
  check_bool "nested list" true (Result.is_error (of_string "[[T]]"));
  check_bool "nested deep" true (Result.is_error (of_string "[[T!]!]"))

let test_basetype () =
  List.iter
    (fun src -> check_string src "T" (W.basetype (ok src)))
    [ "T"; "T!"; "[T]"; "[T!]"; "[T]!"; "[T!]!" ]

let test_is_list () =
  check_bool "named" false (W.is_list (ok "T"));
  check_bool "non-null" false (W.is_list (ok "T!"));
  check_bool "list" true (W.is_list (ok "[T]"));
  check_bool "non-null list" true (W.is_list (ok "[T]!"))

let test_is_non_null () =
  check_bool "T" false (W.is_non_null (ok "T"));
  check_bool "T!" true (W.is_non_null (ok "T!"));
  check_bool "[T!]" false (W.is_non_null (ok "[T!]"));
  check_bool "[T]!" true (W.is_non_null (ok "[T]!"))

let test_round_trip () =
  List.iter
    (fun src ->
      check_string ("to_string " ^ src) src (W.to_string (ok src));
      check_bool ("to_ast/of_ast " ^ src) true (W.of_ast (W.to_ast (ok src)) = Ok (ok src)))
    [ "T"; "T!"; "[T]"; "[T!]"; "[T]!"; "[T!]!" ]

let test_all_wrappings () =
  let ws = W.all_wrappings "T" in
  Alcotest.(check int) "six forms" 6 (List.length ws);
  check_bool "distinct" true (List.sort_uniq W.compare ws = List.sort W.compare ws);
  check_bool "all base T" true (List.for_all (fun w -> W.basetype w = "T") ws)

let suite =
  [
    Alcotest.test_case "of_ast on the six forms" `Quick test_of_ast;
    Alcotest.test_case "nested lists rejected" `Quick test_nested_lists_rejected;
    Alcotest.test_case "basetype" `Quick test_basetype;
    Alcotest.test_case "is_list (WS4 semantics)" `Quick test_is_list;
    Alcotest.test_case "is_non_null" `Quick test_is_non_null;
    Alcotest.test_case "round-trips" `Quick test_round_trip;
    Alcotest.test_case "all_wrappings" `Quick test_all_wrappings;
  ]
