(* Printer tests: AST -> SDL -> AST round-trips. *)

module P = Graphql_pg.Sdl.Parser
module Pr = Graphql_pg.Sdl.Printer
module Ast = Graphql_pg.Sdl.Ast

let round_trip name src =
  Alcotest.test_case name `Quick (fun () ->
      match P.parse src with
      | Error e ->
        Alcotest.failf "parse error: %s" (Graphql_pg.Sdl.Source.error_to_string e)
      | Ok doc -> (
        let printed = Pr.document_to_string doc in
        match P.parse printed with
        | Error e ->
          Alcotest.failf "re-parse error: %s in\n%s"
            (Graphql_pg.Sdl.Source.error_to_string e)
            printed
        | Ok doc2 ->
          let printed2 = Pr.document_to_string doc2 in
          Alcotest.(check string) "fixpoint after one print" printed printed2))

let test_type_ref_syntax () =
  let check src =
    match P.parse_type_ref src with
    | Ok t -> Alcotest.(check string) src src (Pr.type_ref_to_string t)
    | Error _ -> Alcotest.failf "parse error on %s" src
  in
  List.iter check [ "Foo"; "Foo!"; "[Foo]"; "[Foo!]"; "[Foo]!"; "[Foo!]!"; "[[Foo]]" ]

let test_value_syntax () =
  let check src expected =
    match P.parse_value src with
    | Ok v -> Alcotest.(check string) src expected (Pr.value_to_string v)
    | Error _ -> Alcotest.failf "parse error on %s" src
  in
  check "3" "3";
  check "[1,2]" "[1, 2]";
  check "{a: 1}" "{a: 1}";
  check "\"x\\ny\"" "\"x\\ny\"";
  check "1.25" "1.25";
  check "null" "null"

let test_description_block_string () =
  (* multi-line descriptions print as block strings and survive *)
  let src = "\"\"\"\nline one\nline two\n\"\"\"\ntype A {\n}" in
  match P.parse src with
  | Error _ -> Alcotest.fail "parse error"
  | Ok doc -> (
    let printed = Pr.document_to_string doc in
    match P.parse printed with
    | Ok (Ast.Type_definition (Ast.Object_type d) :: _) ->
      Alcotest.(check (option string)) "description preserved" (Some "line one\nline two")
        d.Ast.o_description
    | _ -> Alcotest.fail "re-parse failed")

let suite =
  [
    round_trip "round-trip: object with everything"
      {|
"desc"
type A implements I & J @key(fields: ["id"]) {
  "field"
  id: ID! @required
  rel(w: Float! c: String = "x"): [B!]! @distinct @noLoops
}
|};
    round_trip "round-trip: scalar + enum + union + input"
      {|
scalar Time
enum E { A B C }
union U = X | Y
input In { a: Int = 3 b: [String] }
type X { q: Int }
type Y { q: Int }
|};
    round_trip "round-trip: interface + schema + directive def"
      {|
interface I { x: Int }
directive @auth(role: String) on OBJECT | FIELD_DEFINITION
schema { query: Q }
type Q { x: Int }
|};
    round_trip "round-trip: extensions" "type A { x: Int }\nextend type A @deprecated { y: Int }";
    round_trip "round-trip: empty body" "type OT1 {\n}";
    Alcotest.test_case "type_ref syntax" `Quick test_type_ref_syntax;
    Alcotest.test_case "value syntax" `Quick test_value_syntax;
    Alcotest.test_case "block string description" `Quick test_description_block_string;
  ]
