(* AST -> schema translation diagnostics (Of_ast). *)

module Of_ast = Graphql_pg.Of_ast
module S = Graphql_pg.Schema
module Sm = Map.Make (String)

let check_bool = Alcotest.(check bool)

let build src =
  match Graphql_pg.Sdl.Parser.parse src with
  | Error e -> Alcotest.failf "parse: %s" (Graphql_pg.Sdl.Source.error_to_string e)
  | Ok doc -> Of_ast.build doc

let build_errors src =
  match build src with
  | Ok _ -> []
  | Error diagnostics ->
    List.filter (fun (d : Of_ast.diagnostic) -> d.Of_ast.severity = Of_ast.Error) diagnostics

let build_warnings src =
  match build src with
  | Ok (_, warnings) -> warnings
  | Error diagnostics ->
    List.filter (fun (d : Of_ast.diagnostic) -> d.Of_ast.severity = Of_ast.Warning) diagnostics

let mentions needle diagnostics =
  List.exists
    (fun (d : Of_ast.diagnostic) ->
      let m = d.Of_ast.message in
      let n = String.length needle and l = String.length m in
      let rec go i = i + n <= l && (String.sub m i n = needle || go (i + 1)) in
      go 0)
    diagnostics

let test_unknown_type () =
  check_bool "unknown field type" true (mentions "unknown type \"Nope\"" (build_errors "type A { x: Nope }"))

let test_nested_list_rejected () =
  check_bool "nested list" true (mentions "nested list" (build_errors "type A { x: [[Int]] }"))

let test_union_member_checks () =
  check_bool "non-object member" true
    (mentions "not an object type"
       (build_errors "interface I { x: Int }\nunion U = I\ntype A { x: Int }"));
  check_bool "undefined member" true
    (mentions "undefined" (build_errors "union U = Nope\ntype A { x: Int }"))

let test_implements_checks () =
  check_bool "implements non-interface" true
    (mentions "not an interface" (build_errors "type B { x: Int }\ntype A implements B { x: Int }"));
  check_bool "implements undefined" true
    (mentions "undefined interface" (build_errors "type A implements Nope { x: Int }"))

let test_input_object_handling () =
  (* input object types are outside T: warned, and usable only as ignored
     argument types *)
  let warnings = build_warnings "input F { a: Int }\ntype A { f(flt: F): Int x: Int }" in
  check_bool "input type warned" true (mentions "outside the Property Graph" warnings);
  check_bool "input-typed argument dropped with warning" true (mentions "ignored" warnings);
  (match build "input F { a: Int }\ntype A { f(flt: F): Int x: Int }" with
  | Ok (sch, _) -> check_bool "argument dropped" true (S.args sch "A" "f" = [])
  | Error _ -> Alcotest.fail "build failed");
  (* but input objects are not output types *)
  check_bool "field of input type is an error" true
    (mentions "not an output type" (build_errors "input F { a: Int }\ntype A { x: F }"))

let test_object_typed_argument_rejected () =
  check_bool "object arg" true
    (mentions "not an input type" (build_errors "type B { x: Int }\ntype A { f(b: B): Int }"))

let test_root_operations_ignored () =
  let warnings = build_warnings "type Query { a: Int }\nschema { query: Query }" in
  check_bool "root op warned as ignored" true (mentions "ignored for Property Graph" warnings);
  match build "type Query { a: Int }\nschema { query: Query }" with
  | Ok (sch, _) -> check_bool "Query remains an object type" true (S.type_kind sch "Query" = Some S.Object)
  | Error _ -> Alcotest.fail "build failed"

let test_extension_merging () =
  match
    build
      {|
type A { x: Int }
extend type A @key(fields: ["x"]) { y: String }
interface I { z: Int }
extend type A implements I { z: Int }
|}
  with
  | Ok (sch, _) ->
    check_bool "merged fields" true
      (List.map fst (S.fields sch "A") = [ "x"; "y"; "z" ]);
    check_bool "merged interface" true (S.implementations_of sch "I" = [ "A" ]);
    let ot = Sm.find "A" sch.S.objects in
    check_bool "merged directive" true (S.has_directive ot.S.ot_directives "key")
  | Error ds ->
    Alcotest.failf "build failed: %s"
      (String.concat "; " (List.map (fun (d : Of_ast.diagnostic) -> d.Of_ast.message) ds))

let test_extension_of_undefined () =
  check_bool "extend undefined" true
    (mentions "extension of undefined type" (build_errors "type B { x: Int }\nextend type A { y: Int }"));
  check_bool "kind mismatch" true
    (mentions "does not match the kind" (build_errors "enum A { V }\nextend type A { y: Int }\ntype B { x: Int }"))

let test_custom_directive_definitions () =
  match build "directive @w(weight: Float!) on FIELD_DEFINITION\ntype A { x: Int @w(weight: 0.5) }" with
  | Ok (sch, _) -> check_bool "declared" true (S.directive_args sch "w" <> None)
  | Error _ -> Alcotest.fail "build failed"

let test_parse_gates_consistency () =
  check_bool "parse rejects inconsistent" true
    (Result.is_error (Of_ast.parse "type A { x: Int @nope }"));
  check_bool "parse_lenient accepts it" true
    (Result.is_ok (Of_ast.parse_lenient "type A { x: Int @nope }"))

let suite =
  [
    Alcotest.test_case "unknown types" `Quick test_unknown_type;
    Alcotest.test_case "nested lists rejected" `Quick test_nested_list_rejected;
    Alcotest.test_case "union member checks" `Quick test_union_member_checks;
    Alcotest.test_case "implements checks" `Quick test_implements_checks;
    Alcotest.test_case "input object handling (3.6)" `Quick test_input_object_handling;
    Alcotest.test_case "object-typed arguments rejected" `Quick
      test_object_typed_argument_rejected;
    Alcotest.test_case "root operations ignored (3.6)" `Quick test_root_operations_ignored;
    Alcotest.test_case "extension merging" `Quick test_extension_merging;
    Alcotest.test_case "extension errors" `Quick test_extension_of_undefined;
    Alcotest.test_case "custom directive definitions" `Quick test_custom_directive_definitions;
    Alcotest.test_case "parse vs parse_lenient" `Quick test_parse_gates_consistency;
  ]
