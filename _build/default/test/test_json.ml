(* JSON printer/parser for the GraphQL response format. *)

module J = Graphql_pg.Json

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_printing () =
  check_string "compact" {|{"a":1,"b":[true,null],"c":"x"}|}
    (J.to_string (J.Assoc [ ("a", J.Int 1); ("b", J.List [ J.Bool true; J.Null ]); ("c", J.String "x") ]));
  check_string "empty containers" {|{"a":[],"b":{}}|}
    (J.to_string (J.Assoc [ ("a", J.List []); ("b", J.Assoc []) ]));
  check_string "escapes" {|"a\"b\\c\nd"|} (J.to_string (J.String "a\"b\\c\nd"));
  check_string "float" "1.5" (J.to_string (J.Float 1.5));
  check_string "integral float keeps point" "2.0" (J.to_string (J.Float 2.0))

let test_parsing () =
  let ok src = match J.of_string src with Ok v -> v | Error e -> Alcotest.failf "%s" e in
  check_bool "object" true
    (J.equal (ok {|{"a": 1, "b": [true, false], "s": "x"}|})
       (J.Assoc [ ("a", J.Int 1); ("b", J.List [ J.Bool true; J.Bool false ]); ("s", J.String "x") ]));
  check_bool "nested" true
    (J.equal (ok {|[[1], {"x": null}]|})
       (J.List [ J.List [ J.Int 1 ]; J.Assoc [ ("x", J.Null) ] ]));
  check_bool "numbers" true (J.equal (ok "-2.5e2") (J.Float (-250.0)));
  check_bool "unicode escape" true (J.equal (ok {|"é"|}) (J.String "\xc3\xa9"));
  check_bool "errors: trailing" true (Result.is_error (J.of_string "1 2"));
  check_bool "errors: bad literal" true (Result.is_error (J.of_string "nil"));
  check_bool "errors: unterminated" true (Result.is_error (J.of_string "[1, 2"))

let test_accessors () =
  let v = J.Assoc [ ("xs", J.List [ J.Int 10; J.Int 20 ]) ] in
  check_bool "member + index" true (J.index 1 (J.member "xs" v) = J.Int 20);
  check_bool "missing member" true (J.member "nope" v = J.Null);
  check_bool "index out of range" true (J.index 5 (J.member "xs" v) = J.Null)

let test_of_property_value () =
  let module V = Graphql_pg.Value in
  check_bool "id becomes string" true (J.of_property_value (V.Id "u1") = J.String "u1");
  check_bool "enum becomes string" true (J.of_property_value (V.Enum "RED") = J.String "RED");
  check_bool "list" true
    (J.of_property_value (V.List [ V.Int 1; V.Bool false ]) = J.List [ J.Int 1; J.Bool false ])

(* property: print/parse round-trip *)
let json_gen =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         let atom =
           oneof
             [
               return J.Null;
               map (fun b -> J.Bool b) bool;
               map (fun i -> J.Int i) small_signed_int;
               map (fun f -> J.Float f) (float_bound_inclusive 1000.0);
               map (fun s -> J.String s) (small_string ~gen:printable);
             ]
         in
         if n <= 1 then atom
         else
           oneof
             [
               atom;
               map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 3)));
               map
                 (fun l -> J.Assoc (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) l))
                 (list_size (int_bound 4) (self (n / 3)));
             ])

let prop_round_trip =
  QCheck2.Test.make ~name:"JSON print/parse round-trip" ~count:300 json_gen (fun v ->
      match J.of_string (J.to_string v) with Ok v' -> J.equal v v' | Error _ -> false)

let prop_round_trip_indent =
  QCheck2.Test.make ~name:"JSON pretty print/parse round-trip" ~count:200 json_gen (fun v ->
      match J.of_string (J.to_string ~indent:true v) with
      | Ok v' -> J.equal v v'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "printing" `Quick test_printing;
    Alcotest.test_case "parsing" `Quick test_parsing;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "of_property_value" `Quick test_of_property_value;
    QCheck_alcotest.to_alcotest prop_round_trip;
    QCheck_alcotest.to_alcotest prop_round_trip_indent;
  ]
