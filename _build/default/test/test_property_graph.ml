(* Unit tests for the Property Graph model (Definition 2.1). *)

module G = Graphql_pg.Property_graph
module V = Graphql_pg.Value

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_graph () =
  let g = G.empty in
  let g, a = G.add_node g ~label:"A" ~props:[ ("x", V.Int 1) ] () in
  let g, b = G.add_node g ~label:"B" () in
  let g, e = G.add_edge g ~label:"r" ~props:[ ("w", V.Float 1.5) ] a b in
  (g, a, b, e)

let test_empty () =
  check_int "no nodes" 0 (G.node_count G.empty);
  check_int "no edges" 0 (G.edge_count G.empty)

let test_add_and_observe () =
  let g, a, b, e = small_graph () in
  check_int "two nodes" 2 (G.node_count g);
  check_int "one edge" 1 (G.edge_count g);
  Alcotest.(check string) "label a" "A" (G.node_label g a);
  Alcotest.(check string) "label e" "r" (G.edge_label g e);
  let src, tgt = G.edge_ends g e in
  check_bool "rho src" true (G.node_id src = G.node_id a);
  check_bool "rho tgt" true (G.node_id tgt = G.node_id b);
  check_bool "prop present" true (G.node_prop g a "x" = Some (V.Int 1));
  check_bool "prop absent (sigma partial)" true (G.node_prop g a "y" = None);
  check_bool "edge prop" true (G.edge_prop g e "w" = Some (V.Float 1.5))

let test_adjacency () =
  let g, a, b, e = small_graph () in
  check_bool "out a" true (List.map G.edge_id (G.out_edges g a) = [ G.edge_id e ]);
  check_bool "in b" true (List.map G.edge_id (G.in_edges g b) = [ G.edge_id e ]);
  check_bool "out b empty" true (G.out_edges g b = []);
  check_bool "in a empty" true (G.in_edges g a = [])

let test_adjacency_order () =
  let g, a = G.add_node G.empty ~label:"A" () in
  let g, b = G.add_node g ~label:"B" () in
  let g, e1 = G.add_edge g ~label:"r" a b in
  let g, e2 = G.add_edge g ~label:"s" a b in
  check_bool "insertion order" true
    (List.map G.edge_id (G.out_edges g a) = [ G.edge_id e1; G.edge_id e2 ])

let test_add_edge_unknown_endpoint () =
  let g, a = G.add_node G.empty ~label:"A" () in
  let g2, b = G.add_node g ~label:"B" () in
  ignore g2;
  (* b is not a node of g *)
  Alcotest.check_raises "unknown target" (Invalid_argument "Property_graph.add_edge: unknown target node")
    (fun () -> ignore (G.add_edge g ~label:"r" a b))

let test_set_remove_prop () =
  let g, a = G.add_node G.empty ~label:"A" () in
  let g = G.set_node_prop g a "p" (V.Bool true) in
  check_bool "set" true (G.node_prop g a "p" = Some (V.Bool true));
  let g = G.set_node_prop g a "p" (V.Bool false) in
  check_bool "overwrite" true (G.node_prop g a "p" = Some (V.Bool false));
  let g = G.remove_node_prop g a "p" in
  check_bool "removed" true (G.node_prop g a "p" = None);
  let g = G.remove_node_prop g a "p" in
  check_bool "idempotent" true (G.node_prop g a "p" = None)

let test_relabel () =
  let g, a = G.add_node G.empty ~label:"A" () in
  let g = G.relabel_node g a "Z" in
  Alcotest.(check string) "relabelled" "Z" (G.node_label g a)

let test_remove_edge () =
  let g, a, b, e = small_graph () in
  ignore b;
  let g = G.remove_edge g e in
  check_int "edge gone" 0 (G.edge_count g);
  check_bool "adjacency updated" true (G.out_edges g a = []);
  let g = G.remove_edge g e in
  check_int "idempotent" 0 (G.edge_count g)

let test_remove_node_cascades () =
  let g, a, b, e = small_graph () in
  ignore e;
  let g = G.remove_node g b in
  check_int "node gone" 1 (G.node_count g);
  check_int "incident edge gone" 0 (G.edge_count g);
  check_bool "out a updated" true (G.out_edges g a = [])

let test_persistence () =
  let g1, a = G.add_node G.empty ~label:"A" () in
  let g2 = G.set_node_prop g1 a "p" (V.Int 1) in
  check_bool "old version unchanged" true (G.node_prop g1 a "p" = None);
  check_bool "new version changed" true (G.node_prop g2 a "p" = Some (V.Int 1))

let test_equal () =
  let g1, _, _, _ = small_graph () in
  let g2, _, _, _ = small_graph () in
  check_bool "structurally equal" true (G.equal g1 g2);
  let g3, a, _, _ = small_graph () in
  let g3 = G.set_node_prop g3 a "x" (V.Int 2) in
  check_bool "prop change detected" false (G.equal g1 g3)

let test_node_of_id () =
  let g, a = G.add_node G.empty ~label:"A" () in
  check_bool "found" true (G.node_of_id g (G.node_id a) = Some a);
  check_bool "absent" true (G.node_of_id g 999 = None)

let test_builder () =
  let b = Graphql_pg.Builder.create () in
  let _ = Graphql_pg.Builder.node b "x" ~label:"A" () in
  let _ = Graphql_pg.Builder.node b "y" ~label:"B" () in
  let _ = Graphql_pg.Builder.edge b "x" "y" ~label:"r" () in
  let g = Graphql_pg.Builder.graph b in
  check_int "built nodes" 2 (G.node_count g);
  check_int "built edges" 1 (G.edge_count g);
  Alcotest.check_raises "duplicate handle" (Invalid_argument "Builder.node: duplicate handle \"x\"")
    (fun () -> ignore (Graphql_pg.Builder.node b "x" ~label:"A" ()));
  Alcotest.check_raises "unknown handle" Not_found (fun () ->
      ignore (Graphql_pg.Builder.edge b "x" "zzz" ~label:"r" ()))

let test_stats () =
  let g, _, _, _ = small_graph () in
  let s = Graphql_pg.Stats.compute g in
  check_int "nodes" 2 s.Graphql_pg.Stats.nodes;
  check_int "edges" 1 s.Graphql_pg.Stats.edges;
  check_int "max out" 1 s.Graphql_pg.Stats.max_out_degree;
  check_bool "label histogram" true
    (s.Graphql_pg.Stats.node_labels = [ ("A", 1); ("B", 1) ]);
  check_int "node props" 1 s.Graphql_pg.Stats.node_properties;
  check_int "edge props" 1 s.Graphql_pg.Stats.edge_properties

let suite =
  [
    Alcotest.test_case "empty graph" `Quick test_empty;
    Alcotest.test_case "add and observe" `Quick test_add_and_observe;
    Alcotest.test_case "adjacency indexes" `Quick test_adjacency;
    Alcotest.test_case "adjacency order" `Quick test_adjacency_order;
    Alcotest.test_case "add_edge rejects unknown endpoints" `Quick test_add_edge_unknown_endpoint;
    Alcotest.test_case "set/remove property" `Quick test_set_remove_prop;
    Alcotest.test_case "relabel" `Quick test_relabel;
    Alcotest.test_case "remove edge" `Quick test_remove_edge;
    Alcotest.test_case "remove node cascades" `Quick test_remove_node_cascades;
    Alcotest.test_case "persistence" `Quick test_persistence;
    Alcotest.test_case "structural equality" `Quick test_equal;
    Alcotest.test_case "node_of_id" `Quick test_node_of_id;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "stats" `Quick test_stats;
  ]
