(* Every numbered example of the paper's Section 3, executed as a test
   (experiments E1-E4 of DESIGN.md). *)

module G = Graphql_pg.Property_graph
module B = Graphql_pg.Builder
module V = Graphql_pg.Value
module Val = Graphql_pg.Validate
module Vi = Graphql_pg.Violation

let check_bool = Alcotest.(check bool)
let schema = Graphql_pg.schema_of_string_exn

let conforms sch g =
  let naive = (Val.check ~engine:Val.Naive sch g).Val.violations in
  let indexed = (Val.check ~engine:Val.Indexed sch g).Val.violations in
  check_bool "engines agree" true (List.equal Vi.equal naive indexed);
  naive = []

let violates rule sch g =
  List.mem rule (Val.violated_rules (Val.check sch g))

(* Example 3.1 (+3.4 @key, +3.12 edge properties) *)
let session_schema =
  schema
    {|
type UserSession {
  id: ID! @required
  user(certainty: Float! comment: String): User! @required
  startTime: Time! @required
  endTime: Time!
}
type User @key(fields: ["id"]) {
  id: ID! @required
  login: String! @required
  nicknames: [String!]!
}
scalar Time
|}

(* Example 3.3: the allowed properties of User and UserSession nodes *)
let test_example_3_3 () =
  let b = B.create () in
  let _ =
    B.node b "u" ~label:"User"
      ~props:
        [
          ("id", V.Id "u1");
          ("login", V.String "alice");
          ("nicknames", V.List [ V.String "al"; V.String "lissa" ]);
        ]
      ()
  in
  let _ =
    B.node b "s" ~label:"UserSession"
      ~props:[ ("id", V.Id "s1"); ("startTime", V.String "t0") ]
      ()
  in
  let _ = B.edge b "s" "u" ~label:"user" ~props:[ ("certainty", V.Float 1.0) ] () in
  check_bool "mandatory + optional properties accepted" true
    (conforms session_schema (B.graph b));
  (* "login" is mandatory *)
  let b2 = B.create () in
  let _ = B.node b2 "u" ~label:"User" ~props:[ ("id", V.Id "u1") ] () in
  check_bool "missing login violates DS5" true
    (violates Vi.DS5 session_schema (B.graph b2));
  (* "nicknames" must be an array of strings *)
  let b3 = B.create () in
  let _ =
    B.node b3 "u" ~label:"User"
      ~props:
        [ ("id", V.Id "u"); ("login", V.String "l"); ("nicknames", V.String "not-a-list") ]
      ()
  in
  check_bool "nicknames must be an array" true (violates Vi.WS1 session_schema (B.graph b3))

(* Example 3.4: both "id" keys *)
let test_example_3_4 () =
  let two_users id1 id2 =
    let b = B.create () in
    let mk h id =
      ignore
        (B.node b h ~label:"User" ~props:[ ("id", V.Id id); ("login", V.String h) ] ())
    in
    mk "u1" id1;
    mk "u2" id2;
    B.graph b
  in
  check_bool "distinct ids fine" true (conforms session_schema (two_users "a" "b"));
  check_bool "equal ids collide" true
    (violates Vi.DS7 session_schema (two_users "same" "same"))

(* Example 3.5: every UserSession has exactly one user edge *)
let test_example_3_5 () =
  let b = B.create () in
  let _ =
    B.node b "s" ~label:"UserSession"
      ~props:[ ("id", V.Id "s"); ("startTime", V.String "t") ]
      ()
  in
  check_bool "missing user edge" true (violates Vi.DS6 session_schema (B.graph b));
  let b2 = B.create () in
  let _ =
    B.node b2 "s" ~label:"UserSession"
      ~props:[ ("id", V.Id "s"); ("startTime", V.String "t") ]
      ()
  in
  let mk h =
    ignore
      (B.node b2 h ~label:"User" ~props:[ ("id", V.Id h); ("login", V.String h) ] ())
  in
  mk "u1";
  mk "u2";
  let _ = B.edge b2 "s" "u1" ~label:"user" ~props:[ ("certainty", V.Float 1.0) ] () in
  let _ = B.edge b2 "s" "u2" ~label:"user" ~props:[ ("certainty", V.Float 1.0) ] () in
  check_bool "two user edges violate WS4" true (violates Vi.WS4 session_schema (B.graph b2))

(* Example 3.6: books and authors *)
let book_schema =
  schema
    {|
type Author {
  favoriteBook: Book
  relatedAuthor: [Author] @distinct @noLoops
}
type Book {
  title: String!
  author: [Author] @required @distinct
}
|}

let test_example_3_6 () =
  (* an Author with no outgoing edges is fine *)
  let g, _ = G.add_node G.empty ~label:"Author" () in
  check_bool "lonely author ok" true (conforms book_schema g);
  (* a Book must have at least one author *)
  let g2, _ = G.add_node G.empty ~label:"Book" ~props:[ ("title", V.String "t") ] () in
  check_bool "authorless book" true (violates Vi.DS6 book_schema g2);
  (* at most one favoriteBook *)
  let b = B.create () in
  let _ = B.node b "a" ~label:"Author" () in
  let _ = B.node b "b1" ~label:"Book" ~props:[ ("title", V.String "x") ] () in
  let _ = B.node b "b2" ~label:"Book" ~props:[ ("title", V.String "y") ] () in
  let _ = B.edge b "a" "b1" ~label:"favoriteBook" () in
  let _ = B.edge b "a" "b2" ~label:"favoriteBook" () in
  let _ = B.edge b "b1" "a" ~label:"author" () in
  let _ = B.edge b "b2" "a" ~label:"author" () in
  check_bool "two favorites violate WS4" true (violates Vi.WS4 book_schema (B.graph b))

(* Example 3.7: @distinct and @noLoops *)
let test_example_3_7 () =
  let b = B.create () in
  let _ = B.node b "a1" ~label:"Author" () in
  let _ = B.node b "a2" ~label:"Author" () in
  let _ = B.edge b "a1" "a2" ~label:"relatedAuthor" () in
  let _ = B.edge b "a1" "a2" ~label:"relatedAuthor" () in
  check_bool "duplicate relatedAuthor violates DS1" true
    (violates Vi.DS1 book_schema (B.graph b));
  let b2 = B.create () in
  let _ = B.node b2 "a" ~label:"Author" () in
  let _ = B.edge b2 "a" "a" ~label:"relatedAuthor" () in
  check_bool "self relatedAuthor violates DS2" true
    (violates Vi.DS2 book_schema (B.graph b2))

(* Example 3.8: BookSeries/Publisher with target-side constraints *)
let series_schema =
  schema
    {|
type Book {
  title: String!
}
type BookSeries {
  contains: [Book] @required @uniqueForTarget
}
type Publisher {
  published: [Book] @uniqueForTarget @requiredForTarget
}
|}

let test_example_3_8 () =
  (* every Book needs exactly one incoming published edge *)
  let b = B.create () in
  let _ = B.node b "bk" ~label:"Book" ~props:[ ("title", V.String "t") ] () in
  check_bool "book without publisher violates DS4" true
    (violates Vi.DS4 series_schema (B.graph b));
  let b2 = B.create () in
  let _ = B.node b2 "bk" ~label:"Book" ~props:[ ("title", V.String "t") ] () in
  let _ = B.node b2 "p1" ~label:"Publisher" () in
  let _ = B.node b2 "p2" ~label:"Publisher" () in
  let _ = B.edge b2 "p1" "bk" ~label:"published" () in
  let _ = B.edge b2 "p2" "bk" ~label:"published" () in
  check_bool "two publishers violate DS3" true (violates Vi.DS3 series_schema (B.graph b2));
  (* at most one incoming contains, but zero is fine *)
  let b3 = B.create () in
  let _ = B.node b3 "bk" ~label:"Book" ~props:[ ("title", V.String "t") ] () in
  let _ = B.node b3 "p" ~label:"Publisher" () in
  let _ = B.edge b3 "p" "bk" ~label:"published" () in
  check_bool "no series needed" true (conforms series_schema (B.graph b3))

(* Examples 3.9/3.10: union and interface targets are interchangeable *)
let union_schema =
  schema
    {|
type Person {
  name: String!
  favoriteFood: Food
}
union Food = Pizza | Pasta
type Pizza { name: String! toppings: [String!]! }
type Pasta { name: String! }
|}

let interface_schema =
  schema
    {|
type Person {
  name: String!
  favoriteFood: Food
}
interface Food { name: String! }
type Pizza implements Food { name: String! toppings: [String!]! }
type Pasta implements Food { name: String! }
|}

let test_examples_3_9_and_3_10 () =
  let favorite target_label =
    let b = B.create () in
    let _ = B.node b "p" ~label:"Person" ~props:[ ("name", V.String "p") ] () in
    let _ = B.node b "f" ~label:target_label ~props:[ ("name", V.String "f") ] () in
    let _ = B.edge b "p" "f" ~label:"favoriteFood" () in
    B.graph b
  in
  List.iter
    (fun (name, sch) ->
      check_bool (name ^ ": pizza ok") true (conforms sch (favorite "Pizza"));
      check_bool (name ^ ": pasta ok") true (conforms sch (favorite "Pasta"));
      check_bool (name ^ ": person target rejected") true
        (violates Vi.WS3 sch
           (let b = B.create () in
            let _ = B.node b "p" ~label:"Person" ~props:[ ("name", V.String "p") ] () in
            let _ = B.node b "q" ~label:"Person" ~props:[ ("name", V.String "q") ] () in
            let _ = B.edge b "p" "q" ~label:"favoriteFood" () in
            B.graph b)))
    [ ("union", union_schema); ("interface", interface_schema) ]

(* Example 3.11: multiple source types for the same edge label *)
let test_example_3_11 () =
  let sch =
    schema
      {|
type Person { name: String! }
type Car { brand: String! owner: Person }
type Motorcycle { brand: String! owner: Person }
|}
  in
  let b = B.create () in
  let _ = B.node b "p" ~label:"Person" ~props:[ ("name", V.String "p") ] () in
  let _ = B.node b "c" ~label:"Car" ~props:[ ("brand", V.String "b") ] () in
  let _ = B.node b "m" ~label:"Motorcycle" ~props:[ ("brand", V.String "b") ] () in
  let _ = B.edge b "c" "p" ~label:"owner" () in
  let _ = B.edge b "m" "p" ~label:"owner" () in
  check_bool "owner edges from both types" true (conforms sch (B.graph b))

(* Example 3.12: mandatory and optional edge properties.  Note the formal
   rules of Section 5 never force an edge property to be present (WS2 only
   type-checks present ones) — the mandatory reading of Section 3.5 has no
   corresponding DS rule, which we document as a gap; here we check what
   the formal semantics does say. *)
let test_example_3_12 () =
  let graph_with_edge_props props =
    let b = B.create () in
    let _ =
      B.node b "s" ~label:"UserSession"
        ~props:[ ("id", V.Id "s"); ("startTime", V.String "t") ]
        ()
    in
    let _ =
      B.node b "u" ~label:"User" ~props:[ ("id", V.Id "u"); ("login", V.String "l") ] ()
    in
    let _ = B.edge b "s" "u" ~label:"user" ~props () in
    B.graph b
  in
  check_bool "typed certainty accepted" true
    (conforms session_schema (graph_with_edge_props [ ("certainty", V.Float 0.9) ]));
  check_bool "ill-typed certainty rejected" true
    (violates Vi.WS2 session_schema (graph_with_edge_props [ ("certainty", V.String "high") ]));
  check_bool "optional comment accepted" true
    (conforms session_schema
       (graph_with_edge_props [ ("certainty", V.Float 0.9); ("comment", V.String "hi") ]));
  check_bool "undeclared edge property rejected" true
    (violates Vi.SS3 session_schema
       (graph_with_edge_props [ ("certainty", V.Float 0.9); ("oops", V.Int 1) ]));
  (* the gap: a missing mandatory (non-null) edge property passes *)
  check_bool "missing certainty passes the formal rules (documented gap)" true
    (conforms session_schema (graph_with_edge_props []))

(* Section 3.3: the cardinality table *)
let test_cardinality_table () =
  let variant body = schema (Printf.sprintf "type A { rel: %s }\ntype B {\n}\n" body) in
  let probe sch ~fan_out ~fan_in =
    let mk edges sources targets =
      let b = B.create () in
      for i = 1 to sources do
        ignore (B.node b (Printf.sprintf "a%d" i) ~label:"A" ())
      done;
      for j = 1 to targets do
        ignore (B.node b (Printf.sprintf "b%d" j) ~label:"B" ())
      done;
      List.iter
        (fun (i, j) ->
          ignore
            (B.edge b (Printf.sprintf "a%d" i) (Printf.sprintf "b%d" j) ~label:"rel" ()))
        edges;
      B.graph b
    in
    let out_ok = conforms sch (mk [ (1, 1); (1, 2) ] 1 2) in
    let in_ok = conforms sch (mk [ (1, 1); (2, 1) ] 2 1) in
    check_bool "fan-out" fan_out out_ok;
    check_bool "fan-in" fan_in in_ok
  in
  (* 1:1 — rel: B @uniqueForTarget: neither side may fan *)
  probe (variant "B @uniqueForTarget") ~fan_out:false ~fan_in:false;
  (* 1:N — rel: B: source bounded, target free *)
  probe (variant "B") ~fan_out:false ~fan_in:true;
  (* N:1 — rel: [B] @uniqueForTarget: source free, target bounded *)
  probe (variant "[B] @uniqueForTarget") ~fan_out:true ~fan_in:false;
  (* N:M — rel: [B]: both free *)
  probe (variant "[B]") ~fan_out:true ~fan_in:true

let suite =
  [
    Alcotest.test_case "Example 3.3: node properties" `Quick test_example_3_3;
    Alcotest.test_case "Example 3.4: keys" `Quick test_example_3_4;
    Alcotest.test_case "Example 3.5: exactly one user edge" `Quick test_example_3_5;
    Alcotest.test_case "Example 3.6: cardinalities" `Quick test_example_3_6;
    Alcotest.test_case "Example 3.7: @distinct/@noLoops" `Quick test_example_3_7;
    Alcotest.test_case "Example 3.8: target-side constraints" `Quick test_example_3_8;
    Alcotest.test_case "Examples 3.9/3.10: union = interface targets" `Quick
      test_examples_3_9_and_3_10;
    Alcotest.test_case "Example 3.11: multiple source types" `Quick test_example_3_11;
    Alcotest.test_case "Example 3.12: edge properties" `Quick test_example_3_12;
    Alcotest.test_case "Section 3.3: cardinality table" `Quick test_cardinality_table;
  ]
