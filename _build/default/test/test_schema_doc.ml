(* Markdown documentation generator. *)

module D = Graphql_pg.Schema_doc
module S = Graphql_pg.Schema

let check_bool = Alcotest.(check bool)

let contains needle haystack =
  let n = String.length needle and l = String.length haystack in
  let rec go i = i + n <= l && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let sch = Graphql_pg.Social.schema ()
let md = D.to_markdown sch

let test_sections () =
  List.iter
    (fun s -> check_bool s true (contains s md))
    [
      "# Schema documentation";
      "## type Person";
      "## type Forum";
      "## Interfaces";
      "## Unions";
      "## Enums";
      "## Custom scalars";
    ]

let test_content () =
  check_bool "key listed" true (contains "- key: [id]" md);
  check_bool "union members" true (contains "`Content` = `Post` | `Comment`" md);
  check_bool "interface implementations" true
    (contains "`Message` implemented by `Comment`, `Post`" md);
  check_bool "enum values" true (contains "`Browser`: CHROME, FIREFOX, SAFARI, OTHER" md);
  check_bool "custom scalar" true (contains "- `DateTime`" md);
  check_bool "edge property column" true (contains "`joined: DateTime`" md);
  check_bool "description carried" true (contains "Timestamps in ISO-8601" md)

let test_cardinality_labels () =
  let field t f =
    match S.field sch t f with Some fd -> fd | None -> Alcotest.failf "missing %s.%s" t f
  in
  Alcotest.(check string) "moderator" "1:1 (source mandatory)"
    (D.cardinality_label sch "Forum" (field "Forum" "moderator"));
  Alcotest.(check string) "containerOf" "N:1 (target mandatory)"
    (D.cardinality_label sch "Forum" (field "Forum" "containerOf"));
  Alcotest.(check string) "knows" "N:M"
    (D.cardinality_label sch "Person" (field "Person" "knows"));
  Alcotest.(check string) "livesIn" "1:N (source mandatory, target mandatory)"
    (D.cardinality_label sch "Person" (field "Person" "livesIn"))

let suite =
  [
    Alcotest.test_case "sections" `Quick test_sections;
    Alcotest.test_case "content" `Quick test_content;
    Alcotest.test_case "cardinality labels" `Quick test_cardinality_labels;
  ]
