(* Schema model tests (Definition 4.1): lookup helpers, classification,
   directive accessors, and the formal extraction of Example 4.2. *)

module S = Graphql_pg.Schema
module W = Graphql_pg.Wrapped
module Ast = Graphql_pg.Sdl.Ast
module Sm = Map.Make (String)

let check_bool = Alcotest.(check bool)

let person_schema () =
  Graphql_pg.schema_of_string_exn
    {|
type Person {
  name: String!
  favoriteFood: Food
}
union Food = Pizza | Pasta
type Pizza {
  name: String!
  toppings: [String!]!
}
type Pasta {
  name: String!
}
|}

(* Example 4.2: the formal schema extracted from Example 3.9. *)
let test_example_4_2 () =
  let sch = person_schema () in
  (* OT = {Person, Pizza, Pasta} *)
  check_bool "OT" true (S.object_names sch = [ "Pasta"; "Person"; "Pizza" ]);
  check_bool "IT empty" true (S.interface_names sch = []);
  check_bool "UT" true (S.union_names sch = [ "Food" ]);
  (* typeF assignments *)
  check_bool "(Person, name)" true (S.type_f sch "Person" "name" = Some (W.Non_null "String"));
  check_bool "(Person, favoriteFood)" true
    (S.type_f sch "Person" "favoriteFood" = Some (W.Named "Food"));
  check_bool "(Pizza, toppings)" true
    (S.type_f sch "Pizza" "toppings"
    = Some (W.List { item = "String"; item_non_null = true; non_null = true }));
  check_bool "(Pasta, name)" true (S.type_f sch "Pasta" "name" = Some (W.Non_null "String"));
  check_bool "undefined combination" true (S.type_f sch "Pasta" "toppings" = None);
  (* unionS *)
  check_bool "unionS(Food)" true (S.union_members sch "Food" = [ "Pizza"; "Pasta" ]);
  (* implementationS empty *)
  check_bool "implementationS" true (S.implementations_of sch "Food" = [])

let test_fields_and_args () =
  let sch =
    Graphql_pg.schema_of_string_exn
      "type A { f(x: Int y: [String!]): B g: Int }\ntype B { z: ID }"
  in
  check_bool "fieldsS(A)" true (List.map fst (S.fields sch "A") = [ "f"; "g" ]);
  check_bool "argsS(A, f)" true (List.map fst (S.args sch "A" "f") = [ "x"; "y" ]);
  check_bool "argsS(A, g) empty" true (S.args sch "A" "g" = []);
  check_bool "typeAF" true (S.arg_type sch "A" "f" "x" = Some (W.Named "Int"));
  check_bool "typeAF wrapped" true
    (S.arg_type sch "A" "f" "y" = Some (W.List { item = "String"; item_non_null = true; non_null = false }));
  check_bool "unknown arg" true (S.arg_type sch "A" "f" "zz" = None)

let test_type_kinds () =
  let sch =
    Graphql_pg.schema_of_string_exn
      {|
type A { x: Int }
interface I { x: Int }
union U = A
enum E { V }
scalar Sc
|}
  in
  check_bool "object" true (S.type_kind sch "A" = Some S.Object);
  check_bool "interface" true (S.type_kind sch "I" = Some S.Interface);
  check_bool "union" true (S.type_kind sch "U" = Some S.Union);
  check_bool "enum" true (S.type_kind sch "E" = Some S.Enum);
  check_bool "custom scalar" true (S.type_kind sch "Sc" = Some S.Scalar);
  check_bool "builtin scalar" true (S.type_kind sch "Int" = Some S.Scalar);
  check_bool "unknown" true (S.type_kind sch "Nope" = None);
  check_bool "scalar-like enum" true (S.is_scalar_like sch "E");
  check_bool "composite union" true (S.is_composite sch "U");
  check_bool "not composite scalar" false (S.is_composite sch "Sc")

let test_classification () =
  let sch =
    Graphql_pg.schema_of_string_exn
      {|
type A {
  attr1: Int
  attr2: [E!]
  rel1: B!
  rel2: [U]
  rel3: I
}
type B { x: Int }
interface I { x: Int }
union U = A | B
enum E { V }
|}
  in
  let classify f =
    match S.field sch "A" f with
    | Some fd -> S.classify_field sch fd
    | None -> Alcotest.failf "missing field %s" f
  in
  check_bool "scalar attr" true (classify "attr1" = Some S.Attribute);
  check_bool "enum list attr" true (classify "attr2" = Some S.Attribute);
  check_bool "object rel" true (classify "rel1" = Some S.Relationship);
  check_bool "union rel" true (classify "rel2" = Some S.Relationship);
  check_bool "interface rel" true (classify "rel3" = Some S.Relationship)

let test_directive_accessors () =
  let sch =
    Graphql_pg.schema_of_string_exn
      {|type A @key(fields: ["x"]) @key(fields: ["y", "z"]) { x: ID @required y: ID z: ID }|}
  in
  let ot = Sm.find "A" sch.S.objects in
  let keys = S.find_directives ot.S.ot_directives "key" in
  Alcotest.(check int) "two keys" 2 (List.length keys);
  check_bool "first key fields" true (S.key_fields (List.hd keys) = Some [ "x" ]);
  check_bool "second key fields" true (S.key_fields (List.nth keys 1) = Some [ "y"; "z" ]);
  let x = Option.get (S.field sch "A" "x") in
  check_bool "has_directive" true (S.has_directive x.S.fd_directives "required");
  check_bool "no directive" false (S.has_directive x.S.fd_directives "distinct")

let test_implementations_derived () =
  let sch =
    Graphql_pg.schema_of_string_exn
      {|
interface I { x: Int }
type A implements I { x: Int }
type B implements I { x: Int }
type C { y: Int }
|}
  in
  check_bool "implementations" true (S.implementations_of sch "I" = [ "A"; "B" ]);
  check_bool "non-interface" true (S.implementations_of sch "C" = [])

let test_standard_directives_predeclared () =
  let sch = S.empty in
  List.iter
    (fun d -> check_bool ("declared " ^ d) true (S.directive_args sch d <> None))
    [ "required"; "distinct"; "noLoops"; "uniqueForTarget"; "requiredForTarget"; "key"; "deprecated" ];
  (* @key has fields: [String!]! *)
  match S.directive_args sch "key" with
  | Some [ ("fields", arg) ] ->
    check_bool "key fields type" true
      (arg.S.arg_type = W.List { item = "String"; item_non_null = true; non_null = true })
  | _ -> Alcotest.fail "expected one declared argument on @key"

let test_size_monotone () =
  let small = Graphql_pg.schema_of_string_exn "type A { x: Int }" in
  let bigger = Graphql_pg.schema_of_string_exn "type A { x: Int y: Int }\ntype B { z: A }" in
  check_bool "size grows" true (S.size bigger > S.size small)

let suite =
  [
    Alcotest.test_case "Example 4.2 formal extraction" `Quick test_example_4_2;
    Alcotest.test_case "fieldsS and argsS" `Quick test_fields_and_args;
    Alcotest.test_case "type kinds" `Quick test_type_kinds;
    Alcotest.test_case "attribute/relationship classification" `Quick test_classification;
    Alcotest.test_case "directive accessors" `Quick test_directive_accessors;
    Alcotest.test_case "implementations derived" `Quick test_implementations_derived;
    Alcotest.test_case "standard directives predeclared" `Quick
      test_standard_directives_predeclared;
    Alcotest.test_case "size monotone" `Quick test_size_monotone;
  ]
