(* Graph repair: corrupted graphs are brought back to strong satisfaction. *)

module G = Graphql_pg.Property_graph
module V = Graphql_pg.Value
module MS = Graphql_pg.Model_search
module Val = Graphql_pg.Validate
module Vi = Graphql_pg.Violation

let check_bool = Alcotest.(check bool)

let test_already_valid () =
  let sch = Graphql_pg.Social.schema () in
  let g = Graphql_pg.Social.generate ~persons:10 () in
  match MS.repair sch g with
  | Some g' ->
    check_bool "unchanged size" true (G.node_count g' = G.node_count g);
    check_bool "still valid" true (Val.conforms sch g')
  | None -> Alcotest.fail "repair lost a valid graph"

let test_sanitize_unjustified () =
  let sch = Graphql_pg.schema_of_string_exn "type A { name: String r: [B] }\ntype B { x: Int }" in
  let g, a = G.add_node G.empty ~label:"A" ~props:[ ("junk", V.Int 1) ] () in
  let g, z = G.add_node g ~label:"Zombie" () in
  let g, b = G.add_node g ~label:"B" () in
  let g, _ = G.add_edge g ~label:"bogus" a b in
  let g, e = G.add_edge g ~label:"r" a b in
  let g = G.set_edge_prop g e "w" (V.Int 1) in
  let g = G.set_node_prop g a "name" (V.Bool true) in
  ignore z;
  match MS.repair sch g with
  | Some g' ->
    check_bool "conforms" true (Val.conforms sch g');
    check_bool "zombie removed" true
      (List.for_all (fun v -> G.node_label g' v <> "Zombie") (G.nodes g'));
    check_bool "justified edge kept" true
      (List.exists (fun e -> G.edge_label g' e = "r") (G.edges g'))
  | None -> Alcotest.fail "repair failed"

let per_rule_repair rule =
  let name = Printf.sprintf "repair after %s corruption" (Vi.rule_name rule) in
  QCheck2.Test.make ~name ~count:15
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sch = Graphql_pg.Social.schema () in
      let g = Graphql_pg.Social.generate ~seed:(seed mod 89) ~persons:10 () in
      let rng = Random.State.make [| seed |] in
      match Graphql_pg.Corruption.mutate rule sch rng g with
      | None -> QCheck2.assume_fail ()
      | Some corrupted -> (
        match MS.repair ~max_nodes:128 sch corrupted with
        | Some repaired -> Val.conforms sch repaired
        | None -> false))

let suite =
  [
    Alcotest.test_case "valid graphs pass through" `Quick test_already_valid;
    Alcotest.test_case "sanitation removes unjustified data" `Quick test_sanitize_unjustified;
  ]
  @ List.map (fun rule -> QCheck_alcotest.to_alcotest (per_rule_repair rule)) Vi.all_rules
