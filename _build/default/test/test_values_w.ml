(* values / valuesW semantics (Section 4.1). *)

module VW = Graphql_pg.Values_w
module W = Graphql_pg.Wrapped
module V = Graphql_pg.Value
module Ast = Graphql_pg.Sdl.Ast

let check_bool = Alcotest.(check bool)

let sch =
  lazy
    (Graphql_pg.schema_of_string_exn
       {|
enum Color { RED GREEN BLUE }
scalar Time
type A { x: Int }
|})

let test_builtin_scalars () =
  let sch = Lazy.force sch in
  let mem t v = VW.scalar_mem sch t v in
  check_bool "Int yes" true (mem "Int" (V.Int 5));
  check_bool "Int no string" false (mem "Int" (V.String "5"));
  check_bool "Int 32-bit bound" false (mem "Int" (V.Int 2147483648));
  check_bool "Int 32-bit min" true (mem "Int" (V.Int (-2147483648)));
  check_bool "Float accepts float" true (mem "Float" (V.Float 1.5));
  check_bool "Float accepts int (input coercion)" true (mem "Float" (V.Int 2));
  check_bool "String" true (mem "String" (V.String "x"));
  check_bool "String no bool" false (mem "String" (V.Bool true));
  check_bool "Boolean" true (mem "Boolean" (V.Bool false));
  check_bool "ID id" true (mem "ID" (V.Id "u1"));
  check_bool "ID string" true (mem "ID" (V.String "u1"));
  check_bool "ID int" true (mem "ID" (V.Int 7));
  check_bool "ID no float" false (mem "ID" (V.Float 1.0))

let test_enum () =
  let sch = Lazy.force sch in
  check_bool "declared symbol" true (VW.scalar_mem sch "Color" (V.Enum "RED"));
  check_bool "undeclared symbol" false (VW.scalar_mem sch "Color" (V.Enum "MAUVE"));
  check_bool "string is not enum" false (VW.scalar_mem sch "Color" (V.String "RED"))

let test_custom_scalar_open_world () =
  let sch = Lazy.force sch in
  check_bool "any atomic accepted" true (VW.scalar_mem sch "Time" (V.String "2019-06-30"));
  check_bool "ints too" true (VW.scalar_mem sch "Time" (V.Int 3));
  check_bool "lists rejected" false (VW.scalar_mem sch "Time" (V.List [ V.Int 1 ]))

let test_registered_semantics () =
  let sch = Lazy.force sch in
  let env =
    VW.register VW.default_env "Time" (function
      | V.String s -> String.length s >= 10
      | _ -> false)
  in
  check_bool "predicate accepts" true (VW.scalar_mem ~env sch "Time" (V.String "2019-06-30"));
  check_bool "predicate rejects" false (VW.scalar_mem ~env sch "Time" (V.String "nope"));
  check_bool "predicate rejects ints" false (VW.scalar_mem ~env sch "Time" (V.Int 3))

let test_non_scalar_names () =
  let sch = Lazy.force sch in
  check_bool "object type has no values" false (VW.scalar_mem sch "A" (V.String "x"));
  check_bool "unknown type" false (VW.scalar_mem sch "Nope" (V.Int 1))

let test_wrapped_membership () =
  let sch = Lazy.force sch in
  let lt ?(inn = false) ?(nn = false) item = W.List { item; item_non_null = inn; non_null = nn } in
  check_bool "named" true (VW.mem sch (W.Named "Int") (V.Int 1));
  check_bool "non-null same check for stored values" true (VW.mem sch (W.Non_null "Int") (V.Int 1));
  check_bool "list of strings" true
    (VW.mem sch (lt "String") (V.List [ V.String "a"; V.String "b" ]));
  check_bool "empty list ok for WS1" true (VW.mem sch (lt "String") (V.List []));
  check_bool "atom for list type rejected" false (VW.mem sch (lt "String") (V.String "a"));
  check_bool "list for atom type rejected" false (VW.mem sch (W.Named "String") (V.List []));
  check_bool "heterogeneous list rejected" false
    (VW.mem sch (lt "String") (V.List [ V.String "a"; V.Int 1 ]));
  check_bool "list of enums" true (VW.mem sch (lt "Color") (V.List [ V.Enum "BLUE" ]))

let test_ast_membership_null () =
  let sch = Lazy.force sch in
  let lt ?(inn = false) ?(nn = false) item = W.List { item; item_non_null = inn; non_null = nn } in
  check_bool "null in nullable" true (VW.ast_mem sch (W.Named "Int") Ast.Null_value);
  check_bool "null not in non-null" false (VW.ast_mem sch (W.Non_null "Int") Ast.Null_value);
  check_bool "null ok for plain list" true (VW.ast_mem sch (lt "Int") Ast.Null_value);
  check_bool "null not in non-null list" false (VW.ast_mem sch (lt ~nn:true "Int") Ast.Null_value);
  check_bool "null element in list of nullable" true
    (VW.ast_mem sch (lt "Int") (Ast.List_value [ Ast.Int_value 1; Ast.Null_value ]));
  check_bool "null element rejected in [Int!]" false
    (VW.ast_mem sch (lt ~inn:true "Int") (Ast.List_value [ Ast.Null_value ]));
  check_bool "object value never scalar" false
    (VW.ast_mem sch (W.Named "String") (Ast.Object_value []))

let test_value_conversions () =
  check_bool "round-trip int" true (VW.value_of_ast (Ast.Int_value 3) = Some (V.Int 3));
  check_bool "null is not storable" true (VW.value_of_ast Ast.Null_value = None);
  check_bool "object not storable" true (VW.value_of_ast (Ast.Object_value []) = None);
  check_bool "list with null not storable" true
    (VW.value_of_ast (Ast.List_value [ Ast.Null_value ]) = None);
  check_bool "ast_of_value embeds" true
    (VW.ast_of_value (V.List [ V.Enum "X" ]) = Ast.List_value [ Ast.Enum_value "X" ])

let suite =
  [
    Alcotest.test_case "built-in scalars" `Quick test_builtin_scalars;
    Alcotest.test_case "enum types" `Quick test_enum;
    Alcotest.test_case "custom scalars are open-world" `Quick test_custom_scalar_open_world;
    Alcotest.test_case "registered scalar semantics" `Quick test_registered_semantics;
    Alcotest.test_case "non-scalar names" `Quick test_non_scalar_names;
    Alcotest.test_case "wrapped membership (valuesW)" `Quick test_wrapped_membership;
    Alcotest.test_case "null handling for directive arguments" `Quick test_ast_membership_null;
    Alcotest.test_case "value conversions" `Quick test_value_conversions;
  ]
