(* Object-type satisfiability (Section 6.2): translation, counting,
   model search, the Example 6.1 schemas, and the Theorem 2 reduction
   cross-checked against DPLL. *)

module Sat = Graphql_pg.Satisfiability
module T = Graphql_pg.Tableau
module Counting = Graphql_pg.Counting
module MS = Graphql_pg.Model_search
module Val = Graphql_pg.Validate
module G = Graphql_pg.Property_graph

let check_bool = Alcotest.(check bool)

let schema = Graphql_pg.schema_of_string_exn

let lenient src =
  match Graphql_pg.Of_ast.parse_lenient src with
  | Ok sch -> sch
  | Error msg -> Alcotest.failf "parse: %s" msg

let finite sch ot = (Sat.check ~max_nodes:10 sch ot).Sat.finite
let alcqi sch ot = (Sat.check ~max_nodes:10 sch ot).Sat.alcqi

let test_trivial () =
  let sch = schema "type A { x: Int }" in
  check_bool "plain type satisfiable" true (finite sch "A" = T.Satisfiable);
  check_bool "alcqi agrees" true (alcqi sch "A" = T.Satisfiable)

let test_witnesses_conform () =
  let sch = Graphql_pg.Social.schema () in
  List.iter
    (fun (ot, report) ->
      check_bool (ot ^ " satisfiable") true (report.Sat.finite = T.Satisfiable);
      match report.Sat.witness with
      | Some g ->
        check_bool (ot ^ " witness conforms") true (Val.conforms sch g);
        check_bool (ot ^ " witness populates the type") true
          (List.exists (fun v -> G.node_label g v = ot) (G.nodes g))
      | None -> Alcotest.failf "%s: satisfiable but no witness" ot)
    (Sat.check_all ~max_nodes:32 sch)

(* --- Example 6.1 --- *)

let example_a =
  {|
type OT1 {
}
interface IT { hasOT1: OT1 @uniqueForTarget }
type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
|}

let example_b =
  {|
interface IT { f: OT1 @uniqueForTarget }
type OT2 implements IT { f: OT1! @required }
type OT3 implements IT { f: OT1! @required }
type OT1 { g: OT3! @required @uniqueForTarget }
|}

let example_c =
  {|
type OT1 {
}
interface IT { f: OT1 @uniqueForTarget }
type OT2 implements IT { f: OT1! @required }
type OT3 implements IT { f: [OT1] @requiredForTarget }
|}

let test_example_a () =
  let sch = lenient example_a in
  check_bool "OT1 unsatisfiable (the paper's conflict)" true
    (finite sch "OT1" = T.Unsatisfiable);
  check_bool "OT1 already unsatisfiable in ALCQI" true (alcqi sch "OT1" = T.Unsatisfiable);
  check_bool "OT2 satisfiable" true (finite sch "OT2" = T.Satisfiable);
  check_bool "OT3 satisfiable" true (finite sch "OT3" = T.Satisfiable)

let test_example_b_finite_gap () =
  let sch = lenient example_b in
  (* the chain schema: satisfiable in ALCQI (infinite model), but no
     finite Property Graph — the gap in the paper's Theorem 3 proof *)
  check_bool "OT2 ALCQI-satisfiable" true (alcqi sch "OT2" = T.Satisfiable);
  check_bool "OT2 finitely unsatisfiable" true (finite sch "OT2" = T.Unsatisfiable);
  check_bool "counting system infeasible" true (Counting.check sch "OT2" = Counting.Infeasible);
  check_bool "OT1 satisfiable" true (finite sch "OT1" = T.Satisfiable);
  check_bool "OT3 satisfiable" true (finite sch "OT3" = T.Satisfiable)

let test_example_c () =
  let sch = lenient example_c in
  check_bool "OT2 unsatisfiable" true (finite sch "OT2" = T.Unsatisfiable);
  check_bool "OT2 unsatisfiable in ALCQI too" true (alcqi sch "OT2" = T.Unsatisfiable);
  check_bool "OT1 satisfiable" true (finite sch "OT1" = T.Satisfiable);
  check_bool "OT3 satisfiable" true (finite sch "OT3" = T.Satisfiable)

let test_unsatisfiable_types_listing () =
  let sch = lenient example_a in
  check_bool "lists OT1" true (Sat.unsatisfiable_types ~max_nodes:8 sch = [ "OT1" ])

(* --- edge-definition satisfiability (end of Section 6.2): add @required
   and test the declaring type --- *)
let test_edge_definition_satisfiability () =
  let sch =
    lenient
      {|
type OT1 {
}
interface IT { f: OT1 @uniqueForTarget }
type OT2 implements IT { f: OT1! @required }
type OT3 implements IT { f: [OT1] @requiredForTarget }
|}
  in
  (* (OT2, f) is populated in no conforming graph, because OT2 itself is
     unsatisfiable *)
  check_bool "edge definition unsatisfiable via type" true
    (finite sch "OT2" = T.Unsatisfiable)

(* --- counting engine --- *)

let test_counting_feasible_cases () =
  let sch = schema "type A { x: Int }" in
  check_bool "trivial feasible" true (Counting.check sch "A" = Counting.Feasible);
  let sch2 = schema "type A { r: B! @required }\ntype B { x: Int }" in
  check_bool "required chain feasible" true (Counting.check sch2 "A" = Counting.Feasible);
  check_bool "constraints generated" true (Counting.constraint_count sch2 "A" > 0)

let test_counting_refutes_simple () =
  (* Example (a) is refuted by counting alone: each OT1 node needs >= 1
     incoming hasOT1 edge from OT2-nodes and >= 1 from OT3-nodes, but
     @uniqueForTarget on the interface caps the total at 1 per OT1 node,
     so 2*n(OT1) <= n(OT1) forces n(OT1) = 0 — contradicting the query *)
  let sch = lenient example_a in
  check_bool "counting refutes (a)" true (Counting.check sch "OT1" = Counting.Infeasible);
  (* (c) also has a counting shadow: e(OT2) >= n(OT2), e(OT3) >= n(OT1),
     e(OT2) + e(OT3) <= n(OT1) force n(OT2) = 0 *)
  let sch_c = lenient example_c in
  check_bool "counting also refutes (c)" true
    (Counting.check sch_c "OT2" = Counting.Infeasible)

(* soundness: whenever a witness exists, the counting system is feasible *)
let prop_counting_sound =
  QCheck2.Test.make ~name:"counting never refutes a satisfiable type" ~count:40
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 77 |] in
      let sch = Graphql_pg.Schema_gen.random_schema rng in
      List.for_all
        (fun ot ->
          match MS.greedy ~max_nodes:8 sch ot with
          | Some _ -> Counting.check sch ot = Counting.Feasible
          | None -> true)
        (Graphql_pg.Schema.object_names sch))

let test_counting_invalid_arg () =
  let sch = schema "type A { x: Int }" in
  Alcotest.check_raises "not an object type"
    (Invalid_argument "Counting.check: \"Int\" is not an object type") (fun () ->
      ignore (Counting.check sch "Int"))

(* --- model search --- *)

let test_greedy_handles_constraints () =
  let sch =
    schema
      {|
type Root @key(fields: ["k"]) {
  k: ID! @required
  child: [Leaf] @required @distinct
}
type Leaf {
  owner: [Root] @requiredForTarget @uniqueForTarget
}
|}
  in
  (* wait: owner is declared on Leaf targeting Root; every Root needs an
     incoming owner edge from a Leaf, and at most one *)
  match MS.greedy ~max_nodes:8 sch "Root" with
  | Some g -> check_bool "greedy witness conforms" true (Val.conforms sch g)
  | None -> Alcotest.fail "greedy found nothing"

let test_exhaustive_small () =
  let sch = schema "type A { r: B! @required }\ntype B { x: Int }" in
  match MS.exhaustive ~max_nodes:2 ~max_edge_bits:8 sch "A" with
  | Some g ->
    check_bool "exhaustive witness conforms" true (Val.conforms sch g);
    check_bool "small" true (G.node_count g <= 2)
  | None -> Alcotest.fail "exhaustive found nothing"

let test_fill_required_properties () =
  let sch = schema {|type A { p: String! @required q: [Int!]! @required }|} in
  let g, a = G.add_node G.empty ~label:"A" () in
  let g = MS.fill_required_properties sch g in
  check_bool "p filled" true (G.node_prop g a "p" <> None);
  check_bool "q filled with nonempty list" true
    (match G.node_prop g a "q" with
    | Some (Graphql_pg.Value.List (_ :: _)) -> true
    | _ -> false)

(* --- Theorem 2 reduction: equivalence with DPLL --- *)

let reduction_verdict f =
  match Graphql_pg.Reduction.to_schema f with
  | Error msg -> Alcotest.failf "reduction schema invalid: %s" msg
  | Ok sch -> Sat.check ~max_nodes:24 sch Graphql_pg.Reduction.ot_name

let test_reduction_paper_formula () =
  let f = Graphql_pg.Cnf.paper_example in
  let report = reduction_verdict f in
  check_bool "satisfiable" true (report.Sat.finite = T.Satisfiable);
  match report.Sat.witness with
  | Some g -> (
    match Graphql_pg.Reduction.witness_assignment g f with
    | Some a -> check_bool "extracted assignment works" true (Graphql_pg.Cnf.eval f a)
    | None -> Alcotest.fail "no OT node in witness")
  | None -> Alcotest.fail "no witness"

let test_reduction_unsat () =
  let f =
    Graphql_pg.Cnf.make ~num_vars:1 [ [ Graphql_pg.Cnf.lit 1 ]; [ Graphql_pg.Cnf.lit (-1) ] ]
  in
  let report = reduction_verdict f in
  check_bool "unsatisfiable" true (report.Sat.finite = T.Unsatisfiable);
  check_bool "already in ALCQI" true (report.Sat.alcqi = T.Unsatisfiable)

let test_reduction_schema_shape () =
  (* size is polynomial: clauses + atoms + conflict pairs *)
  let f = Graphql_pg.Cnf.paper_example in
  match Graphql_pg.Reduction.to_schema f with
  | Error msg -> Alcotest.failf "%s" msg
  | Ok sch ->
    Alcotest.(check int) "object types = 1 + atoms" 8
      (List.length (Graphql_pg.Schema.object_names sch));
    Alcotest.(check int) "interfaces = clauses + conflicts" 6
      (List.length (Graphql_pg.Schema.interface_names sch))

let prop_reduction_equiv_dpll =
  QCheck2.Test.make ~name:"reduction satisfiability = DPLL" ~count:30
    QCheck2.Gen.(tup3 (int_range 1 4) (int_range 1 6) (int_bound 1_000_000))
    (fun (vars, clauses, seed) ->
      let f =
        Graphql_pg.Ksat.random ~seed ~num_vars:vars ~num_clauses:clauses ~clause_size:2 ()
      in
      let expected = Graphql_pg.Dpll.satisfiable f in
      let report = reduction_verdict f in
      match report.Sat.finite with
      | T.Satisfiable -> expected
      | T.Unsatisfiable -> not expected
      | T.Unknown _ ->
        (* the greedy/exhaustive search may fail on SAT instances with
           larger witnesses; accept only if DPLL says SAT and ALCQI agrees *)
        expected && report.Sat.alcqi = T.Satisfiable)

(* cross-check: a finite-unsatisfiable verdict admits no tiny witness *)
let prop_unsat_has_no_tiny_witness =
  QCheck2.Test.make ~name:"finite Unsatisfiable admits no 2-node witness" ~count:20
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xCAFE |] in
      let sch = Graphql_pg.Schema_gen.random_schema rng in
      List.for_all
        (fun ot ->
          match (Sat.check ~max_nodes:6 sch ot).Sat.finite with
          | T.Unsatisfiable -> MS.exhaustive ~max_nodes:2 ~max_edge_bits:8 sch ot = None
          | T.Satisfiable | T.Unknown _ -> true)
        (Graphql_pg.Schema.object_names sch))

(* witnesses always carry a node of the queried type *)
let prop_witness_populates =
  QCheck2.Test.make ~name:"witnesses populate the queried type" ~count:20
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xFACE |] in
      let sch = Graphql_pg.Schema_gen.random_schema rng in
      List.for_all
        (fun ot ->
          match (Sat.check ~max_nodes:6 sch ot).Sat.witness with
          | Some g ->
            Val.conforms sch g
            && List.exists
                 (fun v -> G.node_label g v = ot)
                 (G.nodes g)
          | None -> true)
        (Graphql_pg.Schema.object_names sch))

let suite =
  [
    Alcotest.test_case "trivial type" `Quick test_trivial;
    Alcotest.test_case "social schema: all types satisfiable with conforming witnesses"
      `Quick test_witnesses_conform;
    Alcotest.test_case "Example 6.1 (a)" `Quick test_example_a;
    Alcotest.test_case "Example 6.1 (b): finite vs ALCQI gap" `Quick
      test_example_b_finite_gap;
    Alcotest.test_case "Example 6.1 (c)" `Quick test_example_c;
    Alcotest.test_case "unsatisfiable_types" `Quick test_unsatisfiable_types_listing;
    Alcotest.test_case "edge-definition satisfiability" `Quick
      test_edge_definition_satisfiability;
    Alcotest.test_case "counting: feasible systems" `Quick test_counting_feasible_cases;
    Alcotest.test_case "counting: scope" `Quick test_counting_refutes_simple;
    Alcotest.test_case "counting: input validation" `Quick test_counting_invalid_arg;
    Alcotest.test_case "greedy model search" `Quick test_greedy_handles_constraints;
    Alcotest.test_case "exhaustive model search" `Quick test_exhaustive_small;
    Alcotest.test_case "fill_required_properties" `Quick test_fill_required_properties;
    Alcotest.test_case "Theorem 2: worked formula" `Quick test_reduction_paper_formula;
    Alcotest.test_case "Theorem 2: unsat formula" `Quick test_reduction_unsat;
    Alcotest.test_case "Theorem 2: schema shape" `Quick test_reduction_schema_shape;
    QCheck_alcotest.to_alcotest prop_reduction_equiv_dpll;
    QCheck_alcotest.to_alcotest prop_counting_sound;
    QCheck_alcotest.to_alcotest prop_unsat_has_no_tiny_witness;
    QCheck_alcotest.to_alcotest prop_witness_populates;
  ]
