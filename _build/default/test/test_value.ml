(* Unit and property tests for Pg_graph.Value. *)

module V = Graphql_pg.Value

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_equal_basic () =
  check_bool "int eq" true (V.equal (V.Int 3) (V.Int 3));
  check_bool "int neq" false (V.equal (V.Int 3) (V.Int 4));
  check_bool "id vs string differ" false (V.equal (V.Id "x") (V.String "x"));
  check_bool "enum vs string differ" false (V.equal (V.Enum "RED") (V.String "RED"));
  check_bool "list eq" true
    (V.equal (V.List [ V.Int 1; V.Bool true ]) (V.List [ V.Int 1; V.Bool true ]));
  check_bool "list order matters" false
    (V.equal (V.List [ V.Int 1; V.Int 2 ]) (V.List [ V.Int 2; V.Int 1 ]));
  check_bool "nested lists" true
    (V.equal (V.List [ V.List [ V.Int 1 ] ]) (V.List [ V.List [ V.Int 1 ] ]))

let test_equal_float_edge_cases () =
  check_bool "nan equals nan (reflexivity for keys)" true
    (V.equal (V.Float Float.nan) (V.Float Float.nan));
  check_bool "0.0 equals -0.0" true (V.equal (V.Float 0.0) (V.Float (-0.0)));
  check_bool "float vs int differ structurally" false (V.equal (V.Float 1.0) (V.Int 1))

let test_compare_total_order () =
  let values =
    [
      V.Int 1;
      V.Int 2;
      V.Float 1.5;
      V.String "a";
      V.Bool false;
      V.Id "i";
      V.Enum "E";
      V.List [ V.Int 1 ];
    ]
  in
  (* compare is compatible with equal *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_bool "compare/equal agree" (V.compare a b = 0) (V.equal a b))
        values)
    values;
  (* antisymmetry *)
  List.iter
    (fun a ->
      List.iter
        (fun b -> check_bool "antisymmetric" true (compare (V.compare a b) 0 = compare 0 (V.compare b a)))
        values)
    values

let test_hash_compatible () =
  let pairs =
    [
      (V.Int 42, V.Int 42);
      (V.Float 0.0, V.Float (-0.0));
      (V.Float Float.nan, V.Float Float.nan);
      (V.List [ V.String "x" ], V.List [ V.String "x" ]);
    ]
  in
  List.iter
    (fun (a, b) -> check_bool "equal values hash equally" true (V.hash a = V.hash b))
    pairs

let test_is_atomic () =
  check_bool "int atomic" true (V.is_atomic (V.Int 1));
  check_bool "list not atomic" false (V.is_atomic (V.List []))

let test_printing () =
  check_string "int" "3" (V.to_string (V.Int 3));
  check_string "string quoted" "\"hi\"" (V.to_string (V.String "hi"));
  check_string "escapes" "\"a\\\"b\\\\c\\nd\"" (V.to_string (V.String "a\"b\\c\nd"));
  check_string "bool" "true" (V.to_string (V.Bool true));
  check_string "enum bare" "METER" (V.to_string (V.Enum "METER"));
  check_string "list" "[1, 2]" (V.to_string (V.List [ V.Int 1; V.Int 2 ]));
  check_string "float integral" "2.0" (V.to_string (V.Float 2.0))

let test_float_round_trip () =
  List.iter
    (fun f ->
      let printed = V.to_string (V.Float f) in
      Alcotest.(check (float 0.0)) ("round-trip " ^ printed) f (float_of_string printed))
    [ 0.98; 1.0 /. 3.0; 1e-10; 123456.789; 2.0 ]

let test_type_name () =
  check_string "Int" "Int" (V.type_name (V.Int 1));
  check_string "Boolean" "Boolean" (V.type_name (V.Bool true));
  check_string "list" "list" (V.type_name (V.List []))

(* qcheck: equal is an equivalence, compare a total preorder *)
let value_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let atom =
        oneof
          [
            map (fun i -> V.Int i) small_signed_int;
            map (fun f -> V.Float f) float;
            map (fun s -> V.String s) (small_string ~gen:printable);
            map (fun b -> V.Bool b) bool;
            map (fun s -> V.Id s) (small_string ~gen:printable);
            map (fun s -> V.Enum ("E" ^ string_of_int (abs s))) small_signed_int;
          ]
      in
      if n <= 1 then atom
      else oneof [ atom; map (fun l -> V.List l) (list_size (int_bound 4) (self (n / 3))) ])

let prop_equal_reflexive =
  QCheck2.Test.make ~name:"Value.equal reflexive" ~count:500 value_gen (fun v ->
      V.equal v v)

let prop_compare_consistent =
  QCheck2.Test.make ~name:"Value.compare consistent with equal" ~count:500
    (QCheck2.Gen.pair value_gen value_gen) (fun (a, b) ->
      V.compare a b = 0 = V.equal a b)

let prop_hash_consistent =
  QCheck2.Test.make ~name:"Value.hash respects equal" ~count:500
    (QCheck2.Gen.pair value_gen value_gen) (fun (a, b) ->
      (not (V.equal a b)) || V.hash a = V.hash b)

let suite =
  [
    Alcotest.test_case "equal: basics" `Quick test_equal_basic;
    Alcotest.test_case "equal: float edge cases" `Quick test_equal_float_edge_cases;
    Alcotest.test_case "compare: total order" `Quick test_compare_total_order;
    Alcotest.test_case "hash: compatible with equal" `Quick test_hash_compatible;
    Alcotest.test_case "is_atomic" `Quick test_is_atomic;
    Alcotest.test_case "printing" `Quick test_printing;
    Alcotest.test_case "float literals round-trip" `Quick test_float_round_trip;
    Alcotest.test_case "type_name" `Quick test_type_name;
    QCheck_alcotest.to_alcotest prop_equal_reflexive;
    QCheck_alcotest.to_alcotest prop_compare_consistent;
    QCheck_alcotest.to_alcotest prop_hash_consistent;
  ]
