(* Robustness: the front ends must never raise on arbitrary input — every
   failure is an Error value with a position/message. *)

let gen_bytes =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 200))

let gen_sdl_ish =
  (* strings biased towards SDL token soup *)
  QCheck2.Gen.(
    map (String.concat " ")
      (list_size (int_bound 40)
         (oneofl
            [
              "type"; "interface"; "union"; "enum"; "scalar"; "input"; "schema"; "extend";
              "directive"; "on"; "implements"; "{"; "}"; "("; ")"; "["; "]"; "!"; "|"; "&";
              "="; ":"; "@"; "..."; "\"txt\""; "\"\"\"block\"\"\""; "3"; "-7"; "1.5"; "$v";
              "Name"; "x"; "#c"; ","; "query"; "fragment"; "mutation";
            ])))

let total name gen f =
  QCheck2.Test.make ~name ~count:500 gen (fun s ->
      match f s with _ -> true)

let suite =
  [
    QCheck_alcotest.to_alcotest
      (total "SDL lexer is total on random bytes" gen_bytes (fun s ->
           Graphql_pg.Sdl.Lexer.tokenize s));
    QCheck_alcotest.to_alcotest
      (total "SDL parser is total on random bytes" gen_bytes (fun s ->
           Graphql_pg.Sdl.Parser.parse s));
    QCheck_alcotest.to_alcotest
      (total "SDL parser is total on token soup" gen_sdl_ish (fun s ->
           Graphql_pg.Sdl.Parser.parse s));
    QCheck_alcotest.to_alcotest
      (total "schema builder is total on token soup" gen_sdl_ish (fun s ->
           Graphql_pg.Of_ast.parse s));
    QCheck_alcotest.to_alcotest
      (total "PGF parser is total on random bytes" gen_bytes (fun s ->
           Graphql_pg.Pgf.parse s));
    QCheck_alcotest.to_alcotest
      (total "JSON parser is total on random bytes" gen_bytes (fun s ->
           Graphql_pg.Json.of_string s));
    QCheck_alcotest.to_alcotest
      (total "query parser is total on token soup" gen_sdl_ish (fun s ->
           Graphql_pg.Query_parser.parse s));
    QCheck_alcotest.to_alcotest
      (total "DIMACS parser is total on random bytes" gen_bytes (fun s ->
           Graphql_pg.Cnf.parse_dimacs s));
  ]
