(* Lint tests: document-level well-formedness. *)

module P = Graphql_pg.Sdl.Parser
module L = Graphql_pg.Sdl.Lint

let issues src =
  match P.parse src with
  | Ok doc -> L.check doc
  | Error e -> Alcotest.failf "parse error: %s" (Graphql_pg.Sdl.Source.error_to_string e)

let error_count src = List.length (L.errors (issues src))
let warning_count src = List.length (issues src) - error_count src
let check_int = Alcotest.(check int)

let test_clean () =
  check_int "no issues" 0 (List.length (issues "type A { x: Int }"))

let test_duplicate_types () =
  check_int "duplicate type" 1 (error_count "type A { x: Int }\ntype A { y: Int }")

let test_duplicate_fields () =
  check_int "duplicate field" 1 (error_count "type A { x: Int x: String }")

let test_duplicate_args () =
  check_int "duplicate argument" 1 (error_count "type A { f(a: Int a: String): Int }")

let test_duplicate_enum_values () =
  check_int "duplicate enum value" 1 (error_count "enum E { A A }")

let test_duplicate_union_members () =
  check_int "duplicate member" 1 (error_count "type A { x: Int }\nunion U = A | A")

let test_empty_union () =
  check_int "empty union" 1 (error_count "union U")

let test_empty_enum () =
  check_int "empty enum" 1 (error_count "enum E")

let test_reserved_names () =
  check_int "reserved type name" 1 (error_count "type __A { x: Int }");
  check_int "reserved field name" 1 (error_count "type A { __x: Int }")

let test_repeated_key_allowed () =
  (* Example 3.4 relies on repeating @key *)
  check_int "repeated @key: no issues" 0
    (List.length (issues {|type A @key(fields: ["x"]) @key(fields: ["y"]) { x: ID y: ID }|}))

let test_repeated_other_directive_warns () =
  check_int "repeated directive warns" 1
    (warning_count "type A { x: Int @required @required }");
  check_int "but is not an error" 0 (error_count "type A { x: Int @required @required }")

let test_duplicate_schema_blocks () =
  check_int "two schema definitions" 1
    (error_count "type Q { x: Int }\nschema { query: Q }\nschema { query: Q }")

let test_duplicate_operation_types () =
  check_int "duplicate root op" 1 (error_count "type Q { x: Int }\nschema { query: Q query: Q }")

let test_duplicate_interface_listing () =
  check_int "implements twice" 1
    (error_count "interface I { x: Int }\ntype A implements I & I { x: Int }")

let test_duplicate_directive_defs () =
  check_int "directive defined twice" 1
    (error_count "directive @d on OBJECT\ndirective @d on OBJECT\ntype A { x: Int }")

let suite =
  [
    Alcotest.test_case "clean document" `Quick test_clean;
    Alcotest.test_case "duplicate types" `Quick test_duplicate_types;
    Alcotest.test_case "duplicate fields" `Quick test_duplicate_fields;
    Alcotest.test_case "duplicate arguments" `Quick test_duplicate_args;
    Alcotest.test_case "duplicate enum values" `Quick test_duplicate_enum_values;
    Alcotest.test_case "duplicate union members" `Quick test_duplicate_union_members;
    Alcotest.test_case "empty union" `Quick test_empty_union;
    Alcotest.test_case "empty enum" `Quick test_empty_enum;
    Alcotest.test_case "reserved names" `Quick test_reserved_names;
    Alcotest.test_case "repeated @key allowed" `Quick test_repeated_key_allowed;
    Alcotest.test_case "repeated directive warns" `Quick test_repeated_other_directive_warns;
    Alcotest.test_case "duplicate schema blocks" `Quick test_duplicate_schema_blocks;
    Alcotest.test_case "duplicate operation types" `Quick test_duplicate_operation_types;
    Alcotest.test_case "implements listed twice" `Quick test_duplicate_interface_listing;
    Alcotest.test_case "duplicate directive definitions" `Quick test_duplicate_directive_defs;
  ]
