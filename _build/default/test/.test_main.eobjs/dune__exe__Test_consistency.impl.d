test/test_consistency.ml: Alcotest Graphql_pg List
