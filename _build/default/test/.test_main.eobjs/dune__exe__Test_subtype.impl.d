test/test_subtype.ml: Alcotest Graphql_pg Lazy List QCheck2 QCheck_alcotest
