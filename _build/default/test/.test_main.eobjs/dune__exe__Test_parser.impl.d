test/test_parser.ml: Alcotest Graphql_pg List
