test/test_values_w.ml: Alcotest Graphql_pg Lazy String
