test/test_mutation.ml: Alcotest Graphql_pg List
