test/test_incremental.ml: Alcotest Graphql_pg List QCheck2 QCheck_alcotest Random
