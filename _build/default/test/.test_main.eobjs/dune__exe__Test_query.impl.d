test/test_query.ml: Alcotest Graphql_pg List Result String
