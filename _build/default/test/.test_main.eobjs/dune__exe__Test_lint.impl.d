test/test_lint.ml: Alcotest Graphql_pg List
