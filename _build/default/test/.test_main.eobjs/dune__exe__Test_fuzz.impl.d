test/test_fuzz.ml: Char Graphql_pg QCheck2 QCheck_alcotest String
