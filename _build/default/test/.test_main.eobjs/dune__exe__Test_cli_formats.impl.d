test/test_cli_formats.ml: Alcotest Filename Graphql_pg Printf String Sys
