test/test_schema_diff.ml: Alcotest Graphql_pg List Printf String
