test/test_cnf_dpll.ml: Alcotest Array Graphql_pg List QCheck2 QCheck_alcotest Result
