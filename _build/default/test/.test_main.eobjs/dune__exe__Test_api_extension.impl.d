test/test_api_extension.ml: Alcotest Graphql_pg List Result
