test/test_angles.ml: Alcotest Graphql_pg List String
