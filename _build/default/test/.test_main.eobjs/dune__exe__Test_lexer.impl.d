test/test_lexer.ml: Alcotest Graphql_pg List
