test/test_alcqi_tableau.ml: Alcotest Graphql_pg List
