test/test_printer.ml: Alcotest Graphql_pg List
