test/test_query_prop.ml: Graphql_pg List QCheck2 QCheck_alcotest
