test/test_introspection.ml: Alcotest Graphql_pg List
