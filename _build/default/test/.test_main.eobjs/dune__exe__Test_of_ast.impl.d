test/test_of_ast.ml: Alcotest Graphql_pg List Map Result String
