test/test_property_graph.ml: Alcotest Graphql_pg List
