test/test_wrapped.ml: Alcotest Graphql_pg List Result
