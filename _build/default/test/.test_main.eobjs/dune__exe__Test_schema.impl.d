test/test_schema.ml: Alcotest Graphql_pg List Map Option String
