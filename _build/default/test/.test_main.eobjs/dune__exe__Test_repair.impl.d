test/test_repair.ml: Alcotest Graphql_pg List Printf QCheck2 QCheck_alcotest Random
