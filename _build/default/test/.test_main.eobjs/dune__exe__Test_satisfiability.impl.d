test/test_satisfiability.ml: Alcotest Graphql_pg List QCheck2 QCheck_alcotest Random
