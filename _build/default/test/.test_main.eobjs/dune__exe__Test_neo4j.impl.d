test/test_neo4j.ml: Alcotest Graphql_pg List String
