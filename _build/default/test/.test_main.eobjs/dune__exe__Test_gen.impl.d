test/test_gen.ml: Alcotest Graphql_pg List Printf Random
