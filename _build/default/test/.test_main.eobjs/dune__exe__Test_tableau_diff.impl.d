test/test_tableau_diff.ml: Array Fun Graphql_pg List QCheck2 QCheck_alcotest
