test/test_paper_examples.ml: Alcotest Graphql_pg List Printf
