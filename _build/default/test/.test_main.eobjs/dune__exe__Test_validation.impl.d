test/test_validation.ml: Alcotest Graphql_pg List
