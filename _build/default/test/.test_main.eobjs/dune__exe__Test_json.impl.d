test/test_json.ml: Alcotest Graphql_pg List Printf QCheck2 QCheck_alcotest Result
