test/test_pgf.ml: Alcotest Array Graphql_pg List Printf QCheck2 QCheck_alcotest
