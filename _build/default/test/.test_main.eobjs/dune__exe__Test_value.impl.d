test/test_value.ml: Alcotest Float Graphql_pg List QCheck2 QCheck_alcotest
