test/test_schema_doc.ml: Alcotest Graphql_pg List String
