(* GraphQL introspection over the API-extended schema. *)

module J = Graphql_pg.Json

let check_bool = Alcotest.(check bool)

let schema =
  Graphql_pg.schema_of_string_exn
    {|
"People who write things."
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  favorite: Food
  knows(since: Int! note: String = "met"): [Person]
}
union Food = Pizza | Pasta
type Pizza implements Dish { name: String! }
type Pasta implements Dish { name: String! }
interface Dish { name: String! }
enum Color { RED GREEN }
scalar Time
|}

let run text =
  match Graphql_pg.query schema Graphql_pg.Property_graph.empty text with
  | Ok data -> data
  | Error msg -> Alcotest.failf "query failed: %s" msg

let as_list = function J.List l -> l | _ -> []

let test_schema_types () =
  let data = run "{ __schema { queryType { name } types { name kind } } }" in
  let s = J.member "__schema" data in
  check_bool "query type" true (J.member "name" (J.member "queryType" s) = J.String "Query");
  let types = as_list (J.member "types" s) in
  let kind_of name =
    List.find_map
      (fun t -> if J.member "name" t = J.String name then Some (J.member "kind" t) else None)
      types
  in
  check_bool "Person OBJECT" true (kind_of "Person" = Some (J.String "OBJECT"));
  check_bool "Food UNION" true (kind_of "Food" = Some (J.String "UNION"));
  check_bool "Dish INTERFACE" true (kind_of "Dish" = Some (J.String "INTERFACE"));
  check_bool "Color ENUM" true (kind_of "Color" = Some (J.String "ENUM"));
  check_bool "Time SCALAR" true (kind_of "Time" = Some (J.String "SCALAR"));
  check_bool "builtins present" true (kind_of "Int" = Some (J.String "SCALAR"));
  check_bool "Query present (extension)" true (kind_of "Query" = Some (J.String "OBJECT"))

let test_type_fields_and_wrappers () =
  let data =
    run
      {|{ __type(name: "Person") {
  description
  fields { name type { kind name ofType { kind name } } }
} }|}
  in
  let t = J.member "__type" data in
  check_bool "description" true
    (J.member "description" t = J.String "People who write things.");
  let fields = as_list (J.member "fields" t) in
  let field name = List.find (fun f -> J.member "name" f = J.String name) fields in
  let id_type = J.member "type" (field "id") in
  check_bool "id NON_NULL of ID" true
    (J.member "kind" id_type = J.String "NON_NULL"
    && J.member "name" (J.member "ofType" id_type) = J.String "ID");
  let knows_type = J.member "type" (field "knows") in
  check_bool "knows LIST" true (J.member "kind" knows_type = J.String "LIST");
  (* inverse fields from the API extension appear *)
  check_bool "inverse field visible" true
    (List.exists (fun f -> J.member "name" f = J.String "_inverse_knows_of_person") fields)

let test_args_and_defaults () =
  let data =
    run
      {|{ __type(name: "Person") { fields { name args { name defaultValue type { kind } } } } }|}
  in
  let fields = as_list (J.member "fields" (J.member "__type" data)) in
  let knows = List.find (fun f -> J.member "name" f = J.String "knows") fields in
  let args = as_list (J.member "args" knows) in
  let arg name = List.find (fun a -> J.member "name" a = J.String name) args in
  check_bool "since non-null" true
    (J.member "kind" (J.member "type" (arg "since")) = J.String "NON_NULL");
  check_bool "note default" true (J.member "defaultValue" (arg "note") = J.String "\"met\"")

let test_possible_types () =
  let data =
    run
      {|{
  food: __type(name: "Food") { possibleTypes { name } }
  dish: __type(name: "Dish") { possibleTypes { name } }
  pizza: __type(name: "Pizza") { interfaces { name } }
}|}
  in
  let names field obj =
    as_list (J.member field (J.member obj data)) |> List.map (J.member "name")
  in
  check_bool "union members" true
    (names "possibleTypes" "food" = [ J.String "Pizza"; J.String "Pasta" ]);
  check_bool "implementations" true
    (names "possibleTypes" "dish" = [ J.String "Pasta"; J.String "Pizza" ]);
  check_bool "interfaces of Pizza" true (names "interfaces" "pizza" = [ J.String "Dish" ])

let test_enum_values () =
  let data = run {|{ __type(name: "Color") { enumValues { name } } }|} in
  check_bool "enum values" true
    (as_list (J.member "enumValues" (J.member "__type" data))
     |> List.map (J.member "name")
    = [ J.String "RED"; J.String "GREEN" ])

let test_unknown_type_and_fields () =
  let data = run {|{ __type(name: "Nope") { name } }|} in
  check_bool "unknown type is null" true (J.member "__type" data = J.Null);
  let data2 = run {|{ __type(name: "Person") { specifiedByURL } }|} in
  check_bool "unknown meta field degrades to null" true
    (J.member "specifiedByURL" (J.member "__type" data2) = J.Null)

let test_directives_listed () =
  let data = run "{ __schema { directives { name locations } } }" in
  let names =
    as_list (J.member "directives" (J.member "__schema" data)) |> List.map (J.member "name")
  in
  List.iter
    (fun d -> check_bool ("directive " ^ d) true (List.mem (J.String d) names))
    [ "required"; "key"; "distinct"; "noLoops"; "uniqueForTarget"; "requiredForTarget" ]

let suite =
  [
    Alcotest.test_case "__schema types" `Quick test_schema_types;
    Alcotest.test_case "__type fields and wrappers" `Quick test_type_fields_and_wrappers;
    Alcotest.test_case "args and defaults" `Quick test_args_and_defaults;
    Alcotest.test_case "possibleTypes / interfaces" `Quick test_possible_types;
    Alcotest.test_case "enumValues" `Quick test_enum_values;
    Alcotest.test_case "unknown names degrade" `Quick test_unknown_type_and_fields;
    Alcotest.test_case "directives listed" `Quick test_directives_listed;
  ]
