(* The ALCQI module and the tableau reasoner. *)

module A = Graphql_pg.Alcqi
module T = Graphql_pg.Tableau

let check_bool = Alcotest.(check bool)
let r = A.role "r"
let s = A.role "s"
let atom n = A.Atom n

let sat ?(tbox = []) c = T.is_satisfiable ~tbox c = T.Satisfiable
let unsat ?(tbox = []) c = T.is_satisfiable ~tbox c = T.Unsatisfiable

let test_neg_nnf () =
  check_bool "neg atom" true (A.neg (atom "A") = A.Neg "A");
  check_bool "double neg" true (A.neg (A.neg (atom "A")) = atom "A");
  check_bool "neg top" true (A.neg A.Top = A.Bot);
  check_bool "de morgan" true
    (A.neg (A.And [ atom "A"; atom "B" ]) = A.Or [ A.Neg "A"; A.Neg "B" ]);
  check_bool "neg forall" true (A.neg (A.All (r, atom "A")) = A.At_least (1, r, A.Neg "A"));
  check_bool "neg exists" true (A.neg (A.exists r (atom "A")) = A.All (r, A.Neg "A"));
  check_bool "neg at_least n" true (A.neg (A.At_least (3, r, atom "A")) = A.At_most (2, r, atom "A"));
  check_bool "neg at_most" true (A.neg (A.At_most (2, r, atom "A")) = A.At_least (3, r, atom "A"))

let test_conj_disj () =
  check_bool "conj flattens" true
    (A.conj [ atom "A"; A.And [ atom "B"; atom "C" ] ] = A.And [ atom "A"; atom "B"; atom "C" ]);
  check_bool "conj drops top" true (A.conj [ A.Top; atom "A" ] = atom "A");
  check_bool "conj bot" true (A.conj [ atom "A"; A.Bot ] = A.Bot);
  check_bool "conj empty" true (A.conj [] = A.Top);
  check_bool "disj empty" true (A.disj [] = A.Bot);
  check_bool "disj top" true (A.disj [ atom "A"; A.Top ] = A.Top);
  check_bool "dedup" true (A.conj [ atom "A"; atom "A" ] = atom "A")

let test_inverse_roles () =
  check_bool "involution" true (A.inv (A.inv r) = r);
  check_bool "distinct" true (A.inv r <> r)

let test_tableau_propositional () =
  check_bool "atom sat" true (sat (atom "A"));
  check_bool "contradiction" true (unsat (A.And [ atom "A"; A.Neg "A" ]));
  check_bool "bot" true (unsat A.Bot);
  check_bool "top" true (sat A.Top);
  check_bool "disjunction" true (sat (A.And [ A.Or [ atom "A"; atom "B" ]; A.Neg "A" ]));
  check_bool "unsat dnf" true
    (unsat (A.And [ A.Or [ atom "A"; atom "B" ]; A.Neg "A"; A.Neg "B" ]))

let test_tableau_modal () =
  check_bool "exists" true (sat (A.exists r (atom "A")));
  check_bool "exists clash" true (unsat (A.And [ A.exists r (atom "A"); A.All (r, A.Neg "A") ]));
  check_bool "forall vacuous" true (sat (A.All (r, A.Bot)));
  check_bool "exists bot" true (unsat (A.exists r A.Bot));
  check_bool "nested" true
    (sat (A.exists r (A.And [ atom "A"; A.exists s (atom "B") ])))

let test_tableau_counting () =
  check_bool ">=2 sat" true (sat (A.At_least (2, r, atom "A")));
  check_bool ">=2 with <=1 unsat" true
    (unsat (A.And [ A.At_least (2, r, atom "A"); A.At_most (1, r, atom "A") ]));
  check_bool ">=2 with <=2 sat" true
    (sat (A.And [ A.At_least (2, r, atom "A"); A.At_most (2, r, atom "A") ]));
  (* merging reconciles: >=1 A-successor, >=1 B-successor, <=1 successor *)
  check_bool "merge labels" true
    (sat
       (A.And
          [ A.exists r (atom "A"); A.exists r (atom "B"); A.At_most (1, r, A.Or [atom "A"; atom "B"]) ]));
  check_bool "merge then clash" true
    (unsat
       (A.And
          [
            A.exists r (atom "A");
            A.exists r (atom "B");
            A.At_most (1, r, A.Top);
            A.All (r, A.Or [ A.Neg "A"; A.Neg "B" ]);
          ]))

let test_tableau_at_most_top () =
  (* <=n r.Top demands the choose rule work with Top *)
  check_bool "functional role" true
    (sat (A.And [ A.exists r (atom "A"); A.At_most (1, r, A.Top) ]))

let test_tableau_inverse () =
  (* an r-successor whose r-inverse must be B, but we are A with A,B disjoint *)
  let tbox = [ A.Subsumption (A.conj [ atom "A"; atom "B" ], A.Bot) ] in
  check_bool "inverse propagation" true
    (unsat ~tbox (A.And [ atom "A"; A.exists r (A.All (A.inv r, atom "B")) ]));
  check_bool "inverse consistent" true
    (sat ~tbox (A.And [ atom "A"; A.exists r (A.All (A.inv r, atom "A")) ]))

let test_tbox_cycles_blocking () =
  (* T: A [= exists r.A — satisfiable only via blocking (infinite model) *)
  let tbox = [ A.Subsumption (atom "A", A.exists r (atom "A")) ] in
  check_bool "cyclic tbox sat (blocking)" true (sat ~tbox (atom "A"));
  (* add A [= Bot: nothing can be A *)
  let tbox2 = A.Subsumption (atom "A", A.Bot) :: tbox in
  check_bool "A empty" true (unsat ~tbox:tbox2 (atom "A"))

let test_tbox_infinite_model_sat () =
  (* the diagram-(b) pattern: only infinite models; ALCQI must say SAT *)
  let tbox =
    [
      A.Subsumption (atom "A", A.exists r (atom "A"));
      A.Subsumption (atom "A", A.At_most (1, A.inv r, atom "A"));
      (* root: an A with no incoming r from A *)
    ]
  in
  check_bool "infinite chain satisfiable in ALCQI" true
    (sat ~tbox (A.And [ atom "A"; A.All (A.inv r, A.Neg "A") ]))

let test_internalize () =
  let tbox = [ A.Subsumption (atom "A", atom "B"); A.Equivalence (atom "C", atom "D") ] in
  let g = A.internalize tbox in
  (* the global concept must contain three disjunctions *)
  match g with
  | A.And parts -> Alcotest.(check int) "three conjuncts" 3 (List.length parts)
  | _ -> Alcotest.fail "expected a conjunction"

let test_size () =
  check_bool "size positive" true (A.size (A.And [ atom "A"; A.exists r (atom "B") ]) > 2)

let suite =
  [
    Alcotest.test_case "negation / NNF" `Quick test_neg_nnf;
    Alcotest.test_case "smart constructors" `Quick test_conj_disj;
    Alcotest.test_case "inverse roles" `Quick test_inverse_roles;
    Alcotest.test_case "tableau: propositional" `Quick test_tableau_propositional;
    Alcotest.test_case "tableau: modal" `Quick test_tableau_modal;
    Alcotest.test_case "tableau: counting + merging" `Quick test_tableau_counting;
    Alcotest.test_case "tableau: <=n with Top" `Quick test_tableau_at_most_top;
    Alcotest.test_case "tableau: inverse roles" `Quick test_tableau_inverse;
    Alcotest.test_case "tableau: cyclic TBox and blocking" `Quick test_tbox_cycles_blocking;
    Alcotest.test_case "tableau: infinite-only models are SAT" `Quick
      test_tbox_infinite_model_sat;
    Alcotest.test_case "internalize" `Quick test_internalize;
    Alcotest.test_case "concept size" `Quick test_size;
  ]
