(* Workload generators: social network, random schemas, k-SAT. *)

module G = Graphql_pg.Property_graph
module Val = Graphql_pg.Validate

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_social_conformant_sizes () =
  let sch = Graphql_pg.Social.schema () in
  List.iter
    (fun persons ->
      let g = Graphql_pg.Social.generate ~persons () in
      check_bool
        (Printf.sprintf "persons=%d strongly satisfies" persons)
        true (Val.conforms sch g))
    [ 1; 2; 7; 10; 50; 173 ]

let test_social_deterministic () =
  let g1 = Graphql_pg.Social.generate ~seed:3 ~persons:20 () in
  let g2 = Graphql_pg.Social.generate ~seed:3 ~persons:20 () in
  check_bool "same seed, same graph" true (G.equal g1 g2)

let test_social_shape () =
  let g = Graphql_pg.Social.generate ~persons:100 () in
  let stats = Graphql_pg.Stats.compute g in
  check_int "persons" 100 (List.assoc "Person" stats.Graphql_pg.Stats.node_labels);
  check_int "posts" 100 (List.assoc "Post" stats.Graphql_pg.Stats.node_labels);
  check_bool "edges scale" true (stats.Graphql_pg.Stats.edges > 400)

let test_social_invalid_persons () =
  Alcotest.check_raises "zero persons"
    (Invalid_argument "Social.generate: persons must be >= 1") (fun () ->
      ignore (Graphql_pg.Social.generate ~persons:0 ()))

let test_schema_gen_parses_and_consistent () =
  let rng = Random.State.make [| 2024 |] in
  for _ = 1 to 50 do
    let sch = Graphql_pg.Schema_gen.random_schema rng in
    check_bool "consistent" true (Graphql_pg.Consistency.is_consistent sch)
  done

let test_ksat_shape () =
  let f = Graphql_pg.Ksat.random ~num_vars:10 ~num_clauses:30 ~clause_size:3 () in
  check_int "clauses" 30 (List.length f.Graphql_pg.Cnf.clauses);
  check_bool "clause sizes" true
    (List.for_all (fun c -> List.length c = 3) f.Graphql_pg.Cnf.clauses);
  (* distinct vars within clauses *)
  check_bool "distinct vars" true
    (List.for_all
       (fun c ->
         let vars = List.map (fun (l : Graphql_pg.Cnf.literal) -> l.Graphql_pg.Cnf.var) c in
         List.sort_uniq compare vars = List.sort compare vars)
       f.Graphql_pg.Cnf.clauses);
  (* clause size capped at num_vars *)
  let f2 = Graphql_pg.Ksat.random ~num_vars:2 ~num_clauses:3 ~clause_size:5 () in
  check_bool "cap" true
    (List.for_all (fun c -> List.length c = 2) f2.Graphql_pg.Cnf.clauses)

let test_ksat_series () =
  let series = Graphql_pg.Ksat.series ~clause_size:3 ~ratio:4.3 [ 5; 10 ] in
  check_int "two instances" 2 (List.length series);
  check_int "clauses at ratio" 21 (List.length (List.nth series 0).Graphql_pg.Cnf.clauses)

let test_fuzz_is_arbitrary_but_valid_ocaml_graph () =
  let rng = Random.State.make [| 9 |] in
  let sch = Graphql_pg.Social.schema () in
  for _ = 1 to 20 do
    let g = Graphql_pg.Instance_gen.fuzz rng sch ~max_nodes:8 in
    check_bool "non-empty" true (G.node_count g >= 1);
    (* validation must never crash on fuzz graphs *)
    ignore (Val.check sch g)
  done

let suite =
  [
    Alcotest.test_case "social graphs strongly satisfy" `Quick test_social_conformant_sizes;
    Alcotest.test_case "social generation deterministic" `Quick test_social_deterministic;
    Alcotest.test_case "social shape" `Quick test_social_shape;
    Alcotest.test_case "social input validation" `Quick test_social_invalid_persons;
    Alcotest.test_case "random schemas parse + consistent" `Quick
      test_schema_gen_parses_and_consistent;
    Alcotest.test_case "k-SAT shape" `Quick test_ksat_shape;
    Alcotest.test_case "k-SAT series" `Quick test_ksat_series;
    Alcotest.test_case "fuzz graphs don't crash validation" `Quick
      test_fuzz_is_arbitrary_but_valid_ocaml_graph;
  ]
