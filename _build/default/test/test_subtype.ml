(* The subtype relation ⊑S (Section 4.3): the seven rules, plus order
   properties via qcheck. *)

module Sub = Graphql_pg.Subtype
module W = Graphql_pg.Wrapped

let check_bool = Alcotest.(check bool)

let sch =
  lazy
    (Graphql_pg.schema_of_string_exn
       {|
interface I { x: Int }
type A implements I { x: Int }
type B implements I { x: Int }
type C { y: Int }
union U = A | C
|})

let test_named_rules () =
  let sch = Lazy.force sch in
  (* rule 1: reflexivity *)
  List.iter
    (fun t -> check_bool ("refl " ^ t) true (Sub.named sch t t))
    [ "A"; "I"; "U"; "Int"; "C" ];
  (* rule 2: implementation *)
  check_bool "A <= I" true (Sub.named sch "A" "I");
  check_bool "B <= I" true (Sub.named sch "B" "I");
  check_bool "C <= I fails" false (Sub.named sch "C" "I");
  check_bool "I <= A fails" false (Sub.named sch "I" "A");
  (* rule 3: union membership *)
  check_bool "A <= U" true (Sub.named sch "A" "U");
  check_bool "C <= U" true (Sub.named sch "C" "U");
  check_bool "B <= U fails" false (Sub.named sch "B" "U");
  (* no cross-relation *)
  check_bool "A <= B fails" false (Sub.named sch "A" "B");
  check_bool "I <= U fails" false (Sub.named sch "I" "U")

let w n = W.Named n
let nn n = W.Non_null n
let l ?(inn = false) ?(nn = false) item = W.List { item; item_non_null = inn; non_null = nn }

let test_wrapped_rules () =
  let sch = Lazy.force sch in
  let ( <= ) a b = Sub.wrapped sch a b in
  (* rule 1 on wrapped forms *)
  check_bool "[A] <= [A]" true (l "A" <= l "A");
  check_bool "[A!]! <= [A!]!" true (l ~inn:true ~nn:true "A" <= l ~inn:true ~nn:true "A");
  (* rule 4: list covariance *)
  check_bool "[A] <= [I]" true (l "A" <= l "I");
  check_bool "[I] <= [A] fails" false (l "I" <= l "A");
  (* rule 5: injection into a list *)
  check_bool "A <= [I]" true (w "A" <= l "I");
  check_bool "A <= [A]" true (w "A" <= l "A");
  (* rule 6: dropping non-null on the left *)
  check_bool "A! <= I" true (nn "A" <= w "I");
  check_bool "A! <= [I]" true (nn "A" <= l "I");
  (* rule 7: non-null covariance *)
  check_bool "A! <= I!" true (nn "A" <= nn "I");
  check_bool "A <= I! fails" false (w "A" <= nn "I");
  (* item nullability *)
  check_bool "[A!] <= [I]" true (l ~inn:true "A" <= l "I");
  check_bool "[A] <= [I!] fails" false (l "A" <= l ~inn:true "I");
  check_bool "[A!] <= [I!]" true (l ~inn:true "A" <= l ~inn:true "I");
  (* outer non-null on lists *)
  check_bool "[A]! <= [I]" true (l ~nn:true "A" <= l "I");
  check_bool "[A] <= [I]! fails" false (l "A" <= l ~nn:true "I");
  check_bool "[A]! <= [I]!" true (l ~nn:true "A" <= l ~nn:true "I");
  (* lists never below named types *)
  check_bool "[A] <= I fails" false (l "A" <= w "I");
  check_bool "[A] <= A fails" false (l "A" <= w "A")

let test_supertypes_subtypes () =
  let sch = Lazy.force sch in
  check_bool "supertypes A" true (Sub.supertypes sch "A" = [ "A"; "I"; "U" ]);
  check_bool "subtypes I" true (Sub.subtypes sch "I" = [ "A"; "B"; "I" ]);
  check_bool "subtypes U" true (Sub.subtypes sch "U" = [ "A"; "C"; "U" ])

(* qcheck: reflexivity and transitivity over random wrapped types *)
let wrapped_gen =
  let open QCheck2.Gen in
  let name = oneofl [ "A"; "B"; "C"; "I"; "U"; "Int" ] in
  oneof
    [
      map (fun n -> W.Named n) name;
      map (fun n -> W.Non_null n) name;
      map
        (fun (n, (inn, out)) -> W.List { item = n; item_non_null = inn; non_null = out })
        (pair name (pair bool bool));
    ]

let prop_reflexive =
  QCheck2.Test.make ~name:"subtype reflexive" ~count:200 wrapped_gen (fun t ->
      Sub.wrapped (Lazy.force sch) t t)

let prop_transitive =
  QCheck2.Test.make ~name:"subtype transitive" ~count:2000
    QCheck2.Gen.(tup3 wrapped_gen wrapped_gen wrapped_gen)
    (fun (a, b, c) ->
      let sch = Lazy.force sch in
      (not (Sub.wrapped sch a b && Sub.wrapped sch b c)) || Sub.wrapped sch a c)

let suite =
  [
    Alcotest.test_case "named rules 1-3" `Quick test_named_rules;
    Alcotest.test_case "wrapped rules 4-7" `Quick test_wrapped_rules;
    Alcotest.test_case "supertypes/subtypes" `Quick test_supertypes_subtypes;
    QCheck_alcotest.to_alcotest prop_reflexive;
    QCheck_alcotest.to_alcotest prop_transitive;
  ]
