(* End-to-end format pipelines the CLI relies on: schema SDL round-trips
   through To_sdl/Of_ast, PGF files round-trip through save/load, DIMACS
   through Reduction, and the generated artifacts re-enter the toolchain. *)

module G = Graphql_pg.Property_graph

let check_bool = Alcotest.(check bool)

let tmp name suffix =
  Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "gpgs_test_%s%s" name suffix)

let test_schema_sdl_round_trip () =
  (* Schema -> SDL text -> Schema preserves the formal content *)
  let sch = Graphql_pg.Social.schema () in
  let text = Graphql_pg.schema_to_string sch in
  match Graphql_pg.schema_of_string text with
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg
  | Ok sch' ->
    check_bool "same object types" true
      (Graphql_pg.Schema.object_names sch = Graphql_pg.Schema.object_names sch');
    check_bool "same interfaces" true
      (Graphql_pg.Schema.interface_names sch = Graphql_pg.Schema.interface_names sch');
    check_bool "same size" true
      (Graphql_pg.Schema.size sch = Graphql_pg.Schema.size sch');
    (* validation behaviour is identical on a workload *)
    let g = Graphql_pg.Social.generate ~persons:20 () in
    check_bool "same verdict" true
      (Graphql_pg.conforms sch g = Graphql_pg.conforms sch' g)

let test_pgf_file_round_trip () =
  let g = Graphql_pg.Social.generate ~persons:12 () in
  let path = tmp "graph" ".pgf" in
  Graphql_pg.Pgf.save path g;
  (match Graphql_pg.Pgf.load path with
  | Ok g' -> check_bool "file round-trip" true (G.equal g g')
  | Error e -> Alcotest.failf "load failed: %a" Graphql_pg.Pgf.pp_error e);
  Sys.remove path

let test_reduction_sdl_is_valid () =
  (* the reduction's SDL re-enters the normal pipeline *)
  let f = Graphql_pg.Cnf.paper_example in
  let text = Graphql_pg.Reduction.to_sdl f in
  match Graphql_pg.schema_of_string text with
  | Error msg -> Alcotest.failf "reduction SDL invalid: %s" msg
  | Ok sch ->
    check_bool "OT present" true
      (Graphql_pg.Schema.type_kind sch "OT" = Some Graphql_pg.Schema.Object)

let test_witness_pgf_validates () =
  (* `gpgs sat --witness` output re-validates with `gpgs validate` *)
  let sch = Graphql_pg.Social.schema () in
  match (Graphql_pg.Satisfiability.check sch "Forum").Graphql_pg.Satisfiability.witness with
  | None -> Alcotest.fail "no witness"
  | Some g ->
    let path = tmp "witness" ".pgf" in
    Graphql_pg.Pgf.save path g;
    (match Graphql_pg.Pgf.load path with
    | Ok g' -> check_bool "witness validates after round-trip" true (Graphql_pg.conforms sch g')
    | Error e -> Alcotest.failf "load failed: %a" Graphql_pg.Pgf.pp_error e);
    Sys.remove path

let test_api_extension_reparses_as_pg_schema () =
  (* the extended schema is itself usable as a (lenient) PG schema *)
  let sch = Graphql_pg.Social.schema () in
  match Graphql_pg.Api_extension.extend_to_string sch with
  | Error msg -> Alcotest.failf "extend: %s" msg
  | Ok text -> (
    match Graphql_pg.Of_ast.parse_lenient text with
    | Ok sch' ->
      check_bool "Query type present" true
        (Graphql_pg.Schema.type_kind sch' "Query" = Some Graphql_pg.Schema.Object)
    | Error msg -> Alcotest.failf "extended schema rejected: %s" msg)

let suite =
  [
    Alcotest.test_case "schema SDL round-trip" `Quick test_schema_sdl_round_trip;
    Alcotest.test_case "PGF file round-trip" `Quick test_pgf_file_round_trip;
    Alcotest.test_case "reduction SDL re-enters the pipeline" `Quick
      test_reduction_sdl_is_valid;
    Alcotest.test_case "witness PGF validates" `Quick test_witness_pgf_validates;
    Alcotest.test_case "API extension re-parses as schema" `Quick
      test_api_extension_reparses_as_pg_schema;
  ]

let test_graphml_export () =
  let g = Graphql_pg.Social.generate ~persons:5 () in
  let xml = Graphql_pg.Graphml.to_string g in
  let contains needle =
    let n = String.length needle and l = String.length xml in
    let rec go i = i + n <= l && (String.sub xml i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "header" true (contains "<graphml");
  check_bool "node with label" true (contains {|<data key="node_label">Person</data>|});
  check_bool "edge with label" true (contains {|<data key="edge_label">livesIn</data>|});
  check_bool "typed key declared" true
    (contains {|attr.name="population" attr.type="int"|});
  check_bool "escaping" true
    (let g2, v = G.add_node G.empty ~label:"A<B" () in
     ignore v;
     let xml2 = Graphql_pg.Graphml.to_string g2 in
     let rec go i =
       i + 9 <= String.length xml2 && (String.sub xml2 i 9 = "A&lt;B</d" || go (i + 1))
     in
     go 0)

let suite = suite @ [ Alcotest.test_case "GraphML export" `Quick test_graphml_export ]
