(* Neo4j/Cypher 3.5 constraint DDL export (Section 2.1 comparison). *)

module N = Graphql_pg.Neo4j_ddl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains needle haystack =
  let n = String.length needle and l = String.length haystack in
  let rec go i = i + n <= l && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let sch =
  Graphql_pg.schema_of_string_exn
    {|
type User @key(fields: ["id"]) @key(fields: ["first", "last"]) {
  id: ID! @required
  first: String
  last: String
  email: String! @required
  posts(weight: Float! note: String): [Post] @distinct
}
type Post {
  title: String! @required
  author: User! @required
}
|}

let statements, dropped = N.translate sch

let has stmt = List.exists (contains stmt) statements

let test_unique_constraint () =
  check_bool "single key" true (has "CREATE CONSTRAINT ON (n:User) ASSERT n.id IS UNIQUE")

let test_node_key () =
  check_bool "composite key" true (has "ASSERT (n.first, n.last) IS NODE KEY")

let test_existence () =
  check_bool "required node property" true
    (has "CREATE CONSTRAINT ON (n:User) ASSERT exists(n.email)");
  check_bool "required post title" true
    (has "CREATE CONSTRAINT ON (n:Post) ASSERT exists(n.title)")

let test_edge_property_existence () =
  check_bool "non-null edge property" true
    (has "CREATE CONSTRAINT ON ()-[r:posts]-() ASSERT exists(r.weight)");
  check_bool "nullable edge property skipped" true
    (not (has "exists(r.note)"))

let test_dropped_report () =
  let constructs = List.map (fun (d : N.dropped) -> d.N.construct) dropped in
  let mentions needle = List.exists (contains needle) constructs in
  check_bool "typing dropped" true (mentions "User.id: ID!");
  check_bool "endpoint typing dropped" true (mentions "(Post)-[:author]->(User)");
  check_bool "WS4 dropped" true (mentions "at most one author per Post");
  check_bool "@distinct dropped" true (mentions "@distinct on User.posts");
  check_bool "closed world dropped" true (mentions "strong satisfaction")

let test_script_shape () =
  let script = N.to_script sch in
  check_bool "header" true (contains "Cypher 3.5 constraint DDL" script);
  check_int "statement count" (List.length statements)
    (List.length
       (List.filter (fun l -> not (String.length l >= 2 && String.sub l 0 2 = "//"))
          (String.split_on_char '\n' script)
       |> List.filter (fun l -> String.trim l <> "")))

let suite =
  [
    Alcotest.test_case "unique constraint from @key" `Quick test_unique_constraint;
    Alcotest.test_case "node key from composite @key" `Quick test_node_key;
    Alcotest.test_case "existence from @required" `Quick test_existence;
    Alcotest.test_case "edge property existence" `Quick test_edge_property_existence;
    Alcotest.test_case "dropped constructs reported" `Quick test_dropped_report;
    Alcotest.test_case "script shape" `Quick test_script_shape;
  ]
