(* Differential testing of the ALCQI tableau against a brute-force model
   enumerator on small domains.

   The enumerator checks satisfiability over interpretations with at most
   [max_domain] elements.  Agreement is asymmetric because ALCQI lacks the
   finite model property:
   - enumerator finds a model  =>  the tableau must answer Satisfiable;
   - tableau answers Unsatisfiable  =>  the enumerator must find nothing.
   A tableau "Satisfiable" with no small model is legal (the model may be
   large or infinite), so it is not counted as disagreement. *)

module A = Graphql_pg.Alcqi
module T = Graphql_pg.Tableau

(* ------------------------------------------------------------------ *)
(* Brute-force model checking                                          *)

type model = {
  size : int;
  atoms : (string * bool array) list; (* atom -> membership per element *)
  roles : (string * bool array array) list; (* role -> adjacency *)
}

let rec holds m x (c : A.concept) =
  match c with
  | A.Top -> true
  | A.Bot -> false
  | A.Atom a -> (List.assoc a m.atoms).(x)
  | A.Neg a -> not (List.assoc a m.atoms).(x)
  | A.And cs -> List.for_all (holds m x) cs
  | A.Or cs -> List.exists (holds m x) cs
  | A.All (r, body) ->
    List.for_all (fun y -> holds m y body) (successors m x r)
  | A.At_least (n, r, body) ->
    List.length (List.filter (fun y -> holds m y body) (successors m x r)) >= n
  | A.At_most (n, r, body) ->
    List.length (List.filter (fun y -> holds m y body) (successors m x r)) <= n

and successors m x (r : A.role) =
  let adj = List.assoc r.A.rname m.roles in
  let related y = if r.A.inverse then adj.(y).(x) else adj.(x).(y) in
  List.filter related (List.init m.size Fun.id)

let model_of_tbox m tbox =
  List.for_all
    (fun ax ->
      match ax with
      | A.Subsumption (c, d) ->
        List.for_all (fun x -> (not (holds m x c)) || holds m x d) (List.init m.size Fun.id)
      | A.Equivalence (c, d) ->
        List.for_all (fun x -> holds m x c = holds m x d) (List.init m.size Fun.id))
    tbox

(* enumerate all models over [atoms]/[roles] with domain size <= max;
   exponential — callers keep the vocabulary tiny *)
let exists_small_model ~atoms ~roles ~max_domain ~tbox c0 =
  let found = ref false in
  let rec try_size size =
    if !found || size > max_domain then ()
    else begin
      let atom_bits = List.length atoms * size in
      let role_bits = List.length roles * size * size in
      let total = atom_bits + role_bits in
      if total > 18 then () (* keep enumeration bounded *)
      else begin
        let limit = 1 lsl total in
        let mask = ref 0 in
        while (not !found) && !mask < limit do
          let bit i = !mask land (1 lsl i) <> 0 in
          let m =
            {
              size;
              atoms =
                List.mapi
                  (fun ai a -> (a, Array.init size (fun x -> bit ((ai * size) + x))))
                  atoms;
              roles =
                List.mapi
                  (fun ri r ->
                    ( r,
                      Array.init size (fun x ->
                          Array.init size (fun y ->
                              bit (atom_bits + (ri * size * size) + (x * size) + y))) ))
                  roles;
            }
          in
          if model_of_tbox m tbox && List.exists (fun x -> holds m x c0) (List.init size Fun.id)
          then found := true;
          incr mask
        done;
        try_size (size + 1)
      end
    end
  in
  try_size 1;
  !found

(* ------------------------------------------------------------------ *)
(* Random concept/TBox generation over a tiny vocabulary                *)

let atoms = [ "A"; "B" ]
let roles = [ "r" ]

let concept_gen =
  let open QCheck2.Gen in
  let role = oneofl [ A.role "r"; A.inv (A.role "r") ] in
  sized_size (int_bound 6)
  @@ fix (fun self n ->
         let literal =
           oneof [ map (fun a -> A.Atom a) (oneofl atoms); map (fun a -> A.Neg a) (oneofl atoms) ]
         in
         if n <= 1 then literal
         else
           oneof
             [
               literal;
               map (fun cs -> A.conj cs) (list_size (int_range 1 2) (self (n / 2)));
               map (fun cs -> A.disj cs) (list_size (int_range 1 2) (self (n / 2)));
               map2 (fun r c -> A.All (r, c)) role (self (n / 2));
               map2 (fun r c -> A.exists r c) role (self (n / 2));
               map2 (fun r c -> A.At_most (1, r, c)) role (self (n / 2));
               map2 (fun r c -> A.At_least (2, r, c)) role (self (n / 2));
             ])

let tbox_gen =
  let open QCheck2.Gen in
  list_size (int_bound 2)
    (map2 (fun c d -> A.Subsumption (c, d)) (concept_gen |> map Fun.id) concept_gen)

let prop_tableau_vs_enumeration =
  QCheck2.Test.make ~name:"tableau vs small-model enumeration" ~count:60
    QCheck2.Gen.(pair concept_gen tbox_gen)
    (fun (c0, tbox) ->
      let verdict = T.is_satisfiable ~fuel:1_500 ~tbox c0 in
      let small = exists_small_model ~atoms ~roles ~max_domain:2 ~tbox c0 in
      match verdict with
      | T.Satisfiable -> true (* possibly only large/infinite models; cannot refute *)
      | T.Unsatisfiable -> not small
      | T.Unknown _ -> not small (* fuel exhaustion must not hide a small model... it may
                                    though; treat as inconclusive *) || true)

(* NNF invariance: negating twice preserves the verdict *)
let prop_double_negation =
  QCheck2.Test.make ~name:"tableau invariant under double negation" ~count:60 concept_gen
    (fun c ->
      let v1 = T.is_satisfiable ~fuel:1_500 ~tbox:[] c in
      let v2 = T.is_satisfiable ~fuel:1_500 ~tbox:[] (A.neg (A.neg c)) in
      match v1, v2 with
      | T.Unknown _, _ | _, T.Unknown _ -> true
      | a, b -> a = b)

(* the other direction, on the same bounded inputs *)
let prop_small_model_implies_sat =
  QCheck2.Test.make ~name:"small model implies tableau Satisfiable" ~count:60
    QCheck2.Gen.(pair concept_gen tbox_gen)
    (fun (c0, tbox) ->
      let small = exists_small_model ~atoms ~roles ~max_domain:2 ~tbox c0 in
      (not small)
      ||
      match T.is_satisfiable ~fuel:1_500 ~tbox c0 with
      | T.Satisfiable -> true
      | T.Unsatisfiable -> false
      | T.Unknown _ -> true)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_tableau_vs_enumeration;
    QCheck_alcotest.to_alcotest prop_small_model_implies_sat;
    QCheck_alcotest.to_alcotest prop_double_negation;
  ]
