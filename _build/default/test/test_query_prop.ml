(* Property tests for the query engine: results must agree with direct
   graph scans on generated social graphs, and be invariant under
   query-level refactorings (fragment inlining, aliasing). *)

module J = Graphql_pg.Json
module G = Graphql_pg.Property_graph
module V = Graphql_pg.Value

let sch = Graphql_pg.Social.schema ()

let graph_of_seed seed = Graphql_pg.Social.generate ~seed ~persons:(10 + (seed mod 30)) ()

let run g text =
  match Graphql_pg.query sch g text with
  | Ok data -> data
  | Error msg -> QCheck2.Test.fail_reportf "query failed: %s" msg

let as_list = function J.List l -> l | _ -> []

(* all<T> { key } returns exactly the key properties of the T-nodes *)
let prop_all_matches_scan =
  QCheck2.Test.make ~name:"allPerson agrees with a direct scan" ~count:25
    QCheck2.Gen.(int_bound 1_000)
    (fun seed ->
      let g = graph_of_seed seed in
      let data = run g "{ allPerson { id } }" in
      let returned =
        as_list (J.member "allPerson" data)
        |> List.map (fun p -> J.member "id" p)
        |> List.sort compare
      in
      let expected =
        G.nodes g
        |> List.filter (fun v -> G.node_label g v = "Person")
        |> List.map (fun v ->
               match G.node_prop g v "id" with
               | Some pv -> J.of_property_value pv
               | None -> J.Null)
        |> List.sort compare
      in
      returned = expected)

(* relationship traversal counts match out-degrees *)
let prop_traversal_counts =
  QCheck2.Test.make ~name:"knows traversal count = labeled out-degree" ~count:25
    QCheck2.Gen.(int_bound 1_000)
    (fun seed ->
      let g = graph_of_seed seed in
      let data = run g "{ allPerson { id knows { id } } }" in
      let people = as_list (J.member "allPerson" data) in
      let by_id =
        List.map (fun p -> (J.member "id" p, List.length (as_list (J.member "knows" p)))) people
      in
      List.for_all
        (fun v ->
          G.node_label g v <> "Person"
          ||
          let id = match G.node_prop g v "id" with Some pv -> J.of_property_value pv | None -> J.Null in
          let expected =
            List.length
              (List.filter (fun e -> G.edge_label g e = "knows") (G.out_edges g v))
          in
          List.assoc_opt id by_id = Some expected)
        (G.nodes g))

(* inlining a named fragment does not change the result *)
let prop_fragment_inlining =
  QCheck2.Test.make ~name:"fragment inlining preserves results" ~count:25
    QCheck2.Gen.(int_bound 1_000)
    (fun seed ->
      let g = graph_of_seed seed in
      let with_fragment =
        run g
          {|query { allPost { ...postBits author { name } } }
fragment postBits on Post { id content }|}
      in
      let inlined = run g {|{ allPost { id content author { name } } }|} in
      J.equal with_fragment inlined)

(* an alias only renames the key *)
let prop_alias_renames =
  QCheck2.Test.make ~name:"aliases rename response keys" ~count:25
    QCheck2.Gen.(int_bound 1_000)
    (fun seed ->
      let g = graph_of_seed seed in
      let plain = as_list (J.member "allCity" (run g "{ allCity { name } }")) in
      let aliased = as_list (J.member "allCity" (run g "{ allCity { n: name } }")) in
      List.length plain = List.length aliased
      && List.for_all2 (fun p a -> J.equal (J.member "name" p) (J.member "n" a)) plain aliased)

(* inverse fields agree with forward traversal *)
let prop_inverse_agrees =
  QCheck2.Test.make ~name:"inverse fields invert forward edges" ~count:15
    QCheck2.Gen.(int_bound 1_000)
    (fun seed ->
      let g = graph_of_seed seed in
      (* forward: person -> livesIn -> city; inverse: city -> inhabitants *)
      let forward = run g {|{ allPerson { id livesIn { name } } }|} in
      let inverse = run g {|{ allCity { name _inverse_livesIn_of_person { id } } }|} in
      let forward_pairs =
        as_list (J.member "allPerson" forward)
        |> List.map (fun p -> (J.member "id" p, J.member "name" (J.member "livesIn" p)))
        |> List.sort compare
      in
      let inverse_pairs =
        as_list (J.member "allCity" inverse)
        |> List.concat_map (fun c ->
               as_list (J.member "_inverse_livesIn_of_person" c)
               |> List.map (fun p -> (J.member "id" p, J.member "name" c)))
        |> List.sort compare
      in
      forward_pairs = inverse_pairs)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_all_matches_scan;
    QCheck_alcotest.to_alcotest prop_traversal_counts;
    QCheck_alcotest.to_alcotest prop_fragment_inlining;
    QCheck_alcotest.to_alcotest prop_alias_renames;
    QCheck_alcotest.to_alcotest prop_inverse_agrees;
  ]
