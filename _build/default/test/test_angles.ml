(* The Angles (2018) baseline model and the translation from SDL schemas
   (experiment E11). *)

module A = Graphql_pg.Angles_schema
module AV = Graphql_pg.Angles_validate
module AO = Graphql_pg.Angles_of_graphql
module G = Graphql_pg.Property_graph
module V = Graphql_pg.Value

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let person_prop = { A.p_type = "String"; p_list = false; p_mandatory = true; p_unique = false }

let tiny =
  A.empty
  |> (fun s -> A.add_node_type s "Person" { A.nt_props = [ ("name", person_prop) ] })
  |> (fun s -> A.add_node_type s "City" { A.nt_props = [] })
  |> fun s ->
  A.add_edge_type s
    {
      A.et_source = "Person";
      et_label = "livesIn";
      et_target = "City";
      et_props = [];
      et_cardinality = A.One_to_many;
      et_mandatory = true;
    }

let person_city ?(name = true) ?(lives = true) () =
  let g, p =
    G.add_node G.empty ~label:"Person"
      ~props:(if name then [ ("name", V.String "p") ] else [])
      ()
  in
  let g, c = G.add_node g ~label:"City" () in
  if lives then fst (G.add_edge g ~label:"livesIn" p c) else g

let test_validate_basics () =
  check_bool "conformant" true (AV.conforms tiny (person_city ()));
  check_bool "missing mandatory property" false (AV.conforms tiny (person_city ~name:false ()));
  check_bool "missing mandatory edge" false (AV.conforms tiny (person_city ~lives:false ()))

let test_undeclared () =
  let g, _ = G.add_node G.empty ~label:"Alien" () in
  check_bool "unknown node type" false (AV.conforms tiny g);
  let g = person_city () in
  let p = List.hd (G.nodes g) in
  let g = G.set_node_prop g p "age" (V.Int 3) in
  check_bool "unknown property" false (AV.conforms tiny g);
  let g2 = person_city () in
  let nodes = G.nodes g2 in
  let g2, _ = G.add_edge g2 ~label:"knows" (List.hd nodes) (List.nth nodes 1) in
  check_bool "unknown edge type" false (AV.conforms tiny g2)

let test_cardinality_orientation () =
  let et card =
    A.add_edge_type
      (A.add_node_type (A.add_node_type A.empty "A" { A.nt_props = [] }) "B" { A.nt_props = [] })
      {
        A.et_source = "A";
        et_label = "r";
        et_target = "B";
        et_props = [];
        et_cardinality = card;
        et_mandatory = false;
      }
  in
  let fan_out =
    let g, a = G.add_node G.empty ~label:"A" () in
    let g, b1 = G.add_node g ~label:"B" () in
    let g, b2 = G.add_node g ~label:"B" () in
    let g, _ = G.add_edge g ~label:"r" a b1 in
    fst (G.add_edge g ~label:"r" a b2)
  in
  let fan_in =
    let g, a1 = G.add_node G.empty ~label:"A" () in
    let g, a2 = G.add_node g ~label:"A" () in
    let g, b = G.add_node g ~label:"B" () in
    let g, _ = G.add_edge g ~label:"r" a1 b in
    fst (G.add_edge g ~label:"r" a2 b)
  in
  check_bool "1:N blocks fan-out" false (AV.conforms (et A.One_to_many) fan_out);
  check_bool "1:N allows fan-in" true (AV.conforms (et A.One_to_many) fan_in);
  check_bool "N:1 allows fan-out" true (AV.conforms (et A.Many_to_one) fan_out);
  check_bool "N:1 blocks fan-in" false (AV.conforms (et A.Many_to_one) fan_in);
  check_bool "N:M allows both" true
    (AV.conforms (et A.Many_to_many) fan_out && AV.conforms (et A.Many_to_many) fan_in);
  check_bool "1:1 blocks both" true
    ((not (AV.conforms (et A.One_to_one) fan_out))
    && not (AV.conforms (et A.One_to_one) fan_in))

let test_unique_property () =
  let sch =
    A.add_node_type A.empty "U"
      {
        A.nt_props =
          [ ("k", { A.p_type = "ID"; p_list = false; p_mandatory = false; p_unique = true }) ];
      }
  in
  let g, _ = G.add_node G.empty ~label:"U" ~props:[ ("k", V.Id "same") ] () in
  let g, _ = G.add_node g ~label:"U" ~props:[ ("k", V.Id "same") ] () in
  check_bool "duplicate unique" false (AV.conforms sch g);
  let g2, _ = G.add_node G.empty ~label:"U" ~props:[ ("k", V.Id "a") ] () in
  let g2, _ = G.add_node g2 ~label:"U" ~props:[ ("k", V.Id "b") ] () in
  check_bool "distinct unique" true (AV.conforms sch g2)

(* --- translation from SDL schemas --- *)

let test_translation_covers_angles_features () =
  (* the features Angles lists (Section 2.1): property types, allowed edge
     triples, mandatory properties/edges, uniqueness, cardinalities *)
  let sch =
    Graphql_pg.schema_of_string_exn
      {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String
  livesIn: City! @required
  knows: [Person]
}
type City {
  name: String! @required
}
|}
  in
  let angles, dropped = AO.translate sch in
  check_int "nothing dropped" 0 (List.length dropped);
  (match A.node_type angles "Person" with
  | Some nt ->
    let id = List.assoc "id" nt.A.nt_props in
    check_bool "id mandatory" true id.A.p_mandatory;
    check_bool "id unique" true id.A.p_unique;
    let name = List.assoc "name" nt.A.nt_props in
    check_bool "name optional" false name.A.p_mandatory
  | None -> Alcotest.fail "Person missing");
  (match A.edge_types_for angles ~source:"Person" ~label:"livesIn" ~target:"City" with
  | [ et ] ->
    check_bool "mandatory" true et.A.et_mandatory;
    check_bool "1:N (non-list)" true (et.A.et_cardinality = A.One_to_many)
  | _ -> Alcotest.fail "livesIn edge type missing");
  match A.edge_types_for angles ~source:"Person" ~label:"knows" ~target:"Person" with
  | [ et ] -> check_bool "N:M (list)" true (et.A.et_cardinality = A.Many_to_many)
  | _ -> Alcotest.fail "knows edge type missing"

let test_translation_reports_dropped () =
  let sch =
    Graphql_pg.schema_of_string_exn
      {|
type A @key(fields: ["x", "y"]) {
  x: ID
  y: ID
  r: [A] @distinct @noLoops
  s: [B] @requiredForTarget
}
type B { z: Int }
|}
  in
  let _, dropped = AO.translate sch in
  let constructs = List.map (fun d -> d.AO.construct) dropped in
  let has needle = List.exists (fun c -> String.length c >= String.length needle &&
    (let rec go i = i + String.length needle <= String.length c && (String.sub c i (String.length needle) = needle || go (i+1)) in go 0)) constructs in
  check_bool "@key multi dropped" true (has "@key");
  check_bool "@distinct dropped" true (has "@distinct");
  check_bool "@noLoops dropped" true (has "@noLoops");
  check_bool "@requiredForTarget dropped" true (has "@requiredForTarget")

let test_translation_agrees_on_social () =
  (* conformant SDL graphs conform to the translated Angles schema (the
     Angles model is strictly weaker) *)
  let sch = Graphql_pg.Social.schema () in
  let g = Graphql_pg.Social.generate ~persons:60 () in
  let angles, _ = AO.translate sch in
  check_bool "conformant graph passes Angles" true (AV.conforms angles g);
  let expressed, dropped = AO.coverage sch in
  check_bool "most constraints expressible" true (expressed > dropped)

let suite =
  [
    Alcotest.test_case "validation basics" `Quick test_validate_basics;
    Alcotest.test_case "undeclared elements" `Quick test_undeclared;
    Alcotest.test_case "cardinality orientation" `Quick test_cardinality_orientation;
    Alcotest.test_case "unique properties" `Quick test_unique_property;
    Alcotest.test_case "translation covers Angles features" `Quick
      test_translation_covers_angles_features;
    Alcotest.test_case "translation reports dropped constructs" `Quick
      test_translation_reports_dropped;
    Alcotest.test_case "translation agrees on social workload" `Quick
      test_translation_agrees_on_social;
  ]
