(* Quickstart: the paper's running example (Examples 3.1-3.5 and 3.12).

   Defines the UserSession/User schema in SDL, builds a conformant
   Property Graph, validates it, then shows how violations are reported.

   Run with:  dune exec examples/quickstart.exe *)

module GP = Graphql_pg
module V = GP.Value

(* Example 3.1, with the @key of Example 3.4 and the edge properties of
   Example 3.12. *)
let schema_text =
  {|
type UserSession {
  id: ID! @required
  user(certainty: Float! comment: String): User! @required
  startTime: Time! @required
  endTime: Time!
}

type User @key(fields: ["id"]) {
  id: ID! @required
  login: String! @required
  nicknames: [String!]!
}

scalar Time
|}

let () =
  let schema = GP.schema_of_string_exn schema_text in
  Format.printf "parsed schema: %a@.@." GP.Schema.pp_summary schema;

  (* Build a conformant graph: one user, two sessions. *)
  let b = GP.Builder.create () in
  let _ =
    GP.Builder.node b "alice" ~label:"User"
      ~props:
        [
          ("id", V.Id "u1");
          ("login", V.String "alice");
          ("nicknames", V.List [ V.String "al"; V.String "lissa" ]);
        ]
      ()
  in
  let _ =
    GP.Builder.node b "s1" ~label:"UserSession"
      ~props:[ ("id", V.Id "s1"); ("startTime", V.String "2019-06-30T09:00") ]
      ()
  in
  let _ =
    GP.Builder.node b "s2" ~label:"UserSession"
      ~props:
        [
          ("id", V.Id "s2");
          ("startTime", V.String "2019-06-30T11:30");
          ("endTime", V.String "2019-06-30T12:00");
        ]
      ()
  in
  (* Every session must have exactly one "user" edge (Example 3.5); the
     edge carries a mandatory "certainty" property (Example 3.12). *)
  let _ = GP.Builder.edge b "s1" "alice" ~label:"user" ~props:[ ("certainty", V.Float 0.98) ] () in
  let _ =
    GP.Builder.edge b "s2" "alice" ~label:"user"
      ~props:[ ("certainty", V.Float 0.87); ("comment", V.String "resumed session") ]
      ()
  in
  let graph = GP.Builder.graph b in
  Format.printf "graph:@.%a@." GP.Property_graph.pp_full graph;
  Format.printf "strongly satisfies the schema: %b@.@." (GP.conforms schema graph);

  (* Now break it in three ways and watch the rules fire. *)
  let bob = GP.Builder.node b "bob" ~label:"User" ~props:[ ("id", V.Id "u1") ] () in
  ignore bob;
  let graph = GP.Builder.graph b in
  let report = GP.validate schema graph in
  Format.printf "after adding a duplicate-key user without a login:@.%a@.@."
    GP.Validate.pp_report report;

  (* Serialize and reload through the PGF interchange format. *)
  let pgf = GP.graph_to_pgf graph in
  let reloaded = GP.graph_of_pgf_exn pgf in
  Format.printf "PGF round-trip preserves the graph: %b@."
    (GP.Property_graph.equal graph reloaded)
