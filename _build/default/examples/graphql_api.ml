(* The full Section 3.6 story: define a Property Graph schema, build a
   conforming graph, extend the schema into a GraphQL API schema, and run
   GraphQL queries against the graph — aliases, arguments as edge-property
   filters, variables, fragments, inverse fields, __typename dispatch.

   Run with:  dune exec examples/graphql_api.exe *)

module GP = Graphql_pg
module V = GP.Value

let schema_text =
  {|
type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String! @required
  favoriteFood: Food
  knows(since: Int!): [Person] @distinct @noLoops
}
union Food = Pizza | Pasta
type Pizza @key(fields: ["name"]) {
  name: String! @required
  toppings: [String!]!
}
type Pasta {
  name: String! @required
}
|}

let build_graph () =
  let b = GP.Builder.create () in
  let person handle name =
    ignore
      (GP.Builder.node b handle ~label:"Person"
         ~props:[ ("id", V.Id handle); ("name", V.String name) ]
         ())
  in
  person "olaf" "Olaf";
  person "jan" "Jan";
  person "renzo" "Renzo";
  ignore
    (GP.Builder.node b "margherita" ~label:"Pizza"
       ~props:
         [
           ("name", V.String "Margherita");
           ("toppings", V.List [ V.String "tomato"; V.String "mozzarella" ]);
         ]
       ());
  ignore
    (GP.Builder.node b "carbonara" ~label:"Pasta" ~props:[ ("name", V.String "Carbonara") ] ());
  ignore (GP.Builder.edge b "olaf" "margherita" ~label:"favoriteFood" ());
  ignore (GP.Builder.edge b "jan" "carbonara" ~label:"favoriteFood" ());
  ignore (GP.Builder.edge b "olaf" "jan" ~label:"knows" ~props:[ ("since", V.Int 2017) ] ());
  ignore (GP.Builder.edge b "olaf" "renzo" ~label:"knows" ~props:[ ("since", V.Int 2019) ] ());
  ignore (GP.Builder.edge b "jan" "olaf" ~label:"knows" ~props:[ ("since", V.Int 2017) ] ());
  GP.Builder.graph b

let run_query schema graph ?variables text =
  Format.printf "--- query ---%s@." text;
  match GP.query ?variables schema graph text with
  | Ok data -> Format.printf "%a@.@." GP.Json.pp data
  | Error msg -> Format.printf "error: %s@.@." msg

let () =
  let schema = GP.schema_of_string_exn schema_text in
  let graph = build_graph () in
  assert (GP.conforms schema graph);

  (* the API schema a GraphQL server would expose (Section 3.6) *)
  (match GP.Api_extension.extend_to_string schema with
  | Ok api -> Format.printf "generated API schema:@.%s@." api
  | Error msg -> failwith msg);

  (* 1. list + nested traversal + aliases *)
  run_query schema graph
    {|
{
  allPerson {
    name
    friends: knows { name }
  }
}
|};

  (* 2. key lookup, arguments as edge-property filters, __typename *)
  run_query schema graph
    {|
{
  personById(id: "olaf") {
    name
    oldFriends: knows(since: 2017) { name }
    favoriteFood { __typename }
  }
}
|};

  (* 3. fragments dispatching on the union members *)
  run_query schema graph
    {|
query Foods {
  allPerson {
    name
    favoriteFood {
      ... on Pizza { name toppings }
      ... on Pasta { name }
    }
  }
}
|};

  (* 4. inverse traversal (bidirectional navigation, Section 3.6) *)
  run_query schema graph
    {|
{
  pizzaByName(name: "Margherita") {
    name
    fans: _inverse_favoriteFood_of_person { name }
  }
}
|};

  (* 5. variables *)
  run_query schema graph
    ~variables:[ ("who", GP.Json.String "jan") ]
    {|
query Friends($who: ID!) {
  personById(id: $who) {
    name
    knows { name }
  }
}
|}
