(* Satisfiability analysis (Section 6.2): the three conflict diagrams of
   Example 6.1 and the Theorem 2 reduction, executed.

   The demo also shows the finite-model subtlety this library uncovers:
   the (b)-style schema is satisfiable in ALCQI (the paper's Theorem 3
   procedure) but has no *finite* conforming Property Graph — see
   EXPERIMENTS.md, experiment E8.

   Run with:  dune exec examples/satisfiability_demo.exe *)

module GP = Graphql_pg

(* Diagram (a), verbatim from Example 6.1.  Note: the schema is not
   interface consistent under Definition 4.3 as written (an erratum of the
   paper, see DESIGN.md), hence the lenient parse. *)
let example_a =
  {|
type OT1 {
}
interface IT {
  hasOT1: OT1 @uniqueForTarget
}
type OT2 implements IT {
  hasOT1: [OT1] @requiredForTarget
}
type OT3 implements IT {
  hasOT1: [OT1] @requiredForTarget
}
|}

(* Diagram (b): every graph with an OT2 node needs an infinite alternating
   chain of OT1/OT3 nodes.  (Reconstructed from the paper's description;
   the figure itself is ambiguous in the text.) *)
let example_b =
  {|
interface IT {
  f: OT1 @uniqueForTarget
}
type OT2 implements IT {
  f: OT1! @required
}
type OT3 implements IT {
  f: OT1! @required
}
type OT1 {
  g: OT3! @required @uniqueForTarget
}
|}

(* Diagram (c): any OT2 node would have to coincide with an OT3 node. *)
let example_c =
  {|
type OT1 {
}
interface IT {
  f: OT1 @uniqueForTarget
}
type OT2 implements IT {
  f: OT1! @required
}
type OT3 implements IT {
  f: [OT1] @requiredForTarget
}
|}

let show name text =
  let sch =
    match GP.Of_ast.parse_lenient text with
    | Ok sch -> sch
    | Error msg -> failwith msg
  in
  Format.printf "--- Example 6.1 %s ---@." name;
  List.iter
    (fun (ot, report) -> Format.printf "  %s: %a@." ot GP.Satisfiability.pp_report report)
    (GP.Satisfiability.check_all ~max_nodes:8 sch);
  Format.printf "@."

let () =
  show "(a) — conflict at OT1" example_a;
  show "(b) — only infinite models for OT2" example_b;
  show "(c) — OT2 collapses into OT3" example_c;

  (* Theorem 2: the worked formula (A | ~B | C) & (~A | ~C) & (D | B). *)
  let f = GP.Cnf.paper_example in
  Format.printf "--- Theorem 2 reduction ---@.";
  Format.printf "formula: %a@." GP.Cnf.pp f;
  Format.printf "DPLL verdict: %b@." (GP.Dpll.satisfiable f);
  let sch =
    match GP.Reduction.to_schema f with Ok sch -> sch | Error msg -> failwith msg
  in
  Format.printf "reduction schema: %a@." GP.Schema.pp_summary sch;
  let report = GP.Satisfiability.check ~max_nodes:16 sch GP.Reduction.ot_name in
  Format.printf "OT satisfiability: %a@." GP.Satisfiability.pp_report report;
  (match report.GP.Satisfiability.witness with
  | Some g -> (
    Format.printf "witness graph:@.%a" GP.Property_graph.pp_full g;
    match GP.Reduction.witness_assignment g f with
    | Some a ->
      Format.printf "extracted assignment: %s@."
        (String.concat ", "
           (List.mapi (fun i v -> Printf.sprintf "x%d=%b" (i + 1) v) (Array.to_list a)));
      Format.printf "assignment satisfies the formula: %b@." (GP.Cnf.eval f a)
    | None -> ())
  | None -> ());

  (* and an unsatisfiable formula *)
  let unsat = GP.Cnf.make ~num_vars:1 [ [ GP.Cnf.lit 1 ]; [ GP.Cnf.lit (-1) ] ] in
  let sch = match GP.Reduction.to_schema unsat with Ok s -> s | Error m -> failwith m in
  Format.printf "@.unsatisfiable formula %a:@." GP.Cnf.pp unsat;
  Format.printf "OT satisfiability: %a@."
    GP.Satisfiability.pp_report
    (GP.Satisfiability.check ~max_nodes:8 sch GP.Reduction.ot_name)
