examples/library_catalog.ml: Format Graphql_pg List Printf
