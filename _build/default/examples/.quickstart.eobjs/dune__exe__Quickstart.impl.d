examples/quickstart.ml: Format Graphql_pg
