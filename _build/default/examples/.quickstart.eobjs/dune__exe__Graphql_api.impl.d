examples/graphql_api.ml: Format Graphql_pg
