examples/quickstart.mli:
