examples/satisfiability_demo.mli:
