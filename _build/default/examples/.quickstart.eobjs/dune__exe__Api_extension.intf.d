examples/api_extension.mli:
