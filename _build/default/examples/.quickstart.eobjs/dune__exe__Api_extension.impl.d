examples/api_extension.ml: Format Graphql_pg List
