examples/graphql_api.mli:
