examples/mutations.ml: Format Graphql_pg String
