examples/satisfiability_demo.ml: Array Format Graphql_pg List Printf String
