examples/social_network.ml: Format Graphql_pg List String Sys
