examples/mutations.mli:
