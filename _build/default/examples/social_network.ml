(* A realistic end-to-end scenario on the social-network workload: schema
   with every directive of the paper, generated data at scale, validation
   with both engines, fault injection, and the Angles baseline.

   Run with:  dune exec examples/social_network.exe *)

module GP = Graphql_pg

let () =
  let schema = GP.Social.schema () in
  Format.printf "schema: %a@." GP.Schema.pp_summary schema;
  Format.printf "consistent: %b@." (GP.Consistency.is_consistent schema);
  Format.printf "unsatisfiable object types: [%s]@.@."
    (String.concat "; " (GP.unsatisfiable_types schema));

  let graph = GP.Social.generate ~persons:1_000 () in
  Format.printf "generated workload:@.%a@.@." GP.Stats.pp (GP.Stats.compute graph);

  (* validation with both engines, timed informally *)
  let time label f =
    let t0 = Sys.time () in
    let result = f () in
    Format.printf "%-18s %.1f ms@." label ((Sys.time () -. t0) *. 1000.0);
    result
  in
  let indexed =
    time "indexed engine:" (fun () ->
        GP.Validate.check ~engine:GP.Validate.Indexed schema graph)
  in
  Format.printf "violations: %d@.@." (List.length indexed.GP.Validate.violations);

  (* fault injection: corrupt 1% of nodes, see which rules fire *)
  let corrupted = GP.Social.corrupt_uniformly ~rate:0.01 schema graph in
  let report = GP.Validate.check schema corrupted in
  Format.printf "after corrupting ~1%% of the graph: %d violation(s), rules [%s]@.@."
    (List.length report.GP.Validate.violations)
    (String.concat ", "
       (List.map GP.Violation.rule_name (GP.Validate.violated_rules report)));

  (* the first few diagnostics, as a user would see them *)
  List.iteri
    (fun i v -> if i < 5 then Format.printf "  %a@." GP.Violation.pp v)
    report.GP.Validate.violations;

  (* Angles baseline coverage *)
  let expressed, dropped = GP.Angles_of_graphql.coverage schema in
  Format.printf "@.Angles-2018 baseline: expresses %d constraints, drops %d@." expressed
    dropped;
  let angles, _ = GP.Angles_of_graphql.translate schema in
  Format.printf "Angles validation of the conformant graph: %b@."
    (GP.Angles_validate.conforms angles graph)
