(* Schema-enforced writes: a GraphQL mutation session where the schema of
   the paper acts as a live integrity constraint — every write is validated
   incrementally and rejected with the exact violated rule.

   Run with:  dune exec examples/mutations.exe *)

module GP = Graphql_pg

let schema_text =
  {|
type User @key(fields: ["login"]) {
  login: String! @required
  karma: Int
  follows: [User] @distinct @noLoops
}
type Post @key(fields: ["slug"]) {
  slug: ID! @required
  title: String! @required
  author: User! @required
}
|}

let step state text =
  Format.printf "> %s@." (String.trim text);
  match GP.mutate state text with
  | Ok (data, state') ->
    Format.printf "%a@.@." GP.Json.pp data;
    state'
  | Error e ->
    Format.printf "REJECTED: %a@.@." GP.Mutation.pp_error e;
    state

let () =
  let schema = GP.schema_of_string_exn schema_text in
  let state = GP.Incremental.create schema GP.Property_graph.empty in

  let state = step state {|mutation { createUser(login: "olaf", karma: 10) { login } }|} in
  let state = step state {|mutation { createUser(login: "jan") { login karma } }|} in

  (* duplicate key: rejected by DS7 *)
  let state = step state {|mutation { createUser(login: "olaf") { login } }|} in

  (* a post needs an author edge: creating it alone violates DS6... *)
  let state = step state {|mutation { createPost(slug: "pg-schemas", title: "Schemas!") { slug } }|} in

  (* ...so create and link in one transactional mutation *)
  let state =
    step state
      {|mutation {
  createPost(slug: "pg-schemas", title: "Schemas!") { slug }
  linkPostAuthor(from: "pg-schemas", to: "olaf") { slug author { login } }
}|}
  in

  (* follows is @noLoops *)
  let state = step state {|mutation { linkUserFollows(from: "jan", to: "jan") { login } }|} in
  let state = step state {|mutation { linkUserFollows(from: "jan", to: "olaf") { login follows { login } } }|} in

  (* the author edge is mandatory: unlinking it is rejected (DS6) *)
  let state = step state {|mutation { unlinkPostAuthor(from: "pg-schemas", to: "olaf") }|} in

  (* but deleting the whole post is fine *)
  let state = step state {|mutation { deletePost(slug: "pg-schemas") }|} in

  Format.printf "final graph:@.%a@." GP.Property_graph.pp_full (GP.Incremental.graph state);
  Format.printf "strongly satisfies the schema: %b@." (GP.Incremental.is_valid state)
