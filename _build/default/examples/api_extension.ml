(* Section 3.6: extending an SDL Property Graph schema into a GraphQL API
   schema — the Query root type, key-based lookup fields, and inverse
   fields for bidirectional traversal.

   Run with:  dune exec examples/api_extension.exe *)

module GP = Graphql_pg

let schema_text =
  {|
type UserSession {
  id: ID! @required
  user(certainty: Float!): User! @required
  startTime: Time! @required
  endTime: Time!
}

type User @key(fields: ["id"]) @key(fields: ["login"]) {
  id: ID! @required
  login: String! @required
  nicknames: [String!]!
}

scalar Time
|}

let () =
  let schema = GP.schema_of_string_exn schema_text in
  Format.printf "Property Graph schema (not a complete GraphQL API schema):@.%s@."
    (GP.schema_to_string schema);
  match GP.Api_extension.extend_to_string schema with
  | Error msg -> failwith msg
  | Ok api ->
    Format.printf "extended GraphQL API schema:@.%s@." api;
    (* the output is well-formed SDL: parse it back *)
    (match GP.Sdl.Parser.parse api with
    | Ok doc ->
      Format.printf "extension re-parses: %d definitions, %d lint errors@."
        (List.length doc)
        (List.length (GP.Sdl.Lint.errors (GP.Sdl.Lint.check doc)))
    | Error e -> failwith (GP.Sdl.Source.error_to_string e))
