(* The book-catalog scenario of Examples 3.6-3.8, plus a demonstration of
   the cardinality table of Section 3.3: the four directive/list
   combinations realize exactly the 1:1, 1:N, N:1 and N:M binary
   relationship patterns.

   Run with:  dune exec examples/library_catalog.exe *)

module GP = Graphql_pg
module V = GP.Value

(* Examples 3.6 + 3.7 + 3.8, verbatim constraints. *)
let schema_text =
  {|
type Author {
  name: String! @required
  favoriteBook: Book
  relatedAuthor: [Author] @distinct @noLoops
}

type Book {
  title: String! @required
  author: [Author] @required @distinct
}

type BookSeries {
  name: String! @required
  contains: [Book] @required @uniqueForTarget
}

type Publisher {
  name: String! @required
  published: [Book] @uniqueForTarget @requiredForTarget
}
|}

let build_catalog schema =
  let b = GP.Builder.create () in
  let author name handle =
    ignore (GP.Builder.node b handle ~label:"Author" ~props:[ ("name", V.String name) ] ())
  in
  let book title handle =
    ignore (GP.Builder.node b handle ~label:"Book" ~props:[ ("title", V.String title) ] ())
  in
  author "Olaf H." "a1";
  author "Jan H." "a2";
  author "Renzo A." "a3";
  book "Property Graph Schemas" "b1";
  book "Foundations of Databases" "b2";
  ignore (GP.Builder.node b "series" ~label:"BookSeries" ~props:[ ("name", V.String "GRADES") ] ());
  ignore (GP.Builder.node b "pub" ~label:"Publisher" ~props:[ ("name", V.String "ACM") ] ());
  (* every Book needs at least one author, all distinct (Ex. 3.7) *)
  ignore (GP.Builder.edge b "b1" "a1" ~label:"author" ());
  ignore (GP.Builder.edge b "b1" "a2" ~label:"author" ());
  ignore (GP.Builder.edge b "b2" "a3" ~label:"author" ());
  (* optional favorites; related authors must not loop (Ex. 3.7) *)
  ignore (GP.Builder.edge b "a1" "b2" ~label:"favoriteBook" ());
  ignore (GP.Builder.edge b "a1" "a2" ~label:"relatedAuthor" ());
  ignore (GP.Builder.edge b "a2" "a1" ~label:"relatedAuthor" ());
  (* a series must contain books, each book in at most one series (Ex. 3.8) *)
  ignore (GP.Builder.edge b "series" "b1" ~label:"contains" ());
  ignore (GP.Builder.edge b "series" "b2" ~label:"contains" ());
  (* every book has exactly one publisher (Ex. 3.8) *)
  ignore (GP.Builder.edge b "pub" "b1" ~label:"published" ());
  ignore (GP.Builder.edge b "pub" "b2" ~label:"published" ());
  let g = GP.Builder.graph b in
  assert (GP.conforms schema g);
  g

(* ------------------------------------------------------------------ *)
(* The cardinality table of Section 3.3, executed.

   For each of the four variants of "rel: B" in type A, we generate the
   four probe graphs (one-one, one-many, many-one, many-many usage
   patterns) and report which ones the schema accepts.                   *)

let variant_schema body =
  GP.schema_of_string_exn (Printf.sprintf "type A { rel: %s }\ntype B {\n}\n" body)

let probe_accepts schema ~sources ~targets ~edges =
  let b = GP.Builder.create () in
  for i = 1 to sources do
    ignore (GP.Builder.node b (Printf.sprintf "a%d" i) ~label:"A" ())
  done;
  for j = 1 to targets do
    ignore (GP.Builder.node b (Printf.sprintf "b%d" j) ~label:"B" ())
  done;
  List.iter
    (fun (i, j) ->
      ignore
        (GP.Builder.edge b (Printf.sprintf "a%d" i) (Printf.sprintf "b%d" j) ~label:"rel" ()))
    edges;
  GP.conforms schema (GP.Builder.graph b)

let cardinality_table () =
  let variants =
    [
      ("1:1", "B @uniqueForTarget");
      ("1:N", "B");
      ("N:1", "[B] @uniqueForTarget");
      ("N:M", "[B]");
    ]
  in
  (* probes: does one source fan out to two targets? do two sources share
     one target? *)
  let fan_out sch = probe_accepts sch ~sources:1 ~targets:2 ~edges:[ (1, 1); (1, 2) ] in
  let fan_in sch = probe_accepts sch ~sources:2 ~targets:1 ~edges:[ (1, 1); (2, 1) ] in
  Format.printf "@.Section 3.3 cardinality table, executed:@.";
  Format.printf "  %-6s %-26s %-22s %-22s@." "card" "declaration of A.rel"
    "1 source, 2 targets ok?" "2 sources, 1 target ok?";
  List.iter
    (fun (name, body) ->
      let sch = variant_schema body in
      Format.printf "  %-6s %-26s %-22b %-22b@." name ("rel: " ^ body) (fan_out sch)
        (fan_in sch))
    variants

let () =
  let schema = GP.schema_of_string_exn schema_text in
  let g = build_catalog schema in
  Format.printf "catalog graph: %a — conforms@." GP.Property_graph.pp g;

  (* violate @noLoops (Ex. 3.7) *)
  let g', a1 =
    let a1 = List.hd (GP.Property_graph.nodes g) in
    (fst (GP.Property_graph.add_edge g ~label:"relatedAuthor" a1 a1), a1)
  in
  ignore a1;
  let report = GP.validate schema g' in
  Format.printf "@.after adding a self-loop on relatedAuthor:@.%a@." GP.Validate.pp_report
    report;

  cardinality_table ();

  (* the Angles (2018) baseline can express most of this schema *)
  let angles, dropped = GP.Angles_of_graphql.translate schema in
  Format.printf "@.Angles-2018 translation:@.%a@." GP.Angles_schema.pp angles;
  Format.printf "constructs the Angles model cannot express:@.";
  List.iter
    (fun (d : GP.Angles_of_graphql.dropped) ->
      Format.printf "  %s — %s@." d.GP.Angles_of_graphql.construct d.GP.Angles_of_graphql.reason)
    dropped
