(** Property values.

    The paper assumes a set [Vals] of scalar values together with a function
    [values : Scalars -> 2^Vals] assigning a value set to every scalar type
    (Section 4.1).  This module provides the concrete value universe used
    throughout the library: the values of the five built-in GraphQL scalar
    types ([Int], [Float], [String], [Boolean], [ID]), enum symbols, and
    finite lists thereof (property values of list-typed attributes are
    arrays of atomic values, cf. Section 3.2). *)

type t =
  | Int of int  (** a value of the built-in [Int] scalar type *)
  | Float of float  (** a value of the built-in [Float] scalar type *)
  | String of string  (** a value of the built-in [String] scalar type *)
  | Bool of bool  (** a value of the built-in [Boolean] scalar type *)
  | Id of string  (** a value of the built-in [ID] scalar type *)
  | Enum of string  (** an enum symbol, e.g. [METER] *)
  | List of t list  (** an array of values; property values of list type *)

val equal : t -> t -> bool
(** Structural equality.  [Float] values compare with [=] except that
    [nan] is equal to [nan], so that equality is reflexive (required for
    key constraints, rule DS7). *)

val compare : t -> t -> int
(** A total order compatible with {!equal}; used for [Map]/[Set] keys and
    for deterministic printing. *)

val hash : t -> int
(** A hash compatible with {!equal}. *)

val is_atomic : t -> bool
(** [true] iff the value is not a [List].  Edge and node properties of
    non-list attribute types must be atomic. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print in GraphQL value syntax ([String] and [Id] quoted,
    [Enum] bare, lists in brackets). *)

val to_string : t -> string

val type_name : t -> string
(** A human-readable name of the value's shape, e.g. ["Int"], ["String"],
    ["list"]; used in diagnostics. *)
