(** GraphML export, for viewing Property Graphs in standard tooling
    (Gephi, yEd, Cytoscape).

    Nodes and edges carry their label in a [label] attribute; every
    property becomes a data key (typed [string]/[int]/[double]/[boolean];
    [ID], enum and list values are rendered as strings).  Export only —
    GraphML cannot round-trip the value vocabulary faithfully, so PGF
    ({!Pgf}) remains the interchange format. *)

val to_string : Property_graph.t -> string
val save : string -> Property_graph.t -> unit
