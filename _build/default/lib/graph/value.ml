type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Id of string
  | Enum of string
  | List of t list

let rec equal v1 v2 =
  match v1, v2 with
  | Int a, Int b -> a = b
  | Float a, Float b ->
    (* reflexive even for nan, so DS7 key comparison is an equivalence *)
    a = b || (Float.is_nan a && Float.is_nan b)
  | String a, String b -> String.equal a b
  | Bool a, Bool b -> a = b
  | Id a, Id b -> String.equal a b
  | Enum a, Enum b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | (Int _ | Float _ | String _ | Bool _ | Id _ | Enum _ | List _), _ -> false

let constructor_rank = function
  | Int _ -> 0
  | Float _ -> 1
  | String _ -> 2
  | Bool _ -> 3
  | Id _ -> 4
  | Enum _ -> 5
  | List _ -> 6

let rec compare v1 v2 =
  match v1, v2 with
  | Int a, Int b -> Stdlib.compare a b
  | Float a, Float b -> Float.compare a b
  | String a, String b -> String.compare a b
  | Bool a, Bool b -> Stdlib.compare a b
  | Id a, Id b -> String.compare a b
  | Enum a, Enum b -> String.compare a b
  | List a, List b -> List.compare compare a b
  | v1, v2 -> Stdlib.compare (constructor_rank v1) (constructor_rank v2)

let rec hash = function
  | Int a -> Hashtbl.hash (0, a)
  | Float a -> if Float.is_nan a then Hashtbl.hash (1, "nan") else Hashtbl.hash (1, a)
  | String a -> Hashtbl.hash (2, a)
  | Bool a -> Hashtbl.hash (3, a)
  | Id a -> Hashtbl.hash (4, a)
  | Enum a -> Hashtbl.hash (5, a)
  | List a -> List.fold_left (fun acc v -> Hashtbl.hash (acc, hash v)) 6 a

let is_atomic = function List _ -> false | _ -> true

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats are printed so that they re-lex as GraphQL FloatValue tokens,
   using the shortest of %.12g / %.15g / %.17g that round-trips. *)
let float_literal a =
  let shortest =
    let r12 = Printf.sprintf "%.12g" a in
    if float_of_string r12 = a then r12
    else
      let r15 = Printf.sprintf "%.15g" a in
      if float_of_string r15 = a then r15 else Printf.sprintf "%.17g" a
  in
  shortest

let rec pp ppf = function
  | Int a -> Format.pp_print_int ppf a
  | Float a ->
    if Float.is_nan a then Format.pp_print_string ppf "nan"
    else if Float.is_integer a && Float.abs a < 1e15 then Format.fprintf ppf "%.1f" a
    else Format.pp_print_string ppf (float_literal a)
  | String a -> Format.fprintf ppf "\"%s\"" (escape_string a)
  | Bool a -> Format.pp_print_bool ppf a
  | Id a -> Format.fprintf ppf "\"%s\"" (escape_string a)
  | Enum a -> Format.pp_print_string ppf a
  | List vs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      vs

let to_string v = Format.asprintf "%a" pp v

let type_name = function
  | Int _ -> "Int"
  | Float _ -> "Float"
  | String _ -> "String"
  | Bool _ -> "Boolean"
  | Id _ -> "ID"
  | Enum _ -> "enum"
  | List _ -> "list"
