(** Descriptive statistics over Property Graphs, used by the benchmark
    harness to report workload shapes (node/edge counts per label, degree
    distribution) alongside timings. *)

type t = {
  nodes : int;
  edges : int;
  node_labels : (string * int) list;  (** label -> node count, sorted by label *)
  edge_labels : (string * int) list;  (** label -> edge count, sorted by label *)
  node_properties : int;  (** size of sigma's domain restricted to V *)
  edge_properties : int;  (** size of sigma's domain restricted to E *)
  max_out_degree : int;
  max_in_degree : int;
  mean_out_degree : float;
}

val compute : Property_graph.t -> t
val pp : Format.formatter -> t -> unit
