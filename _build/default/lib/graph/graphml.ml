module Sm = Map.Make (String)

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attr_type (v : Value.t) =
  match v with
  | Value.Int _ -> "int"
  | Value.Float _ -> "double"
  | Value.Bool _ -> "boolean"
  | Value.String _ | Value.Id _ | Value.Enum _ | Value.List _ -> "string"

let attr_value (v : Value.t) =
  match v with
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.Bool b -> string_of_bool b
  | Value.String s | Value.Id s | Value.Enum s -> s
  | Value.List _ -> Value.to_string v

(* Collect one key declaration per (domain, property name); conflicting
   types across nodes degrade to string. *)
let collect_keys g =
  let merge keys domain props =
    List.fold_left
      (fun keys (name, v) ->
        let id = domain ^ "_" ^ name in
        let ty = attr_type v in
        Sm.update id
          (function
            | Some (d, n, existing) -> Some (d, n, if existing = ty then existing else "string")
            | None -> Some (domain, name, ty))
          keys)
      keys props
  in
  let keys =
    List.fold_left
      (fun keys v -> merge keys "node" (Property_graph.node_props g v))
      Sm.empty (Property_graph.nodes g)
  in
  List.fold_left
    (fun keys e -> merge keys "edge" (Property_graph.edge_props g e))
    keys (Property_graph.edges g)

let to_string g =
  let module G = Property_graph in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line {|<?xml version="1.0" encoding="UTF-8"?>|};
  line {|<graphml xmlns="http://graphml.graphdrawing.org/xmlns">|};
  line {|  <key id="node_label" for="node" attr.name="label" attr.type="string"/>|};
  line {|  <key id="edge_label" for="edge" attr.name="label" attr.type="string"/>|};
  let keys = collect_keys g in
  Sm.iter
    (fun id (domain, name, ty) ->
      line {|  <key id="%s" for="%s" attr.name="%s" attr.type="%s"/>|} (xml_escape id) domain
        (xml_escape name) ty)
    keys;
  line {|  <graph id="G" edgedefault="directed">|};
  List.iter
    (fun v ->
      line {|    <node id="n%d">|} (G.node_id v);
      line {|      <data key="node_label">%s</data>|} (xml_escape (G.node_label g v));
      List.iter
        (fun (name, value) ->
          line {|      <data key="node_%s">%s</data>|} (xml_escape name)
            (xml_escape (attr_value value)))
        (G.node_props g v);
      line {|    </node>|})
    (G.nodes g);
  List.iter
    (fun e ->
      let src, tgt = G.edge_ends g e in
      line {|    <edge id="e%d" source="n%d" target="n%d">|} (G.edge_id e) (G.node_id src)
        (G.node_id tgt);
      line {|      <data key="edge_label">%s</data>|} (xml_escape (G.edge_label g e));
      List.iter
        (fun (name, value) ->
          line {|      <data key="edge_%s">%s</data>|} (xml_escape name)
            (xml_escape (attr_value value)))
        (G.edge_props g e);
      line {|    </edge>|})
    (G.edges g);
  line {|  </graph>|};
  line {|</graphml>|};
  Buffer.contents buf

let save path g =
  let oc = open_out_bin path in
  output_string oc (to_string g);
  close_out oc
