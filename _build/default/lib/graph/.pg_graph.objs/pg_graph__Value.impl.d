lib/graph/value.ml: Buffer Char Float Format Hashtbl List Printf Stdlib String
