lib/graph/graphml.ml: Buffer List Map Printf Property_graph String Value
