lib/graph/property_graph.mli: Format Value
