lib/graph/stats.mli: Format Property_graph
