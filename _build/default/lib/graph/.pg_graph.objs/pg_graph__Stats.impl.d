lib/graph/stats.ml: Format List Map Property_graph String
