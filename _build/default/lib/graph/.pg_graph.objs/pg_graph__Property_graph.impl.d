lib/graph/property_graph.ml: Format Int List Map String Value
