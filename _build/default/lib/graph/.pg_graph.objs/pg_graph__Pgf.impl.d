lib/graph/pgf.ml: Buffer Char Format Hashtbl List Printf Property_graph Result String Value
