lib/graph/pgf.mli: Format Property_graph
