lib/graph/graphml.mli: Property_graph
