lib/graph/builder.mli: Property_graph Value
