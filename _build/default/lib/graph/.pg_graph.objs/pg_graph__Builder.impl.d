lib/graph/builder.ml: Hashtbl Printf Property_graph
