(** Parser for executable GraphQL documents (spec Section 2): query
    operations — in shorthand form [{ ... }] or with name and variable
    definitions — and fragment definitions.

    Reuses the SDL lexer.  {!parse} accepts query operations (mutations go
    through {!parse_mutation} and the {!Mutation} module); subscriptions
    are rejected. *)

val parse : string -> (Query_ast.document, Pg_sdl.Source.error) result

val parse_mutation : string -> (Query_ast.document, Pg_sdl.Source.error) result
(** Same grammar with the [mutation] keyword; used by {!Mutation}. *)
