lib/query/json.mli: Format Pg_graph
