lib/query/executor.ml: Format Hashtbl Introspection Json List Map Pg_graph Pg_schema Pg_sdl Printf Query_ast Query_parser String
