lib/query/json.ml: Buffer Char Float Format List Option Pg_graph Printf String
