lib/query/query_parser.ml: Array Format List Pg_sdl Query_ast Result
