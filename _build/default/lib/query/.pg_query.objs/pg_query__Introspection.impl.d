lib/query/introspection.ml: Json List Map Pg_schema Pg_sdl Printf Query_ast String
