lib/query/executor.mli: Format Json Pg_graph Pg_schema Query_ast
