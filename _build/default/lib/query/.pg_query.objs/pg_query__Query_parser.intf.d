lib/query/query_parser.mli: Pg_sdl Query_ast
