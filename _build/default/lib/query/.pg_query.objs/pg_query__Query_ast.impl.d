lib/query/query_ast.ml: List Option Pg_sdl
