lib/query/mutation.ml: Executor Format Fun Hashtbl Json List Map Option Pg_graph Pg_schema Pg_sdl Pg_validation Query_ast Query_parser String
