lib/query/mutation.mli: Format Json Pg_validation
