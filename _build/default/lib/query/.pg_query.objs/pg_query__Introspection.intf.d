lib/query/introspection.mli: Json Pg_schema Query_ast
