(** Abstract syntax of executable GraphQL documents (spec Section 2):
    query operations, selection sets, arguments, variables, fragments.

    Only [query] operations are supported — Property Graphs are validated
    data stores here, and mutations are out of scope for the paper's
    Section 3.6 extension. *)

(* Values in executable documents may contain variables at any depth. *)
type value =
  | Var of string
  | Int_value of int
  | Float_value of float
  | String_value of string
  | Boolean_value of bool
  | Null_value
  | Enum_value of string
  | List_value of value list
  | Object_value of (string * value) list

type directive = { d_name : string; d_arguments : (string * value) list }

type selection =
  | Field of field
  | Fragment_spread of {
      fs_name : string;
      fs_directives : directive list;
      fs_span : Pg_sdl.Source.span;
    }
  | Inline_fragment of {
      if_type_condition : string option;
      if_directives : directive list;
      if_selection : selection list;
      if_span : Pg_sdl.Source.span;
    }

and field = {
  f_alias : string option;
  f_name : string;
  f_arguments : (string * value) list;
  f_directives : directive list;
  f_selection : selection list;  (** empty for leaf fields *)
  f_span : Pg_sdl.Source.span;
}

type variable_def = {
  v_name : string;
  v_type : Pg_sdl.Ast.type_ref;
  v_default : value option;
}

type operation = {
  o_name : string option;
  o_variables : variable_def list;
  o_selection : selection list;
  o_span : Pg_sdl.Source.span;
}

type fragment_def = {
  fd_name : string;
  fd_type_condition : string;
  fd_selection : selection list;
  fd_span : Pg_sdl.Source.span;
}

type document = { operations : operation list; fragments : fragment_def list }

let response_key (f : field) = Option.value ~default:f.f_name f.f_alias

let find_operation doc name =
  match name with
  | Some n -> List.find_opt (fun op -> op.o_name = Some n) doc.operations
  | None -> ( match doc.operations with [ op ] -> Some op | _ -> None)

let find_fragment doc name = List.find_opt (fun fr -> fr.fd_name = name) doc.fragments
