module Token = Pg_sdl.Token
module Source = Pg_sdl.Source
module Ast = Pg_sdl.Ast
module Q = Query_ast

type state = { tokens : Token.located array; mutable pos : int }

exception Error of Source.error

let peek st = st.tokens.(st.pos)
let peek_token st = (peek st).Token.token
let span_here st = (peek st).Token.at
let fail st message = raise (Error { Source.at = span_here st; message })
let failf st fmt = Format.kasprintf (fail st) fmt
let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let expect st expected =
  let t = peek_token st in
  if t = expected then advance st
  else failf st "expected %s, found %s" (Token.describe expected) (Token.describe t)

let try_token st tok =
  if peek_token st = tok then begin
    advance st;
    true
  end
  else false

let name st =
  match peek_token st with
  | Token.Name n ->
    advance st;
    n
  | t -> failf st "expected a name, found %s" (Token.describe t)

(* Values (spec 2.9), with variables. *)
let rec value st : Q.value =
  match peek_token st with
  | Token.Dollar ->
    advance st;
    Q.Var (name st)
  | Token.Int i ->
    advance st;
    Q.Int_value i
  | Token.Float f ->
    advance st;
    Q.Float_value f
  | Token.String s | Token.Block_string s ->
    advance st;
    Q.String_value s
  | Token.Name "true" ->
    advance st;
    Q.Boolean_value true
  | Token.Name "false" ->
    advance st;
    Q.Boolean_value false
  | Token.Name "null" ->
    advance st;
    Q.Null_value
  | Token.Name n ->
    advance st;
    Q.Enum_value n
  | Token.Bracket_open ->
    advance st;
    let rec elements acc =
      if try_token st Token.Bracket_close then List.rev acc else elements (value st :: acc)
    in
    Q.List_value (elements [])
  | Token.Brace_open ->
    advance st;
    let rec fields acc =
      if try_token st Token.Brace_close then List.rev acc
      else begin
        let k = name st in
        expect st Token.Colon;
        fields ((k, value st) :: acc)
      end
    in
    Q.Object_value (fields [])
  | t -> failf st "expected a value, found %s" (Token.describe t)

let arguments st =
  if try_token st Token.Paren_open then begin
    let rec loop acc =
      if try_token st Token.Paren_close then List.rev acc
      else begin
        let k = name st in
        expect st Token.Colon;
        loop ((k, value st) :: acc)
      end
    in
    let args = loop [] in
    if args = [] then fail st "empty argument list";
    args
  end
  else []

let directives st : Q.directive list =
  let rec loop acc =
    if try_token st Token.At then begin
      let d_name = name st in
      let d_arguments = arguments st in
      loop ({ Q.d_name; d_arguments } :: acc)
    end
    else List.rev acc
  in
  loop []

(* Type references, reusing the SDL shapes. *)
let rec type_ref st : Ast.type_ref =
  let inner =
    match peek_token st with
    | Token.Bracket_open ->
      advance st;
      let t = type_ref st in
      expect st Token.Bracket_close;
      Ast.List_type t
    | Token.Name n ->
      advance st;
      Ast.Named_type n
    | t -> failf st "expected a type, found %s" (Token.describe t)
  in
  if try_token st Token.Bang then Ast.Non_null_type inner else inner

let rec selection_set st : Q.selection list =
  expect st Token.Brace_open;
  let rec loop acc =
    if try_token st Token.Brace_close then List.rev acc
    else loop (selection st :: acc)
  in
  let selections = loop [] in
  if selections = [] then fail st "a selection set must not be empty";
  selections

and selection st : Q.selection =
  let at = span_here st in
  if try_token st Token.Ellipsis then begin
    match peek_token st with
    | Token.Name "on" ->
      advance st;
      let cond = name st in
      let dirs = directives st in
      let sel = selection_set st in
      Q.Inline_fragment
        { if_type_condition = Some cond; if_directives = dirs; if_selection = sel; if_span = at }
    | Token.Brace_open ->
      let sel = selection_set st in
      Q.Inline_fragment
        { if_type_condition = None; if_directives = []; if_selection = sel; if_span = at }
    | Token.At ->
      let dirs = directives st in
      let sel = selection_set st in
      Q.Inline_fragment
        { if_type_condition = None; if_directives = dirs; if_selection = sel; if_span = at }
    | Token.Name fragment ->
      advance st;
      let dirs = directives st in
      Q.Fragment_spread { fs_name = fragment; fs_directives = dirs; fs_span = at }
    | t -> failf st "expected a fragment after \"...\", found %s" (Token.describe t)
  end
  else begin
    let first = name st in
    let alias, fname =
      if try_token st Token.Colon then (Some first, name st) else (None, first)
    in
    let args = arguments st in
    let dirs = directives st in
    let sel = if peek_token st = Token.Brace_open then selection_set st else [] in
    Q.Field
      {
        f_alias = alias;
        f_name = fname;
        f_arguments = args;
        f_directives = dirs;
        f_selection = sel;
        f_span = at;
      }
  end

let variable_definitions st : Q.variable_def list =
  if try_token st Token.Paren_open then begin
    let rec loop acc =
      if try_token st Token.Paren_close then List.rev acc
      else begin
        expect st Token.Dollar;
        let v_name = name st in
        expect st Token.Colon;
        let v_type = type_ref st in
        let v_default = if try_token st Token.Equals then Some (value st) else None in
        loop ({ Q.v_name; v_type; v_default } :: acc)
      end
    in
    loop []
  end
  else []

let definition ~keyword st =
  let at = span_here st in
  match peek_token st with
  | Token.Brace_open ->
    (* shorthand operation *)
    `Operation
      { Q.o_name = None; o_variables = []; o_selection = selection_set st; o_span = at }
  | Token.Name kw when kw = keyword ->
    advance st;
    let o_name =
      match peek_token st with
      | Token.Name n when n <> "on" ->
        advance st;
        Some n
      | _ -> None
    in
    let o_variables = variable_definitions st in
    `Operation { Q.o_name; o_variables; o_selection = selection_set st; o_span = at }
  | Token.Name ("query" | "mutation" | "subscription" as kw) ->
    failf st "%s operations are not accepted here (expected %s)" kw keyword
  | Token.Name "fragment" ->
    advance st;
    let fd_name = name st in
    if fd_name = "on" then fail st "a fragment cannot be named \"on\"";
    (match peek_token st with
    | Token.Name "on" -> advance st
    | t -> failf st "expected \"on\", found %s" (Token.describe t));
    let fd_type_condition = name st in
    `Fragment { Q.fd_name; fd_type_condition; fd_selection = selection_set st; fd_span = at }
  | t -> failf st "expected an operation or fragment, found %s" (Token.describe t)

let parse_with ~keyword src =
  match Pg_sdl.Lexer.tokenize src with
  | Result.Error e -> Result.Error e
  | Ok tokens -> (
    let st = { tokens = Array.of_list tokens; pos = 0 } in
    try
      let rec loop ops frs =
        if peek_token st = Token.Eof then (List.rev ops, List.rev frs)
        else
          match definition ~keyword st with
          | `Operation op -> loop (op :: ops) frs
          | `Fragment fr -> loop ops (fr :: frs)
      in
      let operations, fragments = loop [] [] in
      if operations = [] then fail st "no operation in document";
      Ok { Q.operations; fragments }
    with Error e -> Result.Error e)

let parse src = parse_with ~keyword:"query" src
let parse_mutation src = parse_with ~keyword:"mutation" src
