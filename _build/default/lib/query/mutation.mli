(** Schema-enforced GraphQL mutations over Property Graphs.

    This closes the loop the paper's Section 3.6 opens: with a schema
    acting as integrity constraints, writes arriving through a GraphQL API
    must be rejected when they would invalidate the graph.  The module
    derives mutation fields from the schema by convention and executes
    them against {!Pg_validation.Incremental} state, so each update is
    checked in time proportional to the touched region.  Validation is
    transactional with commit-time semantics: the root fields of one
    mutation operation execute in order (so a later field can reference a
    node created by an earlier one, and an intermediate state may be
    temporarily incomplete), and the {e final} state must strongly satisfy
    the schema — otherwise the whole mutation fails with the violations
    and the caller keeps the unchanged prior state.

    Generated mutation fields, for each object type [T] with a declared
    single-property scalar key [k] (keys are how GraphQL identifies
    Property Graph nodes):

    - [createT(k: ..., attr: ..., ...)] — create a node with the given
      attribute properties; returns the node.
    - [deleteT(k: ...)] — remove the node (and its incident edges);
      returns [true], or [false] when no node matched.
    - [setTAttr(k: ..., value: ...)] — set one attribute property (with
      [value: null] removing it); returns the node.
    - [linkTField(from: ..., to: ..., edge args...)] — add an [f]-labeled
      edge from the [T] node with key [from] to the target node with key
      [to] (the target object type must be keyed too; for union or
      interface targets a [toType: String!] argument selects the concrete
      type when more than one target type is keyed).
    - [unlinkTField(from: ..., to: ...)] — remove the matching edges;
      returns the number removed.

    Keyless object types get only [createT]; their nodes cannot be
    addressed afterwards.

    A successful execution returns the response data {e and} the updated
    incremental state, ready for the next operation. *)

type error = {
  path : string list;
  message : string;
  violations : Pg_validation.Violation.t list;
      (** non-empty when the mutation was rejected by validation *)
}

val pp_error : Format.formatter -> error -> unit

val execute :
  ?variables:(string * Json.t) list ->
  Pg_validation.Incremental.t ->
  string ->
  (Json.t * Pg_validation.Incremental.t, error) result
(** [execute state text] parses [text] as a single [mutation { ... }]
    operation and runs its root fields left to right, transactionally. *)
