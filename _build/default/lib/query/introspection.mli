(** GraphQL introspection (spec Section 4), over the API-extended schema.

    GraphQL tooling (GraphiQL, client code generators) discovers a
    service's capabilities through the [__schema] and [__type] meta-fields.
    This module answers them for a Property Graph schema {e as extended} by
    {!Pg_schema.Api_extension} — i.e. the schema a GraphQL server over the
    graph would expose, with the [Query] root type, key-lookup fields and
    inverse fields included.

    Supported selection surface (the subset used by common tooling):

    - [__schema { queryType types directives }];
    - [__type(name: ...)];
    - on a type object: [kind], [name], [description], [fields { name
      description args type }], [interfaces], [possibleTypes],
      [enumValues { name }], [inputFields], [ofType], and [__typename];
    - on field/argument objects: [name], [description], [type],
      [args], [defaultValue];
    - wrapping types render as the usual [NON_NULL]/[LIST] chains with
      [ofType].

    Unknown meta-selections resolve to [null] rather than failing, so
    newer clients degrade gracefully. *)

val schema_field :
  Pg_schema.Schema.t -> Query_ast.selection list -> (Json.t, string) result
(** Resolve a [__schema { ... }] selection. *)

val type_field :
  Pg_schema.Schema.t -> name:string -> Query_ast.selection list -> (Json.t, string) result
(** Resolve [__type(name: ...) { ... }]; [Ok Null] for unknown names. *)
