module Sm = Map.Make (String)
module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype
module Inc = Pg_validation.Incremental
module Violation = Pg_validation.Violation
module Q = Query_ast

type error = { path : string list; message : string; violations : Violation.t list }

let pp_error ppf e =
  let prefix = if e.path = [] then "" else String.concat "/" (List.rev e.path) ^ ": " in
  Format.fprintf ppf "%s%s" prefix e.message;
  List.iter (fun v -> Format.fprintf ppf "@.  %a" Violation.pp v) e.violations

exception Fail of error

let fail ?(violations = []) path fmt =
  Format.kasprintf (fun message -> raise (Fail { path; message; violations })) fmt

(* ------------------------------------------------------------------ *)
(* The mutation surface derived from the schema                         *)

type mutation_field =
  | Create of string
  | Delete of string
  | Set of string * string  (** (type, attribute field) *)
  | Link of string * string  (** (type, relationship field) *)
  | Unlink of string * string

(* the first declared single-property scalar key of a type *)
let key_of sch ot_name =
  match Sm.find_opt ot_name sch.Schema.objects with
  | None -> None
  | Some ot ->
    List.find_map
      (fun du ->
        match Schema.key_fields du with
        | Some [ f ] -> (
          match Schema.type_f sch ot_name f with
          | Some wt when Schema.is_scalar_like sch (Wrapped.basetype wt) -> Some (f, wt)
          | Some _ | None -> None)
        | Some _ | None -> None)
      (Schema.find_directives ot.Schema.ot_directives "key")

let mutation_table sch =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun ot_name ->
      Hashtbl.replace tbl ("create" ^ ot_name) (Create ot_name);
      if key_of sch ot_name <> None then begin
        Hashtbl.replace tbl ("delete" ^ ot_name) (Delete ot_name);
        List.iter
          (fun (f_name, (fd : Schema.field)) ->
            let suffix = ot_name ^ String.capitalize_ascii f_name in
            match Schema.classify_field sch fd with
            | Some Schema.Attribute -> Hashtbl.replace tbl ("set" ^ suffix) (Set (ot_name, f_name))
            | Some Schema.Relationship ->
              Hashtbl.replace tbl ("link" ^ suffix) (Link (ot_name, f_name));
              Hashtbl.replace tbl ("unlink" ^ suffix) (Unlink (ot_name, f_name))
            | None -> ())
          (Schema.fields sch ot_name)
      end)
    (Schema.object_names sch);
  tbl

(* ------------------------------------------------------------------ *)
(* Coercion of JSON argument values into property values                *)

let rec value_of_json sch (wt : Wrapped.t) (j : Json.t) : Value.t option =
  let base = Wrapped.basetype wt in
  match j with
  | Json.List items when Wrapped.is_list wt ->
    let coerced = List.map (value_of_json sch (Wrapped.Named base)) items in
    if List.for_all Option.is_some coerced then
      Some (Value.List (List.filter_map Fun.id coerced))
    else None
  | _ when Wrapped.is_list wt -> None
  | Json.Int i -> (
    match base with
    | "Int" -> Some (Value.Int i)
    | "Float" -> Some (Value.Float (float_of_int i))
    | "ID" -> Some (Value.Id (string_of_int i))
    | _ -> None)
  | Json.Float f -> if base = "Float" then Some (Value.Float f) else None
  | Json.Bool b -> if base = "Boolean" then Some (Value.Bool b) else None
  | Json.String s -> (
    match Schema.type_kind sch base with
    | Some Schema.Enum -> Some (Value.Enum s)
    | Some Schema.Scalar -> (
      match base with
      | "ID" -> Some (Value.Id s)
      | "Int" | "Float" | "Boolean" -> None
      | _ -> Some (Value.String s))
    | _ -> None)
  | Json.Null | Json.List _ | Json.Assoc _ -> None

(* ------------------------------------------------------------------ *)

type env = { vars : (string * Json.t) list }

let rec json_of_qvalue env path (v : Q.value) : Json.t =
  match v with
  | Q.Var x -> (
    match List.assoc_opt x env.vars with
    | Some j -> j
    | None -> fail path "variable $%s is not bound" x)
  | Q.Int_value i -> Json.Int i
  | Q.Float_value f -> Json.Float f
  | Q.String_value s -> Json.String s
  | Q.Boolean_value b -> Json.Bool b
  | Q.Null_value -> Json.Null
  | Q.Enum_value e -> Json.String e
  | Q.List_value vs -> Json.List (List.map (json_of_qvalue env path) vs)
  | Q.Object_value fs -> Json.Assoc (List.map (fun (k, v) -> (k, json_of_qvalue env path v)) fs)

let find_by_key g path ot key_field key_json =
  let found =
    List.find_opt
      (fun v ->
        String.equal (G.node_label g v) ot
        &&
        match G.node_prop g v key_field with
        | Some pv -> Json.equal (Json.of_property_value pv) key_json
           || (match pv, key_json with
              | Value.Id s, Json.String s' -> String.equal s s'
              | _ -> false)
        | None -> false)
      (G.nodes g)
  in
  match found with
  | Some v -> v
  | None -> fail path "no %s node with %s = %s" ot key_field (Json.to_string key_json)


let render sch state path node selections =
  if selections = [] then fail path "mutation result needs a selection set";
  match Executor.resolve_node sch (Inc.graph state) node selections with
  | Ok j -> j
  | Error (e : Executor.error) ->
    fail (e.Executor.path @ path) "%s" e.Executor.message

let execute_field sch tbl env state path (f : Q.field) : Json.t * Inc.t =
  let args =
    List.map (fun (a, qv) -> (a, json_of_qvalue env path qv)) f.Q.f_arguments
  in
  let arg name = List.assoc_opt name args in
  let require name =
    match arg name with
    | Some j -> j
    | None -> fail path "missing argument %S" name
  in
  match Hashtbl.find_opt tbl f.Q.f_name with
  | None ->
    fail path
      "no mutation field %S (expected create<T>, delete<T>, set<T><Attr>, link<T><Field>, \
       unlink<T><Field>)"
      f.Q.f_name
  | Some (Create ot) ->
    (* every argument must be an attribute field of the type *)
    let props =
      List.map
        (fun (a, j) ->
          match Schema.type_f sch ot a with
          | Some wt when Schema.is_scalar_like sch (Wrapped.basetype wt) -> (
            match value_of_json sch wt j with
            | Some v -> (a, v)
            | None ->
              fail path "argument %S: %s is not a value of %s" a (Json.to_string j)
                (Wrapped.to_string wt))
          | Some _ -> fail path "argument %S is a relationship; use link%s%s" a ot (String.capitalize_ascii a)
          | None -> fail path "type %s has no attribute %S" ot a)
        args
    in
    let state', node = Inc.add_node state ~label:ot ~props () in
    (render sch state' path node f.Q.f_selection, state')
  | Some (Delete ot) -> (
    let key_field, _ = Option.get (key_of sch ot) in
    match arg key_field with
    | None -> fail path "missing key argument %S" key_field
    | Some key_json -> (
      match find_by_key (Inc.graph state) path ot key_field key_json with
      | exception Fail _ -> (Json.Bool false, state)
      | node -> (Json.Bool true, Inc.remove_node state node)))
  | Some (Set (ot, attr)) ->
    let key_field, _ = Option.get (key_of sch ot) in
    let node = find_by_key (Inc.graph state) path ot key_field (require key_field) in
    let state' =
      match require "value" with
      | Json.Null -> Inc.remove_node_prop state node attr
      | j -> (
        let wt = Option.get (Schema.type_f sch ot attr) in
        match value_of_json sch wt j with
        | Some v -> Inc.set_node_prop state node attr v
        | None ->
          fail path "value %s is not a value of %s" (Json.to_string j) (Wrapped.to_string wt))
    in
    (render sch state' path node f.Q.f_selection, state')
  | Some (Link (ot, field)) ->
    let key_field, _ = Option.get (key_of sch ot) in
    let src = find_by_key (Inc.graph state) path ot key_field (require "from") in
    let fd = Option.get (Schema.field sch ot field) in
    let target_base = Wrapped.basetype fd.Schema.fd_type in
    let target_types =
      List.filter
        (fun o ->
          Schema.type_kind sch o = Some Schema.Object && key_of sch o <> None)
        (Subtype.subtypes sch target_base)
    in
    let target_type =
      match target_types, arg "toType" with
      | [], _ -> fail path "no keyed object type can be the target of %s.%s" ot field
      | [ t ], None -> t
      | _, Some (Json.String t) ->
        if List.mem t target_types then t
        else fail path "toType %S is not a keyed target of %s.%s" t ot field
      | _ :: _ :: _, None ->
        fail path "ambiguous target; pass toType: one of [%s]"
          (String.concat ", " target_types)
      | _, Some j -> fail path "toType must be a string, got %s" (Json.to_string j)
    in
    let tgt_key, _ = Option.get (key_of sch target_type) in
    let tgt = find_by_key (Inc.graph state) path target_type tgt_key (require "to") in
    (* remaining arguments become edge properties, typed by the field's
       argument declarations *)
    let props =
      List.filter_map
        (fun (a, j) ->
          if List.mem a [ "from"; "to"; "toType" ] then None
          else
            match List.assoc_opt a fd.Schema.fd_args with
            | Some (decl : Schema.argument) -> (
              match value_of_json sch decl.Schema.arg_type j with
              | Some v -> Some (a, v)
              | None ->
                fail path "edge property %S: %s is not a value of %s" a (Json.to_string j)
                  (Wrapped.to_string decl.Schema.arg_type))
            | None -> fail path "field %s.%s declares no argument %S" ot field a)
        args
    in
    let state', _ = Inc.add_edge state ~label:field ~props src tgt in
    (render sch state' path src f.Q.f_selection, state')
  | Some (Unlink (ot, field)) ->
    let key_field, _ = Option.get (key_of sch ot) in
    let src = find_by_key (Inc.graph state) path ot key_field (require "from") in
    let fd = Option.get (Schema.field sch ot field) in
    let target_base = Wrapped.basetype fd.Schema.fd_type in
    let to_json = require "to" in
    let g = Inc.graph state in
    let matching =
      List.filter
        (fun e ->
          String.equal (G.edge_label g e) field
          &&
          let _, tgt = G.edge_ends g e in
          Subtype.named sch (G.node_label g tgt) target_base
          &&
          match key_of sch (G.node_label g tgt) with
          | Some (k, _) -> (
            match G.node_prop g tgt k with
            | Some pv -> Json.equal (Json.of_property_value pv) to_json
            | None -> false)
          | None -> false)
        (G.out_edges g src)
    in
    let state' = List.fold_left Inc.remove_edge state matching in
    (Json.Int (List.length matching), state')

let execute ?(variables = []) state text =
  match Query_parser.parse_mutation text with
  | Error e ->
    Error
      { path = []; message = Pg_sdl.Source.error_to_string e; violations = [] }
  | Ok doc -> (
    match doc.Q.operations with
    | [ op ] -> (
      try
        if not (Inc.is_valid state) then
          fail ~violations:(Inc.violations state) []
            "the graph does not strongly satisfy the schema before the mutation";
        let sch = Inc.schema state in
        let env = { vars = variables } in
        let tbl = mutation_table sch in
        let data, final =
          List.fold_left
            (fun (fields, state) sel ->
              match sel with
              | Q.Field f ->
                let key = Q.response_key f in
                let value, state' = execute_field sch tbl env state [ key ] f in
                (fields @ [ (key, value) ], state')
              | Q.Inline_fragment _ | Q.Fragment_spread _ ->
                fail [] "fragments are not supported at the mutation root")
            ([], state) op.Q.o_selection
        in
        (* transactional commit: the whole operation must leave the graph
           in strong satisfaction *)
        (match Inc.violations final with
        | [] -> ()
        | violations ->
          fail ~violations [] "mutation rejected: it would violate the schema");
        Ok (Json.Assoc data, final)
      with Fail e -> Error e)
    | _ -> Error { path = []; message = "expected exactly one mutation operation"; violations = [] })
