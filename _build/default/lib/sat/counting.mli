(** Sound refutation of {e finite} object-type satisfiability by counting.

    Property Graphs are finite (Definition 2.1), but the ALCQI translation
    of Theorem 3 decides satisfiability over arbitrary — possibly
    infinite — models, and ALCQI does not have the finite model property.
    The paper's diagram (b) of Example 6.1 is exactly such a case: every
    model needs an infinite chain, so no Property Graph conforms, yet the
    ALCQI translation is satisfiable.

    This module derives {e necessary} linear conditions on the cardinality
    of any conforming finite graph and refutes satisfiability when they
    are infeasible over the nonnegative rationals:

    - a variable [n_ot] per object type counts its nodes, [e_(ot,f,ot')]
      counts [f]-labeled edges from [ot]-nodes to [ot']-nodes;
    - a non-list relationship field gives [Σ_ot' e ≤ n_ot] (WS4);
    - [@required] on a relationship gives [Σ_ot' e ≥ n_ot] for every
      implementing object type (DS6);
    - [@requiredForTarget] gives [Σ_ot e ≥ n_ot'] per target object type
      (DS4), [@uniqueForTarget] gives [Σ_ot e ≤ n_ot'] (DS3);
    - the queried type gets [n_q ≥ 1].

    Feasibility is decided exactly by Fourier–Motzkin elimination (integer
    coefficients; the relaxation to rationals keeps refutation sound).
    [Infeasible] therefore proves that no finite conforming graph
    populates the type; [Feasible] proves nothing by itself. *)

type result = Infeasible | Feasible

val check : Pg_schema.Schema.t -> string -> result
(** [check schema ot] for an object type [ot].
    @raise Invalid_argument if [ot] is not an object type. *)

val constraint_count : Pg_schema.Schema.t -> string -> int
(** Size of the generated system (for reporting). *)
