type verdict = Sat of bool array | Unsat

(* Assignment: 0 = unassigned, 1 = true, -1 = false. *)

let lit_value assignment (l : Cnf.literal) =
  let v = assignment.(l.var - 1) in
  if v = 0 then 0 else if (v = 1) = l.positive then 1 else -1

(* A clause is satisfied (Some true), falsified (Some false), or has
   unassigned literals (None together with the unassigned count/witness). *)
let clause_status assignment clause =
  let rec go unassigned witness = function
    | [] -> if unassigned = 0 then `Falsified else `Open (unassigned, witness)
    | l :: rest -> (
      match lit_value assignment l with
      | 1 -> `Satisfied
      | -1 -> go unassigned witness rest
      | _ -> go (unassigned + 1) (Some l) rest)
  in
  go 0 None clause

let rec unit_propagate assignment clauses =
  let changed = ref false in
  let conflict = ref false in
  List.iter
    (fun clause ->
      if not !conflict then
        match clause_status assignment clause with
        | `Falsified -> conflict := true
        | `Open (1, Some l) ->
          assignment.(l.var - 1) <- (if l.positive then 1 else -1);
          changed := true
        | `Open _ | `Satisfied -> ())
    clauses;
  if !conflict then false else if !changed then unit_propagate assignment clauses else true

let pure_literals assignment clauses =
  let occurs = Hashtbl.create 64 in
  List.iter
    (fun clause ->
      match clause_status assignment clause with
      | `Satisfied -> ()
      | _ ->
        List.iter
          (fun (l : Cnf.literal) ->
            if assignment.(l.var - 1) = 0 then begin
              let pos, neg = Option.value ~default:(false, false) (Hashtbl.find_opt occurs l.var) in
              Hashtbl.replace occurs l.var
                (if l.positive then (true, neg) else (pos, true))
            end)
          clause)
    clauses;
  Hashtbl.fold
    (fun var (pos, neg) acc ->
      if pos && not neg then (var, true) :: acc
      else if neg && not pos then (var, false) :: acc
      else acc)
    occurs []

let pick_branch assignment clauses =
  let best = ref None in
  List.iter
    (fun clause ->
      match clause_status assignment clause with
      | `Open (n, Some l) -> (
        match !best with
        | Some (n', _) when n' <= n -> ()
        | _ -> best := Some (n, l))
      | _ -> ())
    clauses;
  Option.map snd !best

let solve (f : Cnf.t) =
  let rec go assignment =
    if not (unit_propagate assignment f.Cnf.clauses) then None
    else begin
      List.iter
        (fun (var, value) -> assignment.(var - 1) <- (if value then 1 else -1))
        (pure_literals assignment f.Cnf.clauses);
      if not (unit_propagate assignment f.Cnf.clauses) then None
      else
        match pick_branch assignment f.Cnf.clauses with
        | None ->
          (* no open clause: every clause satisfied *)
          Some assignment
        | Some (l : Cnf.literal) ->
          let try_value value =
            let assignment' = Array.copy assignment in
            assignment'.(l.var - 1) <- (if value then 1 else -1);
            go assignment'
          in
          (match try_value l.positive with
          | Some a -> Some a
          | None -> try_value (not l.positive))
    end
  in
  match go (Array.make f.Cnf.num_vars 0) with
  | None -> Unsat
  | Some assignment -> Sat (Array.map (fun v -> v = 1) assignment)

let satisfiable f = match solve f with Sat _ -> true | Unsat -> false
