module Schema = Pg_schema.Schema

type report = {
  alcqi : Tableau.verdict;
  finite : Tableau.verdict;
  witness : Pg_graph.Property_graph.t option;
}

let check ?fuel ?(max_nodes = 64) sch ot =
  if Schema.type_kind sch ot <> Some Schema.Object then
    invalid_arg (Printf.sprintf "Satisfiability.check: %S is not an object type" ot);
  let tbox = Translate.tbox sch in
  let alcqi = Tableau.is_satisfiable ?fuel ~tbox (Translate.concept_of_type ot) in
  match alcqi with
  | Tableau.Unsatisfiable ->
    (* no model at all, in particular no finite one *)
    { alcqi; finite = Tableau.Unsatisfiable; witness = None }
  | Tableau.Satisfiable | Tableau.Unknown _ -> (
    match Counting.check sch ot with
    | Counting.Infeasible -> { alcqi; finite = Tableau.Unsatisfiable; witness = None }
    | Counting.Feasible -> (
      match Model_search.greedy ~max_nodes sch ot with
      | Some g -> { alcqi; finite = Tableau.Satisfiable; witness = Some g }
      | None -> (
        (* the exhaustive fallback is exponential in the number of object
           types; only worth attempting on small schemas *)
        let exhaustive_result =
          if List.length (Schema.object_names sch) <= 4 then
            Model_search.exhaustive sch ot
          else None
        in
        match exhaustive_result with
        | Some g -> { alcqi; finite = Tableau.Satisfiable; witness = Some g }
        | None ->
          {
            alcqi;
            finite = Tableau.Unknown "no witness found within bounds; counting feasible";
            witness = None;
          })))

let satisfiable ?fuel ?max_nodes sch ot =
  (check ?fuel ?max_nodes sch ot).finite = Tableau.Satisfiable

let check_all ?fuel ?max_nodes sch =
  List.map (fun ot -> (ot, check ?fuel ?max_nodes sch ot)) (Schema.object_names sch)

let unsatisfiable_types ?fuel ?max_nodes sch =
  List.filter_map
    (fun (ot, report) ->
      if report.finite = Tableau.Unsatisfiable then Some ot else None)
    (check_all ?fuel ?max_nodes sch)

let pp_report ppf r =
  Format.fprintf ppf "ALCQI (paper): %a; finite PG: %a%s" Tableau.pp_verdict r.alcqi
    Tableau.pp_verdict r.finite
    (match r.witness with
    | Some g -> Format.asprintf " (witness: %a)" Pg_graph.Property_graph.pp g
    | None -> "")
