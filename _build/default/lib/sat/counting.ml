module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype
module Rules = Pg_validation.Rules
module IMap = Map.Make (Int)

type result = Infeasible | Feasible

(* A linear constraint  sum coeffs >= bound  with integer coefficients. *)
type lin = { coeffs : int IMap.t; bound : int }

let coeff c v = match IMap.find_opt v c.coeffs with Some x -> x | None -> 0

let add_term c v x =
  let x' = coeff c v + x in
  { c with coeffs = (if x' = 0 then IMap.remove v c.coeffs else IMap.add v x' c.coeffs) }

let scale k c = { coeffs = IMap.map (fun x -> k * x) c.coeffs; bound = k * c.bound }

let combine c1 c2 =
  {
    coeffs =
      IMap.union (fun _ a b -> if a + b = 0 then None else Some (a + b)) c1.coeffs c2.coeffs;
    bound = c1.bound + c2.bound;
  }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let normalize c =
  let g = IMap.fold (fun _ x acc -> gcd x acc) c.coeffs 0 in
  if g <= 1 then c
  else if c.bound mod g = 0 then { coeffs = IMap.map (fun x -> x / g) c.coeffs; bound = c.bound / g }
  else
    (* rational relaxation: dividing the bound rounds it down, weakening the
       constraint only when the bound is positive; to stay sound we keep the
       constraint unscaled in that case *)
    c

(* Fourier-Motzkin elimination over the rationals; constraints are
   sum >= bound.  Returns false iff the system is {e provably} infeasible.
   FM can blow up doubly exponentially, so the implementation deduplicates
   constraints, drops tautologies, eliminates the cheapest variable first,
   and bails out (answering "feasible", which keeps refutation sound) when
   the system exceeds a size cap. *)
let max_constraints = 20_000

exception Too_big

let cleanup constraints =
  (* drop tautologies (no variables, bound <= 0), dedup *)
  constraints
  |> List.filter (fun c -> not (IMap.is_empty c.coeffs && c.bound <= 0))
  |> List.sort_uniq compare

let feasible num_vars constraints =
  let remaining_vars constraints =
    List.fold_left
      (fun acc c -> IMap.fold (fun v _ acc -> if List.mem v acc then acc else v :: acc) c.coeffs acc)
      [] constraints
  in
  let contradiction constraints =
    List.exists (fun c -> IMap.is_empty c.coeffs && c.bound > 0) constraints
  in
  let rec eliminate constraints =
    if contradiction constraints then false
    else begin
      match remaining_vars constraints with
      | [] -> true
      | vars ->
        (* pick the variable minimizing the number of generated products *)
        let cost v =
          let pos, neg =
            List.fold_left
              (fun (p, n) c ->
                let x = coeff c v in
                if x > 0 then (p + 1, n) else if x < 0 then (p, n + 1) else (p, n))
              (0, 0) constraints
          in
          (pos * neg) - pos - neg
        in
        let v =
          List.fold_left
            (fun best v -> match best with Some b when cost b <= cost v -> best | _ -> Some v)
            None vars
          |> Option.get
        in
        let pos, neg, zero =
          List.fold_left
            (fun (pos, neg, zero) c ->
              let x = coeff c v in
              if x > 0 then (c :: pos, neg, zero)
              else if x < 0 then (pos, c :: neg, zero)
              else (pos, neg, c :: zero))
            ([], [], []) constraints
        in
        let combined =
          List.concat_map
            (fun p ->
              let a = coeff p v in
              List.map
                (fun n ->
                  let b = -coeff n v in
                  let c = normalize (combine (scale b p) (scale a n)) in
                  { c with coeffs = IMap.remove v c.coeffs })
                neg)
            pos
        in
        let next = cleanup (combined @ zero) in
        if List.length next > max_constraints then raise Too_big;
        eliminate next
    end
  in
  ignore num_vars;
  try eliminate (cleanup constraints) with Too_big -> true

(* ---------------------------------------------------------------- *)

type vars = {
  node_var : (string, int) Hashtbl.t;
  edge_var : (string * string * string, int) Hashtbl.t;
  mutable count : int;
}

let fresh vars =
  let v = vars.count in
  vars.count <- v + 1;
  v

let object_subtypes sch t =
  List.filter
    (fun o -> Schema.type_kind sch o = Some Schema.Object)
    (Subtype.subtypes sch t)

let build_system sch query =
  let vars = { node_var = Hashtbl.create 16; edge_var = Hashtbl.create 64; count = 0 } in
  let objects = Schema.object_names sch in
  List.iter (fun ot -> Hashtbl.add vars.node_var ot (fresh vars)) objects;
  (* edge variables for every justified (source type, field, target type) *)
  let relationship_fields ot =
    List.filter_map
      (fun (f, (fd : Schema.field)) ->
        match Schema.classify_field sch fd with
        | Some Schema.Relationship -> Some (f, fd)
        | Some Schema.Attribute | None -> None)
      (Schema.fields sch ot)
  in
  List.iter
    (fun ot ->
      List.iter
        (fun (f, (fd : Schema.field)) ->
          List.iter
            (fun ot' -> Hashtbl.add vars.edge_var (ot, f, ot') (fresh vars))
            (object_subtypes sch (Wrapped.basetype fd.Schema.fd_type)))
        (relationship_fields ot))
    objects;
  let n ot = Hashtbl.find vars.node_var ot in
  let e ot f ot' = Hashtbl.find_opt vars.edge_var (ot, f, ot') in
  let constraints = ref [] in
  let add c = constraints := c :: !constraints in
  let zero = { coeffs = IMap.empty; bound = 0 } in
  (* nonnegativity *)
  for v = 0 to vars.count - 1 do
    add (add_term zero v 1)
  done;
  (* the queried type is populated *)
  add { (add_term zero (n query) 1) with bound = 1 };
  (* WS4: non-list fields bound outgoing edges by the node count *)
  List.iter
    (fun ot ->
      List.iter
        (fun (f, (fd : Schema.field)) ->
          if not (Wrapped.is_list fd.Schema.fd_type) then begin
            let c = add_term zero (n ot) 1 in
            let c =
              List.fold_left
                (fun c ot' ->
                  match e ot f ot' with Some v -> add_term c v (-1) | None -> c)
                c
                (object_subtypes sch (Wrapped.basetype fd.Schema.fd_type))
            in
            add c
          end)
        (relationship_fields ot))
    objects;
  (* DS6 (@required on relationships): every node of an implementing object
     type has at least one outgoing f-edge *)
  List.iter
    (fun (fc : Rules.field_constraint) ->
      if not (Rules.is_attribute_type sch fc.Rules.fd.Schema.fd_type) then
        List.iter
          (fun ot ->
            match List.assoc_opt fc.Rules.field (Schema.fields sch ot) with
            | Some (fd : Schema.field) ->
              let c = add_term zero (n ot) (-1) in
              let c =
                List.fold_left
                  (fun c ot' ->
                    match e ot fc.Rules.field ot' with Some v -> add_term c v 1 | None -> c)
                  c
                  (object_subtypes sch (Wrapped.basetype fd.Schema.fd_type))
              in
              add c
            | None -> ())
          (object_subtypes sch fc.Rules.owner))
    (Rules.constrained_fields sch ~directive:"required");
  (* DS4 (@requiredForTarget) and DS3 (@uniqueForTarget) *)
  let incoming_sum fc target sign =
    (* sign +1: sum_e - n >= 0; sign -1: n - sum_e >= 0 *)
    let c = add_term zero (n target) (-sign) in
    List.fold_left
      (fun c ot ->
        match e ot fc.Rules.field target with Some v -> add_term c v sign | None -> c)
      c
      (object_subtypes sch fc.Rules.owner)
  in
  List.iter
    (fun (fc : Rules.field_constraint) ->
      List.iter
        (fun target -> add (incoming_sum fc target 1))
        (object_subtypes sch (Wrapped.basetype fc.Rules.fd.Schema.fd_type)))
    (Rules.constrained_fields sch ~directive:"requiredForTarget");
  List.iter
    (fun (fc : Rules.field_constraint) ->
      List.iter
        (fun target -> add (incoming_sum fc target (-1)))
        (object_subtypes sch (Wrapped.basetype fc.Rules.fd.Schema.fd_type)))
    (Rules.constrained_fields sch ~directive:"uniqueForTarget");
  (vars.count, List.rev !constraints)

let check sch query =
  if Schema.type_kind sch query <> Some Schema.Object then
    invalid_arg (Printf.sprintf "Counting.check: %S is not an object type" query);
  let num_vars, constraints = build_system sch query in
  if feasible num_vars constraints then Feasible else Infeasible

let constraint_count sch query =
  let _, constraints = build_system sch query in
  List.length constraints
