(** A DPLL SAT solver: unit propagation, pure-literal elimination, and
    branching on the first unassigned variable of the shortest clause.

    It serves as ground truth in the Theorem 2 experiments: the tableau
    verdict on the reduced schema must coincide with the DPLL verdict on
    the source formula.  It is deliberately simple (no clause learning) —
    reduction instances in the benchmarks are small. *)

type verdict = Sat of bool array | Unsat

val solve : Cnf.t -> verdict
(** The returned assignment is total and satisfies the formula (checked by
    construction; property tests re-check with {!Cnf.eval}). *)

val satisfiable : Cnf.t -> bool
