(** Propositional formulas in conjunctive normal form.

    The NP-hardness proof of Theorem 2 reduces CNF-SAT to object-type
    satisfiability; this module provides the formula representation, the
    DIMACS interchange format, evaluation, and the worked example formula
    of the proof. *)

type literal = { var : int; positive : bool }
(** Variables are numbered from 1. *)

type clause = literal list

type t = { num_vars : int; clauses : clause list }

val make : num_vars:int -> clause list -> t
(** @raise Invalid_argument if a clause mentions variable 0, a negative
    variable index, or a variable above [num_vars]. *)

val lit : int -> literal
(** [lit 3] is the positive literal of variable 3, [lit (-3)] the negative
    one (DIMACS convention). *)

val eval : t -> bool array -> bool
(** [eval f assignment] with [assignment.(v - 1)] the value of variable
    [v]. *)

val parse_dimacs : string -> (t, string) result
val to_dimacs : t -> string

val pp : Format.formatter -> t -> unit
(** Mathematical rendering, e.g. [(x1 | ~x2 | x3) & (~x1 | ~x3)]. *)

val paper_example : t
(** The worked formula of the Theorem 2 proof:
    [(A | ~B | C) & (~A | ~C) & (D | B)] with A..D as variables 1..4. *)
