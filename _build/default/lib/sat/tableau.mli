(** Tableau decision procedure for ALCQI concept satisfiability with
    respect to a general TBox.

    The algorithm is the standard completion-tree calculus for description
    logics with qualified number restrictions and inverse roles:

    - the TBox is internalized ({!Alcqi.internalize}) and its conjuncts are
      added to the label of every node;
    - expansion rules: conjunction, disjunction (branching), universal
      propagation (also through inverse edges), the {e choose} rule for
      number restrictions, the [>=]-rule (generates fresh successors,
      pairwise unequal), and the [<=]-rule (merges two mergeable neighbors,
      branching over the choice of pair; merging into the predecessor when
      one of the pair is the predecessor, pruning the merged node's
      subtree);
    - ancestor pairwise blocking guards the generating rule, which gives
      termination in the presence of inverse roles and number
      restrictions;
    - clashes: [Bot], complementary atoms, and a [<= n] constraint whose
      excess neighbors are pairwise explicitly unequal.

    The search is a depth-first traversal of the nondeterministic choices
    with a fuel bound as a safety net ([Unknown] is returned only if fuel
    runs out, which does not happen on the paper's workloads). *)

type verdict = Satisfiable | Unsatisfiable | Unknown of string

val is_satisfiable : ?fuel:int -> tbox:Alcqi.tbox -> Alcqi.concept -> verdict
(** Default fuel: 200_000 rule applications. *)

val pp_verdict : Format.formatter -> verdict -> unit
