module Schema = Pg_schema.Schema
module Subtype = Pg_schema.Subtype
module Wrapped = Pg_schema.Wrapped

let concept_of_type name = Alcqi.Atom name

let field_axioms sch owner (f_name, (fd : Schema.field)) acc =
  match Schema.classify_field sch fd with
  | Some Schema.Relationship ->
    let t = Alcqi.Atom owner in
    let tt = Alcqi.Atom (Wrapped.basetype fd.Schema.fd_type) in
    let r = Alcqi.role f_name in
    (* the proof's axiom (∃f⁻.t) ⊑ tt, in the equivalent Atom-headed form
       t ⊑ ∀f.tt so that the tableau can absorb it (lazy unfolding) *)
    let acc = Alcqi.Subsumption (t, Alcqi.All (r, tt)) :: acc in
    let acc =
      if Wrapped.is_list fd.Schema.fd_type then acc
      else Alcqi.Subsumption (t, Alcqi.At_most (1, r, tt)) :: acc
    in
    let acc =
      if Schema.has_directive fd.Schema.fd_directives "required" then
        Alcqi.Subsumption (t, Alcqi.exists r tt) :: acc
      else acc
    in
    let acc =
      if Schema.has_directive fd.Schema.fd_directives "requiredForTarget" then
        Alcqi.Subsumption (tt, Alcqi.exists (Alcqi.inv r) t) :: acc
      else acc
    in
    let acc =
      if Schema.has_directive fd.Schema.fd_directives "uniqueForTarget" then
        Alcqi.Subsumption (tt, Alcqi.At_most (1, Alcqi.inv r, t)) :: acc
      else acc
    in
    acc
  | Some Schema.Attribute | None -> acc

let tbox sch =
  let acc = [] in
  (* unions and interfaces as disjunctions of their object types *)
  let acc =
    List.fold_left
      (fun acc u ->
        let members = List.map concept_of_type (Schema.union_members sch u) in
        Alcqi.Equivalence (Alcqi.Atom u, Alcqi.disj members) :: acc)
      acc (Schema.union_names sch)
  in
  let acc =
    List.fold_left
      (fun acc it ->
        let impls = List.map concept_of_type (Schema.implementations_of sch it) in
        Alcqi.Equivalence (Alcqi.Atom it, Alcqi.disj impls) :: acc)
      acc (Schema.interface_names sch)
  in
  (* field axioms for object and interface types *)
  let acc =
    List.fold_left
      (fun acc owner ->
        List.fold_left
          (fun acc field -> field_axioms sch owner field acc)
          acc (Schema.fields sch owner))
      acc
      (Schema.object_names sch @ Schema.interface_names sch)
  in
  (* negative membership, derivable from disjointness + the equivalences:
     an object type outside an interface's implementations (or a union's
     members) is disjoint from it.  Stating it directly lets the tableau
     decide membership of neighbors without branching. *)
  let acc =
    List.fold_left
      (fun acc u ->
        let members = Subtype.subtypes sch u in
        List.fold_left
          (fun acc o ->
            if List.mem o members then acc
            else Alcqi.Subsumption (Alcqi.Atom o, Alcqi.Neg u) :: acc)
          acc (Schema.object_names sch))
      acc
      (Schema.interface_names sch @ Schema.union_names sch)
  in
  (* nodes carry exactly one object type: pairwise disjointness.  The
     covering axiom Top ⊑ ⊔OT of the proof is omitted: every element of a
     completion tree for these TBoxes carries a type atom (the queried
     concept at the root; restriction bodies elsewhere, with interface and
     union atoms resolving to object atoms through their equivalences), so
     covering cannot change the verdict, and omitting it removes an
     |OT|-way branching point at every node. *)
  let objects = Schema.object_names sch in
  let acc =
    let rec disjointness acc = function
      | [] -> acc
      | o1 :: rest ->
        disjointness
          (List.fold_left
             (fun acc o2 ->
               Alcqi.Subsumption (Alcqi.conj [ Alcqi.Atom o1; Alcqi.Atom o2 ], Alcqi.Bot)
               :: acc)
             acc rest)
          rest
    in
    disjointness acc objects
  in
  List.rev acc

let translation_size sch = (Schema.size sch, Alcqi.tbox_size (tbox sch))
