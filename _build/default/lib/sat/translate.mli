(** Translation of Property Graph schemas into ALCQI TBoxes (the proof of
    Theorem 3).

    The constructs are mapped exactly as the proof states:
    - a union type (or interface type) [t] over/implemented by [t1 .. tn]
      becomes [t ≡ t1 ⊔ ... ⊔ tn] (an interface with no implementations
      becomes [t ≡ ⊥]);
    - a relationship field [f] of type [t] with base target type [tt]
      contributes [∃f⁻.t ⊑ tt]; if the field type is not a list type it
      also contributes [t ⊑ ≤1 f.tt];
    - [@required] contributes [t ⊑ ∃f.tt];
    - [@requiredForTarget] contributes [tt ⊑ ∃f⁻.t];
    - [@uniqueForTarget] contributes [tt ⊑ ≤1 f⁻.t];
    - object types are pairwise disjoint and cover [⊤] (every node has
      exactly one label, SS1).

    Scalar-typed fields and arguments, [@key], [@distinct] and [@noLoops]
    are dropped, as the proof argues they do not affect satisfiability.

    Caveat (documented in EXPERIMENTS.md): ALCQI does {e not} have the
    finite model property, while Property Graphs are finite by definition;
    a schema whose only models are infinite (the paper's own diagram (b)
    in Example 6.1) is satisfiable in ALCQI but has no conforming Property
    Graph.  {!Counting} provides a sound finite-model refutation that
    closes this gap for cardinality conflicts. *)

val tbox : Pg_schema.Schema.t -> Alcqi.tbox
(** The TBox of the schema; size is linear in the size of the schema. *)

val concept_of_type : string -> Alcqi.concept
(** The atomic concept standing for a named type. *)

val translation_size : Pg_schema.Schema.t -> int * int
(** [(schema size, tbox size)] — the polynomial-size evidence reported by
    the [alcqi_translation] bench. *)
