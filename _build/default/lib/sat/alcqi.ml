type role = { rname : string; inverse : bool }

let role name = { rname = name; inverse = false }
let inv r = { r with inverse = not r.inverse }

let pp_role ppf r =
  if r.inverse then Format.fprintf ppf "%s^-" r.rname else Format.pp_print_string ppf r.rname

type concept =
  | Top
  | Bot
  | Atom of string
  | Neg of string
  | And of concept list
  | Or of concept list
  | All of role * concept
  | At_least of int * role * concept
  | At_most of int * role * concept

let exists r c = At_least (1, r, c)

let rec neg = function
  | Top -> Bot
  | Bot -> Top
  | Atom a -> Neg a
  | Neg a -> Atom a
  | And cs -> Or (List.map neg cs)
  | Or cs -> And (List.map neg cs)
  | All (r, c) -> At_least (1, r, neg c)
  | At_least (n, r, c) -> if n <= 1 then All (r, neg c) else At_most (n - 1, r, c)
  | At_most (n, r, c) -> At_least (n + 1, r, c)

let compare = Stdlib.compare
let equal c1 c2 = compare c1 c2 = 0

let conj cs =
  let rec flatten acc = function
    | [] -> Some acc
    | Top :: rest -> flatten acc rest
    | Bot :: _ -> None
    | And inner :: rest -> (
      match flatten acc inner with None -> None | Some acc -> flatten acc rest)
    | c :: rest -> flatten (c :: acc) rest
  in
  match flatten [] cs with
  | None -> Bot
  | Some parts -> (
    match List.sort_uniq compare parts with
    | [] -> Top
    | [ c ] -> c
    | parts -> And parts)

let disj cs =
  let rec flatten acc = function
    | [] -> Some acc
    | Bot :: rest -> flatten acc rest
    | Top :: _ -> None
    | Or inner :: rest -> (
      match flatten acc inner with None -> None | Some acc -> flatten acc rest)
    | c :: rest -> flatten (c :: acc) rest
  in
  match flatten [] cs with
  | None -> Top
  | Some parts -> (
    match List.sort_uniq compare parts with
    | [] -> Bot
    | [ c ] -> c
    | parts -> Or parts)

let rec size = function
  | Top | Bot | Atom _ | Neg _ -> 1
  | And cs | Or cs -> List.fold_left (fun acc c -> acc + size c) 1 cs
  | All (_, c) -> 1 + size c
  | At_least (_, _, c) | At_most (_, _, c) -> 1 + size c

let rec pp ppf = function
  | Top -> Format.pp_print_string ppf "T"
  | Bot -> Format.pp_print_string ppf "_|_"
  | Atom a -> Format.pp_print_string ppf a
  | Neg a -> Format.fprintf ppf "~%s" a
  | And cs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ") pp)
      cs
  | Or cs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ") pp)
      cs
  | All (r, c) -> Format.fprintf ppf "forall %a.%a" pp_role r pp c
  | At_least (n, r, c) -> Format.fprintf ppf ">=%d %a.%a" n pp_role r pp c
  | At_most (n, r, c) -> Format.fprintf ppf "<=%d %a.%a" n pp_role r pp c

let to_string c = Format.asprintf "%a" pp c

type axiom = Subsumption of concept * concept | Equivalence of concept * concept
type tbox = axiom list

let pp_axiom ppf = function
  | Subsumption (c, d) -> Format.fprintf ppf "%a [= %a" pp c pp d
  | Equivalence (c, d) -> Format.fprintf ppf "%a == %a" pp c pp d

let internalize tbox =
  let parts =
    List.concat_map
      (function
        | Subsumption (c, d) -> [ disj [ neg c; d ] ]
        | Equivalence (c, d) -> [ disj [ neg c; d ]; disj [ neg d; c ] ])
      tbox
  in
  conj parts

let tbox_size tbox =
  List.fold_left
    (fun acc ax ->
      acc
      +
      match ax with
      | Subsumption (c, d) | Equivalence (c, d) -> 1 + size c + size d)
    0 tbox
