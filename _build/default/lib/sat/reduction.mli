(** The NP-hardness reduction of Theorem 2: CNF-SAT to object-type
    satisfiability.

    Given a CNF formula [φ = ψ1 ∧ ... ∧ ψn], the generated schema has

    - an object type [OT] (with no fields);
    - per clause [ψi], an interface [Ci] declaring
      [f: [OT] @requiredForTarget] — every [OT] node needs an incoming
      [f]-edge from a node implementing [Ci], i.e. the clause must be
      satisfied by some chosen atom;
    - per atom occurrence [αij], an object type [A<i>_<j>_<p|n><var>]
      implementing [Ci] (and declaring [f: [OT]]);
    - per pair of complementary occurrences [αij = ¬αi'j'], a conflict
      interface declaring [f: [OT] @uniqueForTarget], implemented by both
      occurrence types — an [OT] node cannot receive [f]-edges from both a
      positive and a negative occurrence of the same variable.

    [φ] is satisfiable iff [OT] is (finitely) satisfiable in the schema;
    the schema size is polynomial (quadratic, due to the conflict pairs)
    in the size of [φ]. *)

val ot_name : string
(** The queried object type, ["OT"]. *)

val to_sdl : Cnf.t -> string
(** The reduction schema as SDL text. *)

val to_schema : Cnf.t -> (Pg_schema.Schema.t, string) result
(** Parsed and consistency-checked. *)

val atom_type_name : clause:int -> index:int -> Cnf.literal -> string
(** The object type standing for the [index]-th literal of clause
    [clause] (both 1-based). *)

val witness_assignment : Pg_graph.Property_graph.t -> Cnf.t -> bool array option
(** Read a truth assignment back from a witness graph: variable [v] is
    true if some positive occurrence type of [v] has a node with an
    [f]-edge, false if a negative one does, defaulting to false.  Returns
    [None] if the graph contains no [OT] node. *)
