module G = Pg_graph.Property_graph

let ot_name = "OT"

let atom_type_name ~clause ~index (l : Cnf.literal) =
  Printf.sprintf "A%d_%d_%s%d" clause index (if l.Cnf.positive then "p" else "n") l.Cnf.var

let clause_interface_name i = Printf.sprintf "C%d" i

let conflict_interface_name (i, j) (i', j') = Printf.sprintf "X%d_%d__%d_%d" i j i' j'

(* All atom occurrences as ((clause, index), literal), 1-based. *)
let occurrences (f : Cnf.t) =
  List.concat (List.mapi (fun i clause -> List.mapi (fun j l -> ((i + 1, j + 1), l)) clause) f.Cnf.clauses)

let conflict_pairs f =
  let occs = occurrences f in
  let rec go acc = function
    | [] -> List.rev acc
    | (pos1, (l1 : Cnf.literal)) :: rest ->
      let acc =
        List.fold_left
          (fun acc (pos2, (l2 : Cnf.literal)) ->
            if l1.Cnf.var = l2.Cnf.var && l1.Cnf.positive <> l2.Cnf.positive then
              (pos1, pos2) :: acc
            else acc)
          acc rest
      in
      go acc rest
  in
  go [] occs

let to_sdl (f : Cnf.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "type %s {\n}\n\n" ot_name);
  (* clause interfaces *)
  List.iteri
    (fun i _ ->
      Buffer.add_string buf
        (Printf.sprintf "interface %s {\n  f: [%s] @requiredForTarget\n}\n\n"
           (clause_interface_name (i + 1))
           ot_name))
    f.Cnf.clauses;
  (* conflict interfaces *)
  let conflicts = conflict_pairs f in
  List.iter
    (fun (p1, p2) ->
      Buffer.add_string buf
        (Printf.sprintf "interface %s {\n  f: [%s] @uniqueForTarget\n}\n\n"
           (conflict_interface_name p1 p2)
           ot_name))
    conflicts;
  (* atom occurrence types *)
  List.iteri
    (fun i clause ->
      List.iteri
        (fun j l ->
          let pos = (i + 1, j + 1) in
          let interfaces =
            clause_interface_name (i + 1)
            :: List.filter_map
                 (fun (p1, p2) ->
                   if p1 = pos then Some (conflict_interface_name p1 p2)
                   else if p2 = pos then Some (conflict_interface_name p1 p2)
                   else None)
                 conflicts
          in
          Buffer.add_string buf
            (Printf.sprintf "type %s implements %s {\n  f: [%s]\n}\n\n"
               (atom_type_name ~clause:(i + 1) ~index:(j + 1) l)
               (String.concat " & " interfaces)
               ot_name))
        clause)
    f.Cnf.clauses;
  Buffer.contents buf

let to_schema f =
  match Pg_schema.Of_ast.parse (to_sdl f) with
  | Ok sch -> Ok sch
  | Error msg -> Error msg

(* Parse an atom type name back into (positive, var). *)
let parse_atom_name name =
  if String.length name > 1 && name.[0] = 'A' then begin
    match String.rindex_opt name '_' with
    | Some k when k + 2 <= String.length name - 1 || k + 1 < String.length name ->
      let tail = String.sub name (k + 1) (String.length name - k - 1) in
      if String.length tail >= 2 && (tail.[0] = 'p' || tail.[0] = 'n') then
        Option.map
          (fun var -> (tail.[0] = 'p', var))
          (int_of_string_opt (String.sub tail 1 (String.length tail - 1)))
      else None
    | _ -> None
  end
  else None

let witness_assignment g (f : Cnf.t) =
  let has_ot =
    List.exists (fun v -> String.equal (G.node_label g v) ot_name) (G.nodes g)
  in
  if not has_ot then None
  else begin
    let assignment = Array.make f.Cnf.num_vars false in
    List.iter
      (fun e ->
        let src, _ = G.edge_ends g e in
        if String.equal (G.edge_label g e) "f" then
          match parse_atom_name (G.node_label g src) with
          | Some (positive, var) when var >= 1 && var <= f.Cnf.num_vars ->
            if positive then assignment.(var - 1) <- true
          | Some _ | None -> ())
      (G.edges g);
    Some assignment
  end
