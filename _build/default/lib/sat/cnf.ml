type literal = { var : int; positive : bool }
type clause = literal list
type t = { num_vars : int; clauses : clause list }

let lit i =
  if i = 0 then invalid_arg "Cnf.lit: variable 0";
  if i > 0 then { var = i; positive = true } else { var = -i; positive = false }

let make ~num_vars clauses =
  List.iter
    (List.iter (fun l ->
         if l.var < 1 || l.var > num_vars then
           invalid_arg (Printf.sprintf "Cnf.make: variable %d out of range" l.var)))
    clauses;
  { num_vars; clauses }

let eval f assignment =
  List.for_all
    (List.exists (fun l -> if l.positive then assignment.(l.var - 1) else not assignment.(l.var - 1)))
    f.clauses

let parse_dimacs text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref 0 in
  let num_clauses_declared = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None then begin
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ "p"; "cnf"; nv; nc ] -> (
            match int_of_string_opt nv, int_of_string_opt nc with
            | Some nv, Some nc ->
              num_vars := nv;
              num_clauses_declared := nc
            | _ -> error := Some (Printf.sprintf "line %d: malformed p line" (lineno + 1)))
          | _ -> error := Some (Printf.sprintf "line %d: malformed p line" (lineno + 1))
        end
        else
          String.split_on_char ' ' line
          |> List.filter (fun s -> s <> "")
          |> List.iter (fun tok ->
                 if !error = None then
                   match int_of_string_opt tok with
                   | Some 0 ->
                     clauses := List.rev !current :: !clauses;
                     current := []
                   | Some i ->
                     if abs i > !num_vars then num_vars := abs i;
                     current := lit i :: !current
                   | None ->
                     error := Some (Printf.sprintf "line %d: bad token %S" (lineno + 1) tok))
      end)
    lines;
  match !error with
  | Some e -> Error e
  | None ->
    if !current <> [] then clauses := List.rev !current :: !clauses;
    Ok { num_vars = !num_vars; clauses = List.rev !clauses }

let to_dimacs f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" f.num_vars (List.length f.clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l -> Buffer.add_string buf (Printf.sprintf "%d " (if l.positive then l.var else -l.var)))
        clause;
      Buffer.add_string buf "0\n")
    f.clauses;
  Buffer.contents buf

let pp_literal ppf l =
  Format.fprintf ppf "%sx%d" (if l.positive then "" else "~") l.var

let pp ppf f =
  let pp_clause ppf c =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ") pp_literal)
      c
  in
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ") pp_clause ppf f.clauses

(* (A | ~B | C) & (~A | ~C) & (D | B); A,B,C,D = 1,2,3,4 *)
let paper_example =
  make ~num_vars:4 [ [ lit 1; lit (-2); lit 3 ]; [ lit (-1); lit (-3) ]; [ lit 4; lit 2 ] ]
