(** The description logic ALCQI: ALC with qualified number restrictions
    and inverse roles.

    The PSPACE upper bound of Theorem 3 translates schemas into ALCQI
    TBoxes and decides object-type satisfiability as concept satisfiability
    w.r.t. the TBox.  Concepts are kept in negation normal form: negation
    occurs only on atoms, universal restrictions are explicit, and
    existential restrictions are the special case [At_least 1]. *)

type role = { rname : string; inverse : bool }

val role : string -> role
(** The forward role with the given name. *)

val inv : role -> role
(** [inv (inv r) = r]. *)

val pp_role : Format.formatter -> role -> unit

(** Concepts in negation normal form. *)
type concept =
  | Top
  | Bot
  | Atom of string
  | Neg of string  (** negated atom *)
  | And of concept list
  | Or of concept list
  | All of role * concept  (** universal restriction *)
  | At_least of int * role * concept  (** [>= n r.C] with [n >= 1] *)
  | At_most of int * role * concept  (** [<= n r.C] with [n >= 0] *)

val exists : role -> concept -> concept
(** [>= 1 r.C]. *)

val neg : concept -> concept
(** Negation, pushed into NNF:
    [neg (All (r, c)) = exists r (neg c)],
    [neg (At_least (n, r, c)) = At_most (n - 1, r, c)], etc. *)

val conj : concept list -> concept
(** Flattening conjunction: drops [Top], collapses to [Bot], deduplicates. *)

val disj : concept list -> concept

val size : concept -> int
(** Syntactic size; used to demonstrate the polynomial bound on the
    translation (Theorem 3). *)

val compare : concept -> concept -> int
val equal : concept -> concept -> bool
val pp : Format.formatter -> concept -> unit
val to_string : concept -> string

(** TBox axioms. *)
type axiom =
  | Subsumption of concept * concept  (** [C ⊑ D] *)
  | Equivalence of concept * concept  (** [C ≡ D] *)

type tbox = axiom list

val pp_axiom : Format.formatter -> axiom -> unit

val internalize : tbox -> concept
(** The global concept [⊓ (¬C ⊔ D)] over all axioms (equivalences
    contribute both directions), in NNF; it must hold at every element of
    a model. *)

val tbox_size : tbox -> int
