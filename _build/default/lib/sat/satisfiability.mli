(** Object-type satisfiability (the decision problem of Section 6.2),
    combining the engines of this library.

    For a consistent schema and an object type [ot], {!check} reports:

    - [alcqi]: the verdict of the paper's Theorem 3 procedure (tableau on
      the ALCQI translation) — satisfiability over {e arbitrary} models;
    - [finite]: the verdict for {e finite} Property Graphs, which is the
      notion the problem statement actually quantifies over.  It is
      derived soundly: ALCQI-unsatisfiable implies finitely
      unsatisfiable; an infeasible counting system ({!Counting}) implies
      finitely unsatisfiable; a witness graph proves finite
      satisfiability.  When none of the engines is conclusive the verdict
      is [Unknown] (rare; none of the paper's workloads hit it);
    - [witness]: a conforming Property Graph populating [ot], when one was
      found.

    The two verdicts differ exactly on schemas whose models are all
    infinite — e.g. the paper's diagram (b) of Example 6.1; see
    EXPERIMENTS.md. *)

type report = {
  alcqi : Tableau.verdict;
  finite : Tableau.verdict;
  witness : Pg_graph.Property_graph.t option;
}

val check :
  ?fuel:int ->
  ?max_nodes:int ->
  Pg_schema.Schema.t ->
  string ->
  report
(** @raise Invalid_argument if the name is not an object type. *)

val satisfiable : ?fuel:int -> ?max_nodes:int -> Pg_schema.Schema.t -> string -> bool
(** Finite satisfiability; [Unknown] counts as satisfiable = false.
    Prefer {!check} when the distinction matters. *)

val check_all : ?fuel:int -> ?max_nodes:int -> Pg_schema.Schema.t -> (string * report) list
(** Every object type of the schema, sorted by name. *)

val unsatisfiable_types : ?fuel:int -> ?max_nodes:int -> Pg_schema.Schema.t -> string list
(** Object types whose [finite] verdict is [Unsatisfiable] — the soundness
    check a schema author wants before deploying a schema. *)

val pp_report : Format.formatter -> report -> unit
