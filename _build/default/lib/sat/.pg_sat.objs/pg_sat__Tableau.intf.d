lib/sat/tableau.mli: Alcqi Format
