lib/sat/translate.ml: Alcqi List Pg_schema
