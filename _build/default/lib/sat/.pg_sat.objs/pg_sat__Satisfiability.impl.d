lib/sat/satisfiability.ml: Counting Format List Model_search Pg_graph Pg_schema Printf Tableau Translate
