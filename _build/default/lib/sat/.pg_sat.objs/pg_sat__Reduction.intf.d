lib/sat/reduction.mli: Cnf Pg_graph Pg_schema
