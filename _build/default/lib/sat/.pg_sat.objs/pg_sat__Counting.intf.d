lib/sat/counting.mli: Pg_schema
