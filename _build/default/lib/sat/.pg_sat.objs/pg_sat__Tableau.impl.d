lib/sat/tableau.ml: Alcqi Format Hashtbl Int List Map Option Printf Set Stdlib
