lib/sat/alcqi.ml: Format List Stdlib
