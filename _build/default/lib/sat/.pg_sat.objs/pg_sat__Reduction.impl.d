lib/sat/reduction.ml: Array Buffer Cnf List Option Pg_graph Pg_schema Printf String
