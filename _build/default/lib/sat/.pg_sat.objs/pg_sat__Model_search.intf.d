lib/sat/model_search.mli: Pg_graph Pg_schema
