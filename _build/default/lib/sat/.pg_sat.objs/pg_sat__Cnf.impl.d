lib/sat/cnf.ml: Array Buffer Format List Printf String
