lib/sat/alcqi.mli: Format
