lib/sat/counting.ml: Hashtbl Int List Map Option Pg_schema Pg_validation Printf
