lib/sat/satisfiability.mli: Format Pg_graph Pg_schema Tableau
