lib/sat/model_search.ml: Array Hashtbl List Map Pg_graph Pg_schema Pg_validation Printf Random String
