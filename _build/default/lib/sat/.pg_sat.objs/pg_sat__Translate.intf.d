lib/sat/translate.mli: Alcqi Pg_schema
