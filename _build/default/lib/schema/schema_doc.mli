(** Human-readable documentation for Property Graph schemas.

    Renders a schema as Markdown: one section per object type with its
    attribute table (name, type, constraints), its relationship table
    (label, target, cardinality in the paper's Section 3.3 terms,
    directives, edge properties), interface/union membership, keys, and a
    final section listing enums and custom scalars.  SDL descriptions are
    carried through.

    The cardinality column derives from the field shape exactly as the
    paper's table: non-list = at most one outgoing, [@uniqueForTarget] =
    at most one incoming, [@required] / [@requiredForTarget] make a side
    mandatory. *)

val to_markdown : Schema.t -> string

val cardinality_label : Schema.t -> string -> Schema.field -> string
(** e.g. ["1:N"], ["N:1 (mandatory)"]; exposed for tests. *)
