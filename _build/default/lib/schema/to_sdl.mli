(** Rendering formal schemas back to SDL documents.

    [ast] produces a canonical document: custom directive definitions,
    custom scalars, enums, interfaces, unions, then object types, each in
    alphabetical order.  [Of_ast.build (ast s)] reproduces a schema equal
    to [s] up to ordering; this round-trip is property-tested. *)

val ast : Schema.t -> Pg_sdl.Ast.document
val to_string : Schema.t -> string
