(** Extension of a Property Graph schema into a GraphQL API schema
    (paper Section 3.6, "natural next step" / future work).

    A Property Graph schema defined with the SDL is not a complete GraphQL
    API schema: it lacks the mandatory [Query] root type, and it mentions
    every potential edge only from the source side, so bidirectional
    traversal is impossible.  This module implements the extension the
    paper sketches:

    - a [Query] object type with one plural entry point per object type
      ([allUser: [User]]) and one lookup entry point per declared key
      ([userById(id: ID!): User] for [@key(fields: ["id"])] with a
      single-property key whose type is scalar);
    - for bidirectional traversal, an {e inverse field} on every possible
      target type of every relationship definition: for a relationship
      [f : ... -> tt] declared in type [t], each object type that can be a
      target (each member/implementation of [tt], or [tt] itself) receives
      a field [_inverse_<f>_of_<t>: [t]];
    - a [schema { query: Query }] block.

    The result is a plain SDL document; feeding it to a GraphQL server
    implementation gives an API over graphs that conform to the original
    schema. *)

val extend : Schema.t -> (Pg_sdl.Ast.document, string) result
(** Fails if the schema already declares a type named [Query]. *)

val extend_to_string : Schema.t -> (string, string) result
