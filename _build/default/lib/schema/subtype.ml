let named sch t u =
  String.equal t u
  || List.exists (String.equal t) (Schema.implementations_of sch u)
  || List.exists (String.equal t) (Schema.union_members sch u)

(* Subtyping between list item references, where an item is a named type
   optionally wrapped non-null.  With a non-null item on the right, only
   rule 7 applies; otherwise rules 1/6 collapse to the named relation. *)
let item_sub sch (t, t_non_null) (u, u_non_null) =
  if u_non_null then t_non_null && named sch t u else named sch t u

let wrapped sch (a : Wrapped.t) (b : Wrapped.t) =
  match a, b with
  | Wrapped.Named t, Wrapped.Named u -> named sch t u
  | Wrapped.Non_null t, Wrapped.Named u -> named sch t u (* rule 6 *)
  | Wrapped.Non_null t, Wrapped.Non_null u -> named sch t u (* rule 7 *)
  | Wrapped.Named _, Wrapped.Non_null _ ->
    false (* only rules 1 and 7 produce a non-null right-hand side *)
  | Wrapped.Named t, Wrapped.List { item; item_non_null; non_null } ->
    (* rule 5; a plain type is never ⊑ a non-null list *)
    (not non_null) && item_sub sch (t, false) (item, item_non_null)
  | Wrapped.Non_null t, Wrapped.List { item; item_non_null; non_null } ->
    if non_null then
      (* rule 7: t ⊑ [item...] required, with a plain t on the left *)
      (not item_non_null) && named sch t item
    else
      (* rule 6 (via Named t ⊑ [..]) or rule 5 with a non-null left item *)
      item_sub sch (t, false) (item, item_non_null)
      || item_sub sch (t, true) (item, item_non_null)
  | Wrapped.List _, (Wrapped.Named _ | Wrapped.Non_null _) -> false
  | Wrapped.List la, Wrapped.List lb ->
    (* rules 4, 6, 7 on the outer wrappers; a plain list is never ⊑ a
       non-null list *)
    ((not lb.non_null) || la.non_null)
    && item_sub sch (la.item, la.item_non_null) (lb.item, lb.item_non_null)

let all_named sch =
  Schema.object_names sch @ Schema.interface_names sch @ Schema.union_names sch
  @ Schema.enum_names sch @ Schema.scalar_names sch

let supertypes sch t =
  List.filter (fun u -> named sch t u) (all_named sch) |> List.sort_uniq String.compare

let subtypes sch u =
  List.filter (fun t -> named sch t u) (all_named sch) |> List.sort_uniq String.compare
