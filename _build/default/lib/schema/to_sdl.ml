module Ast = Pg_sdl.Ast
module Sm = Map.Make (String)

let span = Pg_sdl.Source.dummy_span

let directive_ast (du : Schema.directive_use) : Ast.directive =
  { Ast.d_name = du.Schema.du_name; d_arguments = du.Schema.du_args; d_span = span }

let directives_ast dus = List.map directive_ast dus

let argument_ast (name, (arg : Schema.argument)) : Ast.input_value_def =
  {
    Ast.iv_description = None;
    iv_name = name;
    iv_type = Wrapped.to_ast arg.Schema.arg_type;
    iv_default = arg.Schema.arg_default;
    iv_directives = directives_ast arg.Schema.arg_directives;
    iv_span = span;
  }

let field_ast (name, (fd : Schema.field)) : Ast.field_def =
  {
    Ast.f_description = fd.Schema.fd_description;
    f_name = name;
    f_arguments = List.map argument_ast fd.Schema.fd_args;
    f_type = Wrapped.to_ast fd.Schema.fd_type;
    f_directives = directives_ast fd.Schema.fd_directives;
    f_span = span;
  }

let standard_directives = Schema.directive_names Schema.empty

let ast (sch : Schema.t) : Ast.document =
  let directive_defs =
    Sm.fold
      (fun name (dd : Schema.directive_def) acc ->
        if List.mem name standard_directives then acc
        else
          Ast.Directive_definition
            {
              Ast.dd_description = None;
              dd_name = name;
              dd_arguments = List.map argument_ast dd.Schema.dd_args;
              dd_locations = dd.Schema.dd_locations;
              dd_span = span;
            }
          :: acc)
      sch.Schema.directive_defs []
    |> List.rev
  in
  let scalars =
    Sm.fold
      (fun name (sc : Schema.scalar_type) acc ->
        if sc.Schema.sc_builtin then acc
        else
          Ast.Type_definition
            (Ast.Scalar_type
               {
                 Ast.s_description = sc.Schema.sc_description;
                 s_name = name;
                 s_directives = directives_ast sc.Schema.sc_directives;
                 s_span = span;
               })
          :: acc)
      sch.Schema.scalars []
    |> List.rev
  in
  let enums =
    Sm.fold
      (fun name (et : Schema.enum_type) acc ->
        Ast.Type_definition
          (Ast.Enum_type
             {
               Ast.e_description = et.Schema.et_description;
               e_name = name;
               e_directives = directives_ast et.Schema.et_directives;
               e_values =
                 List.map
                   (fun v ->
                     {
                       Ast.ev_description = None;
                       ev_name = v;
                       ev_directives = [];
                       ev_span = span;
                     })
                   et.Schema.et_values;
               e_span = span;
             })
        :: acc)
      sch.Schema.enums []
    |> List.rev
  in
  let interfaces =
    Sm.fold
      (fun name (it : Schema.interface_type) acc ->
        Ast.Type_definition
          (Ast.Interface_type
             {
               Ast.i_description = it.Schema.it_description;
               i_name = name;
               i_directives = directives_ast it.Schema.it_directives;
               i_fields = List.map field_ast it.Schema.it_fields;
               i_span = span;
             })
        :: acc)
      sch.Schema.interfaces []
    |> List.rev
  in
  let unions =
    Sm.fold
      (fun name (ut : Schema.union_type) acc ->
        Ast.Type_definition
          (Ast.Union_type
             {
               Ast.u_description = ut.Schema.ut_description;
               u_name = name;
               u_directives = directives_ast ut.Schema.ut_directives;
               u_members = ut.Schema.ut_members;
               u_span = span;
             })
        :: acc)
      sch.Schema.unions []
    |> List.rev
  in
  let objects =
    Sm.fold
      (fun name (ot : Schema.object_type) acc ->
        Ast.Type_definition
          (Ast.Object_type
             {
               Ast.o_description = ot.Schema.ot_description;
               o_name = name;
               o_interfaces = ot.Schema.ot_interfaces;
               o_directives = directives_ast ot.Schema.ot_directives;
               o_fields = List.map field_ast ot.Schema.ot_fields;
               o_span = span;
             })
        :: acc)
      sch.Schema.objects []
    |> List.rev
  in
  directive_defs @ scalars @ enums @ interfaces @ unions @ objects

let to_string sch = Pg_sdl.Printer.document_to_string (ast sch)
