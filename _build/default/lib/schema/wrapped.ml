module Ast = Pg_sdl.Ast
module Printer = Pg_sdl.Printer

type t =
  | Named of string
  | Non_null of string
  | List of { item : string; item_non_null : bool; non_null : bool }

let basetype = function Named t | Non_null t -> t | List { item; _ } -> item
let is_list = function List _ -> true | Named _ | Non_null _ -> false

let is_non_null = function
  | Non_null _ -> true
  | List { non_null; _ } -> non_null
  | Named _ -> false

let of_ast (ty : Ast.type_ref) =
  match ty with
  | Ast.Named_type t -> Ok (Named t)
  | Ast.Non_null_type (Ast.Named_type t) -> Ok (Non_null t)
  | Ast.List_type (Ast.Named_type item) ->
    Ok (List { item; item_non_null = false; non_null = false })
  | Ast.List_type (Ast.Non_null_type (Ast.Named_type item)) ->
    Ok (List { item; item_non_null = true; non_null = false })
  | Ast.Non_null_type (Ast.List_type (Ast.Named_type item)) ->
    Ok (List { item; item_non_null = false; non_null = true })
  | Ast.Non_null_type (Ast.List_type (Ast.Non_null_type (Ast.Named_type item))) ->
    Ok (List { item; item_non_null = true; non_null = true })
  | _ ->
    Error
      "nested list types are outside the Property Graph schema formalization \
       (only t, t!, [t], [t!], [t]!, and [t!]! are allowed)"

let to_ast = function
  | Named t -> Ast.Named_type t
  | Non_null t -> Ast.Non_null_type (Ast.Named_type t)
  | List { item; item_non_null; non_null } ->
    let inner : Ast.type_ref =
      if item_non_null then Ast.Non_null_type (Ast.Named_type item) else Ast.Named_type item
    in
    let listed = Ast.List_type inner in
    if non_null then Ast.Non_null_type listed else listed

let to_string t = Printer.type_ref_to_string (to_ast t)
let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal (t1 : t) t2 = t1 = t2
let compare (t1 : t) t2 = Stdlib.compare t1 t2

let all_wrappings item =
  [
    Named item;
    Non_null item;
    List { item; item_non_null = false; non_null = false };
    List { item; item_non_null = true; non_null = false };
    List { item; item_non_null = false; non_null = true };
    List { item; item_non_null = true; non_null = true };
  ]
