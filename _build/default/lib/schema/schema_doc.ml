module Sm = Map.Make (String)

let buf_line buf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt

let directive_names (dus : Schema.directive_use list) =
  List.map (fun (du : Schema.directive_use) -> "@" ^ du.Schema.du_name) dus

let cardinality_label sch _owner (fd : Schema.field) =
  ignore sch;
  let list = Wrapped.is_list fd.Schema.fd_type in
  let unique = Schema.has_directive fd.Schema.fd_directives "uniqueForTarget" in
  let base =
    match list, unique with
    | false, true -> "1:1"
    | false, false -> "1:N"
    | true, true -> "N:1"
    | true, false -> "N:M"
  in
  let marks =
    (if Schema.has_directive fd.Schema.fd_directives "required" then [ "source mandatory" ]
     else [])
    @
    if Schema.has_directive fd.Schema.fd_directives "requiredForTarget" then
      [ "target mandatory" ]
    else []
  in
  match marks with [] -> base | ms -> Printf.sprintf "%s (%s)" base (String.concat ", " ms)

let describe_attribute (fd : Schema.field) =
  match directive_names fd.Schema.fd_directives with
  | [] -> "optional"
  | ds -> String.concat ", " ds

let to_markdown (sch : Schema.t) =
  let buf = Buffer.create 2048 in
  buf_line buf "# Schema documentation";
  buf_line buf "";
  (* keys per type for quick lookup *)
  let keys_of (ot : Schema.object_type) =
    List.filter_map Schema.key_fields (Schema.find_directives ot.Schema.ot_directives "key")
  in
  let interfaces_of name (ot : Schema.object_type) =
    ignore name;
    ot.Schema.ot_interfaces
  in
  let unions_containing name =
    List.filter (fun u -> List.mem name (Schema.union_members sch u)) (Schema.union_names sch)
  in
  List.iter
    (fun name ->
      let ot = Sm.find name sch.Schema.objects in
      buf_line buf "## type %s" name;
      buf_line buf "";
      (match ot.Schema.ot_description with
      | Some d ->
        buf_line buf "%s" d;
        buf_line buf ""
      | None -> ());
      let memberships =
        List.map (fun i -> "implements `" ^ i ^ "`") (interfaces_of name ot)
        @ List.map (fun u -> "member of union `" ^ u ^ "`") (unions_containing name)
      in
      if memberships <> [] then begin
        buf_line buf "%s" (String.concat "; " memberships);
        buf_line buf ""
      end;
      (match keys_of ot with
      | [] -> ()
      | keys ->
        List.iter
          (fun fs -> buf_line buf "- key: [%s]" (String.concat ", " fs))
          keys;
        buf_line buf "");
      let attributes, relationships =
        List.partition
          (fun (_, fd) -> Schema.classify_field sch fd = Some Schema.Attribute)
          ot.Schema.ot_fields
      in
      if attributes <> [] then begin
        buf_line buf "| property | type | constraints |";
        buf_line buf "|---|---|---|";
        List.iter
          (fun (f, (fd : Schema.field)) ->
            buf_line buf "| `%s` | `%s` | %s |" f
              (Wrapped.to_string fd.Schema.fd_type)
              (describe_attribute fd))
          attributes;
        buf_line buf ""
      end;
      if relationships <> [] then begin
        buf_line buf "| edge | target | cardinality | directives | edge properties |";
        buf_line buf "|---|---|---|---|---|";
        List.iter
          (fun (f, (fd : Schema.field)) ->
            let props =
              String.concat ", "
                (List.map
                   (fun (a, (arg : Schema.argument)) ->
                     Printf.sprintf "`%s: %s`" a (Wrapped.to_string arg.Schema.arg_type))
                   fd.Schema.fd_args)
            in
            buf_line buf "| `%s` | `%s` | %s | %s | %s |" f
              (Wrapped.basetype fd.Schema.fd_type)
              (cardinality_label sch name fd)
              (String.concat " " (directive_names fd.Schema.fd_directives))
              props)
          relationships;
        buf_line buf ""
      end)
    (Schema.object_names sch);
  let interface_names = Schema.interface_names sch in
  if interface_names <> [] then begin
    buf_line buf "## Interfaces";
    buf_line buf "";
    List.iter
      (fun i ->
        buf_line buf "- `%s` implemented by %s" i
          (String.concat ", "
             (List.map (fun o -> "`" ^ o ^ "`") (Schema.implementations_of sch i))))
      interface_names;
    buf_line buf ""
  end;
  let union_names = Schema.union_names sch in
  if union_names <> [] then begin
    buf_line buf "## Unions";
    buf_line buf "";
    List.iter
      (fun u ->
        buf_line buf "- `%s` = %s" u
          (String.concat " | " (List.map (fun m -> "`" ^ m ^ "`") (Schema.union_members sch u))))
      union_names;
    buf_line buf ""
  end;
  let enums = Schema.enum_names sch in
  if enums <> [] then begin
    buf_line buf "## Enums";
    buf_line buf "";
    List.iter
      (fun e ->
        let et = Sm.find e sch.Schema.enums in
        buf_line buf "- `%s`: %s" e (String.concat ", " et.Schema.et_values))
      enums;
    buf_line buf ""
  end;
  let custom_scalars =
    List.filter
      (fun s -> not (Sm.find s sch.Schema.scalars).Schema.sc_builtin)
      (Schema.scalar_names sch)
  in
  if custom_scalars <> [] then begin
    buf_line buf "## Custom scalars";
    buf_line buf "";
    List.iter
      (fun name ->
        match (Sm.find name sch.Schema.scalars).Schema.sc_description with
        | Some d -> buf_line buf "- `%s` — %s" name d
        | None -> buf_line buf "- `%s`" name)
      custom_scalars;
    buf_line buf ""
  end;
  Buffer.contents buf
