(** Wrapping types (paper Section 4.1; GraphQL spec 3.4.1, 3.11, 3.12).

    Given a named type [t], the formalization allows exactly the wrapped
    forms [t!], [[t]], [[t!]], and [[t]!], [[t!]!]; together with the plain
    named type this gives six type references.  Nested list types ([[ [t] ]])
    are legal GraphQL but are outside the paper's formalization and are
    rejected when translating from the AST. *)

type t =
  | Named of string  (** [t] *)
  | Non_null of string  (** [t!] *)
  | List of { item : string; item_non_null : bool; non_null : bool }
      (** [[t]], [[t!]], [[t]!], [[t!]!] *)

val basetype : t -> string
(** The underlying named type (paper's [basetype] function). *)

val is_list : t -> bool
(** [true] for the four list forms.  Rule WS4 constrains fields whose type
    is {e not} a list type ("not a list type or a list type wrapped in
    non-null type") to at most one edge per source node. *)

val is_non_null : t -> bool
(** [true] iff the outermost wrapper is non-null ([t!], [[t]!], [[t!]!]). *)

val of_ast : Pg_sdl.Ast.type_ref -> (t, string) result
(** Translate an AST type reference; fails on nested lists with an
    explanatory message. *)

val to_ast : t -> Pg_sdl.Ast.type_ref

val to_string : t -> string
(** SDL syntax, e.g. ["[String!]!"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int

val all_wrappings : string -> t list
(** The six type references over a named type, in a fixed order; used by
    generators and by the AC0-style enumeration in the validator. *)
