lib/schema/schema.ml: Format List Map Option Pg_sdl String Wrapped
