lib/schema/to_sdl.mli: Pg_sdl Schema
