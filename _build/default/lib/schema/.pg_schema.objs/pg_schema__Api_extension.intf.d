lib/schema/api_extension.mli: Pg_sdl Schema
