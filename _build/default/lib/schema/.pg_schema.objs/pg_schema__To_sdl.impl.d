lib/schema/to_sdl.ml: List Map Pg_sdl Schema String Wrapped
