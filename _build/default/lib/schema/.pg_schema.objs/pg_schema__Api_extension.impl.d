lib/schema/api_extension.ml: List Map Pg_sdl Printf Result Schema String To_sdl Wrapped
