lib/schema/schema.mli: Format Map Pg_sdl String Wrapped
