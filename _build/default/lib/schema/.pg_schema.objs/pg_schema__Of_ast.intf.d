lib/schema/of_ast.mli: Format Pg_sdl Schema
