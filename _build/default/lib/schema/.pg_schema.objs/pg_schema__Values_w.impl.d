lib/schema/values_w.ml: Fun List Map Option Pg_graph Pg_sdl Schema String Wrapped
