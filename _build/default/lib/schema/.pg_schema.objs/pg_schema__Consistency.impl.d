lib/schema/consistency.ml: Format List Map Pg_sdl Printf Schema String Subtype Values_w Wrapped
