lib/schema/schema_doc.mli: Schema
