lib/schema/schema_doc.ml: Buffer List Map Printf Schema String Wrapped
