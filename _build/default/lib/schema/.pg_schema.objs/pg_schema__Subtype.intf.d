lib/schema/subtype.mli: Schema Wrapped
