lib/schema/consistency.mli: Format Pg_sdl Schema Values_w Wrapped
