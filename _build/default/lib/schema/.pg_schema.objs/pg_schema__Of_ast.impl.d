lib/schema/of_ast.ml: Consistency Format Hashtbl List Map Pg_sdl Printf Result Schema String Wrapped
