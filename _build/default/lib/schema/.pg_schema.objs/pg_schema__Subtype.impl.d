lib/schema/subtype.ml: List Schema String Wrapped
