lib/schema/wrapped.mli: Format Pg_sdl
