lib/schema/values_w.mli: Pg_graph Pg_sdl Schema Wrapped
