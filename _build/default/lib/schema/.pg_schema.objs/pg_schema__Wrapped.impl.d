lib/schema/wrapped.ml: Format Pg_sdl Stdlib
