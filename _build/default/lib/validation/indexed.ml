module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype

(* Cached named-subtype test: schemas are small, graphs are big, so the
   (label, type) pairs actually queried are few and worth memoizing. *)
type subtype_cache = (string * string, bool) Hashtbl.t

let make_subtype_cache () : subtype_cache = Hashtbl.create 64

let is_sub cache sch label ty =
  match Hashtbl.find_opt cache (label, ty) with
  | Some b -> b
  | None ->
    let b = Subtype.named sch label ty in
    Hashtbl.add cache (label, ty) b;
    b

(* Edge indexes, built in one pass. *)
type indexes = {
  out_by : (int * string, G.edge list) Hashtbl.t;  (* (source id, label) -> edges *)
  in_by : (int * string, G.edge list) Hashtbl.t;  (* (target id, label) -> edges *)
  parallel : (int * int * string, G.edge list) Hashtbl.t;
      (* (source id, target id, label) -> edges *)
}

let push tbl key e =
  match Hashtbl.find_opt tbl key with
  | Some l -> Hashtbl.replace tbl key (e :: l)
  | None -> Hashtbl.add tbl key [ e ]

let build_indexes g =
  let idx =
    {
      out_by = Hashtbl.create 256;
      in_by = Hashtbl.create 256;
      parallel = Hashtbl.create 256;
    }
  in
  List.iter
    (fun e ->
      let v1, v2 = G.edge_ends g e in
      let f = G.edge_label g e in
      push idx.out_by (G.node_id v1, f) e;
      push idx.in_by (G.node_id v2, f) e;
      push idx.parallel (G.node_id v1, G.node_id v2, f) e)
    (G.edges g);
  idx

(* All unordered pairs of a group, as violations. *)
let pairwise group mk acc =
  let rec go acc = function
    | [] -> acc
    | e1 :: rest -> go (List.fold_left (fun acc e2 -> mk e1 e2 :: acc) acc rest) rest
  in
  go acc group

(* WS4 over the (source, label) groups *)
let ws4 sch g idx acc =
  Hashtbl.fold
    (fun (src_id, f) group acc ->
      match group with
      | [] | [ _ ] -> acc
      | _ -> (
        let src_label =
          match G.node_of_id g src_id with
          | Some v -> G.node_label g v
          | None -> assert false
        in
        match Schema.type_f sch src_label f with
        | Some t when not (Rules.multi_edge t) ->
          pairwise group
            (fun e1 e2 ->
              Violation.make Violation.WS4
                (Violation.Edge_pair (G.edge_id e1, G.edge_id e2))
                (Printf.sprintf
                   "node n%d has two %S edges but the field type %s is not a list type"
                   src_id f (Wrapped.to_string t)))
            acc
        | Some _ | None -> acc))
    idx.out_by acc

let weak ?env sch g =
  let idx = build_indexes g in
  []
  |> Linear.ws1 ?env sch g
  |> Linear.ws2 ?env sch g
  |> Linear.ws3 sch g
  |> ws4 sch g idx
  |> Violation.normalize

(* DS1: parallel-edge groups *)
let ds1 cache sch g idx constraints acc =
  Hashtbl.fold
    (fun (src_id, _tgt_id, f) group acc ->
      match group with
      | [] | [ _ ] -> acc
      | _ ->
        let src_label =
          match G.node_of_id g src_id with
          | Some v -> G.node_label g v
          | None -> assert false
        in
        List.fold_left
          (fun acc (fc : Rules.field_constraint) ->
            if
              String.equal fc.Rules.field f
              && is_sub cache sch src_label fc.Rules.owner
            then
              pairwise group
                (fun e1 e2 ->
                  Violation.make Violation.DS1
                    (Violation.Edge_pair (G.edge_id e1, G.edge_id e2))
                    (Printf.sprintf
                       "parallel %S edges violate @distinct on %s.%s" f fc.Rules.owner
                       fc.Rules.field))
                acc
            else acc)
          acc constraints)
    idx.parallel acc

(* DS2: loops *)
let ds2 cache sch g constraints acc =
  List.fold_left
    (fun acc e ->
      let v1, v2 = G.edge_ends g e in
      if G.node_id v1 <> G.node_id v2 then acc
      else begin
        let f = G.edge_label g e in
        let label = G.node_label g v1 in
        List.fold_left
          (fun acc (fc : Rules.field_constraint) ->
            if String.equal fc.Rules.field f && is_sub cache sch label fc.Rules.owner then
              Violation.make Violation.DS2
                (Violation.Edge (G.edge_id e))
                (Printf.sprintf "loop on node n%d violates @noLoops on %s.%s" (G.node_id v1)
                   fc.Rules.owner fc.Rules.field)
              :: acc
            else acc)
          acc constraints
      end)
    acc (G.edges g)

(* DS3: incoming groups, filtered to sources of the declaring type *)
let ds3 cache sch g idx constraints acc =
  Hashtbl.fold
    (fun (tgt_id, f) group acc ->
      match group with
      | [] | [ _ ] -> acc
      | _ ->
        List.fold_left
          (fun acc (fc : Rules.field_constraint) ->
            if not (String.equal fc.Rules.field f) then acc
            else begin
              let qualified =
                List.filter
                  (fun e ->
                    let v1, _ = G.edge_ends g e in
                    is_sub cache sch (G.node_label g v1) fc.Rules.owner)
                  group
              in
              pairwise qualified
                (fun e1 e2 ->
                  Violation.make Violation.DS3
                    (Violation.Edge_pair (G.edge_id e1, G.edge_id e2))
                    (Printf.sprintf
                       "node n%d has two incoming %S edges, violating @uniqueForTarget on \
                        %s.%s"
                       tgt_id f fc.Rules.owner fc.Rules.field))
                acc
            end)
          acc constraints)
    idx.in_by acc

(* DS4: nodes of the target type need a qualified incoming edge *)
let ds4 cache sch g idx constraints acc =
  List.fold_left
    (fun acc v2 ->
      let label = G.node_label g v2 in
      List.fold_left
        (fun acc (fc : Rules.field_constraint) ->
          let target_base = Wrapped.basetype fc.Rules.fd.Schema.fd_type in
          if not (is_sub cache sch label target_base) then acc
          else begin
            let incoming =
              Option.value ~default:[]
                (Hashtbl.find_opt idx.in_by (G.node_id v2, fc.Rules.field))
            in
            let ok =
              List.exists
                (fun e ->
                  let v1, _ = G.edge_ends g e in
                  is_sub cache sch (G.node_label g v1) fc.Rules.owner)
                incoming
            in
            if ok then acc
            else
              Violation.make Violation.DS4
                (Violation.Node (G.node_id v2))
                (Printf.sprintf
                   "node n%d (%S) has no incoming %S edge required by @requiredForTarget on \
                    %s.%s"
                   (G.node_id v2) label fc.Rules.field fc.Rules.owner fc.Rules.field)
              :: acc
          end)
        acc constraints)
    acc (G.nodes g)

(* DS5/DS6 *)
let ds56 cache sch g idx constraints acc =
  List.fold_left
    (fun acc v ->
      let label = G.node_label g v in
      List.fold_left
        (fun acc (fc : Rules.field_constraint) ->
          if not (is_sub cache sch label fc.Rules.owner) then acc
          else if Rules.is_attribute_type sch fc.Rules.fd.Schema.fd_type then begin
            match G.node_prop g v fc.Rules.field with
            | None ->
              Violation.make Violation.DS5
                (Violation.Node_property (G.node_id v, fc.Rules.field))
                (Printf.sprintf "node n%d lacks the property %S required on %s.%s"
                   (G.node_id v) fc.Rules.field fc.Rules.owner fc.Rules.field)
              :: acc
            | Some value ->
              if Wrapped.is_list fc.Rules.fd.Schema.fd_type then begin
                match value with
                | Value.List (_ :: _) -> acc
                | _ ->
                  Violation.make Violation.DS5
                    (Violation.Node_property (G.node_id v, fc.Rules.field))
                    (Printf.sprintf
                       "property %S of node n%d must be a nonempty list (required list \
                        attribute)"
                       fc.Rules.field (G.node_id v))
                  :: acc
              end
              else acc
          end
          else begin
            match Hashtbl.find_opt idx.out_by (G.node_id v, fc.Rules.field) with
            | Some (_ :: _) -> acc
            | Some [] | None ->
              Violation.make Violation.DS6
                (Violation.Node (G.node_id v))
                (Printf.sprintf "node n%d lacks the outgoing %S edge required on %s.%s"
                   (G.node_id v) fc.Rules.field fc.Rules.owner fc.Rules.field)
              :: acc
          end)
        acc constraints)
    acc (G.nodes g)

(* A collision-free serialization of property values, compatible with
   Value.equal: tagged and length-prefixed (Value.to_string would conflate
   e.g. Id "x" and String "x"), with floats canonicalized by bit pattern
   (+0.0 = -0.0, one representative for nan). *)
let rec add_value_key buf (v : Value.t) =
  match v with
  | Value.Int i ->
    Buffer.add_char buf 'i';
    Buffer.add_string buf (string_of_int i)
  | Value.Float f ->
    Buffer.add_char buf 'f';
    if Float.is_nan f then Buffer.add_string buf "nan"
    else Buffer.add_string buf (Int64.to_string (Int64.bits_of_float (f +. 0.0)))
  | Value.String s ->
    Buffer.add_char buf 's';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  | Value.Bool b ->
    Buffer.add_char buf 'b';
    Buffer.add_char buf (if b then '1' else '0')
  | Value.Id s ->
    Buffer.add_char buf 'd';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  | Value.Enum s ->
    Buffer.add_char buf 'e';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  | Value.List vs ->
    Buffer.add_char buf 'l';
    Buffer.add_string buf (string_of_int (List.length vs));
    Buffer.add_char buf ':';
    List.iter (add_value_key buf) vs

(* DS7: group nodes by key vector *)
let ds7 cache sch g acc =
  List.fold_left
    (fun acc (owner, key_fields) ->
      let attribute_fields =
        List.filter
          (fun f ->
            match Schema.type_f sch owner f with
            | Some t -> Rules.is_attribute_type sch t
            | None -> false)
          key_fields
      in
      let groups : (string, G.node list) Hashtbl.t = Hashtbl.create 256 in
      List.iter
        (fun v ->
          if is_sub cache sch (G.node_label g v) owner then begin
            let buf = Buffer.create 32 in
            List.iter
              (fun f ->
                (match G.node_prop g v f with
                | None -> Buffer.add_char buf 'A' (* absent *)
                | Some value ->
                  Buffer.add_char buf 'P';
                  add_value_key buf value);
                Buffer.add_char buf '\x00')
              attribute_fields;
            push groups (Buffer.contents buf) v
          end)
        (G.nodes g);
      Hashtbl.fold
        (fun _key group acc ->
          match group with
          | [] | [ _ ] -> acc
          | _ ->
            pairwise group
              (fun v1 v2 ->
                Violation.make Violation.DS7
                  (Violation.Node_pair (G.node_id v1, G.node_id v2))
                  (Printf.sprintf "distinct nodes n%d and n%d of type %s agree on key [%s]"
                     (G.node_id v1) (G.node_id v2) owner
                     (String.concat ", " key_fields)))
              acc)
        groups acc)
    acc (Rules.key_constraints sch)

let directives ?env sch g =
  ignore env;
  let cache = make_subtype_cache () in
  let idx = build_indexes g in
  let distinct = Rules.constrained_fields sch ~directive:"distinct" in
  let no_loops = Rules.constrained_fields sch ~directive:"noLoops" in
  let unique_for_target = Rules.constrained_fields sch ~directive:"uniqueForTarget" in
  let required_for_target = Rules.constrained_fields sch ~directive:"requiredForTarget" in
  let required = Rules.constrained_fields sch ~directive:"required" in
  []
  |> ds1 cache sch g idx distinct
  |> ds2 cache sch g no_loops
  |> ds3 cache sch g idx unique_for_target
  |> ds4 cache sch g idx required_for_target
  |> ds56 cache sch g idx required
  |> ds7 cache sch g
  |> Violation.normalize

let strong_extra = Linear.strong_extra
