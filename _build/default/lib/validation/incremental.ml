module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype
module Values_w = Pg_schema.Values_w
module ISet = Set.Make (Int)

module VSet = Set.Make (struct
  type t = Violation.t

  let compare = Violation.compare
end)

type region = { rnodes : ISet.t; redges : ISet.t }

let empty_region = { rnodes = ISet.empty; redges = ISet.empty }
let with_node r v = { r with rnodes = ISet.add (G.node_id v) r.rnodes }
let with_edge r e = { r with redges = ISet.add (G.edge_id e) r.redges }

let involves region (v : Violation.t) =
  match v.Violation.subject with
  | Violation.Node id | Violation.Node_property (id, _) -> ISet.mem id region.rnodes
  | Violation.Edge id | Violation.Edge_property (id, _) -> ISet.mem id region.redges
  | Violation.Node_pair (a, b) -> ISet.mem a region.rnodes || ISet.mem b region.rnodes
  | Violation.Edge_pair (a, b) -> ISet.mem a region.redges || ISet.mem b region.redges

type t = {
  sch : Schema.t;
  env : Values_w.env option;
  g : G.t;
  vset : VSet.t;
  (* constraint tables, computed once from the schema *)
  required : Rules.field_constraint list;
  required_tgt : Rules.field_constraint list;
  unique_tgt : Rules.field_constraint list;
  distinct : Rules.field_constraint list;
  no_loops : Rules.field_constraint list;
  keys : (string * string list) list;
}

let graph t = t.g
let schema t = t.sch
let violations t = VSet.elements t.vset
let is_valid t = VSet.is_empty t.vset

(* ------------------------------------------------------------------ *)
(* Local revalidation: the fifteen rules restricted to a region.        *)

let is_attr t wt = Rules.is_attribute_type t.sch wt

let node_violations t v acc =
  let g = t.g in
  let label = G.node_label g v in
  let vid = G.node_id v in
  (* SS1 *)
  let acc =
    if Schema.type_kind t.sch label = Some Schema.Object then acc
    else
      Violation.make Violation.SS1 (Violation.Node vid)
        (Printf.sprintf "label %S is not an object type of the schema" label)
      :: acc
  in
  (* WS1 + SS2 over the node's properties *)
  let acc =
    List.fold_left
      (fun acc (p, value) ->
        match Schema.type_f t.sch label p with
        | Some wt when is_attr t wt ->
          if Values_w.mem ?env:t.env t.sch wt value then acc
          else
            Violation.make Violation.WS1
              (Violation.Node_property (vid, p))
              (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                 (Wrapped.to_string wt))
            :: acc
        | Some _ ->
          Violation.make Violation.SS2
            (Violation.Node_property (vid, p))
            (Printf.sprintf "field %s.%s is a relationship definition, not an attribute" label p)
          :: acc
        | None ->
          Violation.make Violation.SS2
            (Violation.Node_property (vid, p))
            (Printf.sprintf "no field %S is declared for type %S" p label)
          :: acc)
      acc (G.node_props g v)
  in
  (* DS5 / DS6 *)
  let acc =
    List.fold_left
      (fun acc (fc : Rules.field_constraint) ->
        if not (Subtype.named t.sch label fc.Rules.owner) then acc
        else if is_attr t fc.Rules.fd.Schema.fd_type then begin
          match G.node_prop g v fc.Rules.field with
          | None ->
            Violation.make Violation.DS5
              (Violation.Node_property (vid, fc.Rules.field))
              (Printf.sprintf "node n%d lacks the property %S required on %s.%s" vid
                 fc.Rules.field fc.Rules.owner fc.Rules.field)
            :: acc
          | Some value ->
            if Wrapped.is_list fc.Rules.fd.Schema.fd_type then begin
              match value with
              | Value.List (_ :: _) -> acc
              | _ ->
                Violation.make Violation.DS5
                  (Violation.Node_property (vid, fc.Rules.field))
                  (Printf.sprintf
                     "property %S of node n%d must be a nonempty list (required list attribute)"
                     fc.Rules.field vid)
                :: acc
            end
            else acc
        end
        else if
          List.exists
            (fun e -> String.equal (G.edge_label g e) fc.Rules.field)
            (G.out_edges g v)
        then acc
        else
          Violation.make Violation.DS6 (Violation.Node vid)
            (Printf.sprintf "node n%d lacks the outgoing %S edge required on %s.%s" vid
               fc.Rules.field fc.Rules.owner fc.Rules.field)
          :: acc)
      acc t.required
  in
  (* DS4 *)
  let acc =
    List.fold_left
      (fun acc (fc : Rules.field_constraint) ->
        let base = Wrapped.basetype fc.Rules.fd.Schema.fd_type in
        if not (Subtype.named t.sch label base) then acc
        else if
          List.exists
            (fun e ->
              String.equal (G.edge_label g e) fc.Rules.field
              &&
              let src, _ = G.edge_ends g e in
              Subtype.named t.sch (G.node_label g src) fc.Rules.owner)
            (G.in_edges g v)
        then acc
        else
          Violation.make Violation.DS4 (Violation.Node vid)
            (Printf.sprintf
               "node n%d (%S) has no incoming %S edge required by @requiredForTarget on %s.%s"
               vid label fc.Rules.field fc.Rules.owner fc.Rules.field)
          :: acc)
      acc t.required_tgt
  in
  (* DS7: pairs between v and every other node of the keyed type *)
  List.fold_left
    (fun acc (owner, key_fields) ->
      if not (Subtype.named t.sch label owner) then acc
      else begin
        let attribute_fields =
          List.filter
            (fun f ->
              match Schema.type_f t.sch owner f with
              | Some wt -> is_attr t wt
              | None -> false)
            key_fields
        in
        let agree u f =
          match G.node_prop g v f, G.node_prop g u f with
          | None, None -> true
          | Some x, Some y -> Value.equal x y
          | Some _, None | None, Some _ -> false
        in
        List.fold_left
          (fun acc u ->
            if
              G.node_id u <> vid
              && Subtype.named t.sch (G.node_label g u) owner
              && List.for_all (agree u) attribute_fields
            then
              Violation.make Violation.DS7
                (Violation.Node_pair (vid, G.node_id u))
                (Printf.sprintf "distinct nodes n%d and n%d of type %s agree on key [%s]" vid
                   (G.node_id u) owner
                   (String.concat ", " key_fields))
              :: acc
            else acc)
          acc (G.nodes g)
      end)
    acc t.keys

let edge_violations t e acc =
  let g = t.g in
  let eid = G.edge_id e in
  let v1, v2 = G.edge_ends g e in
  let src_label = G.node_label g v1 in
  let f = G.edge_label g e in
  let field = Schema.field t.sch src_label f in
  (* WS2 + SS3 over the edge's properties *)
  let acc =
    List.fold_left
      (fun acc (a, value) ->
        match Schema.arg_type t.sch src_label f a with
        | Some wt ->
          if Values_w.mem ?env:t.env t.sch wt value then acc
          else
            Violation.make Violation.WS2
              (Violation.Edge_property (eid, a))
              (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                 (Wrapped.to_string wt))
            :: acc
        | None ->
          Violation.make Violation.SS3
            (Violation.Edge_property (eid, a))
            (Printf.sprintf "no argument %S is declared for field %s.%s" a src_label f)
          :: acc)
      acc (G.edge_props g e)
  in
  (* WS3 + SS4 *)
  let acc =
    match field with
    | Some fd when not (is_attr t fd.Schema.fd_type) ->
      let base = Wrapped.basetype fd.Schema.fd_type in
      if Subtype.named t.sch (G.node_label g v2) base then acc
      else
        Violation.make Violation.WS3 (Violation.Edge eid)
          (Printf.sprintf "target node n%d has label %S, which is not a subtype of %S"
             (G.node_id v2) (G.node_label g v2) base)
        :: acc
    | Some fd ->
      (* attribute-typed field: WS3 applies (label is never ⊑ a scalar) and
         SS4 reports the unjustified edge *)
      let acc =
        Violation.make Violation.SS4 (Violation.Edge eid)
          (Printf.sprintf "field %s.%s is an attribute definition and justifies no edges"
             src_label f)
        :: acc
      in
      let base = Wrapped.basetype fd.Schema.fd_type in
      if Subtype.named t.sch (G.node_label g v2) base then acc
      else
        Violation.make Violation.WS3 (Violation.Edge eid)
          (Printf.sprintf "target node n%d has label %S, which is not a subtype of %S"
             (G.node_id v2) (G.node_label g v2) base)
        :: acc
    | None ->
      Violation.make Violation.SS4 (Violation.Edge eid)
        (Printf.sprintf "no field %S is declared for type %S" f src_label)
      :: acc
  in
  (* WS4: pairs with sibling edges *)
  let acc =
    match field with
    | Some fd when not (Wrapped.is_list fd.Schema.fd_type) ->
      List.fold_left
        (fun acc e' ->
          if G.edge_id e' <> eid && String.equal (G.edge_label g e') f then
            Violation.make Violation.WS4
              (Violation.Edge_pair (eid, G.edge_id e'))
              (Printf.sprintf
                 "node n%d has two %S edges but the field type %s is not a list type"
                 (G.node_id v1) f
                 (Wrapped.to_string fd.Schema.fd_type))
            :: acc
          else acc)
        acc (G.out_edges g v1)
    | Some _ | None -> acc
  in
  (* DS1: parallel duplicates *)
  let acc =
    List.fold_left
      (fun acc (fc : Rules.field_constraint) ->
        if
          String.equal fc.Rules.field f && Subtype.named t.sch src_label fc.Rules.owner
        then
          List.fold_left
            (fun acc e' ->
              let _, v2' = G.edge_ends g e' in
              if
                G.edge_id e' <> eid
                && String.equal (G.edge_label g e') f
                && G.node_id v2' = G.node_id v2
              then
                Violation.make Violation.DS1
                  (Violation.Edge_pair (eid, G.edge_id e'))
                  (Printf.sprintf "parallel %S edges between n%d and n%d violate @distinct on %s.%s"
                     f (G.node_id v1) (G.node_id v2) fc.Rules.owner fc.Rules.field)
                :: acc
              else acc)
            acc (G.out_edges g v1)
        else acc)
      acc t.distinct
  in
  (* DS2: loops *)
  let acc =
    if G.node_id v1 <> G.node_id v2 then acc
    else
      List.fold_left
        (fun acc (fc : Rules.field_constraint) ->
          if
            String.equal fc.Rules.field f && Subtype.named t.sch src_label fc.Rules.owner
          then
            Violation.make Violation.DS2 (Violation.Edge eid)
              (Printf.sprintf "loop on node n%d violates @noLoops on %s.%s" (G.node_id v1)
                 fc.Rules.owner fc.Rules.field)
            :: acc
          else acc)
        acc t.no_loops
  in
  (* DS3: pairs among incoming edges of the target *)
  List.fold_left
    (fun acc (fc : Rules.field_constraint) ->
      if
        String.equal fc.Rules.field f && Subtype.named t.sch src_label fc.Rules.owner
      then
        List.fold_left
          (fun acc e' ->
            let s', _ = G.edge_ends g e' in
            if
              G.edge_id e' <> eid
              && String.equal (G.edge_label g e') f
              && Subtype.named t.sch (G.node_label g s') fc.Rules.owner
            then
              Violation.make Violation.DS3
                (Violation.Edge_pair (eid, G.edge_id e'))
                (Printf.sprintf
                   "node n%d has two incoming %S edges, violating @uniqueForTarget on %s.%s"
                   (G.node_id v2) f fc.Rules.owner fc.Rules.field)
              :: acc
            else acc)
          acc (G.in_edges g v2)
      else acc)
    acc t.unique_tgt

let local_violations t region =
  let acc =
    ISet.fold
      (fun id acc ->
        match G.node_of_id t.g id with Some v -> node_violations t v acc | None -> acc)
      region.rnodes []
  in
  ISet.fold
    (fun id acc ->
      match G.edge_of_id t.g id with Some e -> edge_violations t e acc | None -> acc)
    region.redges acc

(* Replace the region's violations with freshly computed ones. *)
let refresh t region =
  let kept = VSet.filter (fun v -> not (involves region v)) t.vset in
  let fresh = local_violations t region in
  { t with vset = List.fold_left (fun s v -> VSet.add v s) kept fresh }

(* ------------------------------------------------------------------ *)

let create ?env sch g =
  let report = Validate.check ~engine:Validate.Indexed ?env sch g in
  {
    sch;
    env;
    g;
    vset = VSet.of_list report.Validate.violations;
    required = Rules.constrained_fields sch ~directive:"required";
    required_tgt = Rules.constrained_fields sch ~directive:"requiredForTarget";
    unique_tgt = Rules.constrained_fields sch ~directive:"uniqueForTarget";
    distinct = Rules.constrained_fields sch ~directive:"distinct";
    no_loops = Rules.constrained_fields sch ~directive:"noLoops";
    keys = Rules.key_constraints sch;
  }

let add_node t ~label ?props () =
  let g, v = G.add_node t.g ~label ?props () in
  let t = { t with g } in
  (refresh t (with_node empty_region v), v)

let add_edge t ~label ?props v1 v2 =
  let g, e = G.add_edge t.g ~label ?props v1 v2 in
  let t = { t with g } in
  let region = with_edge (with_node (with_node empty_region v1) v2) e in
  (refresh t region, e)

let remove_edge t e =
  if not (G.mem_edge t.g e) then t
  else begin
    let v1, v2 = G.edge_ends t.g e in
    let region = with_edge (with_node (with_node empty_region v1) v2) e in
    refresh { t with g = G.remove_edge t.g e } region
  end

let remove_node t v =
  if not (G.mem_node t.g v) then t
  else begin
    let incident = G.out_edges t.g v @ G.in_edges t.g v in
    let region =
      List.fold_left
        (fun r e ->
          let a, b = G.edge_ends t.g e in
          with_edge (with_node (with_node r a) b) e)
        (with_node empty_region v) incident
    in
    refresh { t with g = G.remove_node t.g v } region
  end

let set_node_prop t v name value =
  refresh { t with g = G.set_node_prop t.g v name value } (with_node empty_region v)

let remove_node_prop t v name =
  refresh { t with g = G.remove_node_prop t.g v name } (with_node empty_region v)

let set_edge_prop t e name value =
  refresh { t with g = G.set_edge_prop t.g e name value } (with_edge empty_region e)

let remove_edge_prop t e name =
  refresh { t with g = G.remove_edge_prop t.g e name } (with_edge empty_region e)

let relabel_node t v label =
  let incident = G.out_edges t.g v @ G.in_edges t.g v in
  let region =
    List.fold_left
      (fun r e ->
        let a, b = G.edge_ends t.g e in
        with_edge (with_node (with_node r a) b) e)
      (with_node empty_region v) incident
  in
  refresh { t with g = G.relabel_node t.g v label } region
