(** The production validation engine.

    Same semantics as {!Naive} (property-tested extensional equality of
    the violation sets), but the pair-quantifying rules are evaluated over
    hash indexes built in one pass over the graph:

    - outgoing edges grouped by (source, label) — WS4, DS6;
    - incoming edges grouped by (target, label) — DS3, DS4;
    - parallel edges grouped by (source, target, label) — DS1;
    - nodes grouped by key vector — DS7.

    With these indexes the engine is linear in the size of the graph plus
    the size of the output (a group of [k] equal elements still yields the
    [k(k-1)/2] pairwise violations the specification demands). *)

val weak :
  ?env:Pg_schema.Values_w.env ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Violation.t list

val directives :
  ?env:Pg_schema.Values_w.env ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Violation.t list

val strong_extra : Pg_schema.Schema.t -> Pg_graph.Property_graph.t -> Violation.t list
