(** Shared helpers for the validation engines: enumeration of the
    constraint sources a schema declares (directive occurrences on fields
    and types) and the attribute/relationship tests of Section 5.

    Two documented errata of the paper are normalized here:
    - DS1 writes [λ(e1) ⊑S t] where an edge label (a field name) cannot be
      a subtype of a type; both engines read it as [λ(v1) ⊑S t].
    - DS3 writes [λ(v2) ⊑S typeS(t, f)] for the {e source} node of the
      second edge; both engines read it as [λ(v2) ⊑S t], symmetric with
      [v1] (the target-type requirement is WS3's job).
    - DS4's [λ(v2) ⊑S typeS(t, f)] compares a node label with a possibly
      wrapped type; both engines compare with [basetype(typeS(t, f))],
      otherwise the constraint would be vacuous for [[B!]]-typed fields. *)

type field_constraint = {
  owner : string;  (** the object or interface type declaring the field *)
  field : string;
  fd : Pg_schema.Schema.field;
}

val is_attribute_type : Pg_schema.Schema.t -> Pg_schema.Wrapped.t -> bool
(** [typeS(t, f) ∈ S ∪ WS]: the base type is a scalar or enum type. *)

val constrained_fields : Pg_schema.Schema.t -> directive:string -> field_constraint list
(** All [(t, f)] with the directive in [directivesF_S(t, f)], [t] ranging
    over object and interface types, in deterministic order. *)

val key_constraints : Pg_schema.Schema.t -> (string * string list) list
(** All [(t, fields)] from [@key(fields: [...])] occurrences on object and
    interface types.  Occurrences with a missing or ill-typed [fields]
    argument are skipped (consistency checking reports them). *)

val multi_edge : Pg_schema.Wrapped.t -> bool
(** WS4's test: [true] iff the type is "a list type or a list type wrapped
    in non-null type", i.e. multiple outgoing edges are allowed. *)
