module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype
module Values_w = Pg_schema.Values_w

(* WS1: node properties must be of the required type *)
let ws1 ?env sch g acc =
  List.fold_left
    (fun acc v ->
      let label = G.node_label g v in
      List.fold_left
        (fun acc (p, value) ->
          match Schema.type_f sch label p with
          | Some t when Rules.is_attribute_type sch t ->
            if Values_w.mem ?env sch t value then acc
            else
              Violation.make Violation.WS1
                (Violation.Node_property (G.node_id v, p))
                (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                   (Wrapped.to_string t))
              :: acc
          | Some _ | None -> acc)
        acc (G.node_props g v))
    acc (G.nodes g)

(* WS2: edge properties must be of the required type *)
let ws2 ?env sch g acc =
  List.fold_left
    (fun acc e ->
      let v1, _ = G.edge_ends g e in
      let src_label = G.node_label g v1 and edge_label = G.edge_label g e in
      List.fold_left
        (fun acc (a, value) ->
          match Schema.arg_type sch src_label edge_label a with
          | Some t ->
            if Values_w.mem ?env sch t value then acc
            else
              Violation.make Violation.WS2
                (Violation.Edge_property (G.edge_id e, a))
                (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                   (Wrapped.to_string t))
              :: acc
          | None -> acc)
        acc (G.edge_props g e))
    acc (G.edges g)

(* WS3: target nodes must be of the required type *)
let ws3 sch g acc =
  List.fold_left
    (fun acc e ->
      let v1, v2 = G.edge_ends g e in
      match Schema.type_f sch (G.node_label g v1) (G.edge_label g e) with
      | Some t ->
        let base = Wrapped.basetype t in
        if Subtype.named sch (G.node_label g v2) base then acc
        else
          Violation.make Violation.WS3
            (Violation.Edge (G.edge_id e))
            (Printf.sprintf "target node n%d has label %S, which is not a subtype of %S"
               (G.node_id v2) (G.node_label g v2) base)
          :: acc
      | None -> acc)
    acc (G.edges g)


(* SS1-SS4 *)
let strong_extra sch g =
  let acc = [] in
  let acc =
    List.fold_left
      (fun acc v ->
        let label = G.node_label g v in
        if Schema.type_kind sch label = Some Schema.Object then acc
        else
          Violation.make Violation.SS1
            (Violation.Node (G.node_id v))
            (Printf.sprintf "label %S is not an object type of the schema" label)
          :: acc)
      acc (G.nodes g)
  in
  let acc =
    List.fold_left
      (fun acc v ->
        let label = G.node_label g v in
        List.fold_left
          (fun acc (p, _) ->
            match Schema.type_f sch label p with
            | Some t when Rules.is_attribute_type sch t -> acc
            | Some _ ->
              Violation.make Violation.SS2
                (Violation.Node_property (G.node_id v, p))
                (Printf.sprintf "field %s.%s is a relationship definition, not an attribute"
                   label p)
              :: acc
            | None ->
              Violation.make Violation.SS2
                (Violation.Node_property (G.node_id v, p))
                (Printf.sprintf "no field %S is declared for type %S" p label)
              :: acc)
          acc (G.node_props g v))
      acc (G.nodes g)
  in
  let acc =
    List.fold_left
      (fun acc e ->
        let v1, _ = G.edge_ends g e in
        let src_label = G.node_label g v1 and edge_label = G.edge_label g e in
        List.fold_left
          (fun acc (a, _) ->
            match Schema.arg_type sch src_label edge_label a with
            | Some _ -> acc
            | None ->
              Violation.make Violation.SS3
                (Violation.Edge_property (G.edge_id e, a))
                (Printf.sprintf "no argument %S is declared for field %s.%s" a src_label
                   edge_label)
              :: acc)
          acc (G.edge_props g e))
      acc (G.edges g)
  in
  let acc =
    List.fold_left
      (fun acc e ->
        let v1, _ = G.edge_ends g e in
        let src_label = G.node_label g v1 and edge_label = G.edge_label g e in
        match Schema.type_f sch src_label edge_label with
        | Some t when not (Rules.is_attribute_type sch t) -> acc
        | Some _ ->
          Violation.make Violation.SS4
            (Violation.Edge (G.edge_id e))
            (Printf.sprintf "field %s.%s is an attribute definition and justifies no edges"
               src_label edge_label)
          :: acc
        | None ->
          Violation.make Violation.SS4
            (Violation.Edge (G.edge_id e))
            (Printf.sprintf "no field %S is declared for type %S" edge_label src_label)
          :: acc)
      acc (G.edges g)
  in
  Violation.normalize acc
