module Sm = Map.Make (String)
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped

type field_constraint = { owner : string; field : string; fd : Schema.field }

let is_attribute_type sch wt = Schema.is_scalar_like sch (Wrapped.basetype wt)

let constrained_fields sch ~directive =
  let of_type owner fields acc =
    List.fold_left
      (fun acc (field, (fd : Schema.field)) ->
        if Schema.has_directive fd.Schema.fd_directives directive then
          { owner; field; fd } :: acc
        else acc)
      acc fields
  in
  let acc =
    List.fold_left
      (fun acc owner -> of_type owner (Schema.fields sch owner) acc)
      []
      (Schema.object_names sch)
  in
  let acc =
    List.fold_left
      (fun acc owner -> of_type owner (Schema.fields sch owner) acc)
      acc
      (Schema.interface_names sch)
  in
  List.rev acc

let key_constraints sch =
  let of_type owner directives acc =
    List.fold_left
      (fun acc du ->
        match Schema.key_fields du with Some fs -> (owner, fs) :: acc | None -> acc)
      acc
      (Schema.find_directives directives "key")
  in
  let acc =
    List.fold_left
      (fun acc name ->
        let ot = Sm.find name sch.Schema.objects in
        of_type name ot.Schema.ot_directives acc)
      []
      (Schema.object_names sch)
  in
  let acc =
    List.fold_left
      (fun acc name ->
        let it = Sm.find name sch.Schema.interfaces in
        of_type name it.Schema.it_directives acc)
      acc
      (Schema.interface_names sch)
  in
  List.rev acc

let multi_edge = Wrapped.is_list
