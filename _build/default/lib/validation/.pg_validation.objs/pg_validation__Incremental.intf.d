lib/validation/incremental.mli: Pg_graph Pg_schema Violation
