lib/validation/naive.ml: Linear List Pg_graph Pg_schema Printf Rules String Violation
