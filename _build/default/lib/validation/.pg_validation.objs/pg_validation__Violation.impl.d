lib/validation/violation.ml: Format List Stdlib
