lib/validation/indexed.ml: Buffer Float Hashtbl Int64 Linear List Option Pg_graph Pg_schema Printf Rules String Violation
