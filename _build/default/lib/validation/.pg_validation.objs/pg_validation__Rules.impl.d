lib/validation/rules.ml: List Map Pg_schema String
