lib/validation/schema_diff.mli: Format Pg_schema Violation
