lib/validation/indexed.mli: Pg_graph Pg_schema Violation
