lib/validation/validate.ml: Format Indexed List Naive Pg_graph Violation
