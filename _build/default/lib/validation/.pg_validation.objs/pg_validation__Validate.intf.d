lib/validation/validate.mli: Format Pg_graph Pg_schema Violation
