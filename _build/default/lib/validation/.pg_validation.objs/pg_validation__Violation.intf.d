lib/validation/violation.mli: Format
