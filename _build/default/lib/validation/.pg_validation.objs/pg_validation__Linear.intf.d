lib/validation/linear.mli: Pg_graph Pg_schema Violation
