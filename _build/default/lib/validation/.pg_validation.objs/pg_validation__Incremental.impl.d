lib/validation/incremental.ml: Int List Pg_graph Pg_schema Printf Rules Set String Validate Violation
