lib/validation/linear.ml: List Pg_graph Pg_schema Printf Rules Violation
