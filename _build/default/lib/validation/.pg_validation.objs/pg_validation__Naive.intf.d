lib/validation/naive.mli: Pg_graph Pg_schema Violation
