lib/validation/schema_diff.ml: Format List Map Pg_schema Printf String Violation
