lib/validation/rules.mli: Pg_schema
