(** The rules of Section 5 that quantify over a single graph element
    (WS1–WS3 and SS1–SS4).  They run in linear time in both engines and
    are shared between {!Naive} and {!Indexed}. *)

val ws1 :
  ?env:Pg_schema.Values_w.env ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Violation.t list ->
  Violation.t list

val ws2 :
  ?env:Pg_schema.Values_w.env ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Violation.t list ->
  Violation.t list

val ws3 :
  Pg_schema.Schema.t -> Pg_graph.Property_graph.t -> Violation.t list -> Violation.t list

val strong_extra : Pg_schema.Schema.t -> Pg_graph.Property_graph.t -> Violation.t list
(** SS1–SS4, normalized. *)
