(** Lexical tokens of the GraphQL SDL (June 2018 Edition, Section 2.1). *)

type t =
  | Bang  (** [!] *)
  | Dollar  (** [$] *)
  | Amp  (** [&] *)
  | Paren_open  (** [(] *)
  | Paren_close  (** [)] *)
  | Ellipsis  (** [...] *)
  | Colon  (** [:] *)
  | Equals  (** [=] *)
  | At  (** [@] *)
  | Bracket_open  (** [[] *)
  | Bracket_close  (** [\]] *)
  | Brace_open  (** [{] *)
  | Brace_close  (** [}] *)
  | Pipe  (** [|] *)
  | Name of string  (** a Name token: an underscore or letter followed by letters, digits, underscores *)
  | Int of int  (** IntValue *)
  | Float of float  (** FloatValue *)
  | String of string  (** StringValue, decoded (escapes resolved) *)
  | Block_string of string  (** block StringValue, dedented per spec *)
  | Eof

type located = { token : t; at : Source.span }

val pp : Format.formatter -> t -> unit
(** Prints the token as it would appear in a source document (strings
    re-encoded); used in parser error messages. *)

val describe : t -> string
(** A short description for diagnostics, e.g. ["name \"type\""]. *)
