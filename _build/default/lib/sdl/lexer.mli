(** Lexer for the GraphQL SDL (June 2018 Edition, Section 2.1).

    Implements the full lexical grammar: punctuators, names, integer and
    float values, string values with escape sequences (including
    [\uXXXX], encoded as UTF-8), block strings with the spec's dedent
    algorithm, comments, and the ignored tokens (whitespace, commas,
    line terminators, Unicode BOM). *)

val tokenize : string -> (Token.located list, Source.error) result
(** Produces the token stream, ending with an [Eof] token carrying the
    end-of-input position.  Fails on the first lexical error. *)
