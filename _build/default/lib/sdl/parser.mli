(** Recursive-descent parser for GraphQL SDL documents (June 2018 Edition,
    Section 3 — the type-system sublanguage).

    Supported: schema definitions, scalar/object/interface/union/enum/input
    type definitions, directive definitions, type extensions, descriptions
    (string and block-string), constant values, and directives with constant
    arguments.  Executable definitions (operations, fragments) are rejected
    with a clear error, as they cannot occur in a schema document. *)

val parse : string -> (Ast.document, Source.error) result
(** Lex and parse a complete SDL document. *)

val parse_type_ref : string -> (Ast.type_ref, Source.error) result
(** Parse a single type reference such as ["[Foo!]!"]; used by tests and by
    the CLI. *)

val parse_value : string -> (Ast.value, Source.error) result
(** Parse a single constant value such as [{fields: ["id"]}]. *)
