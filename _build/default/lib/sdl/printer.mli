(** Pretty-printer from SDL ASTs back to GraphQL SDL text.

    The output re-parses to an equal AST ({!Ast.document}); this round-trip
    is checked by property tests.  Descriptions are emitted as block strings
    when multi-line. *)

val value_to_string : Ast.value -> string
val type_ref_to_string : Ast.type_ref -> string
val directive_to_string : Ast.directive -> string
val field_def_to_string : Ast.field_def -> string
val definition_to_string : Ast.definition -> string

val document_to_string : Ast.document -> string
(** Print a whole document, definitions separated by blank lines. *)

val pp_document : Format.formatter -> Ast.document -> unit
