type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable column : int;
}

exception Error of Source.error

let fail st ?(at : Source.span option) message =
  let here : Source.pos = { line = st.line; column = st.column; offset = st.offset } in
  let at = match at with Some s -> s | None -> Source.span here here in
  raise (Error { at; message })

let pos st : Source.pos = { line = st.line; column = st.column; offset = st.offset }
let peek st = if st.offset < String.length st.src then Some st.src.[st.offset] else None

let peek2 st =
  if st.offset + 1 < String.length st.src then Some st.src.[st.offset + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.column <- 1
  | Some _ -> st.column <- st.column + 1
  | None -> ());
  st.offset <- st.offset + 1

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* SourceCharacter (spec 2.1.1): tab, LF, CR, or anything >= U+0020.  We
   work on bytes, so UTF-8 continuation bytes (>= 0x80) are accepted. *)
let is_source_char c =
  let n = Char.code c in
  n = 0x09 || n = 0x0A || n = 0x0D || n >= 0x20

let skip_ignored st =
  let rec loop () =
    match peek st with
    | Some (' ' | '\t' | ',' | '\n' | '\r') ->
      advance st;
      loop ()
    | Some '\xEF' when peek2 st = Some '\xBB' ->
      (* Unicode BOM *)
      advance st;
      advance st;
      advance st;
      loop ()
    | Some '#' ->
      let rec comment () =
        match peek st with
        | Some ('\n' | '\r') | None -> ()
        | Some _ ->
          advance st;
          comment ()
      in
      comment ();
      loop ()
    | _ -> ()
  in
  loop ()

let name st =
  let start = st.offset in
  let rec loop () =
    match peek st with
    | Some c when is_name_char c ->
      advance st;
      loop ()
    | _ -> ()
  in
  advance st;
  loop ();
  String.sub st.src start (st.offset - start)

(* IntValue / FloatValue (spec 2.9.1, 2.9.2).  A NameStart or '.' directly
   after a number is a lexical error ("123abc", "1.2.3"). *)
let number st =
  let start = st.offset in
  let is_float = ref false in
  if peek st = Some '-' then advance st;
  (match peek st with
  | Some '0' ->
    advance st;
    (match peek st with
    | Some c when is_digit c -> fail st "invalid number: leading zero"
    | _ -> ())
  | Some c when is_digit c ->
    let rec digits () =
      match peek st with
      | Some c when is_digit c ->
        advance st;
        digits ()
      | _ -> ()
    in
    digits ()
  | _ -> fail st "invalid number: expected a digit");
  (match peek st with
  | Some '.' when (match peek2 st with Some c -> is_digit c | None -> false) ->
    is_float := true;
    advance st;
    let rec digits () =
      match peek st with
      | Some c when is_digit c ->
        advance st;
        digits ()
      | _ -> ()
    in
    digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    (match peek st with
    | Some c when is_digit c ->
      let rec digits () =
        match peek st with
        | Some c when is_digit c ->
          advance st;
          digits ()
        | _ -> ()
      in
      digits ()
    | _ -> fail st "invalid number: malformed exponent")
  | _ -> ());
  (match peek st with
  | Some c when is_name_start c || c = '.' ->
    fail st (Printf.sprintf "invalid number: unexpected %C after numeric literal" c)
  | _ -> ());
  let text = String.sub st.src start (st.offset - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Token.Float f
    | None -> fail st (Printf.sprintf "invalid float literal %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Token.Int i
    | None -> fail st (Printf.sprintf "integer literal %S out of range" text)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let unicode_escape st =
  let hex = Bytes.create 4 in
  for i = 0 to 3 do
    match peek st with
    | Some c when (is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) ->
      Bytes.set hex i c;
      advance st
    | _ -> fail st "malformed \\u escape: expected four hex digits"
  done;
  int_of_string ("0x" ^ Bytes.to_string hex)

(* The opening double-quote has been consumed. *)
let string_value st =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string value"
    | Some ('\n' | '\r') -> fail st "unterminated string value: raw line terminator"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'u' ->
        advance st;
        add_utf8 buf (unicode_escape st)
      | Some c -> fail st (Printf.sprintf "invalid escape sequence \\%c" c)
      | None -> fail st "unterminated escape sequence");
      loop ()
    | Some c when is_source_char c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
    | Some c -> fail st (Printf.sprintf "invalid source character %C in string" c)
  in
  loop ();
  Buffer.contents buf

(* BlockStringValue dedent algorithm (spec 2.9.4). *)
let dedent_block raw =
  let lines = String.split_on_char '\n' raw in
  let lines = List.map (fun l -> if String.length l > 0 && l.[String.length l - 1] = '\r' then String.sub l 0 (String.length l - 1) else l) lines in
  let is_blank l = String.for_all (fun c -> c = ' ' || c = '\t') l in
  let indent_of l =
    let rec go i = if i < String.length l && (l.[i] = ' ' || l.[i] = '\t') then go (i + 1) else i in
    go 0
  in
  let common_indent =
    List.fold_left
      (fun acc l -> if is_blank l then acc else match acc with None -> Some (indent_of l) | Some n -> Some (min n (indent_of l)))
      None
      (match lines with [] -> [] | _ :: rest -> rest)
  in
  let strip l =
    match common_indent with
    | Some n when String.length l >= n -> String.sub l n (String.length l - n)
    | Some _ | None -> l
  in
  let lines =
    match lines with [] -> [] | first :: rest -> first :: List.map strip rest
  in
  (* remove leading and trailing blank lines *)
  let rec drop_leading = function l :: rest when is_blank l -> drop_leading rest | ls -> ls in
  let lines = drop_leading lines in
  let lines = List.rev (drop_leading (List.rev lines)) in
  String.concat "\n" lines

(* The opening triple-quote has been consumed. *)
let block_string st =
  let buf = Buffer.create 32 in
  let rec loop () =
    if
      peek st = Some '"'
      && peek2 st = Some '"'
      && st.offset + 2 < String.length st.src
      && st.src.[st.offset + 2] = '"'
    then begin
      advance st;
      advance st;
      advance st
    end
    else
      match peek st with
      | None -> fail st "unterminated block string"
      | Some '\\'
        when st.offset + 3 < String.length st.src
             && st.src.[st.offset + 1] = '"'
             && st.src.[st.offset + 2] = '"'
             && st.src.[st.offset + 3] = '"' ->
        Buffer.add_string buf "\"\"\"";
        advance st;
        advance st;
        advance st;
        advance st;
        loop ()
      | Some c when is_source_char c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
      | Some c -> fail st (Printf.sprintf "invalid source character %C in block string" c)
  in
  loop ();
  dedent_block (Buffer.contents buf)

let next_token st : Token.t =
  match peek st with
  | None -> Token.Eof
  | Some c -> (
    match c with
    | '!' -> advance st; Token.Bang
    | '$' -> advance st; Token.Dollar
    | '&' -> advance st; Token.Amp
    | '(' -> advance st; Token.Paren_open
    | ')' -> advance st; Token.Paren_close
    | ':' -> advance st; Token.Colon
    | '=' -> advance st; Token.Equals
    | '@' -> advance st; Token.At
    | '[' -> advance st; Token.Bracket_open
    | ']' -> advance st; Token.Bracket_close
    | '{' -> advance st; Token.Brace_open
    | '}' -> advance st; Token.Brace_close
    | '|' -> advance st; Token.Pipe
    | '.' ->
      if peek2 st = Some '.' && st.offset + 2 < String.length st.src && st.src.[st.offset + 2] = '.'
      then begin
        advance st;
        advance st;
        advance st;
        Token.Ellipsis
      end
      else fail st "unexpected '.' (did you mean \"...\"?)"
    | '"' ->
      if
        peek2 st = Some '"' && st.offset + 2 < String.length st.src
        && st.src.[st.offset + 2] = '"'
      then begin
        advance st;
        advance st;
        advance st;
        Token.Block_string (block_string st)
      end
      else begin
        advance st;
        Token.String (string_value st)
      end
    | c when is_name_start c -> Token.Name (name st)
    | c when is_digit c || c = '-' -> number st
    | c -> fail st (Printf.sprintf "unexpected character %C" c))

let tokenize src =
  let st = { src; offset = 0; line = 1; column = 1 } in
  try
    let rec loop acc =
      skip_ignored st;
      let start = pos st in
      let token = next_token st in
      let located : Token.located = { token; at = Source.span start (pos st) } in
      match token with
      | Token.Eof -> List.rev (located :: acc)
      | _ -> loop (located :: acc)
    in
    Ok (loop [])
  with Error e -> Result.Error e
