(** Source positions, spans and errors for the GraphQL SDL front end. *)

type pos = {
  line : int;  (** 1-based *)
  column : int;  (** 1-based, in bytes *)
  offset : int;  (** 0-based byte offset *)
}

type span = { span_start : pos; span_end : pos }

type error = { at : span; message : string }

val start_pos : pos
(** Line 1, column 1, offset 0. *)

val dummy_span : span
(** A span for synthesized AST nodes. *)

val span : pos -> pos -> span

val pp_pos : Format.formatter -> pos -> unit
val pp_span : Format.formatter -> span -> unit
val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string
