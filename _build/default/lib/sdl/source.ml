type pos = { line : int; column : int; offset : int }
type span = { span_start : pos; span_end : pos }
type error = { at : span; message : string }

let start_pos = { line = 1; column = 1; offset = 0 }
let dummy_span = { span_start = start_pos; span_end = start_pos }
let span span_start span_end = { span_start; span_end }
let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.column

let pp_span ppf s =
  if s.span_start.line = s.span_end.line && s.span_start.column = s.span_end.column then
    pp_pos ppf s.span_start
  else Format.fprintf ppf "%a-%a" pp_pos s.span_start pp_pos s.span_end

let pp_error ppf e = Format.fprintf ppf "%a: %s" pp_span e.at e.message
let error_to_string e = Format.asprintf "%a" pp_error e
