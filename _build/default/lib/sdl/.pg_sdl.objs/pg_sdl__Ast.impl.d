lib/sdl/ast.ml: Float List Source String
