lib/sdl/printer.mli: Ast Format
