lib/sdl/lint.mli: Ast Format Source
