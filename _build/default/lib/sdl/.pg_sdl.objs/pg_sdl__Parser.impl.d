lib/sdl/parser.ml: Array Ast Format Lexer List Result Source String Token
