lib/sdl/printer.ml: Ast Buffer Char Float Format List Printf String
