lib/sdl/token.mli: Format Source
