lib/sdl/parser.mli: Ast Source
