lib/sdl/source.ml: Format
