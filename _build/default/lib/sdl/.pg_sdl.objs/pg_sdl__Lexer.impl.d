lib/sdl/lexer.ml: Buffer Bytes Char List Printf Result Source String Token
