lib/sdl/source.mli: Format
