lib/sdl/lexer.mli: Source Token
