lib/sdl/token.ml: Buffer Char Format Printf Source String
