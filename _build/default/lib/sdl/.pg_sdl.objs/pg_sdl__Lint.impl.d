lib/sdl/lint.ml: Ast Format Fun Hashtbl List Printf Source String
