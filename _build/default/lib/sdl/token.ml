type t =
  | Bang
  | Dollar
  | Amp
  | Paren_open
  | Paren_close
  | Ellipsis
  | Colon
  | Equals
  | At
  | Bracket_open
  | Bracket_close
  | Brace_open
  | Brace_close
  | Pipe
  | Name of string
  | Int of int
  | Float of float
  | String of string
  | Block_string of string
  | Eof

type located = { token : t; at : Source.span }

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp ppf = function
  | Bang -> Format.pp_print_string ppf "!"
  | Dollar -> Format.pp_print_string ppf "$"
  | Amp -> Format.pp_print_string ppf "&"
  | Paren_open -> Format.pp_print_string ppf "("
  | Paren_close -> Format.pp_print_string ppf ")"
  | Ellipsis -> Format.pp_print_string ppf "..."
  | Colon -> Format.pp_print_string ppf ":"
  | Equals -> Format.pp_print_string ppf "="
  | At -> Format.pp_print_string ppf "@"
  | Bracket_open -> Format.pp_print_string ppf "["
  | Bracket_close -> Format.pp_print_string ppf "]"
  | Brace_open -> Format.pp_print_string ppf "{"
  | Brace_close -> Format.pp_print_string ppf "}"
  | Pipe -> Format.pp_print_string ppf "|"
  | Name n -> Format.pp_print_string ppf n
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_float ppf f
  | String s -> Format.fprintf ppf "\"%s\"" (escape_string s)
  | Block_string s -> Format.fprintf ppf "\"\"\"%s\"\"\"" s
  | Eof -> Format.pp_print_string ppf "<end of input>"

let describe = function
  | Name n -> Printf.sprintf "name %S" n
  | Int i -> Printf.sprintf "integer %d" i
  | Float f -> Printf.sprintf "float %g" f
  | String _ -> "string value"
  | Block_string _ -> "block string value"
  | Eof -> "end of input"
  | t -> Printf.sprintf "%S" (Format.asprintf "%a" pp t)
