(** Export of SDL Property Graph schemas as Neo4j constraint DDL
    (Cypher 3.5, the version the paper cites in Section 2.1).

    Section 2.1 observes that existing systems each have a proprietary,
    informally specified schema mechanism.  This module makes the
    comparison executable in the Neo4j direction: the fragment of an SDL
    schema that Cypher 3.5 constraints can express is emitted as DDL
    statements, and everything else is reported as dropped —
    quantifying how much of the paper's proposal exceeds what the cited
    system could enforce.

    Expressible in Cypher 3.5:
    - single-property keys → [ASSERT n.k IS UNIQUE];
    - multi-property keys → [ASSERT (n.a, n.b) IS NODE KEY] (which also
      implies existence — noted in the statement's comment);
    - [@required] attributes → [ASSERT exists(n.p)];
    - mandatory (non-null) edge properties → [ASSERT exists(r.p)].

    Not expressible (dropped with reasons): property value types, target
    node types of relationships (WS3), all cardinality constraints (WS4,
    [@uniqueForTarget]), mandatory edges ([@required] on relationships,
    [@requiredForTarget]), [@distinct], [@noLoops], and the closed-world
    typing of strong satisfaction (SS1–SS4). *)

type dropped = { construct : string; reason : string }

val translate : Pg_schema.Schema.t -> string list * dropped list
(** [(statements, dropped)]; statements end without trailing semicolons. *)

val to_script : Pg_schema.Schema.t -> string
(** The statements joined with [";\n"], with a header comment listing the
    dropped constructs. *)
