(** Translation from SDL-based Property Graph schemas into the Angles
    baseline model, substantiating the paper's Section 2.1 claim that all
    of Angles' features are covered by the SDL approach.

    The translation is {e lossy} in the other direction: constructs the
    Angles model cannot express are dropped and reported, namely
    [@distinct], [@noLoops], multi-property keys, and the distinction
    between absent and empty list properties.  Interface and union target
    types are expanded into one Angles edge type per concrete (source
    object type, target object type) pair. *)

type dropped = { construct : string; reason : string }

val translate : Pg_schema.Schema.t -> Angles_schema.t * dropped list
(** [translate sch] is the Angles schema together with the constructs that
    could not be represented. *)

val coverage : Pg_schema.Schema.t -> int * int
(** [(expressed, dropped)] constraint counts, for the coverage report of
    bench [angles_coverage]. *)
