lib/angles/neo4j_ddl.ml: Buffer List Map Pg_schema Printf String
