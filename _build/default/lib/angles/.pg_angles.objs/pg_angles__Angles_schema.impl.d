lib/angles/angles_schema.ml: Format List Map String
