lib/angles/angles_validate.mli: Angles_schema Format Pg_graph
