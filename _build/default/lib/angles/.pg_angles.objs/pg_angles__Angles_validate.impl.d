lib/angles/angles_validate.ml: Angles_schema Format Hashtbl List Map Option Pg_graph Printf String
