lib/angles/angles_schema.mli: Format Map String
