lib/angles/of_graphql.mli: Angles_schema Pg_schema
