lib/angles/neo4j_ddl.mli: Pg_schema
