lib/angles/of_graphql.ml: Angles_schema List Map Pg_schema Printf String
