module Sm = Map.Make (String)

type property_def = { p_type : string; p_list : bool; p_mandatory : bool; p_unique : bool }
type cardinality = One_to_one | One_to_many | Many_to_one | Many_to_many
type node_type = { nt_props : (string * property_def) list }

type edge_type = {
  et_source : string;
  et_label : string;
  et_target : string;
  et_props : (string * property_def) list;
  et_cardinality : cardinality;
  et_mandatory : bool;
}

type t = { node_types : node_type Sm.t; edge_types : edge_type list }

let empty = { node_types = Sm.empty; edge_types = [] }
let add_node_type s name nt = { s with node_types = Sm.add name nt s.node_types }
let add_edge_type s et = { s with edge_types = s.edge_types @ [ et ] }
let node_type s name = Sm.find_opt name s.node_types

let edge_types_for s ~source ~label ~target =
  List.filter
    (fun et ->
      String.equal et.et_source source
      && String.equal et.et_label label
      && String.equal et.et_target target)
    s.edge_types

let cardinality_name = function
  | One_to_one -> "1:1"
  | One_to_many -> "1:N"
  | Many_to_one -> "N:1"
  | Many_to_many -> "N:M"

let pp_props ppf props =
  List.iter
    (fun (name, p) ->
      Format.fprintf ppf "@,  %s: %s%s%s%s" name p.p_type
        (if p.p_list then " list" else "")
        (if p.p_mandatory then " (mandatory)" else "")
        (if p.p_unique then " (unique)" else ""))
    props

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Sm.iter
    (fun name nt -> Format.fprintf ppf "node type %s%a@," name pp_props nt.nt_props)
    s.node_types;
  List.iter
    (fun et ->
      Format.fprintf ppf "edge type (%s)-[%s]->(%s) %s%s%a@," et.et_source et.et_label
        et.et_target
        (cardinality_name et.et_cardinality)
        (if et.et_mandatory then " mandatory" else "")
        pp_props et.et_props)
    s.edge_types;
  Format.fprintf ppf "@]"
