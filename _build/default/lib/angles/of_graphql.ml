module Sm = Map.Make (String)
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype

type dropped = { construct : string; reason : string }

let object_subtypes sch t =
  List.filter
    (fun o -> Schema.type_kind sch o = Some Schema.Object)
    (Subtype.subtypes sch t)

(* Effective constraints on a field of an object type: its own directives
   plus those declared on the same field by implemented interfaces. *)
let effective_directives sch ot f =
  let own =
    match Schema.field sch ot f with Some fd -> fd.Schema.fd_directives | None -> []
  in
  let inherited =
    List.concat_map
      (fun it ->
        if List.mem ot (Schema.implementations_of sch it) then
          match Schema.field sch it f with
          | Some fd -> fd.Schema.fd_directives
          | None -> []
        else [])
      (Schema.interface_names sch)
  in
  own @ inherited

let translate sch =
  let dropped = ref [] in
  let drop construct reason = dropped := { construct; reason } :: !dropped in
  let keys = ref Sm.empty in
  (* single-property keys become unique properties *)
  List.iter
    (fun ot_name ->
      let ot = Sm.find ot_name sch.Schema.objects in
      List.iter
        (fun du ->
          match Schema.key_fields du with
          | Some [ f ] -> keys := Sm.add (ot_name ^ "." ^ f) () !keys
          | Some fs ->
            drop
              (Printf.sprintf "@key(fields: [%s]) on %s" (String.concat ", " fs) ot_name)
              "Angles' uniqueness applies to single properties"
          | None -> ())
        (Schema.find_directives ot.Schema.ot_directives "key"))
    (Schema.object_names sch);
  let angles = ref Angles_schema.empty in
  List.iter
    (fun ot_name ->
      let fields = Schema.fields sch ot_name in
      (* node properties from attribute definitions *)
      let props =
        List.filter_map
          (fun (f, (fd : Schema.field)) ->
            match Schema.classify_field sch fd with
            | Some Schema.Attribute ->
              let directives = effective_directives sch ot_name f in
              Some
                ( f,
                  {
                    Angles_schema.p_type = Wrapped.basetype fd.Schema.fd_type;
                    p_list = Wrapped.is_list fd.Schema.fd_type;
                    p_mandatory = Schema.has_directive directives "required";
                    p_unique = Sm.mem (ot_name ^ "." ^ f) !keys;
                  } )
            | Some Schema.Relationship | None -> None)
          fields
      in
      angles := Angles_schema.add_node_type !angles ot_name { Angles_schema.nt_props = props };
      (* edge types from relationship definitions *)
      List.iter
        (fun (f, (fd : Schema.field)) ->
          match Schema.classify_field sch fd with
          | Some Schema.Relationship ->
            let directives = effective_directives sch ot_name f in
            let list_field = Wrapped.is_list fd.Schema.fd_type in
            let unique_target = Schema.has_directive directives "uniqueForTarget" in
            let cardinality =
              match list_field, unique_target with
              | false, true -> Angles_schema.One_to_one
              | false, false -> Angles_schema.One_to_many
              | true, true -> Angles_schema.Many_to_one
              | true, false -> Angles_schema.Many_to_many
            in
            if Schema.has_directive directives "distinct" then
              drop
                (Printf.sprintf "@distinct on %s.%s" ot_name f)
                "no Angles constraint identifies edges by endpoints";
            if Schema.has_directive directives "noLoops" then
              drop
                (Printf.sprintf "@noLoops on %s.%s" ot_name f)
                "no Angles constraint forbids loops";
            if Schema.has_directive directives "requiredForTarget" then
              drop
                (Printf.sprintf "@requiredForTarget on %s.%s" ot_name f)
                "Angles' mandatory edges constrain the source side only";
            (* a mandatory edge whose target type expands to several object
               types is a disjunction across edge types, which Angles
               cannot state *)
            let targets = object_subtypes sch (Wrapped.basetype fd.Schema.fd_type) in
            let mandatory = Schema.has_directive directives "required" in
            let mandatory =
              if mandatory && List.length targets > 1 then begin
                drop
                  (Printf.sprintf "@required on %s.%s" ot_name f)
                  "mandatory edge with several possible target types (union/interface)";
                false
              end
              else mandatory
            in
            let edge_props =
              List.map
                (fun (a, (arg : Schema.argument)) ->
                  ( a,
                    {
                      Angles_schema.p_type = Wrapped.basetype arg.Schema.arg_type;
                      p_list = Wrapped.is_list arg.Schema.arg_type;
                      p_mandatory = Wrapped.is_non_null arg.Schema.arg_type;
                      p_unique = false;
                    } ))
                fd.Schema.fd_args
            in
            List.iter
              (fun target ->
                angles :=
                  Angles_schema.add_edge_type !angles
                    {
                      Angles_schema.et_source = ot_name;
                      et_label = f;
                      et_target = target;
                      et_props = edge_props;
                      et_cardinality = cardinality;
                      et_mandatory = mandatory;
                    })
              targets
          | Some Schema.Attribute | None -> ())
        fields)
    (Schema.object_names sch);
  (!angles, List.rev !dropped)

let coverage sch =
  let angles, dropped = translate sch in
  let expressed =
    Sm.fold
      (fun _ (nt : Angles_schema.node_type) acc -> acc + 1 + List.length nt.Angles_schema.nt_props)
      angles.Angles_schema.node_types 0
    + List.length angles.Angles_schema.edge_types
  in
  (expressed, List.length dropped)
