(** The baseline Property Graph schema model of Angles (AMW 2018), as
    summarized in Section 2.1 of the paper.

    Angles' model has node types and edge types; constraints specify
    (i) which properties each node/edge type may carry, and (ii) which
    edge types may connect which pairs of node types.  The extensions the
    paper lists — mandatory properties, mandatory edges, uniqueness of
    properties, and cardinality constraints — are included, since the
    paper claims all of them are covered by the SDL approach
    ({!Of_graphql} substantiates the claim by translation). *)

type property_def = {
  p_type : string;  (** scalar name: Int, Float, String, Boolean, ID, or opaque *)
  p_list : bool;  (** the property value is an array of [p_type] values *)
  p_mandatory : bool;
  p_unique : bool;  (** unique among the nodes/edges of the type *)
}

(** Cardinality of a binary relationship, oriented as in the paper's
    Section 3.3 table: [One_to_many] ("1:N") bounds the source side (each
    source node has at most one outgoing edge of the type), [Many_to_one]
    ("N:1") bounds the target side (each target node has at most one
    incoming edge), [One_to_one] bounds both, [Many_to_many] neither. *)
type cardinality = One_to_one | One_to_many | Many_to_one | Many_to_many

type node_type = { nt_props : (string * property_def) list }

type edge_type = {
  et_source : string;  (** source node type *)
  et_label : string;
  et_target : string;  (** target node type *)
  et_props : (string * property_def) list;
  et_cardinality : cardinality;
  et_mandatory : bool;  (** every source node must have such an edge *)
}

type t = {
  node_types : node_type Map.Make(String).t;
  edge_types : edge_type list;
}

val empty : t
val add_node_type : t -> string -> node_type -> t
val add_edge_type : t -> edge_type -> t

val node_type : t -> string -> node_type option

val edge_types_for : t -> source:string -> label:string -> target:string -> edge_type list
(** The declared edge types matching the triple (usually zero or one). *)

val pp : Format.formatter -> t -> unit
