module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype
module Rules = Pg_validation.Rules

(* Append a disjoint copy of [src] to [dst]. *)
let disjoint_union dst src =
  let mapping = Hashtbl.create 64 in
  let dst =
    List.fold_left
      (fun dst v ->
        let dst, v' =
          G.add_node dst ~label:(G.node_label src v) ~props:(G.node_props src v) ()
        in
        Hashtbl.add mapping (G.node_id v) v';
        dst)
      dst (G.nodes src)
  in
  List.fold_left
    (fun dst e ->
      let v1, v2 = G.edge_ends src e in
      let dst, _ =
        G.add_edge dst ~label:(G.edge_label src e) ~props:(G.edge_props src e)
          (Hashtbl.find mapping (G.node_id v1))
          (Hashtbl.find mapping (G.node_id v2))
      in
      dst)
    dst (G.edges src)

(* Re-freshen all key properties so copies do not collide (DS7). *)
let refresh_keys sch g =
  let counter = ref 1_000_000 in
  List.fold_left
    (fun g (owner, key_fields) ->
      List.fold_left
        (fun g v ->
          if Subtype.named sch (G.node_label g v) owner then
            List.fold_left
              (fun g f ->
                match Schema.type_f sch (G.node_label g v) f with
                | Some wt when Rules.is_attribute_type sch wt ->
                  incr counter;
                  let atom =
                    match Wrapped.basetype wt with
                    | "Int" -> Value.Int !counter
                    | "Float" -> Value.Float (float_of_int !counter)
                    | "Boolean" -> Value.Bool (!counter mod 2 = 0)
                    | "ID" -> Value.Id (Printf.sprintf "key%d" !counter)
                    | _ -> Value.String (Printf.sprintf "key%d" !counter)
                  in
                  let value = if Wrapped.is_list wt then Value.List [ atom ] else atom in
                  G.set_node_prop g v f value
                | Some _ | None -> g)
              g key_fields
          else g)
        g (G.nodes g))
    g (Rules.key_constraints sch)

let conformant ?(seed = 17) ?(target_nodes = 50) sch =
  ignore seed;
  let witnesses =
    List.filter_map
      (fun ot -> Pg_sat.Model_search.greedy ~max_nodes:16 sch ot)
      (Schema.object_names sch)
  in
  match witnesses with
  | [] -> None
  | _ ->
    let rec grow g i =
      if G.node_count g >= target_nodes then g
      else grow (disjoint_union g (List.nth witnesses (i mod List.length witnesses))) (i + 1)
    in
    let g = grow G.empty 0 in
    let g = refresh_keys sch g in
    if Pg_validation.Validate.conforms sch g then Some g else None

(* ---------------------------------------------------------------- *)

let sample rng l = List.nth l (Random.State.int rng (List.length l))
let chance rng p = Random.State.float rng 1.0 < p

let random_value rng =
  match Random.State.int rng 7 with
  | 0 -> Value.Int (Random.State.int rng 100)
  | 1 -> Value.Float (Random.State.float rng 10.0)
  | 2 -> Value.String (Printf.sprintf "s%d" (Random.State.int rng 100))
  | 3 -> Value.Bool (Random.State.bool rng)
  | 4 -> Value.Id (Printf.sprintf "id%d" (Random.State.int rng 100))
  | 5 -> Value.Enum (sample rng [ "RED"; "GREEN"; "BLUE"; "MAUVE" ])
  | _ -> Value.List [ Value.Int 1; Value.String "x" ]

let fuzz rng sch ~max_nodes =
  let labels =
    Schema.object_names sch @ Schema.interface_names sch @ [ "Zombie"; "Ghost" ]
  in
  let n = 1 + Random.State.int rng (max 1 max_nodes) in
  let g = ref G.empty in
  let nodes =
    Array.init n (fun _ ->
        let g', v = G.add_node !g ~label:(sample rng labels) () in
        g := g';
        v)
  in
  (* properties: declared names (sometimes ill-typed values), plus junk *)
  Array.iter
    (fun v ->
      let label = G.node_label !g v in
      List.iter
        (fun (f, _) -> if chance rng 0.5 then g := G.set_node_prop !g v f (random_value rng))
        (Schema.fields sch label);
      if chance rng 0.2 then g := G.set_node_prop !g v "junk" (random_value rng))
    nodes;
  (* edges: declared field names of the source's type, plus junk labels *)
  let edge_count = Random.State.int rng (2 * n) in
  for _ = 1 to edge_count do
    let v = nodes.(Random.State.int rng n) and u = nodes.(Random.State.int rng n) in
    let declared = List.map fst (Schema.fields sch (G.node_label !g v)) in
    let label =
      if declared <> [] && chance rng 0.8 then sample rng declared else "junkEdge"
    in
    let g', e = G.add_edge !g ~label v u in
    g := g';
    if chance rng 0.3 then g := G.set_edge_prop !g e "weight" (random_value rng);
    if chance rng 0.1 then g := G.set_edge_prop !g e "junkArg" (random_value rng)
  done;
  !g
