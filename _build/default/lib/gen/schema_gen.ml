let sample rng l = List.nth l (Random.State.int rng (List.length l))
let chance rng p = Random.State.float rng 1.0 < p

let wrappings = [ ""; "!"; "[]"; "[!]"; "[]!"; "[!]!" ]

let wrap ty = function
  | "" -> ty
  | "!" -> ty ^ "!"
  | "[]" -> "[" ^ ty ^ "]"
  | "[!]" -> "[" ^ ty ^ "!]"
  | "[]!" -> "[" ^ ty ^ "]!"
  | "[!]!" -> "[" ^ ty ^ "!]!"
  | _ -> ty

let is_list_wrapping w = String.length w > 0 && w.[0] = '['

let random_sdl rng =
  let buf = Buffer.create 1024 in
  let num_objects = 2 + Random.State.int rng 5 in
  let objects = List.init num_objects (fun i -> Printf.sprintf "T%d" i) in
  let has_enum = chance rng 0.6 in
  let has_custom_scalar = chance rng 0.4 in
  let scalars =
    [ "Int"; "Float"; "String"; "Boolean"; "ID" ]
    @ (if has_enum then [ "Color" ] else [])
    @ if has_custom_scalar then [ "Date" ] else []
  in
  if has_enum then Buffer.add_string buf "enum Color { RED GREEN BLUE }\n\n";
  if has_custom_scalar then Buffer.add_string buf "scalar Date\n\n";
  (* optional union of two object types *)
  let union =
    if num_objects >= 2 && chance rng 0.4 then begin
      let a = sample rng objects in
      let b = sample rng (List.filter (fun o -> o <> a) objects) in
      Buffer.add_string buf (Printf.sprintf "union U0 = %s | %s\n\n" a b);
      Some "U0"
    end
    else None
  in
  (* optional interface implemented by up to three object types; its field
     list is replicated into the implementers for consistency *)
  let interface =
    if chance rng 0.5 then begin
      let field_ty = wrap (sample rng scalars) (sample rng [ ""; "!" ]) in
      let required = if chance rng 0.5 then " @required" else "" in
      let field = Printf.sprintf "  shared: %s%s\n" field_ty required in
      Buffer.add_string buf (Printf.sprintf "interface I0 {\n%s}\n\n" field);
      let implementers =
        List.filter (fun _ -> chance rng 0.5) objects |> function
        | [] -> [ List.hd objects ]
        | l -> l
      in
      Some (field, implementers)
    end
    else None
  in
  let target_types = objects @ (match union with Some u -> [ u ] | None -> []) in
  List.iter
    (fun ot ->
      let attribute_fields = 1 + Random.State.int rng 3 in
      let fields = Buffer.create 128 in
      (* the interface field, replicated verbatim where implemented *)
      let implements =
        match interface with
        | Some (field, implementers) when List.mem ot implementers ->
          Buffer.add_string fields field;
          " implements I0"
        | _ -> ""
      in
      let attr_names = ref [] in
      for i = 0 to attribute_fields - 1 do
        let name = Printf.sprintf "a%d" i in
        attr_names := name :: !attr_names;
        let scalar = sample rng scalars in
        let wrapping = sample rng wrappings in
        let required = if chance rng 0.3 then " @required" else "" in
        Buffer.add_string fields
          (Printf.sprintf "  %s: %s%s\n" name (wrap scalar wrapping) required)
      done;
      let relationship_fields = Random.State.int rng 3 in
      for i = 0 to relationship_fields - 1 do
        let name = Printf.sprintf "r%d" i in
        let target = sample rng target_types in
        let wrapping = sample rng [ ""; "!"; "[]"; "[!]"; "[]!" ] in
        let directives = Buffer.create 16 in
        if chance rng 0.3 then Buffer.add_string directives " @required";
        if is_list_wrapping wrapping && chance rng 0.3 then
          Buffer.add_string directives " @distinct";
        if String.equal target ot && chance rng 0.3 then
          Buffer.add_string directives " @noLoops";
        if chance rng 0.15 then Buffer.add_string directives " @uniqueForTarget";
        if chance rng 0.08 then Buffer.add_string directives " @requiredForTarget";
        let args = if chance rng 0.25 then "(weight: Float)" else "" in
        Buffer.add_string fields
          (Printf.sprintf "  %s%s: %s%s\n" name args (wrap target wrapping)
             (Buffer.contents directives))
      done;
      let key =
        match !attr_names with
        | name :: _ when chance rng 0.3 -> Printf.sprintf " @key(fields: [\"%s\"])" name
        | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "type %s%s%s {\n%s}\n\n" ot implements key (Buffer.contents fields)))
    objects;
  Buffer.contents buf

let random_schema rng =
  let sdl = random_sdl rng in
  match Pg_schema.Of_ast.parse sdl with
  | Ok sch -> sch
  | Error msg ->
    failwith
      (Printf.sprintf "Schema_gen.random_schema: generated schema is invalid (%s):\n%s" msg
         sdl)
