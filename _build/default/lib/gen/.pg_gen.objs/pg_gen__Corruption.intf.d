lib/gen/corruption.mli: Pg_graph Pg_schema Pg_validation Random
