lib/gen/corruption.ml: List Option Pg_graph Pg_sat Pg_schema Pg_validation Random String
