lib/gen/instance_gen.ml: Array Hashtbl List Pg_graph Pg_sat Pg_schema Pg_validation Printf Random
