lib/gen/instance_gen.mli: Pg_graph Pg_schema Random
