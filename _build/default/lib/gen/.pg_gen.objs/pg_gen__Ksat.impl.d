lib/gen/ksat.ml: List Pg_sat Random
