lib/gen/ksat.mli: Pg_sat
