lib/gen/social.mli: Pg_graph Pg_schema
