lib/gen/social.ml: Array Corruption List Pg_graph Pg_schema Printf Random
