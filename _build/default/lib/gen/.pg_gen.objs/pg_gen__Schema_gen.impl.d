lib/gen/schema_gen.ml: Buffer List Pg_schema Printf Random String
