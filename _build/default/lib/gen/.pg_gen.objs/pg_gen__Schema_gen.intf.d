lib/gen/schema_gen.mli: Pg_schema Random
