(** Random schema generation for property-based tests.

    Schemas are emitted as SDL text (so every generated schema also
    exercises the lexer and parser) and are consistent by construction:
    interface fields are copied verbatim into the implementing object
    types, union members are object types, directive uses match the
    standard declarations.

    The shape is controlled to keep satisfiability and validation
    tractable in tests: 2–6 object types, up to one interface and one
    union, attribute fields over the built-in scalars plus at most one
    enum and one custom scalar, relationship fields with a bounded set of
    directives ([@requiredForTarget] is generated with low probability —
    it is the main source of unsatisfiable random schemas). *)

val random_sdl : Random.State.t -> string

val random_schema : Random.State.t -> Pg_schema.Schema.t
(** [random_sdl] parsed; generation guarantees this cannot fail. *)
