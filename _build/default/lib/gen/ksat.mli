(** Random k-SAT instances for the Theorem 2 benchmarks (E9). *)

val random :
  ?seed:int -> num_vars:int -> num_clauses:int -> clause_size:int -> unit -> Pg_sat.Cnf.t
(** Clauses drawn uniformly: distinct variables within a clause, random
    polarities.  [clause_size] is capped at [num_vars]. *)

val series : ?seed:int -> clause_size:int -> ratio:float -> int list -> Pg_sat.Cnf.t list
(** One instance per requested variable count, with
    [num_clauses = ratio * num_vars] (rounded, at least 1); used for the
    [sat_reduction_scaling] bench around the hard ratio. *)
