(** The social-network workload used by the scaling benchmarks (E7).

    An LDBC-style schema — persons in cities, posts, comments, forums —
    exercising every directive of the paper, and a deterministic
    generator producing conformant graphs of a requested size.
    Conformance (strong satisfaction) is asserted by the test suite, so
    the benchmarks measure pure validation cost, not violation
    reporting. *)

val schema_text : string
(** The schema in SDL.  Includes [@key], [@required], [@distinct],
    [@noLoops], [@uniqueForTarget], [@requiredForTarget], an interface, a
    union, an enum, a custom scalar, and edge properties. *)

val schema : unit -> Pg_schema.Schema.t
(** Parsed (raises on internal error; covered by tests). *)

val generate : ?seed:int -> persons:int -> unit -> Pg_graph.Property_graph.t
(** A conformant graph with roughly [9 * persons / 2] nodes: one city per
    20 persons, one forum per 10, one post per person, one comment per
    two persons, plus moderation, likes, friendship, and membership
    edges. *)

val corrupt_uniformly :
  ?seed:int -> rate:float -> Pg_schema.Schema.t -> Pg_graph.Property_graph.t ->
  Pg_graph.Property_graph.t
(** Apply random {!Corruption} mutators to a fraction [rate] of nodes;
    used by benches that measure validation on invalid inputs. *)
