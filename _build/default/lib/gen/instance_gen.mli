(** Graph generation against arbitrary schemas.

    - {!conformant} builds graphs that strongly satisfy a schema, by
      disjoint union of satisfiability witnesses with key properties
      re-freshened globally (a disjoint union of conformant graphs can
      only violate key constraints, which range over node pairs).
    - {!fuzz} builds deliberately arbitrary graphs — a controlled mix of
      declared and undeclared labels, well- and ill-typed properties,
      justified and unjustified edges — for differential testing of the
      two validation engines, which must agree on {e every} input. *)

val conformant :
  ?seed:int -> ?target_nodes:int -> Pg_schema.Schema.t -> Pg_graph.Property_graph.t option
(** [None] when no object type of the schema has a witness within the
    search bounds. *)

val fuzz : Random.State.t -> Pg_schema.Schema.t -> max_nodes:int -> Pg_graph.Property_graph.t
