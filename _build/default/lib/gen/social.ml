module G = Pg_graph.Property_graph
module Value = Pg_graph.Value

let schema_text =
  {|
"Timestamps in ISO-8601; validated as an opaque scalar."
scalar DateTime

enum Browser { CHROME FIREFOX SAFARI OTHER }

union Content = Post | Comment

type City @key(fields: ["name"]) {
  name: String! @required
  population: Int
}

interface Message {
  id: ID! @required
  content: String! @required
  createdAt: DateTime! @required
}

type Person @key(fields: ["id"]) {
  id: ID! @required
  name: String! @required
  emails: [String!]!
  browser: Browser
  livesIn: City! @required @requiredForTarget
  knows(since: DateTime!): [Person] @distinct @noLoops
  likes: [Message] @distinct
}

type Forum @key(fields: ["title"]) {
  title: String! @required
  moderator: Person! @required @uniqueForTarget
  hasMember(joined: DateTime): [Person] @distinct
  containerOf: [Post] @requiredForTarget @uniqueForTarget
}

type Post implements Message @key(fields: ["id"]) {
  id: ID! @required
  content: String! @required
  createdAt: DateTime! @required
  author: Person! @required
}

type Comment implements Message @key(fields: ["id"]) {
  id: ID! @required
  content: String! @required
  createdAt: DateTime! @required
  author: Person! @required
  replyOf: Content! @required
}
|}

let schema () =
  match Pg_schema.Of_ast.parse schema_text with
  | Ok sch -> sch
  | Error msg -> failwith ("Social.schema: internal schema is broken: " ^ msg)

let timestamp i = Value.String (Printf.sprintf "2019-06-%02dT%02d:%02d" ((i mod 28) + 1) (i mod 24) (i mod 60))

let browsers = [| "CHROME"; "FIREFOX"; "SAFARI"; "OTHER" |]

let generate ?(seed = 42) ~persons () =
  if persons < 1 then invalid_arg "Social.generate: persons must be >= 1";
  let rng = Random.State.make [| seed |] in
  let cities = max 1 ((persons + 19) / 20) in
  let forums = max 1 (persons / 10) in
  let posts = persons in
  let comments = persons / 2 in
  let g = ref G.empty in
  let add_node ~label ~props =
    let g', v = G.add_node !g ~label ~props () in
    g := g';
    v
  in
  let add_edge ~label ?props src tgt =
    let g', _ = G.add_edge !g ~label ?props src tgt in
    g := g'
  in
  let city =
    Array.init cities (fun i ->
        add_node ~label:"City"
          ~props:
            [
              ("name", Value.String (Printf.sprintf "City%d" i));
              ("population", Value.Int (10_000 + (137 * i)));
            ])
  in
  let person =
    Array.init persons (fun i ->
        let props =
          [
            ("id", Value.Id (Printf.sprintf "p%d" i));
            ("name", Value.String (Printf.sprintf "Person %d" i));
          ]
        in
        let props =
          if i mod 3 = 0 then
            ("emails", Value.List [ Value.String (Printf.sprintf "p%d@example.org" i) ])
            :: props
          else props
        in
        let props =
          if i mod 2 = 0 then
            ("browser", Value.Enum browsers.(Random.State.int rng 4)) :: props
          else props
        in
        add_node ~label:"Person" ~props)
  in
  let forum =
    Array.init forums (fun i ->
        add_node ~label:"Forum"
          ~props:[ ("title", Value.String (Printf.sprintf "Forum %d" i)) ])
  in
  let post =
    Array.init posts (fun i ->
        add_node ~label:"Post"
          ~props:
            [
              ("id", Value.Id (Printf.sprintf "post%d" i));
              ("content", Value.String (Printf.sprintf "Post number %d" i));
              ("createdAt", timestamp i);
            ])
  in
  let comment =
    Array.init comments (fun i ->
        add_node ~label:"Comment"
          ~props:
            [
              ("id", Value.Id (Printf.sprintf "comment%d" i));
              ("content", Value.String (Printf.sprintf "Comment number %d" i));
              ("createdAt", timestamp (i + 3));
            ])
  in
  (* livesIn: exactly one per person; each city inhabited (persons are
     distributed round-robin, and cities <= persons) *)
  Array.iteri (fun i p -> add_edge ~label:"livesIn" p city.(i mod cities)) person;
  (* moderator: forum i moderated by person i (distinct persons) *)
  Array.iteri (fun i f -> add_edge ~label:"moderator" f person.(i)) forum;
  (* membership, with an optional edge property *)
  Array.iteri
    (fun i p ->
      let props = if i mod 2 = 0 then [ ("joined", timestamp i) ] else [] in
      add_edge ~label:"hasMember" ~props forum.(i mod forums) p)
    person;
  (* containerOf: every post in exactly one forum *)
  Array.iteri (fun i po -> add_edge ~label:"containerOf" forum.(i mod forums) po) post;
  (* knows: ring + chord, guarded against loops and duplicate targets *)
  Array.iteri
    (fun i p ->
      let targets = [ (i + 1) mod persons; (i + 7) mod persons ] in
      ignore
        (List.fold_left
           (fun seen j ->
             if j <> i && not (List.mem j seen) then begin
               add_edge ~label:"knows" ~props:[ ("since", timestamp (i + j)) ] p person.(j);
               j :: seen
             end
             else seen)
           [] targets))
    person;
  (* likes: distinct targets by construction (one per person) *)
  Array.iteri (fun i p -> add_edge ~label:"likes" p post.((i * 3) mod posts)) person;
  (* authorship *)
  Array.iteri (fun i po -> add_edge ~label:"author" po person.(i mod persons)) post;
  Array.iteri
    (fun i c ->
      add_edge ~label:"author" c person.((2 * i) mod persons);
      (* replies alternate between posts and earlier comments *)
      if i > 0 && i mod 4 = 0 then add_edge ~label:"replyOf" c comment.(i - 1)
      else add_edge ~label:"replyOf" c post.(i mod posts))
    comment;
  !g

let corrupt_uniformly ?(seed = 7) ~rate sch g =
  let rng = Random.State.make [| seed |] in
  let mutations = int_of_float (rate *. float_of_int (G.node_count g)) in
  let rec go g k =
    if k = 0 then g
    else
      match Corruption.mutate_any sch rng g with
      | Some (_, g') -> go g' (k - 1)
      | None -> g
  in
  go g mutations
