module Cnf = Pg_sat.Cnf

let random ?(seed = 13) ~num_vars ~num_clauses ~clause_size () =
  if num_vars < 1 then invalid_arg "Ksat.random: num_vars must be >= 1";
  let clause_size = min clause_size num_vars in
  let rng = Random.State.make [| seed; num_vars; num_clauses |] in
  let clause () =
    let rec distinct_vars acc k =
      if k = 0 then acc
      else begin
        let v = 1 + Random.State.int rng num_vars in
        if List.mem v acc then distinct_vars acc k else distinct_vars (v :: acc) (k - 1)
      end
    in
    List.map
      (fun v -> Cnf.lit (if Random.State.bool rng then v else -v))
      (distinct_vars [] clause_size)
  in
  Cnf.make ~num_vars (List.init num_clauses (fun _ -> clause ()))

let series ?(seed = 13) ~clause_size ~ratio var_counts =
  List.map
    (fun num_vars ->
      let num_clauses = max 1 (int_of_float (ratio *. float_of_int num_vars)) in
      random ~seed ~num_vars ~num_clauses ~clause_size ())
    var_counts
