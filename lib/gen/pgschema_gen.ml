(* Random PG-Schema documents for property-based tests, in the style of
   [Schema_gen]: documents are emitted as AST values plus their canonical
   text (so every generated document also exercises the PG-Schema lexer
   and parser) and lower without errors by construction.

   The generated fragment is {e canonical}: endpoint references use
   primary labels, properties precede edges, edges carry only the four
   exactly-representable cardinalities (0..1, 1..1 and the unbounded
   pair), and labels never collide with property type names — so
   lowering, exporting
   with [To_pgschema], and re-lowering reproduces the same schema, which
   the test suite pins. *)

module Ast = Pg_pgschema.Ast

let sample rng l = List.nth l (Random.State.int rng (List.length l))
let chance rng p = Random.State.float rng 1.0 < p
let span = Pg_sdl.Source.dummy_span

let prop_types = [ "String"; "Int"; "Float"; "Boolean"; "ID"; "Date" ]

let random_property rng i : Ast.property =
  {
    Ast.p_optional = chance rng 0.4;
    p_name = Printf.sprintf "p%d" i;
    p_type = sample rng prop_types;
    p_array = chance rng 0.25;
    p_span = span;
  }

let random_props rng n = List.init (Random.State.int rng (n + 1)) (random_property rng)

(* only the four exactly-representable cardinalities, or absent *)
let random_out rng : Ast.cardinality option =
  if chance rng 0.2 then None
  else
    Some
      (sample rng
         [
           { Ast.c_lo = 0; c_hi = Some 1 };
           { Ast.c_lo = 1; c_hi = Some 1 };
           { Ast.c_lo = 0; c_hi = None };
           { Ast.c_lo = 1; c_hi = None };
         ])

let random_in rng : Ast.cardinality option =
  if chance rng 0.4 then None
  else
    Some
      (sample rng
         [
           { Ast.c_lo = 0; c_hi = Some 1 };
           { Ast.c_lo = 1; c_hi = Some 1 };
           { Ast.c_lo = 0; c_hi = None };
           (* 1..* = @requiredForTarget, the main source of unsatisfiable
              random schemas — generated rarely, as in Schema_gen *)
           (if chance rng 0.15 then { Ast.c_lo = 1; c_hi = None }
            else { Ast.c_lo = 0; c_hi = None });
         ])

let random_document rng : Ast.document =
  let num_nodes = 2 + Random.State.int rng 4 in
  let labels = List.init num_nodes (fun i -> Printf.sprintf "N%d" i) in
  let secondary = if chance rng 0.5 then Some "Tagged" else None in
  let nodes =
    List.map
      (fun l ->
        Ast.Node_type
          {
            Ast.n_name = None;
            n_labels =
              (l
              ::
              (match secondary with
              | Some s when chance rng 0.4 -> [ s ]
              | _ -> []));
            n_open = chance rng 0.25;
            n_props = random_props rng 3;
            n_span = span;
          })
      labels
  in
  let num_edges = Random.State.int rng (2 * num_nodes) in
  let edges =
    List.init num_edges (fun i ->
        Ast.Edge_type
          {
            Ast.e_name = None;
            e_label = Printf.sprintf "e%d" i;
            e_src = { Ast.ep_ref = sample rng labels; ep_span = span };
            e_tgt = { Ast.ep_ref = sample rng labels; ep_span = span };
            e_open = false;
            e_props = random_props rng 2;
            e_out = random_out rng;
            e_in = random_in rng;
            e_span = span;
          })
  in
  [
    {
      Ast.gt_name = "Generated";
      gt_mode = (if chance rng 0.15 then Ast.Loose else Ast.Strict);
      gt_elements = nodes @ edges;
      gt_span = span;
    };
  ]

let random_pgs rng = Pg_pgschema.Printer.document_to_string (random_document rng)

let random_schema rng =
  match Pg_pgschema.Lower.parse_full (random_pgs rng) with
  | Ok (sch, _warnings) -> sch
  | Error diagnostics ->
    invalid_arg
      ("Pgschema_gen produced a document that does not lower:\n"
      ^ String.concat "\n" (List.map Pg_diag.Diag.to_text diagnostics))
