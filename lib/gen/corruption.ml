module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype
module Rules = Pg_validation.Rules
module Violation = Pg_validation.Violation

let pick rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

(* A value guaranteed to be outside valuesW(wt): a list where an atom is
   expected, an atom where a list is expected. *)
let ill_typed_value (wt : Wrapped.t) =
  if Wrapped.is_list wt then Value.Int 123456 else Value.List [ Value.Int 1 ]

let attribute_fields sch label =
  List.filter_map
    (fun (f, (fd : Schema.field)) ->
      match Schema.classify_field sch fd with
      | Some Schema.Attribute -> Some (f, fd)
      | Some Schema.Relationship | None -> None)
    (Schema.fields sch label)

let relationship_fields sch label =
  List.filter_map
    (fun (f, (fd : Schema.field)) ->
      match Schema.classify_field sch fd with
      | Some Schema.Relationship -> Some (f, fd)
      | Some Schema.Attribute | None -> None)
    (Schema.fields sch label)

let object_subtypes sch t =
  List.filter
    (fun o -> Schema.type_kind sch o = Some Schema.Object)
    (Subtype.subtypes sch t)

(* WS1: give a node an ill-typed value for a declared attribute *)
let ws1 sch rng g =
  let candidates =
    List.concat_map
      (fun v ->
        List.map (fun (f, fd) -> (v, f, fd)) (attribute_fields sch (G.node_label g v)))
      (G.nodes g)
  in
  Option.map
    (fun (v, f, (fd : Schema.field)) ->
      G.set_node_prop g v f (ill_typed_value fd.Schema.fd_type))
    (pick rng candidates)

(* WS2: ill-typed value for a declared edge property *)
let ws2 sch rng g =
  let candidates =
    List.concat_map
      (fun e ->
        let v1, _ = G.edge_ends g e in
        List.map
          (fun (a, (arg : Schema.argument)) -> (e, a, arg))
          (Schema.args sch (G.node_label g v1) (G.edge_label g e)))
      (G.edges g)
  in
  Option.map
    (fun (e, a, (arg : Schema.argument)) ->
      G.set_edge_prop g e a (ill_typed_value arg.Schema.arg_type))
    (pick rng candidates)

(* WS3: add a declared edge whose target has the wrong type.  Candidate
   (source, field) pairs are linear in the graph; the wrong-typed target
   is found by a scan, so the mutator stays near-linear on big graphs. *)
let ws3 sch rng g =
  let sources =
    List.concat_map
      (fun v ->
        List.filter_map
          (fun (f, (fd : Schema.field)) ->
            (* prefer a source without an existing f-edge to stay clear of
               WS4 *)
            if List.exists (fun e -> String.equal (G.edge_label g e) f) (G.out_edges g v)
            then None
            else Some (v, f, Wrapped.basetype fd.Schema.fd_type))
          (relationship_fields sch (G.node_label g v)))
      (G.nodes g)
  in
  match pick rng sources with
  | None -> None
  | Some (v, f, base) ->
    let wrong =
      List.find_opt (fun u -> not (Subtype.named sch (G.node_label g u) base)) (G.nodes g)
    in
    Option.map (fun u -> fst (G.add_edge g ~label:f v u)) wrong

(* WS4: duplicate the edge of a non-list relationship *)
let ws4 sch rng g =
  let candidates =
    List.filter_map
      (fun e ->
        let v1, v2 = G.edge_ends g e in
        let f = G.edge_label g e in
        match Schema.type_f sch (G.node_label g v1) f with
        | Some wt when not (Wrapped.is_list wt) ->
          (* aim the duplicate at another valid target when possible, so
             the mutation does not also trip @distinct *)
          let base = Wrapped.basetype wt in
          let other =
            List.find_opt
              (fun u ->
                G.node_id u <> G.node_id v2 && Subtype.named sch (G.node_label g u) base)
              (G.nodes g)
          in
          Some (v1, f, Option.value ~default:v2 other)
        | Some _ | None -> None)
      (G.edges g)
  in
  Option.map (fun (v, f, u) -> fst (G.add_edge g ~label:f v u)) (pick rng candidates)

(* DS1: parallel duplicate of a @distinct edge *)
let ds1 sch rng g =
  let constraints = Rules.constrained_fields sch ~directive:"distinct" in
  let candidates =
    List.filter_map
      (fun e ->
        let v1, v2 = G.edge_ends g e in
        let f = G.edge_label g e in
        let applicable =
          List.exists
            (fun (fc : Rules.field_constraint) ->
              String.equal fc.Rules.field f
              && Subtype.named sch (G.node_label g v1) fc.Rules.owner)
            constraints
        in
        if applicable then Some (v1, f, v2) else None)
      (G.edges g)
  in
  Option.map (fun (v, f, u) -> fst (G.add_edge g ~label:f v u)) (pick rng candidates)

(* DS2: a loop on a @noLoops field (the node type must be a valid target
   type of its own field, so WS3 stays clean) *)
let ds2 sch rng g =
  let constraints = Rules.constrained_fields sch ~directive:"noLoops" in
  let candidates =
    List.concat_map
      (fun v ->
        let label = G.node_label g v in
        List.filter_map
          (fun (fc : Rules.field_constraint) ->
            if
              Subtype.named sch label fc.Rules.owner
              && (match Schema.type_f sch label fc.Rules.field with
                 | Some wt -> Subtype.named sch label (Wrapped.basetype wt)
                 | None -> false)
            then Some (v, fc.Rules.field)
            else None)
          constraints)
      (G.nodes g)
  in
  Option.map (fun (v, f) -> fst (G.add_edge g ~label:f v v)) (pick rng candidates)

(* DS3: second incoming edge on a @uniqueForTarget target.  One constrained
   edge is sampled, then a second source is found by a scan. *)
let ds3 sch rng g =
  let constraints = Rules.constrained_fields sch ~directive:"uniqueForTarget" in
  let constrained_edges =
    List.filter_map
      (fun e ->
        let v1, v2 = G.edge_ends g e in
        let f = G.edge_label g e in
        if
          List.exists
            (fun (fc : Rules.field_constraint) ->
              String.equal fc.Rules.field f
              && Subtype.named sch (G.node_label g v1) fc.Rules.owner)
            constraints
        then Some (v1, f, v2)
        else None)
      (G.edges g)
  in
  match pick rng constrained_edges with
  | None -> None
  | Some (v1, f, v2) ->
    let owners =
      List.filter_map
        (fun (fc : Rules.field_constraint) ->
          if String.equal fc.Rules.field f then Some fc.Rules.owner else None)
        constraints
    in
    (* another source of an owning type, preferably without an existing
       f-edge (avoids WS4) and not v1 (avoids DS1) *)
    let second =
      List.find_opt
        (fun v ->
          G.node_id v <> G.node_id v1
          && List.exists (fun owner -> Subtype.named sch (G.node_label g v) owner) owners
          && Schema.type_f sch (G.node_label g v) f <> None
          && not
               (List.exists (fun e' -> String.equal (G.edge_label g e') f) (G.out_edges g v)))
        (G.nodes g)
    in
    Option.map (fun v -> fst (G.add_edge g ~label:f v v2)) second

(* DS4: a fresh node of a @requiredForTarget target type, with no incoming
   edge (required properties filled so only DS4 fires) *)
let ds4 sch rng g =
  let constraints = Rules.constrained_fields sch ~directive:"requiredForTarget" in
  let candidates =
    List.concat_map
      (fun (fc : Rules.field_constraint) ->
        object_subtypes sch (Wrapped.basetype fc.Rules.fd.Schema.fd_type))
      constraints
  in
  Option.map
    (fun label ->
      let g, _ = G.add_node g ~label () in
      Pg_sat.Model_search.fill_required_properties sch g)
    (pick rng candidates)

(* DS5: drop a required property *)
let ds5 sch rng g =
  let constraints =
    List.filter
      (fun (fc : Rules.field_constraint) ->
        Rules.is_attribute_type sch fc.Rules.fd.Schema.fd_type)
      (Rules.constrained_fields sch ~directive:"required")
  in
  let candidates =
    List.concat_map
      (fun v ->
        List.filter_map
          (fun (fc : Rules.field_constraint) ->
            if
              Subtype.named sch (G.node_label g v) fc.Rules.owner
              && G.node_prop g v fc.Rules.field <> None
            then Some (v, fc.Rules.field)
            else None)
          constraints)
      (G.nodes g)
  in
  Option.map (fun (v, f) -> G.remove_node_prop g v f) (pick rng candidates)

(* DS6: drop a required edge *)
let ds6 sch rng g =
  let constraints =
    List.filter
      (fun (fc : Rules.field_constraint) ->
        not (Rules.is_attribute_type sch fc.Rules.fd.Schema.fd_type))
      (Rules.constrained_fields sch ~directive:"required")
  in
  let candidates =
    List.filter
      (fun e ->
        let v1, _ = G.edge_ends g e in
        let f = G.edge_label g e in
        List.exists
          (fun (fc : Rules.field_constraint) ->
            String.equal fc.Rules.field f
            && Subtype.named sch (G.node_label g v1) fc.Rules.owner
            && (* removing must leave no other f-edge *)
            List.length
              (List.filter
                 (fun e' -> String.equal (G.edge_label g e') f)
                 (G.out_edges g v1))
            = 1)
          constraints)
      (G.edges g)
  in
  Option.map (fun e -> G.remove_edge g e) (pick rng candidates)

(* DS7: copy one node's key properties onto another *)
let ds7 sch rng g =
  let candidates =
    List.concat_map
      (fun (owner, key_fields) ->
        let members =
          List.filter (fun v -> Subtype.named sch (G.node_label g v) owner) (G.nodes g)
        in
        match members with
        | v1 :: (_ :: _ as rest) ->
          List.map (fun v2 -> (owner, key_fields, v1, v2)) rest
        | _ -> [])
      (Rules.key_constraints sch)
  in
  Option.map
    (fun (_owner, key_fields, v1, v2) ->
      List.fold_left
        (fun g f ->
          match G.node_prop g v1 f with
          | Some value -> G.set_node_prop g v2 f value
          | None -> G.remove_node_prop g v2 f)
        g key_fields)
    (pick rng candidates)

(* SS1: relabel a node to an unknown type *)
let ss1 _sch rng g =
  Option.map (fun v -> G.relabel_node g v "UnknownType_xq") (pick rng (G.nodes g))

(* SS2: add an undeclared node property *)
let ss2 _sch rng g =
  Option.map
    (fun v -> G.set_node_prop g v "unknownProperty_xq" (Value.Int 1))
    (pick rng (G.nodes g))

(* SS3: add an undeclared edge property *)
let ss3 _sch rng g =
  Option.map
    (fun e -> G.set_edge_prop g e "unknownArgument_xq" (Value.Int 1))
    (pick rng (G.edges g))

(* SS4: add an edge with an undeclared label *)
let ss4 _sch rng g =
  match G.nodes g with
  | [] -> None
  | nodes ->
    Option.map
      (fun v ->
        let u = Option.value ~default:v (pick rng nodes) in
        fst (G.add_edge g ~label:"unknownEdge_xq" v u))
      (pick rng nodes)

let mutate rule sch rng g =
  let f =
    match rule with
    | Violation.WS1 -> ws1
    | Violation.WS2 -> ws2
    | Violation.WS3 -> ws3
    | Violation.WS4 -> ws4
    | Violation.DS1 -> ds1
    | Violation.DS2 -> ds2
    | Violation.DS3 -> ds3
    | Violation.DS4 -> ds4
    | Violation.DS5 -> ds5
    | Violation.DS6 -> ds6
    | Violation.DS7 -> ds7
    | Violation.SS1 -> ss1
    | Violation.SS2 -> ss2
    | Violation.SS3 -> ss3
    | Violation.SS4 -> ss4
  in
  f sch rng g

let mutate_any sch rng g =
  (* try the rules in random order, first applicable one wins *)
  let shuffled =
    List.map (fun r -> (Random.State.bits rng, r)) Violation.all_rules
    |> List.sort compare |> List.map snd
  in
  List.find_map
    (fun rule ->
      match mutate rule sch rng g with Some g' -> Some (rule, g') | None -> None)
    shuffled

(* ---- text-level faults for the serialized formats ---- *)

let truncate_text rng text =
  if String.length text = 0 then text
  else String.sub text 0 (Random.State.int rng (String.length text))

let flip_byte rng text =
  if String.length text = 0 then text
  else begin
    let b = Bytes.of_string text in
    let i = Random.State.int rng (Bytes.length b) in
    (* xor with a nonzero mask always changes the byte *)
    let mask = 1 + Random.State.int rng 255 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
    Bytes.unsafe_to_string b
  end

let corrupt_text rng text =
  match Random.State.int rng 3 with
  | 0 -> truncate_text rng text
  | 1 -> flip_byte rng text
  | _ -> flip_byte rng (truncate_text rng text)

(* ---- record-level faults for PGF text ----

   One PGF line is one record.  These faults target exactly one record
   (a non-blank, non-comment line), so the streaming-recovery tests can
   predict which record ends up quarantined. *)

let pgf_lines text = String.split_on_char '\n' text

let record_indices lines =
  List.mapi (fun i l -> (i, String.trim l)) lines
  |> List.filter_map (fun (i, t) -> if t = "" || t.[0] = '#' then None else Some i)

let rebuild lines = String.concat "\n" lines

let pick_record rng text =
  let lines = pgf_lines text in
  match record_indices lines with
  | [] -> None
  | indices -> Option.map (fun i -> (lines, i)) (pick rng indices)

let drop_record rng text =
  Option.map
    (fun (lines, i) ->
      (i + 1, rebuild (List.filteri (fun j _ -> j <> i) lines)))
    (pick_record rng text)

let duplicate_record rng text =
  Option.map
    (fun (lines, i) ->
      let dup = List.concat (List.mapi (fun j l -> if j = i then [ l; l ] else [ l ]) lines) in
      (i + 2, rebuild dup))
    (pick_record rng text)

(* '!' can start neither a PGF keyword nor an identifier, so the garbled
   line is guaranteed to fail to parse — as exactly one record *)
let garble_marker = "!!garbled!! "

let garble_record rng text =
  Option.map
    (fun (lines, i) ->
      (i + 1, rebuild (List.mapi (fun j l -> if j = i then garble_marker ^ l else l) lines)))
    (pick_record rng text)
