(** Fault injection: one mutator per validation rule of Section 5.

    Given a schema and a (typically conformant) graph, [mutate rule]
    applies a minimal edit designed to make the graph violate that rule —
    remove a required property (DS5), duplicate a non-list edge (WS4),
    copy one node's key onto another (DS7), and so on.  Mutators return
    [None] when the graph offers no opportunity (e.g. no [@noLoops] field
    whose source type can also be its target).

    A mutation is {e targeted}, not {e exclusive}: some edits necessarily
    trip several rules at once (a wrongly-typed value on a required list
    attribute violates WS1 and the list part of DS5).  The test suite
    asserts that the targeted rule is among those reported by both
    validation engines. *)

val mutate :
  Pg_validation.Violation.rule ->
  Pg_schema.Schema.t ->
  Random.State.t ->
  Pg_graph.Property_graph.t ->
  Pg_graph.Property_graph.t option

val mutate_any :
  Pg_schema.Schema.t ->
  Random.State.t ->
  Pg_graph.Property_graph.t ->
  (Pg_validation.Violation.rule * Pg_graph.Property_graph.t) option
(** A random applicable mutator (uniform over the applicable ones). *)

(** {2 Text-level faults}

    Faults below operate on the {e serialized} forms (SDL, PGF, GraphML
    text) rather than on a graph; they model truncated downloads and
    bit-rot.  The front-end robustness suite asserts that every parser
    turns such input into an [Error] value — never an exception or a
    hang. *)

val truncate_text : Random.State.t -> string -> string
(** Keep a random proper prefix ([""] stays [""]). *)

val flip_byte : Random.State.t -> string -> string
(** Flip at least one bit of a random byte ([""] stays [""]). *)

val corrupt_text : Random.State.t -> string -> string
(** Truncate, byte-flip, or both. *)

(** {2 Record-level PGF faults}

    One PGF line is one record; these faults hit exactly one random
    record (non-blank, non-comment line) so the streaming-recovery tests
    can predict which record is skipped and quarantined.  Each returns
    [None] on a text without records, and otherwise the 1-based line
    number affected together with the faulted text. *)

val drop_record : Random.State.t -> string -> (int * string) option
(** Delete one record line; the returned line number is where it stood.
    Dropping a [node] line also invalidates every later edge that
    references its handle — a {e cascading} fault. *)

val duplicate_record : Random.State.t -> string -> (int * string) option
(** Repeat one record line; the returned line number is the duplicate's.
    Duplicating a [node] line yields exactly one fault (the duplicate
    handle); duplicating an edge line is silent (edges may repeat). *)

val garble_record : Random.State.t -> string -> (int * string) option
(** Prefix one record line with {!garble_marker}, making exactly that
    record unparsable. *)

val garble_marker : string
(** ["!!garbled!! "] — ['!'] can start neither a PGF keyword nor an
    identifier, so a garbled record is guaranteed to fail to parse. *)
