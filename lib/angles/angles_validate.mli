(** Validation of Property Graphs against Angles-style schemas.

    The rules mirror Angles' constraints: node labels must be declared
    node types; properties must be declared (with values of the declared
    scalar type) and present when mandatory; unique properties must not
    repeat within a type; every edge must match a declared edge type for
    its (source label, edge label, target label) triple; cardinality
    constraints bound edges per source ([N:1], [1:1]) and per target
    ([1:N], [1:1]); mandatory edge types require an outgoing edge on
    every source-type node. *)

type violation = { rule : string; message : string }

val pp_violation : Format.formatter -> violation -> unit

val code_of_rule : string -> string
(** The stable [ANG0xx] code of an Angles rule name ([ANG000] for an
    unknown rule). *)

val to_diagnostic : violation -> Pg_diag.Diag.t
(** Severity error; the Angles rule name is carried as the subject. *)

val check : Angles_schema.t -> Pg_graph.Property_graph.t -> violation list
val conforms : Angles_schema.t -> Pg_graph.Property_graph.t -> bool
