module Sm = Map.Make (String)
module G = Pg_graph.Property_graph
module Value = Pg_graph.Value

type violation = { rule : string; message : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.rule v.message

(* Stable ANG0xx codes, one per Angles rule; the rule name itself rides
   along as the diagnostic subject so the text renderer can reproduce
   [pp_violation]. *)
let code_of_rule = function
  | "node-type" -> "ANG001"
  | "node-undeclared-property" -> "ANG002"
  | "node-property-type" -> "ANG003"
  | "node-mandatory-property" -> "ANG004"
  | "node-unique-property" -> "ANG005"
  | "edge-type" -> "ANG006"
  | "edge-undeclared-property" -> "ANG007"
  | "edge-property-type" -> "ANG008"
  | "edge-mandatory-property" -> "ANG009"
  | "edge-cardinality-source" -> "ANG010"
  | "edge-cardinality-target" -> "ANG011"
  | "edge-mandatory" -> "ANG012"
  | _ -> "ANG000"

let to_diagnostic v =
  Pg_diag.Diag.error ~code:(code_of_rule v.rule) ~subject:v.rule v.message

let atom_matches p_type (v : Value.t) =
  match p_type, v with
  | "Int", Value.Int _ -> true
  | "Float", (Value.Float _ | Value.Int _) -> true
  | "String", Value.String _ -> true
  | "Boolean", Value.Bool _ -> true
  | "ID", (Value.Id _ | Value.String _ | Value.Int _) -> true
  | ("Int" | "Float" | "String" | "Boolean" | "ID"), _ -> false
  | _, v -> Value.is_atomic v

let value_matches (p : Angles_schema.property_def) (v : Value.t) =
  if p.Angles_schema.p_list then
    match v with
    | Value.List elems -> List.for_all (atom_matches p.Angles_schema.p_type) elems
    | _ -> false
  else atom_matches p.Angles_schema.p_type v

let check_props ~rule_prefix ~owner declared actual acc =
  (* declared but ill-typed or undeclared properties *)
  let acc =
    List.fold_left
      (fun acc (name, value) ->
        match List.assoc_opt name declared with
        | None ->
          {
            rule = rule_prefix ^ "-undeclared-property";
            message = Printf.sprintf "%s has undeclared property %S" owner name;
          }
          :: acc
        | Some (p : Angles_schema.property_def) ->
          if value_matches p value then acc
          else
            {
              rule = rule_prefix ^ "-property-type";
              message =
                Printf.sprintf "%s property %S has value %s, expected %s" owner name
                  (Value.to_string value) p.Angles_schema.p_type;
            }
            :: acc)
      acc actual
  in
  (* mandatory properties *)
  List.fold_left
    (fun acc (name, (p : Angles_schema.property_def)) ->
      if p.Angles_schema.p_mandatory && not (List.mem_assoc name actual) then
        {
          rule = rule_prefix ^ "-mandatory-property";
          message = Printf.sprintf "%s lacks mandatory property %S" owner name;
        }
        :: acc
      else acc)
    acc declared

let check (sch : Angles_schema.t) g =
  let acc = [] in
  (* nodes: declared types, properties *)
  let acc =
    List.fold_left
      (fun acc v ->
        let label = G.node_label g v in
        match Angles_schema.node_type sch label with
        | None ->
          {
            rule = "node-type";
            message = Printf.sprintf "node n%d has undeclared type %S" (G.node_id v) label;
          }
          :: acc
        | Some nt ->
          check_props ~rule_prefix:"node" ~owner:(Printf.sprintf "node n%d (%s)" (G.node_id v) label)
            nt.Angles_schema.nt_props (G.node_props g v) acc)
      acc (G.nodes g)
  in
  (* unique node properties *)
  let acc =
    Sm.fold
      (fun type_name (nt : Angles_schema.node_type) acc ->
        List.fold_left
          (fun acc (prop, (p : Angles_schema.property_def)) ->
            if not p.Angles_schema.p_unique then acc
            else begin
              let seen = Hashtbl.create 16 in
              List.fold_left
                (fun acc v ->
                  if String.equal (G.node_label g v) type_name then
                    match G.node_prop g v prop with
                    | Some value -> (
                      let key = Value.to_string value in
                      match Hashtbl.find_opt seen key with
                      | Some other ->
                        {
                          rule = "node-unique-property";
                          message =
                            Printf.sprintf "nodes n%d and n%d of type %s share unique %S"
                              other (G.node_id v) type_name prop;
                        }
                        :: acc
                      | None ->
                        Hashtbl.add seen key (G.node_id v);
                        acc)
                    | None -> acc
                  else acc)
                acc (G.nodes g)
            end)
          acc nt.Angles_schema.nt_props)
      sch.Angles_schema.node_types acc
  in
  (* edges: must match a declared edge type; properties *)
  let acc =
    List.fold_left
      (fun acc e ->
        let src, tgt = G.edge_ends g e in
        let triple =
          Angles_schema.edge_types_for sch ~source:(G.node_label g src)
            ~label:(G.edge_label g e) ~target:(G.node_label g tgt)
        in
        match triple with
        | [] ->
          {
            rule = "edge-type";
            message =
              Printf.sprintf "edge e%d (%s)-[%s]->(%s) matches no declared edge type"
                (G.edge_id e) (G.node_label g src) (G.edge_label g e) (G.node_label g tgt);
          }
          :: acc
        | et :: _ ->
          check_props ~rule_prefix:"edge"
            ~owner:(Printf.sprintf "edge e%d (%s)" (G.edge_id e) (G.edge_label g e))
            et.Angles_schema.et_props (G.edge_props g e) acc)
      acc (G.edges g)
  in
  (* cardinality and mandatory constraints per edge type *)
  let acc =
    List.fold_left
      (fun acc (et : Angles_schema.edge_type) ->
        let matching =
          List.filter
            (fun e ->
              let src, tgt = G.edge_ends g e in
              String.equal (G.node_label g src) et.Angles_schema.et_source
              && String.equal (G.edge_label g e) et.Angles_schema.et_label
              && String.equal (G.node_label g tgt) et.Angles_schema.et_target)
            (G.edges g)
        in
        let count_by proj =
          let tbl = Hashtbl.create 16 in
          List.iter
            (fun e ->
              let k = proj e in
              Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
            matching;
          tbl
        in
        (* Orientation follows the paper's Section 3.3 table: 1:N means each
           source has at most one outgoing edge (non-list field), N:1 means
           each target has at most one incoming edge (@uniqueForTarget). *)
        let src_bounded =
          match et.Angles_schema.et_cardinality with
          | Angles_schema.One_to_one | Angles_schema.One_to_many -> true
          | Angles_schema.Many_to_one | Angles_schema.Many_to_many -> false
        in
        let tgt_bounded =
          match et.Angles_schema.et_cardinality with
          | Angles_schema.One_to_one | Angles_schema.Many_to_one -> true
          | Angles_schema.One_to_many | Angles_schema.Many_to_many -> false
        in
        let acc =
          if not src_bounded then acc
          else
            Hashtbl.fold
              (fun src n acc ->
                if n > 1 then
                  {
                    rule = "edge-cardinality-source";
                    message =
                      Printf.sprintf "node n%d has %d outgoing %S edges (at most 1 allowed)"
                        src n et.Angles_schema.et_label;
                  }
                  :: acc
                else acc)
              (count_by (fun e -> G.node_id (fst (G.edge_ends g e))))
              acc
        in
        let acc =
          if not tgt_bounded then acc
          else
            Hashtbl.fold
              (fun tgt n acc ->
                if n > 1 then
                  {
                    rule = "edge-cardinality-target";
                    message =
                      Printf.sprintf "node n%d has %d incoming %S edges (at most 1 allowed)"
                        tgt n et.Angles_schema.et_label;
                  }
                  :: acc
                else acc)
              (count_by (fun e -> G.node_id (snd (G.edge_ends g e))))
              acc
        in
        if not et.Angles_schema.et_mandatory then acc
        else
          List.fold_left
            (fun acc v ->
              if
                String.equal (G.node_label g v) et.Angles_schema.et_source
                && not
                     (List.exists
                        (fun e -> G.node_id (fst (G.edge_ends g e)) = G.node_id v)
                        matching)
              then
                {
                  rule = "edge-mandatory";
                  message =
                    Printf.sprintf "node n%d of type %s lacks a mandatory %S edge"
                      (G.node_id v) et.Angles_schema.et_source et.Angles_schema.et_label;
                }
                :: acc
              else acc)
            acc (G.nodes g))
      acc sch.Angles_schema.edge_types
  in
  List.rev acc

let conforms sch g = check sch g = []
