(** PG-Schema text into the Angles baseline model.

    The composition [Lower] then [Of_graphql]: a PG-Schema document first
    lowers onto the shared schema IR ({!Pg_schema.Schema}), from which the
    existing translation derives the Angles schema — endpoint-cardinality
    directives ([@required], [@uniqueForTarget], [@requiredForTarget])
    drive the same cardinality reconstruction as for SDL input, so both
    frontends land on identical Angles schemas for equivalent documents. *)

type dropped = Of_graphql.dropped = { construct : string; reason : string }

let of_schema = Of_graphql.translate

let translate text :
    (Angles_schema.t * dropped list * Pg_diag.Diag.t list, Pg_diag.Diag.t list) result =
  match Pg_pgschema.Lower.parse_full text with
  | Error diagnostics -> Error diagnostics
  | Ok (sch, warnings) ->
    let angles, dropped = Of_graphql.translate sch in
    Ok (angles, dropped, warnings)

let translate_exn text =
  match translate text with
  | Ok (angles, dropped, _warnings) -> (angles, dropped)
  | Error diagnostics ->
    invalid_arg (String.concat "\n" (List.map Pg_diag.Diag.to_text diagnostics))
