(** Object-type satisfiability (the decision problem of Section 6.2),
    combining the engines of this library.

    For a consistent schema and an object type [ot], {!check} reports:

    - [alcqi]: the verdict of the paper's Theorem 3 procedure (tableau on
      the ALCQI translation) — satisfiability over {e arbitrary} models;
    - [finite]: the verdict for {e finite} Property Graphs, which is the
      notion the problem statement actually quantifies over.  It is
      derived soundly: ALCQI-unsatisfiable implies finitely
      unsatisfiable; an infeasible counting system ({!Counting}) implies
      finitely unsatisfiable; a witness graph proves finite
      satisfiability.  When none of the engines is conclusive the verdict
      is [Unknown] (rare; none of the paper's workloads hit it);
    - [witness]: a conforming Property Graph populating [ot], when one was
      found.

    The two verdicts differ exactly on schemas whose models are all
    infinite — e.g. the paper's diagram (b) of Example 6.1; see
    EXPERIMENTS.md.

    The problem is NP-hard (Theorem 2), so every entry point accepts a
    {!Pg_validation.Governor.t} budget; an exhausted budget downgrades
    the affected verdict to [Unknown] (reason prefixed with
    {!Pg_validation.Governor.exhausted_reason}; test with
    {!budget_exhausted}) — budgeted calls never raise and never hang. *)

type report = {
  alcqi : Tableau.verdict;
  finite : Tableau.verdict;
  witness : Pg_graph.Property_graph.t option;
}

val check :
  ?fuel:int ->
  ?max_nodes:int ->
  ?gov:Pg_validation.Governor.t ->
  Pg_schema.Schema.t ->
  string ->
  report
(** @raise Invalid_argument if the name is not an object type. *)

val satisfiable :
  ?fuel:int ->
  ?max_nodes:int ->
  ?gov:Pg_validation.Governor.t ->
  Pg_schema.Schema.t ->
  string ->
  bool
(** Finite satisfiability; [Unknown] counts as satisfiable = false.
    Prefer {!check} when the distinction matters. *)

val check_all :
  ?fuel:int ->
  ?max_nodes:int ->
  ?gov:Pg_validation.Governor.t ->
  Pg_schema.Schema.t ->
  (string * report) list
(** Every object type of the schema, sorted by name.  A budget deadline
    is {e time-sliced} across the types: each type gets an equal share of
    the time remaining when its turn comes, so one pathological type
    cannot starve the rest — it exhausts its own slice ([Unknown]) and
    the later types still run (a type finishing early donates its
    leftover to the rest). *)

val unsatisfiable_types :
  ?fuel:int ->
  ?max_nodes:int ->
  ?gov:Pg_validation.Governor.t ->
  Pg_schema.Schema.t ->
  string list
(** Object types whose [finite] verdict is [Unsatisfiable] — the soundness
    check a schema author wants before deploying a schema. *)

val budget_exhausted : report -> bool
(** Did either verdict degrade to [Unknown] because the budget ran out
    (rather than because the engines were genuinely inconclusive)?  The
    CLI maps this to its own exit code. *)

val to_diagnostics : string -> report -> Pg_diag.Diag.t list
(** [to_diagnostics ot report]: the report as unified diagnostics about
    object type [ot].  Finite unsatisfiability is [SAT001] and ALCQI
    unsatisfiability [SAT002] (both errors); a genuinely inconclusive
    [Unknown] is a [SAT003] warning; a budget-induced [Unknown] is a
    [SAT004] error whose registry class maps to exit code 3.  A cleanly
    satisfiable report yields []. *)

val pp_report : Format.formatter -> report -> unit
