module Governor = Pg_validation.Governor

module CSet = Set.Make (struct
  type t = Alcqi.concept

  let compare = Alcqi.compare
end)

module RSet = Set.Make (struct
  type t = Alcqi.role

  let compare = Stdlib.compare
end)

module IMap = Map.Make (Int)

module PSet = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

type verdict = Satisfiable | Unsatisfiable | Unknown of string

let pp_verdict ppf = function
  | Satisfiable -> Format.pp_print_string ppf "satisfiable"
  | Unsatisfiable -> Format.pp_print_string ppf "unsatisfiable"
  | Unknown reason -> Format.fprintf ppf "unknown (%s)" reason

type ndata = {
  labels : CSet.t;
  parent : int option;
  succ_edges : RSet.t IMap.t; (* child id -> roles, direction this -> child *)
}

type state = {
  nodes : ndata IMap.t;
  next : int;
  neqs : PSet.t; (* explicit inequalities, stored as (min, max) *)
}

exception Fuel_exhausted
exception Budget_exhausted

let node st x = IMap.find x st.nodes

let neq st x y =
  let p = if x < y then (x, y) else (y, x) in
  PSet.mem p st.neqs

let add_neq st x y =
  if x = y then st
  else
    let p = if x < y then (x, y) else (y, x) in
    { st with neqs = PSet.add p st.neqs }

(* y is an r-neighbor of x if edge (x -> y) carries r, or edge (y -> x)
   carries inv r.  Edges exist only between parents and children. *)
let neighbors st x r =
  let nx = node st x in
  let from_children =
    IMap.fold
      (fun child roles acc -> if RSet.mem r roles then child :: acc else acc)
      nx.succ_edges []
  in
  match nx.parent with
  | Some p -> (
    match IMap.find_opt x (node st p).succ_edges with
    | Some roles when RSet.mem (Alcqi.inv r) roles -> p :: from_children
    | _ -> from_children)
  | None -> from_children

let add_label st x c =
  let nx = node st x in
  { st with nodes = IMap.add x { nx with labels = CSet.add c nx.labels } st.nodes }

let has_label st x c = CSet.mem c (node st x).labels

(* ---------------------------------------------------------------- *)
(* Blocking: ancestor pairwise blocking.                              *)

let ancestors st x =
  let rec go acc y =
    match (node st y).parent with None -> List.rev acc | Some p -> go (p :: acc) p
  in
  go [] x
(* returns ancestors from root ... down to parent of x *)

let edge_roles st p c =
  match IMap.find_opt c (node st p).succ_edges with Some roles -> roles | None -> RSet.empty

let directly_blocked st x =
  match (node st x).parent with
  | None -> false
  | Some x' ->
    (node st x').parent <> None
    && (* candidate blockers: proper ancestors y with a parent *)
    List.exists
      (fun y ->
        match (node st y).parent with
        | None -> false
        | Some y' ->
          y <> x
          && CSet.equal (node st x).labels (node st y).labels
          && CSet.equal (node st x').labels (node st y').labels
          && RSet.equal (edge_roles st x' x) (edge_roles st y' y))
      (ancestors st x)

let blocked st x =
  let rec go y = directly_blocked st y || (match (node st y).parent with Some p -> go p | None -> false) in
  go x

(* ---------------------------------------------------------------- *)
(* Merging y into z (both r-neighbors of some x; y is never the parent
   of x when z is a child -- callers orient the pair so that when one
   element is x's parent, it is z).  y's subtree is pruned.            *)

let rec remove_subtree st y =
  let ny = node st y in
  let st = IMap.fold (fun child _ st -> remove_subtree st child) ny.succ_edges st in
  let st =
    match ny.parent with
    | Some p when IMap.mem p st.nodes ->
      let np = node st p in
      { st with nodes = IMap.add p { np with succ_edges = IMap.remove y np.succ_edges } st.nodes }
    | _ -> st
  in
  { st with nodes = IMap.remove y st.nodes }

let merge st ~x ~y ~z =
  (* labels *)
  let ny = node st y in
  let st =
    let nz = node st z in
    { st with nodes = IMap.add z { nz with labels = CSet.union nz.labels ny.labels } st.nodes }
  in
  (* edge bookkeeping: y is a child of x (callers guarantee it) *)
  let roles_xy = edge_roles st x y in
  let st =
    if (node st z).parent = Some x || (match IMap.find_opt z (node st x).succ_edges with Some _ -> true | None -> false) then begin
      if Some x = (node st z).parent then begin
        (* z is a child of x too: fold y's edge roles into (x -> z) *)
        let nx = node st x in
        let updated =
          IMap.update z
            (function Some roles -> Some (RSet.union roles roles_xy) | None -> Some roles_xy)
            nx.succ_edges
        in
        { st with nodes = IMap.add x { nx with succ_edges = updated } st.nodes }
      end
      else begin
        (* z is x's parent: the roles of (x -> y) become inverse roles on
           the edge (z -> x) *)
        let nz = node st z in
        let inv_roles = RSet.map Alcqi.inv roles_xy in
        let updated =
          IMap.update x
            (function Some roles -> Some (RSet.union roles inv_roles) | None -> Some inv_roles)
            nz.succ_edges
        in
        { st with nodes = IMap.add z { nz with succ_edges = updated } st.nodes }
      end
    end
    else st
  in
  (* inequalities mentioning y transfer to z *)
  let st =
    let transferred =
      PSet.fold
        (fun (a, b) acc ->
          let a' = if a = y then z else a and b' = if b = y then z else b in
          if a' = b' then acc else PSet.add (min a' b', max a' b') acc)
        st.neqs PSet.empty
    in
    { st with neqs = transferred }
  in
  remove_subtree st y

(* ---------------------------------------------------------------- *)
(* The expansion loop.                                                *)

type rule_app =
  | Clash
  | Add of int * Alcqi.concept list (* deterministic additions to a node *)
  | Branch of (int * Alcqi.concept) list (* alternatives: add concept to node *)
  | Merge_branch of (int * int * int) list (* alternatives: (x, y, z) merge y into z *)
  | Generate of int * int * Alcqi.role * Alcqi.concept (* x, n, r, C *)
  | Done

let node_ids st = IMap.fold (fun x _ acc -> x :: acc) st.nodes [] |> List.rev

(* Absorption (lazy unfolding): axioms with an atomic left-hand side are
   applied only at nodes that carry the atom, instead of contributing a
   disjunction to every node's label.  [unfold] maps an atom to the
   concepts it implies; [global] holds the conjuncts of the internalized
   residue. *)
type ctx = { unfold : (string, Alcqi.concept list) Hashtbl.t; global : CSet.t }

let absorb tbox =
  let unfold : (string, Alcqi.concept list) Hashtbl.t = Hashtbl.create 32 in
  let add_unfold a d =
    let existing = Option.value ~default:[] (Hashtbl.find_opt unfold a) in
    if not (List.exists (Alcqi.equal d) existing) then Hashtbl.replace unfold a (d :: existing)
  in
  let residue = ref [] in
  let atoms_only cs =
    List.for_all (function Alcqi.Atom _ -> true | _ -> false) cs
  in
  List.iter
    (fun ax ->
      match ax with
      | Alcqi.Subsumption (Alcqi.Atom a, d) -> add_unfold a d
      | Alcqi.Subsumption (Alcqi.And cs, Alcqi.Bot) when atoms_only cs ->
        (* disjointness: each atom implies the negation of the others *)
        List.iter
          (fun c ->
            match c with
            | Alcqi.Atom a ->
              List.iter
                (fun c' ->
                  match c' with
                  | Alcqi.Atom b when b <> a -> add_unfold a (Alcqi.Neg b)
                  | _ -> ())
                cs
            | _ -> ())
          cs
      | Alcqi.Equivalence (Alcqi.Atom a, d) -> (
        add_unfold a d;
        (* the d [= a direction *)
        match d with
        | Alcqi.Bot -> ()
        | Alcqi.Atom b -> add_unfold b (Alcqi.Atom a)
        | Alcqi.Or cs when atoms_only cs ->
          List.iter
            (function Alcqi.Atom b -> add_unfold b (Alcqi.Atom a) | _ -> ())
            cs
        | _ -> residue := Alcqi.Subsumption (d, Alcqi.Atom a) :: !residue)
      | ax -> residue := ax :: !residue)
    tbox;
  let global =
    match Alcqi.internalize (List.rev !residue) with
    | Alcqi.And cs -> CSet.of_list cs
    | Alcqi.Top -> CSet.empty
    | c -> CSet.singleton c
  in
  { unfold; global }

(* A disjunct already contradicted at the literal level cannot be chosen. *)
let falsified labels = function
  | Alcqi.Bot -> true
  | Alcqi.Atom a -> CSet.mem (Alcqi.Neg a) labels
  | Alcqi.Neg a -> CSet.mem (Alcqi.Atom a) labels
  | _ -> false

let find_rule ctx st =
  let exception Found of rule_app in
  try
    let ids = node_ids st in
    (* 1. clash detection *)
    List.iter
      (fun x ->
        let nx = node st x in
        if CSet.mem Alcqi.Bot nx.labels then raise (Found Clash);
        CSet.iter
          (fun c ->
            match c with
            | Alcqi.Atom a -> if CSet.mem (Alcqi.Neg a) nx.labels then raise (Found Clash)
            | _ -> ())
          nx.labels)
      ids;
    (* 2. deterministic: conjunctions and lazy unfolding *)
    List.iter
      (fun x ->
        let nx = node st x in
        CSet.iter
          (fun c ->
            match c with
            | Alcqi.And cs ->
              let missing = List.filter (fun c -> not (CSet.mem c nx.labels)) cs in
              if missing <> [] then raise (Found (Add (x, missing)))
            | Alcqi.Atom a -> (
              match Hashtbl.find_opt ctx.unfold a with
              | Some ds ->
                let missing = List.filter (fun d -> not (CSet.mem d nx.labels)) ds in
                if missing <> [] then raise (Found (Add (x, missing)))
              | None -> ())
            | _ -> ())
          nx.labels)
      ids;
    (* 3. deterministic: universal propagation *)
    List.iter
      (fun x ->
        let nx = node st x in
        CSet.iter
          (fun c ->
            match c with
            | Alcqi.All (r, body) ->
              List.iter
                (fun y -> if not (has_label st y body) then raise (Found (Add (y, [ body ]))))
                (neighbors st x r)
            | _ -> ())
          nx.labels)
      ids;
    (* 4. disjunctions, with boolean constraint propagation: contradicted
       literal disjuncts are pruned; a single survivor is deterministic *)
    List.iter
      (fun x ->
        let nx = node st x in
        CSet.iter
          (fun c ->
            match c with
            | Alcqi.Or cs ->
              if not (List.exists (fun c -> CSet.mem c nx.labels) cs) then begin
                match List.filter (fun c -> not (falsified nx.labels c)) cs with
                | [] -> raise (Found Clash)
                | [ c ] -> raise (Found (Add (x, [ c ])))
                | alive -> raise (Found (Branch (List.map (fun c -> (x, c)) alive)))
              end
            | _ -> ())
          nx.labels)
      ids;
    (* 5. choose rule for <= restrictions.  Guard: if even counting every
       undecided neighbor as a witness cannot exceed the bound, the
       constraint can never fire and choosing is pointless (the model
       construction treats undecided as negative). *)
    List.iter
      (fun x ->
        let nx = node st x in
        CSet.iter
          (fun c ->
            match c with
            | Alcqi.At_most (n, r, body) ->
              let ns = neighbors st x r in
              let definite =
                List.length (List.filter (fun y -> has_label st y body) ns)
              in
              let undecided =
                List.filter
                  (fun y ->
                    (not (has_label st y body))
                    && not (has_label st y (Alcqi.neg body)))
                  ns
              in
              if definite + List.length undecided > n then
                List.iter
                  (fun y ->
                    (* negative choice first: it avoids feeding the
                       <=-rule's merge cascade, which is the expensive path *)
                    raise (Found (Branch [ (y, Alcqi.neg body); (y, body) ])))
                  undecided
            | _ -> ())
          nx.labels)
      ids;
    (* 6. <= rule: merge or clash *)
    List.iter
      (fun x ->
        let nx = node st x in
        CSet.iter
          (fun c ->
            match c with
            | Alcqi.At_most (n, r, body) ->
              let witnesses =
                List.filter (fun y -> has_label st y body) (neighbors st x r)
              in
              if List.length witnesses > n then begin
                (* collect mergeable pairs *)
                let pairs = ref [] in
                let rec go = function
                  | [] -> ()
                  | a :: rest ->
                    List.iter
                      (fun b ->
                        if not (neq st a b) then begin
                          (* orient: never merge away x's parent *)
                          let y, z =
                            if (node st x).parent = Some a then (b, a)
                            else if (node st x).parent = Some b then (a, b)
                            else (b, a)
                          in
                          pairs := (x, y, z) :: !pairs
                        end)
                      rest;
                    go rest
                in
                go witnesses;
                if !pairs = [] then raise (Found Clash)
                else raise (Found (Merge_branch (List.rev !pairs)))
              end
            | _ -> ())
          nx.labels)
      ids;
    (* 7. generating rule *)
    List.iter
      (fun x ->
        if not (blocked st x) then begin
          let nx = node st x in
          CSet.iter
            (fun c ->
              match c with
              | Alcqi.At_least (n, r, body) ->
                let witnesses =
                  List.filter (fun y -> has_label st y body) (neighbors st x r)
                in
                (* applicable unless there are n witnesses pairwise unequal *)
                let rec has_distinct k chosen = function
                  | _ when k = 0 -> true
                  | [] -> false
                  | y :: rest ->
                    (if List.for_all (fun z -> neq st y z) chosen then
                       has_distinct (k - 1) (y :: chosen) rest
                     else false)
                    || has_distinct k chosen rest
                in
                if not (has_distinct n [] witnesses) then
                  raise (Found (Generate (x, n, r, body)))
              | _ -> ())
            nx.labels
        end)
      ids;
    Done
  with Found r -> r

let fresh_node st ~parent ~roles ~labels =
  let id = st.next in
  let nd = { labels; parent = Some parent; succ_edges = IMap.empty } in
  let np = node st parent in
  let st =
    {
      st with
      next = id + 1;
      nodes =
        IMap.add id nd
          (IMap.add parent { np with succ_edges = IMap.add id roles np.succ_edges } st.nodes);
    }
  in
  (st, id)

let is_satisfiable ?(fuel = 200_000) ?(run = Governor.no_run) ~tbox c0 =
  let ctx = absorb tbox in
  let global_set = ctx.global in
  let fuel_left = ref fuel in
  let governed = Governor.active run in
  let rec expand st =
    decr fuel_left;
    if !fuel_left <= 0 then raise Fuel_exhausted;
    (* Deadline poll every 64 rule applications: cheap against the cost
       of a [find_rule] sweep, frequent enough that a 0 ms deadline
       aborts after a handful of applications. *)
    if governed && (!fuel_left land 63 = 0 || Governor.stopped run) && Governor.expired run
    then raise Budget_exhausted;
    match find_rule ctx st with
    | Clash -> false
    | Done -> true
    | Add (x, cs) -> expand (List.fold_left (fun st c -> add_label st x c) st cs)
    | Branch alternatives ->
      List.exists (fun (x, c) -> expand (add_label st x c)) alternatives
    | Merge_branch alternatives ->
      List.exists (fun (x, y, z) -> expand (merge st ~x ~y ~z)) alternatives
    | Generate (x, n, r, body) ->
      let labels = CSet.union global_set (CSet.singleton body) in
      let st, created =
        let rec go st acc k =
          if k = 0 then (st, acc)
          else begin
            let st, id = fresh_node st ~parent:x ~roles:(RSet.singleton r) ~labels in
            go st (id :: acc) (k - 1)
          end
        in
        go st [] n
      in
      (* pairwise inequality among the fresh successors *)
      let st =
        List.fold_left
          (fun st y -> List.fold_left (fun st z -> if y < z then add_neq st y z else st) st created)
          st created
      in
      expand st
  in
  let root_labels = CSet.union global_set (CSet.singleton c0) in
  let st0 =
    {
      nodes = IMap.singleton 0 { labels = root_labels; parent = None; succ_edges = IMap.empty };
      next = 1;
      neqs = PSet.empty;
    }
  in
  match expand st0 with
  | true -> Satisfiable
  | false -> Unsatisfiable
  | exception Fuel_exhausted -> Unknown (Printf.sprintf "fuel (%d) exhausted" fuel)
  | exception Budget_exhausted ->
    Unknown (Governor.exhausted_reason ^ " before the tableau closed")
