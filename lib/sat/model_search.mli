(** Finite witness construction for object-type satisfiability.

    A witness is a Property Graph that strongly satisfies the schema and
    contains a node of the queried object type — a constructive
    "satisfiable" verdict, which is also the artifact users want (a sample
    conforming instance).

    Two searches are provided:

    - {!greedy}: starts from a single node of the queried type and
      repeatedly repairs violations reported by the validator (adds
      required edges — preferring existing nodes with spare capacity over
      fresh ones — fills required properties with fresh distinct values,
      removes excess edges, separates key collisions).  Fast, incomplete;
      succeeds on the practical schemas of the paper's examples.
    - {!exhaustive}: enumerates all graphs up to [max_nodes] nodes over the
      justified edge candidates (properties are filled deterministically:
      required attributes get fresh distinct values, which is optimal
      because keys only ever forbid equality).  Complete up to the bound,
      exponential; for cross-checking on tiny schemas.

    Every search takes an optional governor [run] (default
    {!Pg_validation.Governor.no_run}) and polls its deadline at round /
    restart / candidate granularity; an expired run makes the search
    return [None] ("gave up"), which callers can distinguish from a
    genuine exhaustion via {!Pg_validation.Governor.expired}. *)

val greedy :
  ?max_nodes:int ->
  ?max_rounds:int ->
  ?restarts:int ->
  ?run:Pg_validation.Governor.run ->
  Pg_schema.Schema.t ->
  string ->
  Pg_graph.Property_graph.t option
(** Defaults: [max_nodes = 64], [max_rounds = 60], [restarts = 12].  The
    repair loop does not backtrack, so each restart shuffles the candidate
    orders (target types, source types) to explore a different witness
    shape.  A returned graph is re-checked with
    {!Pg_validation.Validate.conforms} before being returned, so [Some g]
    is always a true witness. *)

val repair :
  ?max_nodes:int ->
  ?max_rounds:int ->
  ?restarts:int ->
  ?run:Pg_validation.Governor.run ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Pg_graph.Property_graph.t option
(** Repair an existing graph into strong satisfaction: first a sanitation
    pass (remove unjustified nodes, edges and properties — SS1–SS4; replace
    ill-typed property values with fresh well-typed ones — WS1/WS2; drop
    wrongly-targeted edges — WS3), then the same repair loop as {!greedy}
    (add required edges and properties, remove excess edges, separate key
    collisions).  [None] when no conforming graph was reached within the
    bounds.  Repairs favour deletion for unjustified data and insertion for
    missing data; nodes are never relabelled. *)

val exhaustive :
  ?max_nodes:int ->
  ?max_edge_bits:int ->
  ?run:Pg_validation.Governor.run ->
  Pg_schema.Schema.t ->
  string ->
  Pg_graph.Property_graph.t option
(** Defaults: [max_nodes = 3], [max_edge_bits = 16] (edge-candidate sets
    larger than [max_edge_bits] for a node-labeling are skipped). *)

val fill_required_properties :
  Pg_schema.Schema.t -> Pg_graph.Property_graph.t -> Pg_graph.Property_graph.t
(** Give every node fresh, distinct values for all [@required] attribute
    fields of its type (and of the supertypes declaring constraints on
    it); exposed for the generators. *)
