(** Tableau decision procedure for ALCQI concept satisfiability with
    respect to a general TBox.

    The algorithm is the standard completion-tree calculus for description
    logics with qualified number restrictions and inverse roles:

    - the TBox is internalized ({!Alcqi.internalize}) and its conjuncts are
      added to the label of every node;
    - expansion rules: conjunction, disjunction (branching), universal
      propagation (also through inverse edges), the {e choose} rule for
      number restrictions, the [>=]-rule (generates fresh successors,
      pairwise unequal), and the [<=]-rule (merges two mergeable neighbors,
      branching over the choice of pair; merging into the predecessor when
      one of the pair is the predecessor, pruning the merged node's
      subtree);
    - ancestor pairwise blocking guards the generating rule, which gives
      termination in the presence of inverse roles and number
      restrictions;
    - clashes: [Bot], complementary atoms, and a [<= n] constraint whose
      excess neighbors are pairwise explicitly unequal.

    The search is a depth-first traversal of the nondeterministic choices
    with a fuel bound as a safety net ([Unknown] is returned only if fuel
    runs out, which does not happen on the paper's workloads), and an
    optional wall-clock budget on top of the fuel. *)

type verdict = Satisfiable | Unsatisfiable | Unknown of string

val is_satisfiable :
  ?fuel:int ->
  ?run:Pg_validation.Governor.run ->
  tbox:Alcqi.tbox ->
  Alcqi.concept ->
  verdict
(** Default fuel: 200_000 rule applications.  [run] (default
    {!Pg_validation.Governor.no_run}) adds a deadline/cancellation
    checkpoint every 64 rule applications; exhaustion yields
    [Unknown reason] with [reason] prefixed by
    {!Pg_validation.Governor.exhausted_reason} — never an exception. *)

val pp_verdict : Format.formatter -> verdict -> unit
