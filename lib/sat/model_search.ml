module Sm = Map.Make (String)
module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype
module Values_w = Pg_schema.Values_w
module Rules = Pg_validation.Rules
module Validate = Pg_validation.Validate
module Governor = Pg_validation.Governor

let object_subtypes sch t =
  List.filter
    (fun o -> Schema.type_kind sch o = Some Schema.Object)
    (Subtype.subtypes sch t)

(* Fresh values: distinct across calls (for keys), in values(t) by
   construction. *)
let fresh_atom sch counter base =
  incr counter;
  let k = !counter in
  match Schema.type_kind sch base with
  | Some Schema.Enum -> (
    match Sm.find_opt base sch.Schema.enums with
    | Some et when et.Schema.et_values <> [] ->
      Value.Enum (List.nth et.Schema.et_values (k mod List.length et.Schema.et_values))
    | Some _ | None -> Value.String (Printf.sprintf "v%d" k))
  | Some Schema.Scalar -> (
    match base with
    | "Int" -> Value.Int k
    | "Float" -> Value.Float (float_of_int k)
    | "String" -> Value.String (Printf.sprintf "v%d" k)
    | "Boolean" -> Value.Bool (k mod 2 = 0)
    | "ID" -> Value.Id (Printf.sprintf "id%d" k)
    | _ -> Value.String (Printf.sprintf "v%d" k))
  | Some _ | None -> Value.String (Printf.sprintf "v%d" k)

let fresh_value sch counter (wt : Wrapped.t) =
  let atom = fresh_atom sch counter (Wrapped.basetype wt) in
  if Wrapped.is_list wt then Value.List [ atom ] else atom

let required_attribute_constraints sch =
  List.filter
    (fun (fc : Rules.field_constraint) ->
      Rules.is_attribute_type sch fc.Rules.fd.Schema.fd_type)
    (Rules.constrained_fields sch ~directive:"required")

let fill_required_with sch counter g =
  let constraints = required_attribute_constraints sch in
  List.fold_left
    (fun g v ->
      let label = G.node_label g v in
      List.fold_left
        (fun g (fc : Rules.field_constraint) ->
          if
            Subtype.named sch label fc.Rules.owner
            && G.node_prop g v fc.Rules.field = None
          then begin
            (* use the node type's own field type when it refines the
               interface's *)
            let wt =
              match Schema.type_f sch label fc.Rules.field with
              | Some wt -> wt
              | None -> fc.Rules.fd.Schema.fd_type
            in
            G.set_node_prop g v fc.Rules.field (fresh_value sch counter wt)
          end
          else g)
        g constraints)
    g (G.nodes g)

let fill_required_properties sch g = fill_required_with sch (ref 0) g

(* Also fill mandatory edge properties: field arguments with non-null
   types.  These are outside the paper's formal rules, but filling them is
   free and keeps witnesses usable with the extension checks. *)

(* ---------------------------------------------------------------- *)
(* Greedy repair search.                                             *)

type repair_ctx = {
  sch : Schema.t;
  counter : int ref;
  max_nodes : int;
  rng : Random.State.t;
      (* candidate orders are shuffled per restart: greedy repair does not
         backtrack, so different orders explore different witness shapes *)
  required_rel : Rules.field_constraint list;
  required_tgt : Rules.field_constraint list;
  unique_tgt : Rules.field_constraint list;
  distinct : Rules.field_constraint list;
  no_loops : Rules.field_constraint list;
}

let shuffle rng l =
  List.map (fun x -> (Random.State.bits rng, x)) l
  |> List.sort compare |> List.map snd

let relationship_targets sch label f =
  match Schema.type_f sch label f with
  | Some wt when not (Rules.is_attribute_type sch wt) ->
    object_subtypes sch (Wrapped.basetype wt)
  | Some _ | None -> []

(* Can node [u] accept a new incoming (src, f) edge without violating
   @uniqueForTarget, and can [src] send it without violating @noLoops or
   @distinct? *)
let edge_ok ctx g src f u =
  let src_label = G.node_label g src and u_label = G.node_label g u in
  let no_loop_conflict =
    List.exists
      (fun (fc : Rules.field_constraint) ->
        String.equal fc.Rules.field f
        && Subtype.named ctx.sch src_label fc.Rules.owner
        && G.node_id src = G.node_id u)
      ctx.no_loops
  in
  let distinct_conflict =
    List.exists
      (fun (fc : Rules.field_constraint) ->
        String.equal fc.Rules.field f
        && Subtype.named ctx.sch src_label fc.Rules.owner
        && List.exists
             (fun e ->
               let _, tgt = G.edge_ends g e in
               String.equal (G.edge_label g e) f && G.node_id tgt = G.node_id u)
             (G.out_edges g src))
      ctx.distinct
  in
  let unique_conflict =
    List.exists
      (fun (fc : Rules.field_constraint) ->
        String.equal fc.Rules.field f
        && Subtype.named ctx.sch src_label fc.Rules.owner
        && Subtype.named ctx.sch u_label
             (Wrapped.basetype fc.Rules.fd.Schema.fd_type)
        && List.exists
             (fun e ->
               let s, _ = G.edge_ends g e in
               String.equal (G.edge_label g e) f
               && Subtype.named ctx.sch (G.node_label g s) fc.Rules.owner)
             (G.in_edges g u))
      ctx.unique_tgt
  in
  (* WS4 capacity of the source *)
  let capacity_conflict =
    match Schema.type_f ctx.sch src_label f with
    | Some wt when not (Wrapped.is_list wt) ->
      List.exists (fun e -> String.equal (G.edge_label g e) f) (G.out_edges g src)
    | Some _ | None -> false
  in
  (not no_loop_conflict) && (not distinct_conflict) && (not unique_conflict)
  && not capacity_conflict

let new_node ctx g label =
  if G.node_count g >= ctx.max_nodes then None
  else begin
    let g, v = G.add_node g ~label () in
    Some (fill_required_with ctx.sch ctx.counter g, v)
  end

(* One repair round; returns the updated graph and whether anything
   changed. *)
let repair_round ctx g =
  let changed = ref false in
  (* 1. remove excess edges: WS4 / @distinct / @uniqueForTarget / loops *)
  let g =
    List.fold_left
      (fun g e ->
        if not (G.mem_edge g e) then g
        else begin
          let v1, v2 = G.edge_ends g e in
          let f = G.edge_label g e in
          let label1 = G.node_label g v1 in
          let loop_violation =
            G.node_id v1 = G.node_id v2
            && List.exists
                 (fun (fc : Rules.field_constraint) ->
                   String.equal fc.Rules.field f
                   && Subtype.named ctx.sch label1 fc.Rules.owner)
                 ctx.no_loops
          in
          let ws4_violation =
            match Schema.type_f ctx.sch label1 f with
            | Some wt when not (Wrapped.is_list wt) ->
              List.exists
                (fun e' ->
                  G.edge_id e' < G.edge_id e && String.equal (G.edge_label g e') f)
                (G.out_edges g v1)
            | Some _ | None -> false
          in
          let distinct_violation =
            List.exists
              (fun (fc : Rules.field_constraint) ->
                String.equal fc.Rules.field f
                && Subtype.named ctx.sch label1 fc.Rules.owner
                && List.exists
                     (fun e' ->
                       G.edge_id e' < G.edge_id e
                       && String.equal (G.edge_label g e') f
                       &&
                       let _, tgt' = G.edge_ends g e' in
                       G.node_id tgt' = G.node_id v2)
                     (G.out_edges g v1))
              ctx.distinct
          in
          let unique_violation =
            List.exists
              (fun (fc : Rules.field_constraint) ->
                String.equal fc.Rules.field f
                && Subtype.named ctx.sch label1 fc.Rules.owner
                && List.exists
                     (fun e' ->
                       G.edge_id e' < G.edge_id e
                       && String.equal (G.edge_label g e') f
                       &&
                       let s', _ = G.edge_ends g e' in
                       Subtype.named ctx.sch (G.node_label g s') fc.Rules.owner)
                     (G.in_edges g v2))
              ctx.unique_tgt
          in
          if loop_violation || ws4_violation || distinct_violation || unique_violation
          then begin
            changed := true;
            G.remove_edge g e
          end
          else g
        end)
      g (G.edges g)
  in
  (* 2. add missing required outgoing edges (DS6) *)
  let g =
    List.fold_left
      (fun g v ->
        let label = G.node_label g v in
        List.fold_left
          (fun g (fc : Rules.field_constraint) ->
            if
              Subtype.named ctx.sch label fc.Rules.owner
              && Rules.is_attribute_type ctx.sch fc.Rules.fd.Schema.fd_type = false
              && not
                   (List.exists
                      (fun e -> String.equal (G.edge_label g e) fc.Rules.field)
                      (G.out_edges g v))
            then begin
              let targets =
                shuffle ctx.rng (relationship_targets ctx.sch label fc.Rules.field)
              in
              let existing =
                List.find_opt
                  (fun u ->
                    List.mem (G.node_label g u) targets && edge_ok ctx g v fc.Rules.field u)
                  (G.nodes g)
              in
              match existing with
              | Some u ->
                changed := true;
                fst (G.add_edge g ~label:fc.Rules.field v u)
              | None -> (
                (* create a fresh target of the first type that can accept
                   the edge *)
                let attempt target_label =
                  match new_node ctx g target_label with
                  | Some (g', u) when edge_ok ctx g' v fc.Rules.field u -> Some (g', u)
                  | Some _ | None -> None
                in
                match List.find_map attempt targets with
                | Some (g, u) ->
                  changed := true;
                  fst (G.add_edge g ~label:fc.Rules.field v u)
                | None -> g)
            end
            else g)
          g ctx.required_rel)
      g (G.nodes g)
  in
  (* 3. add missing required incoming edges (DS4) *)
  let g =
    List.fold_left
      (fun g v2 ->
        let label2 = G.node_label g v2 in
        List.fold_left
          (fun g (fc : Rules.field_constraint) ->
            let base = Wrapped.basetype fc.Rules.fd.Schema.fd_type in
            if
              Subtype.named ctx.sch label2 base
              && not
                   (List.exists
                      (fun e ->
                        String.equal (G.edge_label g e) fc.Rules.field
                        &&
                        let s, _ = G.edge_ends g e in
                        Subtype.named ctx.sch (G.node_label g s) fc.Rules.owner)
                      (G.in_edges g v2))
            then begin
              (* candidate source types: object subtypes of the owner whose
                 own field can target label2 *)
              let source_types =
                shuffle ctx.rng
                  (List.filter
                     (fun ot ->
                       List.mem label2 (relationship_targets ctx.sch ot fc.Rules.field))
                     (object_subtypes ctx.sch fc.Rules.owner))
              in
              let existing =
                List.find_opt
                  (fun u ->
                    List.mem (G.node_label g u) source_types
                    && edge_ok ctx g u fc.Rules.field v2)
                  (G.nodes g)
              in
              match existing with
              | Some u ->
                changed := true;
                fst (G.add_edge g ~label:fc.Rules.field u v2)
              | None -> (
                let attempt src_label =
                  match new_node ctx g src_label with
                  | Some (g', u) when edge_ok ctx g' u fc.Rules.field v2 -> Some (g', u)
                  | Some _ | None -> None
                in
                match List.find_map attempt source_types with
                | Some (g, u) ->
                  changed := true;
                  fst (G.add_edge g ~label:fc.Rules.field u v2)
                | None -> g)
            end
            else g)
          g ctx.required_tgt)
      g (G.nodes g)
  in
  (* 4. separate key collisions (DS7) *)
  let g =
    List.fold_left
      (fun g (owner, key_fields) ->
        let attribute_fields =
          List.filter
            (fun f ->
              match Schema.type_f ctx.sch owner f with
              | Some t -> Rules.is_attribute_type ctx.sch t
              | None -> false)
            key_fields
        in
        if attribute_fields = [] then g
        else begin
          let seen = Hashtbl.create 16 in
          List.fold_left
            (fun g v ->
              if Subtype.named ctx.sch (G.node_label g v) owner then begin
                let key =
                  String.concat "|"
                    (List.map
                       (fun f ->
                         match G.node_prop g v f with
                         | None -> "<none>"
                         | Some value -> Value.to_string value)
                       attribute_fields)
                in
                if Hashtbl.mem seen key then begin
                  changed := true;
                  (* give this node a fresh value on the first key field *)
                  let f = List.hd attribute_fields in
                  let wt =
                    match Schema.type_f ctx.sch (G.node_label g v) f with
                    | Some wt -> wt
                    | None -> Wrapped.Named "String"
                  in
                  G.set_node_prop g v f (fresh_value ctx.sch ctx.counter wt)
                end
                else begin
                  Hashtbl.add seen key ();
                  g
                end
              end
              else g)
            g (G.nodes g)
        end)
      g (Rules.key_constraints ctx.sch)
  in
  let g = fill_required_with ctx.sch ctx.counter g in
  (g, !changed)

let make_ctx sch ~max_nodes ~restart =
  {
    sch;
    counter = ref 0;
    max_nodes;
    rng = Random.State.make [| 0x5EED; restart |];
    required_rel =
      List.filter
        (fun (fc : Rules.field_constraint) ->
          not (Rules.is_attribute_type sch fc.Rules.fd.Schema.fd_type))
        (Rules.constrained_fields sch ~directive:"required");
    required_tgt = Rules.constrained_fields sch ~directive:"requiredForTarget";
    unique_tgt = Rules.constrained_fields sch ~directive:"uniqueForTarget";
    distinct = Rules.constrained_fields sch ~directive:"distinct";
    no_loops = Rules.constrained_fields sch ~directive:"noLoops";
  }

let repair_loop ?(run = Governor.no_run) ctx g max_rounds =
  let g = fill_required_with ctx.sch ctx.counter g in
  let rec loop g rounds =
    (* a repair round validates the whole candidate, so one deadline poll
       per round is proportionate; [None] under an expired run means
       "gave up", which the caller distinguishes via [Governor.expired] *)
    if Governor.expired run then None
    else if Validate.conforms ctx.sch g then Some g
    else if rounds = 0 then None
    else begin
      let g', changed = repair_round ctx g in
      if changed then loop g' (rounds - 1)
      else if Validate.conforms ctx.sch g' then Some g'
      else None
    end
  in
  loop g max_rounds

let with_restarts ?(run = Governor.no_run) restarts attempt =
  let rec go k =
    if k >= restarts || Governor.expired run then None
    else match attempt k with Some g -> Some g | None -> go (k + 1)
  in
  go 0

let greedy ?(max_nodes = 64) ?(max_rounds = 60) ?(restarts = 12) ?(run = Governor.no_run)
    sch query =
  match Schema.type_kind sch query with
  | Some Schema.Object ->
    with_restarts ~run restarts (fun restart ->
        let ctx = make_ctx sch ~max_nodes ~restart in
        let g, _ = G.add_node G.empty ~label:query () in
        repair_loop ~run ctx g max_rounds)
  | Some _ | None ->
    invalid_arg (Printf.sprintf "Model_search.greedy: %S is not an object type" query)

(* Sanitation for user-supplied graphs: resolve the "unjustified" and
   "ill-typed" violations (SS1-SS4, WS1-WS3) by deletion or value
   replacement, so that the repair loop only has to deal with the
   constraint rules. *)
let sanitize sch counter g =
  (* nodes with labels outside OT cannot be justified: drop them *)
  let g =
    List.fold_left
      (fun g v ->
        if Schema.type_kind sch (G.node_label g v) = Some Schema.Object then g
        else G.remove_node g v)
      g (G.nodes g)
  in
  (* edges: drop unjustified or wrongly-targeted ones; fix their props *)
  let g =
    List.fold_left
      (fun g e ->
        if not (G.mem_edge g e) then g
        else begin
          let v1, v2 = G.edge_ends g e in
          let src_label = G.node_label g v1 in
          let f = G.edge_label g e in
          match Schema.field sch src_label f with
          | Some fd
            when (match Schema.classify_field sch fd with
                 | Some Schema.Relationship -> true
                 | Some Schema.Attribute | None -> false)
                 && Subtype.named sch (G.node_label g v2)
                      (Wrapped.basetype fd.Schema.fd_type) ->
            (* justified edge: sanitize its properties *)
            List.fold_left
              (fun g (a, value) ->
                match Schema.arg_type sch src_label f a with
                | None -> G.remove_edge_prop g e a
                | Some wt ->
                  if Values_w.mem sch wt value then g
                  else G.set_edge_prop g e a (fresh_value sch counter wt))
              g (G.edge_props g e)
          | Some _ | None -> G.remove_edge g e
        end)
      g (G.edges g)
  in
  (* node properties: drop unjustified, replace ill-typed *)
  List.fold_left
    (fun g v ->
      let label = G.node_label g v in
      List.fold_left
        (fun g (p, value) ->
          match Schema.type_f sch label p with
          | Some wt when Rules.is_attribute_type sch wt ->
            if Values_w.mem sch wt value then g
            else G.set_node_prop g v p (fresh_value sch counter wt)
          | Some _ | None -> G.remove_node_prop g v p)
        g (G.node_props g v))
    g (G.nodes g)

let repair ?(max_nodes = 256) ?(max_rounds = 60) ?(restarts = 8) ?(run = Governor.no_run)
    sch g =
  with_restarts ~run restarts (fun restart ->
      let ctx = make_ctx sch ~max_nodes ~restart in
      let g = sanitize sch ctx.counter g in
      repair_loop ~run ctx g max_rounds)

(* ---------------------------------------------------------------- *)
(* Exhaustive bounded search.                                        *)

let exhaustive ?(max_nodes = 3) ?(max_edge_bits = 10) ?(run = Governor.no_run) sch query =
  match Schema.type_kind sch query with
  | Some Schema.Object ->
    let objects = Schema.object_names sch in
    let num_objects = List.length objects in
    let counter = ref 0 in
    let result = ref None in
    let try_labeling labels =
      if (!result = None && not (Governor.expired run)) && List.mem query labels then begin
        (* build base graph *)
        let g, nodes =
          List.fold_left
            (fun (g, nodes) label ->
              let g, v = G.add_node g ~label () in
              (g, v :: nodes))
            (G.empty, []) labels
        in
        let nodes = Array.of_list (List.rev nodes) in
        (* justified edge candidates *)
        let candidates = ref [] in
        Array.iter
          (fun u ->
            let u_label = G.node_label g u in
            List.iter
              (fun (f, (fd : Schema.field)) ->
                match Schema.classify_field sch fd with
                | Some Schema.Relationship ->
                  Array.iter
                    (fun v ->
                      if
                        Subtype.named sch (G.node_label g v)
                          (Wrapped.basetype fd.Schema.fd_type)
                      then candidates := (u, f, v) :: !candidates)
                    nodes
                | Some Schema.Attribute | None -> ())
              (Schema.fields sch u_label))
          nodes;
        let candidates = Array.of_list (List.rev !candidates) in
        let bits = Array.length candidates in
        if bits <= max_edge_bits then begin
          let limit = 1 lsl bits in
          let mask = ref 0 in
          while !result = None && !mask < limit && not (Governor.expired run) do
            let g_edges = ref g in
            Array.iteri
              (fun i (u, f, v) ->
                if !mask land (1 lsl i) <> 0 then
                  g_edges := fst (G.add_edge !g_edges ~label:f u v))
              candidates;
            counter := 0;
            let candidate = fill_required_with sch counter !g_edges in
            if Validate.conforms sch candidate then result := Some candidate;
            incr mask
          done
        end
      end
    in
    let rec labelings m acc =
      if !result <> None || Governor.stopped run then ()
      else if m = 0 then try_labeling (List.rev acc)
      else List.iter (fun label -> labelings (m - 1) (label :: acc)) objects
    in
    let m = ref 1 in
    while !result = None && !m <= max_nodes && num_objects > 0 && not (Governor.expired run)
    do
      labelings !m [];
      incr m
    done;
    !result
  | Some _ | None ->
    invalid_arg (Printf.sprintf "Model_search.exhaustive: %S is not an object type" query)
