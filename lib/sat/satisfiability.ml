module Schema = Pg_schema.Schema
module Governor = Pg_validation.Governor

type report = {
  alcqi : Tableau.verdict;
  finite : Tableau.verdict;
  witness : Pg_graph.Property_graph.t option;
}

(* Is this verdict an [Unknown] caused by budget exhaustion (as opposed
   to fuel exhaustion or a genuinely inconclusive engine)?  All
   budget-induced verdicts carry the {!Governor.exhausted_reason}
   prefix. *)
let verdict_exhausted = function
  | Tableau.Unknown reason ->
    let p = Governor.exhausted_reason in
    String.length reason >= String.length p
    && String.equal (String.sub reason 0 (String.length p)) p
  | Tableau.Satisfiable | Tableau.Unsatisfiable -> false

let budget_exhausted r = verdict_exhausted r.alcqi || verdict_exhausted r.finite

let unknown_exhausted phase =
  Tableau.Unknown (Printf.sprintf "%s during %s" Governor.exhausted_reason phase)

let check ?fuel ?(max_nodes = 64) ?(gov = Governor.unlimited) sch ot =
  if Schema.type_kind sch ot <> Some Schema.Object then
    invalid_arg (Printf.sprintf "Satisfiability.check: %S is not an object type" ot);
  let run = Governor.start gov in
  let tbox = Translate.tbox sch in
  let alcqi = Tableau.is_satisfiable ?fuel ~run ~tbox (Translate.concept_of_type ot) in
  match alcqi with
  | Tableau.Unsatisfiable ->
    (* no model at all, in particular no finite one *)
    { alcqi; finite = Tableau.Unsatisfiable; witness = None }
  | Tableau.Satisfiable | Tableau.Unknown _ -> (
    match Counting.check sch ot with
    | Counting.Infeasible -> { alcqi; finite = Tableau.Unsatisfiable; witness = None }
    | Counting.Feasible ->
      if Governor.expired run then
        { alcqi; finite = unknown_exhausted "witness search"; witness = None }
      else begin
        match Model_search.greedy ~max_nodes ~run sch ot with
        | Some g -> { alcqi; finite = Tableau.Satisfiable; witness = Some g }
        | None when Governor.expired run ->
          { alcqi; finite = unknown_exhausted "witness search"; witness = None }
        | None -> (
          (* the exhaustive fallback is exponential in the number of object
             types; only worth attempting on small schemas *)
          let exhaustive_result =
            if List.length (Schema.object_names sch) <= 4 then
              Model_search.exhaustive ~run sch ot
            else None
          in
          match exhaustive_result with
          | Some g -> { alcqi; finite = Tableau.Satisfiable; witness = Some g }
          | None when Governor.expired run ->
            { alcqi; finite = unknown_exhausted "witness search"; witness = None }
          | None ->
            {
              alcqi;
              finite = Tableau.Unknown "no witness found within bounds; counting feasible";
              witness = None;
            })
      end)

let satisfiable ?fuel ?max_nodes ?gov sch ot =
  (check ?fuel ?max_nodes ?gov sch ot).finite = Tableau.Satisfiable

(* Per-type time slicing: each remaining type gets an equal share of the
   time still on the clock, so one pathological type exhausts only its
   own slice and the later types still run (with progressively refreshed
   shares — a type that finishes early donates its leftover). *)
let check_all ?fuel ?max_nodes ?(gov = Governor.unlimited) sch =
  let names = Schema.object_names sch in
  match Governor.deadline_ms gov with
  | None -> List.map (fun ot -> (ot, check ?fuel ?max_nodes ~gov sch ot)) names
  | Some total_ms ->
    let deadline_abs = Unix.gettimeofday () +. (total_ms /. 1000.0) in
    let n = List.length names in
    List.mapi
      (fun i ot ->
        let remaining_ms =
          Float.max 0.0 ((deadline_abs -. Unix.gettimeofday ()) *. 1000.0)
        in
        let share = remaining_ms /. float_of_int (n - i) in
        (ot, check ?fuel ?max_nodes ~gov:(Governor.with_deadline_ms gov share) sch ot))
      names

let unsatisfiable_types ?fuel ?max_nodes ?gov sch =
  List.filter_map
    (fun (ot, report) ->
      if report.finite = Tableau.Unsatisfiable then Some ot else None)
    (check_all ?fuel ?max_nodes ?gov sch)

(* The report as unified diagnostics for one object type [ot] (the
   subject).  A clean satisfiable verdict produces none; budget-induced
   Unknowns are SAT004 (exit-code class: budget), genuine inconclusive
   Unknowns are SAT003 advisories. *)
let to_diagnostics ot r =
  let verdict_diags ~engine v =
    match v with
    | Tableau.Satisfiable -> []
    | Tableau.Unsatisfiable ->
      if String.equal engine "finite" then
        [
          Pg_diag.Diag.error ~code:"SAT001" ~subject:ot
            (Printf.sprintf "object type %S is finitely unsatisfiable: no finite Property \
                             Graph conforming to the schema contains a node of this type" ot);
        ]
      else
        [
          Pg_diag.Diag.error ~code:"SAT002" ~subject:ot
            (Printf.sprintf "object type %S is unsatisfiable over arbitrary models (ALCQI \
                             tableau, Theorem 3)" ot);
        ]
    | Tableau.Unknown reason ->
      if verdict_exhausted v then
        [
          Pg_diag.Diag.error ~code:"SAT004" ~subject:ot
            (Printf.sprintf "%s verdict for %S unknown: %s" engine ot reason);
        ]
      else
        [
          Pg_diag.Diag.warning ~code:"SAT003" ~subject:ot
            (Printf.sprintf "%s verdict for %S unknown: %s" engine ot reason);
        ]
  in
  verdict_diags ~engine:"ALCQI" r.alcqi @ verdict_diags ~engine:"finite" r.finite

let pp_report ppf r =
  Format.fprintf ppf "ALCQI (paper): %a; finite PG: %a%s" Tableau.pp_verdict r.alcqi
    Tableau.pp_verdict r.finite
    (match r.witness with
    | Some g -> Format.asprintf " (witness: %a)" Pg_graph.Property_graph.pp g
    | None -> "")
