(* Deterministic fault injection.  See fault.mli. *)

type site = Read | Write | Open | Rename | Fsync | Mmap | Accept

let site_index = function
  | Read -> 0
  | Write -> 1
  | Open -> 2
  | Rename -> 3
  | Fsync -> 4
  | Mmap -> 5
  | Accept -> 6

let n_sites = 7

type fault = Errno of Unix.error | Partial of int | Crash

type trigger = Always | Nth of int | Every of int | Prob of float

type target = Site of site | Point of string

type rule = {
  target : target;
  fault : fault;
  trigger : trigger;
  limit : int option;
  mutable id : int; (* assigned at plan creation; salts Prob hashing *)
  seen : int Atomic.t;
  fired : int Atomic.t;
}

let on ?(trigger = Always) ?limit site fault =
  {
    target = Site site;
    fault;
    trigger;
    limit;
    id = 0;
    seen = Atomic.make 0;
    fired = Atomic.make 0;
  }

let at ?(trigger = Always) ?(limit = 1) point =
  {
    target = Point point;
    fault = Crash;
    trigger;
    limit = Some limit;
    id = 0;
    seen = Atomic.make 0;
    fired = Atomic.make 0;
  }

type plan = {
  seed : int;
  rules : rule list;
  site_hits : int Atomic.t array;
  site_injected : int Atomic.t array;
}

let plan ?(seed = 0) rules =
  List.iteri (fun i r -> r.id <- i) rules;
  {
    seed;
    rules;
    site_hits = Array.init n_sites (fun _ -> Atomic.make 0);
    site_injected = Array.init n_sites (fun _ -> Atomic.make 0);
  }

let current : plan option Atomic.t = Atomic.make None
let activate p = Atomic.set current (Some p)
let deactivate () = Atomic.set current None
let active () = Atomic.get current <> None

let with_plan p f =
  let prev = Atomic.exchange current (Some p) in
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f

let hits p site = Atomic.get p.site_hits.(site_index site)
let injected p site = Atomic.get p.site_injected.(site_index site)
let crash_exit_code = 70

(* splitmix64 finalizer: [Prob] decisions are a pure hash of
   (seed, rule id, hit count), so a schedule replays from its seed. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let unit_float ~seed ~salt ~k =
  let open Int64 in
  let x =
    add (of_int seed) (mul 0x9e3779b97f4a7c15L (of_int ((salt * 1_000_003) + k)))
  in
  to_float (shift_right_logical (mix64 x) 11) *. (1. /. 9007199254740992.)

(* One hit of [rule] under [p]: bump the per-rule counter, decide the
   trigger, enforce the injection limit.  First firing rule wins. *)
let fire p rule =
  let k = 1 + Atomic.fetch_and_add rule.seen 1 in
  let due =
    match rule.trigger with
    | Always -> true
    | Nth n -> k = n
    | Every n -> n > 0 && k mod n = 0
    | Prob pr -> unit_float ~seed:p.seed ~salt:rule.id ~k < pr
  in
  if not due then None
  else
    match rule.limit with
    | None ->
      Atomic.incr rule.fired;
      Some rule.fault
    | Some lim ->
      if Atomic.get rule.fired >= lim then None
      else begin
        Atomic.incr rule.fired;
        Some rule.fault
      end

let check site =
  match Atomic.get current with
  | None -> None
  | Some p ->
    let i = site_index site in
    Atomic.incr p.site_hits.(i);
    let rec find = function
      | [] -> None
      | r :: rest -> (
        match r.target with
        | Site s when s = site -> (
          match fire p r with Some f -> Some f | None -> find rest)
        | _ -> find rest)
    in
    (match find p.rules with
    | Some f ->
      Atomic.incr p.site_injected.(i);
      Some f
    | None -> None)

(* No flushing, no at_exit: the process dies as abruptly as a power
   cut would kill it mid-write. *)
let crash () = Unix._exit crash_exit_code

let crash_point name =
  match Atomic.get current with
  | None -> ()
  | Some p ->
    List.iter
      (fun r ->
        match r.target with
        | Point n when String.equal n name -> (
          match fire p r with Some Crash -> crash () | _ -> ())
        | _ -> ())
      p.rules

(* Buffered channels surface errnos as the strerror(3) [Sys_error];
   fd-level ops raise [Unix_error].  Mirroring that split keeps every
   caller's existing handler (Retry.interrupted, Supervisor's
   transient classifier) exercising its real production arm. *)
let sys_error e = raise (Sys_error (Unix.error_message e))
let unix_error e fn arg = raise (Unix.Unix_error (e, fn, arg))
let cap len k = if len <= 0 then len else min len (max 1 k)

let input ic buf pos len =
  match check Read with
  | None -> Stdlib.input ic buf pos len
  | Some Crash -> crash ()
  | Some (Errno e) -> sys_error e
  | Some (Partial k) -> Stdlib.input ic buf pos (cap len k)

let read fd buf pos len =
  match check Read with
  | None -> Unix.read fd buf pos len
  | Some Crash -> crash ()
  | Some (Errno e) -> unix_error e "read" ""
  | Some (Partial k) -> Unix.read fd buf pos (cap len k)

let write fd buf pos len =
  match check Write with
  | None -> Unix.write fd buf pos len
  | Some Crash -> crash ()
  | Some (Errno e) -> unix_error e "write" ""
  | Some (Partial k) -> Unix.write fd buf pos (cap len k)

let open_in_bin path =
  match check Open with
  | None | Some (Partial _) -> Stdlib.open_in_bin path
  | Some Crash -> crash ()
  | Some (Errno e) -> raise (Sys_error (path ^ ": " ^ Unix.error_message e))

let openfile path flags perm =
  match check Open with
  | None | Some (Partial _) -> Unix.openfile path flags perm
  | Some Crash -> crash ()
  | Some (Errno e) -> unix_error e "open" path

let rename src dst =
  match check Rename with
  | None | Some (Partial _) -> Unix.rename src dst
  | Some Crash -> crash ()
  | Some (Errno e) -> unix_error e "rename" src

let fsync fd =
  match check Fsync with
  | None | Some (Partial _) -> Unix.fsync fd
  | Some Crash -> crash ()
  | Some (Errno e) -> unix_error e "fsync" ""

let map_file fd ?pos kind layout shared dims =
  match check Mmap with
  | None | Some (Partial _) -> Unix.map_file fd ?pos kind layout shared dims
  | Some Crash -> crash ()
  | Some (Errno e) -> unix_error e "mmap" ""

let accept ?cloexec fd =
  match check Accept with
  | None | Some (Partial _) -> Unix.accept ?cloexec fd
  | Some Crash -> crash ()
  | Some (Errno e) -> unix_error e "accept" ""

(* ---- GPGS_FAULT clause language ---------------------------------- *)

let site_of_string = function
  | "read" -> Some Read
  | "write" -> Some Write
  | "open" -> Some Open
  | "rename" -> Some Rename
  | "fsync" -> Some Fsync
  | "mmap" -> Some Mmap
  | "accept" -> Some Accept
  | _ -> None

let fault_of_string s =
  match s with
  | "eintr" -> Some (Errno Unix.EINTR)
  | "eagain" -> Some (Errno Unix.EAGAIN)
  | "eio" -> Some (Errno Unix.EIO)
  | "enospc" -> Some (Errno Unix.ENOSPC)
  | "emfile" -> Some (Errno Unix.EMFILE)
  | "epipe" -> Some (Errno Unix.EPIPE)
  | "crash" -> Some Crash
  | _ ->
    (match String.index_opt s '=' with
    | Some i when String.sub s 0 i = "partial" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some n when n > 0 -> Some (Partial n)
      | _ -> None)
    | _ -> None)

(* Split a site clause body into fault name, optional trigger suffix
   ([@N] nth / [%P] percent probability) and optional [xLIMIT]. *)
let parse_site_clause clause site_s body =
  match site_of_string site_s with
  | None -> Error (Printf.sprintf "unknown site %S in clause %S" site_s clause)
  | Some site ->
    let body, limit =
      match String.rindex_opt body 'x' with
      | Some i -> (
        match int_of_string_opt (String.sub body (i + 1) (String.length body - i - 1)) with
        | Some n when n > 0 -> (String.sub body 0 i, Some n)
        | _ -> (body, None))
      | None -> (body, None)
    in
    let split_at c =
      match String.rindex_opt body c with
      | Some i ->
        Some (String.sub body 0 i, String.sub body (i + 1) (String.length body - i - 1))
      | None -> None
    in
    let fault_s, trigger =
      match split_at '@' with
      | Some (f, n) -> (
        match int_of_string_opt n with
        | Some k when k > 0 -> (f, Ok (Nth k))
        | _ -> (f, Error (Printf.sprintf "bad @N trigger in clause %S" clause)))
      | None -> (
        match split_at '%' with
        | Some (f, pct) -> (
          match float_of_string_opt pct with
          | Some p when p >= 0. && p <= 100. -> (f, Ok (Prob (p /. 100.)))
          | _ -> (f, Error (Printf.sprintf "bad %%P trigger in clause %S" clause)))
        | None -> (body, Ok Always))
    in
    (match trigger with
    | Error _ as e -> e
    | Ok trigger -> (
      match fault_of_string fault_s with
      | None -> Error (Printf.sprintf "unknown fault %S in clause %S" fault_s clause)
      | Some fault -> Ok (on ~trigger ?limit site fault)))

let of_spec spec =
  let clauses =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go seed acc = function
    | [] -> Ok (plan ~seed (List.rev acc))
    | clause :: rest -> (
      match String.index_opt clause '=' with
      | Some i when String.sub clause 0 i = "seed" -> (
        match
          int_of_string_opt (String.sub clause (i + 1) (String.length clause - i - 1))
        with
        | Some s -> go s acc rest
        | None -> Error (Printf.sprintf "bad seed in clause %S" clause))
      | _ ->
        if String.length clause > 6 && String.sub clause 0 6 = "crash@" then
          let point = String.sub clause 6 (String.length clause - 6) in
          go seed (at point :: acc) rest
        else (
          match String.index_opt clause ':' with
          | None -> Error (Printf.sprintf "cannot parse clause %S" clause)
          | Some i -> (
            let site_s = String.sub clause 0 i in
            let body = String.sub clause (i + 1) (String.length clause - i - 1) in
            match parse_site_clause clause site_s body with
            | Ok r -> go seed (r :: acc) rest
            | Error _ as e -> e)))
  in
  if clauses = [] then Error "empty fault spec" else go 0 [] clauses

(* A typo'd plan must not silently pass through — that would make a
   chaos run vacuously green.  Parsed once, at first module use. *)
let () =
  match Sys.getenv_opt "GPGS_FAULT" with
  | None | Some "" -> ()
  | Some spec -> (
    match of_spec spec with
    | Ok p -> activate p
    | Error msg ->
      prerr_endline ("gpgs: invalid GPGS_FAULT: " ^ msg);
      exit 2)
