(** Deterministic, seeded fault injection for the I/O surface.

    Every syscall the codebase hardens against failure ({!Retry}'s EINTR
    loops, {!Chunked}'s short reads, {!Netio}'s EPIPE handling,
    {!Snapshot_io}'s mmap, the server's [accept]) funnels through the
    wrappers in this module.  In production the plane is inert: the only
    cost on the hot path is one [Atomic.get] and a branch, and with no
    plan installed every wrapper is the identity over the underlying
    primitive.  Under test, a {e plan} — a seeded list of rules — makes
    the wrappers fail deterministically: return [EINTR] on the third
    read, short every write to one byte, fail [accept] with [EMFILE]
    twice, or abort the process at a named {e crash point} placed at an
    exact write boundary.

    Determinism is the contract that makes chaos testing debuggable:
    a plan's behaviour is a pure function of its seed and the sequence
    of sites hit, so any failing schedule replays exactly from
    [GPGS_FAULT] or the seed printed by the chaos suite. *)

(** {1 Sites, faults, triggers} *)

type site = Read | Write | Open | Rename | Fsync | Mmap | Accept
(** The injectable syscall surface.  [Read]/[Write] cover both buffered
    channels and raw file descriptors; [Open] covers [open_in_bin] and
    [Unix.openfile]; the rest map 1:1 to the primitive of the same
    name. *)

type fault =
  | Errno of Unix.error
      (** Fail with this errno — surfaced as [Unix_error] from
          fd-level wrappers and as the strerror(3) [Sys_error] from
          buffered-channel wrappers, matching what the real kernel
          failure would look like to the caller. *)
  | Partial of int
      (** Transfer at most this many bytes (minimum 1) instead of the
          requested length.  Only meaningful on [Read]/[Write]; a
          no-op on other sites. *)
  | Crash
      (** Abort the process immediately with {!crash_exit_code} and no
          buffer flushing — simulates power loss / [kill -9] at this
          exact point. *)

type trigger =
  | Always  (** fire on every hit *)
  | Nth of int  (** fire on exactly the [n]-th hit of this rule (1-based) *)
  | Every of int  (** fire on every [n]-th hit *)
  | Prob of float
      (** fire with this probability, decided by a splitmix64 hash of
          (plan seed, rule id, hit count) — deterministic for a given
          seed. *)

type rule

val on : ?trigger:trigger -> ?limit:int -> site -> fault -> rule
(** Rule injecting [fault] at [site] when [trigger] (default [Always])
    fires, at most [limit] times in total (default unlimited). *)

val at : ?trigger:trigger -> ?limit:int -> string -> rule
(** Rule that crashes the process when the named {!crash_point} is
    reached and [trigger] fires.  [limit] defaults to [1] (a crash can
    only happen once anyway). *)

(** {1 Plans} *)

type plan

val plan : ?seed:int -> rule list -> plan
(** A fresh plan with zeroed counters.  Rules are consulted in order;
    the first one that fires wins.  [seed] (default 0) feeds [Prob]
    triggers. *)

val activate : plan -> unit
(** Install [plan] globally (replacing any active plan). *)

val deactivate : unit -> unit
(** Remove the active plan; all wrappers become passthrough again. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Run the thunk with [plan] active, restoring the previously active
    plan (or passthrough) afterwards, on both return and raise. *)

val active : unit -> bool
(** [true] iff a plan is installed. *)

val hits : plan -> site -> int
(** How many times any wrapper for [site] was entered while [plan] was
    active. *)

val injected : plan -> site -> int
(** How many of those hits actually had a fault injected. *)

val crash_exit_code : int
(** Exit status used by [Crash] faults and crash points: 70
    (BSD [EX_SOFTWARE]), distinct from every CLI exit class. *)

(** {1 Crash points} *)

val crash_point : string -> unit
(** Declare a named crash point.  Free when no plan is active; aborts
    the process via [Unix._exit crash_exit_code] when the active plan
    has a firing [at] rule for this name.  Writers place these at the
    exact boundaries whose atomicity they claim (see
    {!Durable.crash_points}). *)

(** {1 The syscall surface}

    Drop-in replacements for the underlying primitives.  With no plan
    active each is exactly the primitive it names; with a plan active
    the matching site's rules are consulted first.  Injected errnos are
    surfaced the way the real failure would be: buffered-channel
    wrappers raise the strerror(3) [Sys_error], fd-level wrappers raise
    [Unix_error] — so callers' production handlers are what gets
    exercised. *)

val input : in_channel -> bytes -> int -> int -> int
(** [Stdlib.input] through site [Read]. *)

val read : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read] through site [Read]. *)

val write : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.write] through site [Write]. *)

val open_in_bin : string -> in_channel
(** [Stdlib.open_in_bin] through site [Open]. *)

val openfile : string -> Unix.open_flag list -> Unix.file_perm -> Unix.file_descr
(** [Unix.openfile] through site [Open]. *)

val rename : string -> string -> unit
(** [Unix.rename] through site [Rename]. *)

val fsync : Unix.file_descr -> unit
(** [Unix.fsync] through site [Fsync]. *)

val map_file :
  Unix.file_descr ->
  ?pos:int64 ->
  ('a, 'b) Bigarray.kind ->
  'c Bigarray.layout ->
  bool ->
  int array ->
  ('a, 'b, 'c) Bigarray.Genarray.t
(** [Unix.map_file] through site [Mmap]. *)

val accept : ?cloexec:bool -> Unix.file_descr -> Unix.file_descr * Unix.sockaddr
(** [Unix.accept] through site [Accept]. *)

(** {1 Environment spec}

    [GPGS_FAULT] installs a plan at program start — the hook that lets
    the crash-point matrix drive a real [gpgs] child process.  The spec
    is [;]-separated clauses:

    - [seed=N] — plan seed;
    - [crash@POINT] — crash once at the named point;
    - [SITE:FAULT(@N | %P)?(xLIMIT)?] — e.g. [read:eintr@3] (EINTR on
      the 3rd read), [write:partial=1%5] (short writes to 1 byte with
      probability 5%), [accept:emfilex2] (EMFILE on the first two
      accepts).  Sites: [read write open rename fsync mmap accept];
      faults: [eintr eagain eio enospc emfile epipe crash partial=N].

    A malformed spec prints the error and exits 2 before any work
    happens — silently ignoring a typo'd fault plan would make a chaos
    run vacuously green. *)

val of_spec : string -> (plan, string) result
(** Parse the [GPGS_FAULT] clause language. *)
