module Sm = Map.Make (String)
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Q = Query_ast

exception Unsupported of string

(* The schema tooling should see: the API-extended one when the extension
   applies, the schema itself otherwise. *)
let extended_schema sch =
  match Pg_schema.Api_extension.extend sch with
  | Error _ -> sch
  | Ok doc -> (
    match Pg_schema.Of_ast.build doc with Ok (sch', _) -> sch' | Error _ -> sch)

(* introspection type references *)
type tref = TNamed of string | TList of tref | TNonNull of tref

let tref_of_wrapped (wt : Wrapped.t) =
  match wt with
  | Wrapped.Named t -> TNamed t
  | Wrapped.Non_null t -> TNonNull (TNamed t)
  | Wrapped.List { item; item_non_null; non_null } ->
    let inner = if item_non_null then TNonNull (TNamed item) else TNamed item in
    let l = TList inner in
    if non_null then TNonNull l else l

(* ------------------------------------------------------------------ *)
(* A tiny object evaluator: each "object" is a field-name -> resolver
   table; unknown fields resolve to Null so newer clients degrade. *)

type obj = string -> Q.selection list -> Json.t

let rec eval (o : obj) (selections : Q.selection list) : Json.t =
  (* accumulated in reverse (cons, not append): [List.mem_assoc] does the
     first-key-wins dedup either way, and one final [List.rev] restores
     selection order *)
  let fields =
    List.fold_left
      (fun acc sel ->
        match sel with
        | Q.Field f ->
          let key = Q.response_key f in
          if List.mem_assoc key acc then acc else (key, o f.Q.f_name f.Q.f_selection) :: acc
        | Q.Inline_fragment { if_selection; _ } -> (
          match eval o if_selection with
          | Json.Assoc inner ->
            List.fold_left
              (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
              acc inner
          | _ -> acc)
        | Q.Fragment_spread { fs_name; _ } ->
          raise
            (Unsupported
               (Printf.sprintf "named fragment %S in an introspection selection" fs_name)))
      [] selections
  in
  Json.Assoc (List.rev fields)

let obj_field o sels = eval o sels

(* ------------------------------------------------------------------ *)

let kind_of sch name =
  match Schema.type_kind sch name with
  | Some Schema.Object -> "OBJECT"
  | Some Schema.Interface -> "INTERFACE"
  | Some Schema.Union -> "UNION"
  | Some Schema.Enum -> "ENUM"
  | Some Schema.Scalar -> "SCALAR"
  | None -> "SCALAR"

let description_of sch name =
  let opt = function Some d -> Json.String d | None -> Json.Null in
  match Schema.type_kind sch name with
  | Some Schema.Object -> opt (Sm.find name sch.Schema.objects).Schema.ot_description
  | Some Schema.Interface -> opt (Sm.find name sch.Schema.interfaces).Schema.it_description
  | Some Schema.Union -> opt (Sm.find name sch.Schema.unions).Schema.ut_description
  | Some Schema.Enum -> opt (Sm.find name sch.Schema.enums).Schema.et_description
  | Some Schema.Scalar -> opt (Sm.find name sch.Schema.scalars).Schema.sc_description
  | None -> Json.Null

let rec type_obj sch (t : tref) : obj =
 fun field sels ->
  match t, field with
  | _, "__typename" -> Json.String "__Type"
  | TNamed n, "kind" -> Json.String (kind_of sch n)
  | TList _, "kind" -> Json.String "LIST"
  | TNonNull _, "kind" -> Json.String "NON_NULL"
  | TNamed n, "name" -> Json.String n
  | (TList _ | TNonNull _), "name" -> Json.Null
  | TNamed n, "description" -> description_of sch n
  | (TList inner | TNonNull inner), "ofType" -> obj_field (type_obj sch inner) sels
  | TNamed _, "ofType" -> Json.Null
  | TNamed n, "fields" -> (
    match Schema.type_kind sch n with
    | Some (Schema.Object | Schema.Interface) ->
      Json.List
        (List.map (fun (f_name, fd) -> eval (field_obj sch f_name fd) sels) (Schema.fields sch n))
    | _ -> Json.Null)
  | TNamed n, "interfaces" -> (
    match Schema.type_kind sch n with
    | Some Schema.Object ->
      let ot = Sm.find n sch.Schema.objects in
      Json.List
        (List.map (fun i -> obj_field (type_obj sch (TNamed i)) sels) ot.Schema.ot_interfaces)
    | _ -> Json.Null)
  | TNamed n, "possibleTypes" -> (
    match Schema.type_kind sch n with
    | Some Schema.Interface ->
      Json.List
        (List.map
           (fun i -> obj_field (type_obj sch (TNamed i)) sels)
           (Schema.implementations_of sch n))
    | Some Schema.Union ->
      Json.List
        (List.map (fun i -> obj_field (type_obj sch (TNamed i)) sels) (Schema.union_members sch n))
    | _ -> Json.Null)
  | TNamed n, "enumValues" -> (
    match Sm.find_opt n sch.Schema.enums with
    | Some et ->
      Json.List
        (List.map
           (fun v ->
             eval
               (fun field _ ->
                 match field with
                 | "name" -> Json.String v
                 | "isDeprecated" -> Json.Bool false
                 | _ -> Json.Null)
               sels)
           et.Schema.et_values)
    | None -> Json.Null)
  | (TList _ | TNonNull _), ("fields" | "interfaces" | "possibleTypes" | "enumValues") ->
    Json.Null
  | _, "inputFields" -> Json.Null
  | _, _ -> Json.Null

and field_obj sch f_name (fd : Schema.field) : obj =
 fun field sels ->
  match field with
  | "__typename" -> Json.String "__Field"
  | "name" -> Json.String f_name
  | "description" -> (
    match fd.Schema.fd_description with Some d -> Json.String d | None -> Json.Null)
  | "args" ->
    Json.List
      (List.map (fun (a_name, arg) -> eval (input_value_obj sch a_name arg) sels) fd.Schema.fd_args)
  | "type" -> obj_field (type_obj sch (tref_of_wrapped fd.Schema.fd_type)) sels
  | "isDeprecated" -> Json.Bool (Schema.has_directive fd.Schema.fd_directives "deprecated")
  | _ -> Json.Null

and input_value_obj sch a_name (arg : Schema.argument) : obj =
 fun field sels ->
  match field with
  | "__typename" -> Json.String "__InputValue"
  | "name" -> Json.String a_name
  | "type" -> obj_field (type_obj sch (tref_of_wrapped arg.Schema.arg_type)) sels
  | "defaultValue" -> (
    match arg.Schema.arg_default with
    | Some v -> Json.String (Pg_sdl.Printer.value_to_string v)
    | None -> Json.Null)
  | _ -> Json.Null

let directive_obj sch d_name (dd : Schema.directive_def) : obj =
 fun field sels ->
  match field with
  | "__typename" -> Json.String "__Directive"
  | "name" -> Json.String d_name
  | "locations" ->
    Json.List
      (List.map
         (fun l -> Json.String (Pg_sdl.Ast.directive_location_name l))
         dd.Schema.dd_locations)
  | "args" ->
    Json.List
      (List.map (fun (a_name, arg) -> eval (input_value_obj sch a_name arg) sels) dd.Schema.dd_args)
  | _ -> Json.Null

let all_type_names sch =
  Schema.object_names sch @ Schema.interface_names sch @ Schema.union_names sch
  @ Schema.enum_names sch @ Schema.scalar_names sch

let schema_obj sch : obj =
 fun field sels ->
  match field with
  | "__typename" -> Json.String "__Schema"
  | "queryType" ->
    if Schema.mem_type sch "Query" then obj_field (type_obj sch (TNamed "Query")) sels
    else Json.Null
  | "mutationType" | "subscriptionType" -> Json.Null
  | "types" ->
    Json.List (List.map (fun n -> obj_field (type_obj sch (TNamed n)) sels) (all_type_names sch))
  | "directives" ->
    Json.List
      (Sm.fold
         (fun d_name dd acc -> eval (directive_obj sch d_name dd) sels :: acc)
         sch.Schema.directive_defs []
      |> List.rev)
  | _ -> Json.Null

let schema_field sch selections =
  let sch = extended_schema sch in
  try Ok (eval (schema_obj sch) selections) with Unsupported msg -> Error msg

let type_field sch ~name selections =
  let sch = extended_schema sch in
  if not (Schema.mem_type sch name) then Ok Json.Null
  else try Ok (eval (type_obj sch (TNamed name)) selections) with Unsupported msg -> Error msg
