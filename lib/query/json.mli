(** Alias of {!Pg_json.Json}, the shared JSON representation.  Kept here
    so [Pg_query.Json] remains a valid path; new code should use
    {!Pg_json.Json} directly. *)

include module type of struct
  include Pg_json.Json
end
