(* [Json] now lives in the shared [pg_json] library so that layers below
   the query engine (notably [pg_diag]'s machine-readable diagnostics
   renderer) can use it without a dependency cycle.  This alias keeps
   [Pg_query.Json] working for existing consumers. *)
include Pg_json.Json
