(** The validation daemon: accept loop, worker pool, graceful drain.

    [run] binds the address, spawns a bounded pool of OCaml 5 domains,
    and serves connections until the stop flag rises (the [gpgs serve]
    command wires it to SIGTERM/SIGINT).  Robustness properties, each
    pinned by a fault-injection test:

    - a connection beyond [workers] running + [max_pending] queued is
      shed with an [SRV004] envelope, never silently dropped;
    - an oversized or garbage frame costs one error envelope ([SRV002] /
      [SRV001]), not the daemon (garbage keeps the connection, oversized
      closes it — there is no frame boundary to resynchronise to);
    - a crashing job is confined to its request ([SRV005]) by the
      supervisor firewall inside {!Service};
    - SIGPIPE is ignored process-wide, so a client that disconnects
      mid-response costs one failed write;
    - descriptor exhaustion ([EMFILE]/[ENFILE]) on [accept] backs the
      loop off with an escalating sleep instead of killing the
      listener — capacity returns when workers close connections;
    - a watchdog rides the accept loop: any budgeted request still
      running [watchdog_grace_ms] past its own deadline is cancelled
      through its governor and reports [SRV006];
    - drain: stop accepting, let in-flight requests finish within
      [drain_grace_ms], then cancel the still-running budgeted jobs and
      join every worker.  [run] returning normally {e is} the clean
      drain (the CLI then exits 0). *)

type address =
  | Unix_socket of string  (** path; unlinked on bind and again on drain *)
  | Tcp of string * int  (** host, port; port [0] picks an ephemeral one *)

type config = {
  address : address;
  workers : int;  (** worker domains; each owns one connection at a time *)
  max_pending : int;  (** accepted connections waiting for a worker *)
  max_request_bytes : int;  (** frame size limit (SRV002 beyond it) *)
  read_timeout_ms : float;  (** idle-connection cutoff; the socket is closed *)
  drain_grace_ms : float;  (** how long a drain waits before cancelling jobs *)
  watchdog_grace_ms : float;
      (** slack past a request's own deadline before the watchdog
          cancels it as wedged (SRV006) *)
}

val default_config : address -> config
(** 4 workers, 16 pending, 1 MiB frames, 30 s read timeout, 2 s drain
    grace, 10 s watchdog grace. *)

val run : ?stop:bool Atomic.t -> ?on_ready:(address -> unit) -> config -> Service.t -> unit
(** Serve until [stop] becomes true, then drain and return.  The accept
    loop runs in the calling domain.  [on_ready] fires once the socket
    is listening, with the resolved address (the actual port when the
    config said [0]) — tests and the CLI ready line use it.

    @raise Invalid_argument on a non-positive worker count or negative
    limits; [Unix.Unix_error] from the initial bind/listen propagates
    (a busy port is a startup error, not a request fault). *)
