(** Request execution for the validation daemon.

    One {!t} is shared by every worker domain.  It owns the compiled
    artefact caches (plans and snapshots, content-addressed — see
    {!Cache}) and the request counters, and turns one request line into
    one response line.

    The acceptance contract: a served [validate] response is the same
    JSON document [gpgs validate --format json] prints for the
    equivalent invocation, compact-rendered.  To keep that exact — an
    {e active} budget changes the report's scan counters — a request
    with no budget of its own (and no server default) runs under the
    inert [Governor.make ()] and cannot be cancelled; only budgeted
    requests can be cut short.  Each budgeted request owns a private
    cancellation flag and registers in a job table, through which the
    server's drain ({!cancel_inflight}) and the watchdog
    ({!watchdog_sweep}) cancel it — never through a flag shared across
    requests, so cancelling one wedged job leaves its neighbours
    running. *)

type config = {
  plan_capacity : int;  (** LRU capacity of the compiled-plan cache *)
  snapshot_capacity : int;  (** LRU capacity of the loaded-snapshot cache *)
  default_deadline_ms : float option;
      (** budget applied to requests that carry none; when it cuts a run
          short the response gains an [SRV003] diagnostic *)
  default_max_violations : int option;
  retries : int;
      (** supervisor retries per request (transient failures only);
          crashes always become [SRV005], never a dead worker *)
  debug_ops : bool;
      (** honour the fault-injection ops [boom] / [sleep] / [stall] *)
}

val default_config : config
(** 16-entry caches, no default budget, no retries, no debug ops. *)

type t

val create : ?config:config -> unit -> t

val handle : t -> ?cancel:bool Atomic.t -> string -> string
(** Execute one request line and return the response line (terminating
    newline included).  Never raises: malformed requests become [SRV001]
    envelopes and anything a job throws is caught by the supervisor
    firewall and reported as [SRV005].  [cancel] is the server's drain
    flag; budgeted requests re-check it when they register, so a
    request starting mid-drain stops at its first checkpoint. *)

val watchdog_sweep : t -> grace_ms:float -> int
(** Cancel every registered job still running [grace_ms] past its own
    deadline.  A cancelled job's response gains an [SRV006] diagnostic.
    Returns the number of jobs cancelled by this sweep.  The server's
    accept loop calls this periodically; it is cheap when nothing is
    wedged (one mutex and a scan of the in-flight jobs). *)

val cancel_inflight : t -> unit
(** Cancel every registered in-flight job — the drain's lever, replacing
    a flag shared across requests. *)

val set_probe : t -> (unit -> (string * Graphql_pg.Json.t) list) -> unit
(** Install the host probe whose fields are appended to the [health]
    summary (queue depth, workers, accept backoffs, drain state — what
    only the accept loop can see). *)

val in_flight_jobs : t -> int
(** Registered (budgeted) jobs currently executing. *)

val watchdog_cancelled : t -> int
(** Total jobs ever cancelled by {!watchdog_sweep}. *)

val shed_response : t -> string
(** Count one load-shed and return the [SRV004] envelope line the
    acceptor writes before closing an over-capacity connection. *)

val oversized_response : t -> string
(** The [SRV002] envelope line for a frame that exceeded the size limit
    (the connection is unrecoverable and must be closed after it). *)

val plan_stats : t -> Cache.stats
val snapshot_stats : t -> Cache.stats
val requests_served : t -> int
