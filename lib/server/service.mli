(** Request execution for the validation daemon.

    One {!t} is shared by every worker domain.  It owns the compiled
    artefact caches (plans and snapshots, content-addressed — see
    {!Cache}) and the request counters, and turns one request line into
    one response line.

    The acceptance contract: a served [validate] response is the same
    JSON document [gpgs validate --format json] prints for the
    equivalent invocation, compact-rendered.  To keep that exact — an
    {e active} budget changes the report's scan counters — a request
    with no budget of its own (and no server default) runs under the
    inert [Governor.make ()], not under the drain-cancellation flag;
    only budgeted requests attach [cancel] and can be cut short by a
    drain deadline. *)

type config = {
  plan_capacity : int;  (** LRU capacity of the compiled-plan cache *)
  snapshot_capacity : int;  (** LRU capacity of the loaded-snapshot cache *)
  default_deadline_ms : float option;
      (** budget applied to requests that carry none; when it cuts a run
          short the response gains an [SRV003] diagnostic *)
  default_max_violations : int option;
  retries : int;
      (** supervisor retries per request (transient failures only);
          crashes always become [SRV005], never a dead worker *)
  debug_ops : bool;  (** honour the fault-injection ops [boom] / [sleep] *)
}

val default_config : config
(** 16-entry caches, no default budget, no retries, no debug ops. *)

type t

val create : ?config:config -> unit -> t

val handle : t -> ?cancel:bool Atomic.t -> string -> string
(** Execute one request line and return the response line (terminating
    newline included).  Never raises: malformed requests become [SRV001]
    envelopes and anything a job throws is caught by the supervisor
    firewall and reported as [SRV005].  [cancel] is the server's drain
    flag; it is attached to the governor of budgeted requests only. *)

val shed_response : t -> string
(** Count one load-shed and return the [SRV004] envelope line the
    acceptor writes before closing an over-capacity connection. *)

val oversized_response : t -> string
(** The [SRV002] envelope line for a frame that exceeded the size limit
    (the connection is unrecoverable and must be closed after it). *)

val plan_stats : t -> Cache.stats
val snapshot_stats : t -> Cache.stats
val requests_served : t -> int
