(* Content-addressed LRU cache (see cache.mli for the contract).

   The recency order is a simple logical clock stamped on each hit;
   eviction scans for the minimum stamp.  Capacities here are tens of
   entries (schemas and snapshots an operator actually serves), so the
   O(n) scan is noise next to the plan compile it avoids.

   Lookup cost: the steady-state hit is one [stat].  The stat check
   (size + mtime + inode) is only trusted for entries whose last digest
   check postdates the file's mtime by [racy_margin_s] — inside that
   window a rewrite can land within the filesystem's timestamp
   granularity without moving the stat (the classic racily-clean
   problem) — so freshly written files keep being digest-verified
   (incrementally, via [Digest.file]; the bytes are never slurped for
   this) until the write has aged, after which lookups stop reading the
   file at all. *)

module Retry = Graphql_pg.Retry

type 'a entry = { value : 'a; lock : Mutex.t; digest : string; uid : int }

type meta = {
  mutable stamp : int;  (* logical recency for LRU *)
  mutable size : int;
  mutable mtime : float;
  mutable ino : int;
  mutable verified_at : float;  (* wall clock of the last digest check *)
}

(* A key resolves to a built entry or to a latch: [Building] marks a
   lookup running [load] outside the cache mutex; concurrent lookups of
   that key wait on [resolved] instead of building a duplicate. *)
type 'a slot = Ready of 'a entry * meta | Building

type 'a t = {
  capacity : int;
  table : (string, 'a slot) Hashtbl.t;
  m : Mutex.t;
  resolved : Condition.t;
  mutable clock : int;
  mutable next_uid : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type stats = { hits : int; misses : int; evictions : int; invalidations : int; size : int }

let racy_margin_s = 1.0

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    m = Mutex.create ();
    resolved = Condition.create ();
    clock = 0;
    next_uid = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let stat_file path =
  match Retry.syscall (fun () -> Unix.stat path) with
  | st -> Ok st
  | exception Unix.Unix_error (e, _, _) -> Error (path ^ ": " ^ Unix.error_message e)

let digest_file path =
  match Retry.syscall (fun () -> Digest.file path) with
  | d -> Ok (Digest.to_hex d)
  | exception Sys_error msg -> Error msg

(* Forced only by loaders that want the bytes (schema parsing); a
   snapshot loader reads its file through [Snapshot_io] instead and the
   string is never built. *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let buf = Bytes.create n in
      Retry.really_input ic buf 0 n;
      Bytes.unsafe_to_string buf)

let touch t meta =
  t.clock <- t.clock + 1;
  meta.stamp <- t.clock

let refresh_meta (meta : meta) (st : Unix.stats) =
  meta.size <- st.Unix.st_size;
  meta.mtime <- st.Unix.st_mtime;
  meta.ino <- st.Unix.st_ino;
  meta.verified_at <- Unix.gettimeofday ()

(* Ready slots only: a latch is a lookup in progress, not a value. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match slot with
        | Building -> acc
        | Ready (_, meta) -> (
          match acc with
          | Some (_, best) when best <= meta.stamp -> acc
          | _ -> Some (key, meta.stamp)))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1

let stat_matches (meta : meta) (st : Unix.stats) =
  meta.size = st.Unix.st_size
  && meta.mtime = st.Unix.st_mtime
  && meta.ino = st.Unix.st_ino
  && meta.mtime +. racy_margin_s <= meta.verified_at

let find t ~key ~path ~load =
  match stat_file path with
  | Error _ as e -> e
  | Ok st -> (
    let claim =
      Mutex.protect t.m (fun () ->
        let rec await () =
          match Hashtbl.find_opt t.table key with
          | Some Building ->
            Condition.wait t.resolved t.m;
            await ()
          | Some (Ready (entry, meta)) when stat_matches meta st ->
            t.hits <- t.hits + 1;
            touch t meta;
            `Hit entry
          | prior ->
            (* Claim the (re)build: the latch keeps other lookups of
               this key parked while the digest and load run unlocked. *)
            Hashtbl.replace t.table key Building;
            `Build (match prior with Some (Ready (e, m)) -> Some (e, m) | _ -> None)
        in
        await ())
    in
    (* Resolve the latch under the mutex and wake the parked lookups;
       every exit path below must go through one of these. *)
    let resolve slot =
      Mutex.protect t.m (fun () ->
        (match slot with
        | None -> Hashtbl.remove t.table key
        | Some s -> Hashtbl.replace t.table key s);
        Condition.broadcast t.resolved)
    in
    match claim with
    | `Hit entry -> Ok entry
    | `Build prior -> (
      match digest_file path with
      | Error _ as e ->
        (* The file became unreadable, which is not evidence that it
           changed: keep any prior entry for when it comes back. *)
        resolve (Option.map (fun (e, m) -> Ready (e, m)) prior);
        e
      | Ok digest -> (
        match prior with
        | Some (entry, meta) when String.equal entry.digest digest ->
          (* The stat moved but the bytes did not (a rewrite-in-place,
             or a write still inside the racy window): revalidate the
             resident value instead of rebuilding it. *)
          Mutex.protect t.m (fun () ->
            t.hits <- t.hits + 1;
            touch t meta;
            refresh_meta meta st;
            Hashtbl.replace t.table key (Ready (entry, meta));
            Condition.broadcast t.resolved);
          Ok entry
        | _ ->
          let note_rebuild () =
            if Option.is_some prior then t.invalidations <- t.invalidations + 1;
            t.misses <- t.misses + 1
          in
          let content = lazy (read_file path) in
          let value =
            try load ~content
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              (* The stale prior (if any) described bytes that no longer
                 exist; it must not outlive the failed rebuild. *)
              Mutex.protect t.m (fun () ->
                note_rebuild ();
                Hashtbl.remove t.table key;
                Condition.broadcast t.resolved);
              Printexc.raise_with_backtrace e bt
          in
          Mutex.protect t.m (fun () ->
            note_rebuild ();
            let uid = t.next_uid in
            t.next_uid <- t.next_uid + 1;
            let entry = { value; lock = Mutex.create (); digest; uid } in
            let meta = { stamp = 0; size = 0; mtime = 0.; ino = 0; verified_at = 0. } in
            touch t meta;
            refresh_meta meta st;
            Hashtbl.replace t.table key (Ready (entry, meta));
            if Hashtbl.length t.table > t.capacity then evict_lru t;
            Condition.broadcast t.resolved;
            Ok entry))))

let stats t =
  Mutex.protect t.m (fun () ->
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      invalidations = t.invalidations;
      size = Hashtbl.length t.table;
    })

let keys t =
  Mutex.protect t.m (fun () ->
    Hashtbl.fold
      (fun key slot acc -> match slot with Ready _ -> key :: acc | Building -> acc)
      t.table []
    |> List.sort String.compare)
