(* Content-addressed LRU cache (see cache.mli for the contract).

   The recency order is a simple logical clock stamped on each hit;
   eviction scans for the minimum stamp.  Capacities here are tens of
   entries (schemas and snapshots an operator actually serves), so the
   O(n) scan is noise next to the plan compile it avoids. *)

module Retry = Graphql_pg.Retry

type 'a entry = { value : 'a; lock : Mutex.t; digest : string }

type slot_meta = { mutable stamp : int }

type 'a t = {
  capacity : int;
  table : (string, 'a entry * slot_meta) Hashtbl.t;
  m : Mutex.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type stats = { hits : int; misses : int; evictions : int; invalidations : int; size : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    m = Mutex.create ();
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        let buf = Bytes.create n in
        Retry.really_input ic buf 0 n;
        Ok (Bytes.unsafe_to_string buf))

let touch t meta =
  t.clock <- t.clock + 1;
  meta.stamp <- t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key (_, meta) acc ->
        match acc with
        | Some (_, best) when best <= meta.stamp -> acc
        | _ -> Some (key, meta.stamp))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1

let insert t key entry =
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  let meta = { stamp = 0 } in
  touch t meta;
  Hashtbl.replace t.table key (entry, meta)

let find t ~key ~path ~load =
  match read_file path with
  | Error msg -> Error msg
  | Ok content ->
    let digest = Digest.to_hex (Digest.string content) in
    Mutex.protect t.m (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some (entry, meta) when String.equal entry.digest digest ->
        t.hits <- t.hits + 1;
        touch t meta;
        Ok entry
      | stale ->
        if Option.is_some stale then begin
          (* The file changed under us: the cached artefact describes
             bytes that no longer exist.  Drop it before rebuilding so a
             [load] failure cannot leave the stale value resident. *)
          t.invalidations <- t.invalidations + 1;
          Hashtbl.remove t.table key
        end;
        t.misses <- t.misses + 1;
        let entry = { value = load ~content; lock = Mutex.create (); digest } in
        insert t key entry;
        Ok entry)

let stats t =
  Mutex.protect t.m (fun () ->
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      invalidations = t.invalidations;
      size = Hashtbl.length t.table;
    })
