(* The daemon loop (see server.mli for the contract).

   Shape: the calling domain accepts; [workers] domains each pull one
   accepted connection at a time from a bounded queue and serve it to
   EOF.  All blocking waits — accept, frame reads, the queue condition —
   either poll the stop flag or are woken by the drain broadcast, so no
   part of the server can sleep through a shutdown. *)

module Fault = Graphql_pg.Fault
module Json = Graphql_pg.Json

type address = Unix_socket of string | Tcp of string * int

type config = {
  address : address;
  workers : int;
  max_pending : int;
  max_request_bytes : int;
  read_timeout_ms : float;
  drain_grace_ms : float;
  watchdog_grace_ms : float;
}

let default_config address =
  {
    address;
    workers = 4;
    max_pending = 16;
    max_request_bytes = 1 lsl 20;
    read_timeout_ms = 30_000.;
    drain_grace_ms = 2_000.;
    watchdog_grace_ms = 10_000.;
  }

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | exception Not_found -> invalid_arg (Printf.sprintf "cannot resolve host %S" host)
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ -> invalid_arg (Printf.sprintf "cannot resolve host %S" host))

(* Bind, listen, and report the resolved address (an ephemeral TCP port
   becomes concrete here). *)
let listen_on address =
  match address with
  | Unix_socket path ->
    (* A stale socket file from a crashed predecessor would make bind
       fail; replacing it is the conventional contract for unix-socket
       daemons. *)
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 128
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    (fd, address)
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
       Unix.listen fd 128
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let port =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
    in
    (fd, Tcp (host, port))

let run ?(stop = Atomic.make false) ?on_ready config service =
  if config.workers < 1 then invalid_arg "Server.run: workers must be at least 1";
  if config.max_pending < 0 then invalid_arg "Server.run: max_pending must be non-negative";
  if config.max_request_bytes < 1 then invalid_arg "Server.run: max_request_bytes must be positive";
  if config.read_timeout_ms <= 0. then invalid_arg "Server.run: read_timeout_ms must be positive";
  if config.drain_grace_ms < 0. then invalid_arg "Server.run: drain_grace_ms must be non-negative";
  if config.watchdog_grace_ms < 0. then
    invalid_arg "Server.run: watchdog_grace_ms must be non-negative";
  (* A client that disconnects while a worker is writing its response
     must cost an EPIPE error value, not a fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let lfd, resolved = listen_on config.address in
  (* Drain-cancellation flag shared by every budgeted governor. *)
  let cancel = Atomic.make false in
  let queue : Unix.file_descr Queue.t = Queue.create () in
  let qm = Mutex.create () in
  let qc = Condition.create () in
  (* Guarded by [qm], and only ever changed in the same critical
     sections that move connections: the drain wait below must never
     observe a connection that is neither queued nor counted. *)
  let in_flight = ref 0 in
  let should_stop () = Atomic.get stop in
  let accept_backoffs = Atomic.make 0 in
  let draining = Atomic.make false in
  let last_drain = Atomic.make "never" in
  (* What only this loop can see, appended to the [health] summary. *)
  Service.set_probe service (fun () ->
    let queue_depth, inflight =
      Mutex.protect qm (fun () -> (Queue.length queue, !in_flight))
    in
    [
      ("queue_depth", Json.Int queue_depth);
      ("in_flight", Json.Int inflight);
      ("workers", Json.Int config.workers);
      ("accept_backoffs", Json.Int (Atomic.get accept_backoffs));
      ("draining", Json.Bool (Atomic.get draining));
      ("last_drain", Json.String (Atomic.get last_drain));
    ]);

  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> () in

  let serve_connection fd =
    let conn = Netio.conn fd in
    let timeout_s = config.read_timeout_ms /. 1000. in
    let rec loop () =
      match
        Netio.read_frame ~max_bytes:config.max_request_bytes ~timeout_s ~should_stop conn
      with
      | Netio.Frame line -> (
        let response = Service.handle service ~cancel line in
        match Netio.write_frame fd response with
        | Ok () -> if should_stop () then () else loop ()
        | Error _ -> () (* peer is gone; nothing left to say *))
      | Netio.Oversized ->
        (* Report, then close: past an oversized frame there is no way
           to find the next frame boundary. *)
        ignore (Netio.write_frame fd (Service.oversized_response service))
      | Netio.Eof | Netio.Timeout | Netio.Stopped | Netio.Failed _ -> ()
    in
    (* The service never raises, but a worker domain dying would
       silently shrink the pool — keep the belt and the braces. *)
    (try loop () with _ -> ());
    close_quietly fd
  in

  let rec worker () =
    let job =
      Mutex.protect qm (fun () ->
        let rec await () =
          if Atomic.get stop then None
          else
            match Queue.take_opt queue with
            | Some fd ->
              (* Counted in the critical section that dequeues: a
                 connection leaving the queue is in flight in the same
                 instant, so the drain wait cannot slip between the two
                 and cancel a just-picked-up request without grace. *)
              incr in_flight;
              Some fd
            | None ->
              Condition.wait qc qm;
              await ()
        in
        await ())
    in
    match job with
    | None -> ()
    | Some fd ->
      serve_connection fd;
      Mutex.protect qm (fun () -> decr in_flight);
      worker ()
  in
  let domains = List.init config.workers (fun _ -> Domain.spawn worker) in
  Option.iter (fun f -> f resolved) on_ready;

  (* ---- accept loop (calling domain) ---- *)
  (* Descriptor-exhaustion backoff: EMFILE/ENFILE (and kernel buffer
     exhaustion) are load conditions, not listener defects.  Dying here
     would turn "too many clients" into "no server"; instead sleep an
     escalating beat — workers finishing requests close descriptors,
     so capacity returns on its own.  The delay resets on the first
     successful accept. *)
  let accept_delay = ref 0.05 in
  let accept_one () =
    match Unix.select [ lfd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
      match Fault.accept ~cloexec:true lfd with
      | exception
          Unix.Unix_error
            ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception
          Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM), _, _)
        ->
        Atomic.incr accept_backoffs;
        Unix.sleepf !accept_delay;
        accept_delay := Float.min (!accept_delay *. 2.) 1.0
      | cfd, _ ->
        accept_delay := 0.05;
        let enqueued =
          Mutex.protect qm (fun () ->
            if Queue.length queue >= config.max_pending then false
            else begin
              Queue.add cfd queue;
              Condition.signal qc;
              true
            end)
        in
        if not enqueued then begin
          (* Load shedding: tell the client explicitly (SRV004) instead
             of letting it time out against a silent close. *)
          ignore (Netio.write_frame cfd (Service.shed_response service));
          close_quietly cfd
        end)
  in
  while not (Atomic.get stop) do
    accept_one ();
    (* Watchdog beat: rides the accept loop's ≤200 ms cadence, so a
       wedged request is cancelled within a beat of exceeding
       deadline + grace. *)
    ignore (Service.watchdog_sweep service ~grace_ms:config.watchdog_grace_ms)
  done;

  (* ---- graceful drain ---- *)
  Atomic.set draining true;
  let drain_started = Unix.gettimeofday () in
  close_quietly lfd;
  (match resolved with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  (* Wake idle workers; they observe [stop] and exit. *)
  Mutex.protect qm (fun () -> Condition.broadcast qc);
  (* Give in-flight requests the grace window... *)
  let deadline = Unix.gettimeofday () +. (config.drain_grace_ms /. 1000.) in
  while Mutex.protect qm (fun () -> !in_flight > 0) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  (* ...then cut the budgeted ones loose at their next governor
     checkpoint: set the flag first (a job registering from now on
     self-cancels), then cancel every already-registered job through
     the registry.  (An unbudgeted job runs under the inert governor
     for byte-parity and is waited for: correctness of delivered
     responses over drain latency.) *)
  Atomic.set cancel true;
  Service.cancel_inflight service;
  List.iter Domain.join domains;
  (* Connections accepted but never picked up: close them; their clients
     see EOF rather than a hung socket. *)
  Mutex.protect qm (fun () ->
    Queue.iter close_quietly queue;
    Queue.clear queue);
  Atomic.set last_drain
    (Printf.sprintf "completed in %.0fms"
       ((Unix.gettimeofday () -. drain_started) *. 1000.));
  Atomic.set draining false
