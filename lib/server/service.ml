(* Request execution (see service.mli for the contract).

   The validate path below is a line-for-line mirror of the validate
   subcommand in bin/gpgs.ml: same usage checks with the same CLI001
   messages, same load order, same envelope fields — the byte-parity
   tests in test_server.ml compare served responses against actual CLI
   runs, so any divergence here is a test failure, not a judgement
   call.  Where the CLI calls [die] (which exits), this module builds
   the same envelope the CLI's json mode would have printed and keeps
   going. *)

module GP = Graphql_pg
module Json = GP.Json

type config = {
  plan_capacity : int;
  snapshot_capacity : int;
  default_deadline_ms : float option;
  default_max_violations : int option;
  retries : int;
  debug_ops : bool;
}

let default_config =
  {
    plan_capacity = 16;
    snapshot_capacity = 16;
    default_deadline_ms = None;
    default_max_violations = None;
    retries = 0;
    debug_ops = false;
  }

(* One in-flight deadlined request, as the watchdog sees it.  Jobs with
   no deadline are not registered: their governor is the inert
   [Governor.make ()] (byte-parity contract) and cannot be cancelled,
   and "wedged" is only defined relative to a deadline anyway. *)
type job = {
  j_started : float;
  j_deadline_ms : float;
  j_gov : GP.Governor.t;
  mutable j_wedged : bool;
}

type t = {
  cfg : config;
  plans : (GP.Plan.t, GP.Diag.t list) result Cache.t;
  snapshots : (GP.Snapshot.t, GP.Diag.t list) result Cache.t;
  requests : int Atomic.t;
  crashes : int Atomic.t;
  shed : int Atomic.t;
  started_at : float;
  watchdog_cancels : int Atomic.t;
  jobs_lock : Mutex.t;
  jobs : (int, job) Hashtbl.t;
  next_job : int Atomic.t;
  (* host-installed extra health fields (queue depth, worker count...):
     the service cannot see the server's queue, so the server injects a
     probe at startup *)
  probe : (unit -> (string * Json.t) list) Atomic.t;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    plans = Cache.create ~capacity:config.plan_capacity;
    snapshots = Cache.create ~capacity:config.snapshot_capacity;
    requests = Atomic.make 0;
    crashes = Atomic.make 0;
    shed = Atomic.make 0;
    started_at = Unix.gettimeofday ();
    watchdog_cancels = Atomic.make 0;
    jobs_lock = Mutex.create ();
    jobs = Hashtbl.create 16;
    next_job = Atomic.make 0;
    probe = Atomic.make (fun () -> []);
  }

let set_probe t f = Atomic.set t.probe f

(* Run [f] registered as a job visible to {!watchdog_sweep} and
   {!cancel_inflight}; returns [f]'s value and whether the watchdog
   cancelled the job while it ran.  Jobs without a deadline register
   with an infinite one: the drain can still cancel them, the watchdog
   never fires on them.  [drain] is the server's drain flag — re-checked
   after registration so a job that starts while the drain is already
   cancelling (and so was missed by {!cancel_inflight}'s sweep) still
   stops at its first checkpoint. *)
let with_job t ~drain ~deadline_ms ~gov f =
  let id = Atomic.fetch_and_add t.next_job 1 in
  let job =
    {
      j_started = Unix.gettimeofday ();
      j_deadline_ms = Option.value deadline_ms ~default:Float.infinity;
      j_gov = gov;
      j_wedged = false;
    }
  in
  Mutex.protect t.jobs_lock (fun () -> Hashtbl.replace t.jobs id job);
  (match drain with
  | Some c when Atomic.get c -> GP.Governor.cancel gov
  | _ -> ());
  let v =
    Fun.protect
      ~finally:(fun () -> Mutex.protect t.jobs_lock (fun () -> Hashtbl.remove t.jobs id))
      f
  in
  (v, job.j_wedged)

(* Drain support: cancel every registered in-flight job (each holds its
   own cancellation flag — the watchdog and the drain never touch a
   flag shared across requests). *)
let cancel_inflight t =
  Mutex.protect t.jobs_lock (fun () ->
    Hashtbl.iter (fun _ job -> GP.Governor.cancel job.j_gov) t.jobs)

let in_flight_jobs t = Mutex.protect t.jobs_lock (fun () -> Hashtbl.length t.jobs)

(* The watchdog: cancel (via the governor, so the engine stops at its
   next cooperative checkpoint) every registered job that has run past
   its own deadline plus [grace_ms].  A healthy deadlined job stops
   itself at the deadline; one that is still running [grace_ms] later is
   wedged — stuck in a non-polling loop or a blocked syscall the budget
   cannot see.  Returns how many jobs were cancelled by this sweep. *)
let watchdog_sweep t ~grace_ms =
  let now = Unix.gettimeofday () in
  Mutex.protect t.jobs_lock (fun () ->
    Hashtbl.fold
      (fun _ job n ->
        if
          (not job.j_wedged)
          && now > job.j_started +. ((job.j_deadline_ms +. grace_ms) /. 1000.)
        then begin
          job.j_wedged <- true;
          GP.Governor.cancel job.j_gov;
          Atomic.incr t.watchdog_cancels;
          n + 1
        end
        else n)
      t.jobs 0)

let watchdog_cancelled t = Atomic.get t.watchdog_cancels

let plan_stats t = Cache.stats t.plans
let snapshot_stats t = Cache.stats t.snapshots
let requests_served t = Atomic.get t.requests

(* ---- envelopes ---- *)

let render_envelope ~command ?summary ?cls diags =
  Protocol.render (GP.Diag_report.envelope ~command ?summary ?cls diags)

let srv_error ~command ~code ?subject ?cls message =
  render_envelope ~command ?cls [ GP.Diag.error ~code ?subject message ]

let malformed msg = srv_error ~command:"serve" ~code:"SRV001" ("malformed request frame: " ^ msg)

let oversized_response _t =
  srv_error ~command:"serve" ~code:"SRV002" "request frame exceeds the server's size limit"

let shed_response t =
  Atomic.incr t.shed;
  srv_error ~command:"serve" ~code:"SRV004"
    "server overloaded; the request was shed before execution"

(* ---- supervision ---- *)

(* Every job runs under the supervisor, even with retries disabled: the
   firewall (catch, classify, report) is what keeps a crashing engine
   from taking the worker domain down.  [retries] only adds attempts
   for transient failures. *)
let supervised t job =
  GP.Supervisor.supervise ~policy:(GP.Supervisor.policy ~retries:(max 0 t.cfg.retries) ()) job

let crash_response t ~command ~subject (crash : GP.Supervisor.crash) =
  Atomic.incr t.crashes;
  srv_error ~command ~code:"SRV005" ~subject
    (Printf.sprintf "%s: validation job crashed after %d attempt(s): %s" subject
       crash.GP.Supervisor.crash_attempts crash.GP.Supervisor.crash_exn)

(* ---- validate ---- *)

exception Reply of string
(* Internal short-circuit standing in for the CLI's [die]: carry the
   finished response out of the deep end of the validate pipeline. *)

let reply_error ~code ?subject ?cls message =
  raise (Reply (srv_error ~command:"validate" ~code ?subject ?cls message))

(* The CLI's [die] defaults to Input_error even when the diagnostics
   (e.g. consistency findings) would classify lower, so the explicit
   class here is part of the parity contract. *)
let reply_diags diags =
  raise (Reply (render_envelope ~command:"validate" ~cls:GP.Diag.Exit.Input_error diags))

let usage msg = reply_error ~code:"CLI001" ~cls:GP.Diag.Exit.Input_error msg

(* Mirror of check_counts in bin/gpgs.ml, CLI001 messages included. *)
let check_counts ~engine ~domains ~shards =
  (match domains with
  | Some d when d < 1 -> usage (Printf.sprintf "--domains must be at least 1 (got %d)" d)
  | _ -> ());
  (match shards with
  | Some s when s < 1 -> usage (Printf.sprintf "--shards must be at least 1 (got %d)" s)
  | _ -> ());
  if shards <> None && engine <> GP.Validate.Sharded then
    usage "--shards applies to --engine sharded only"

(* One cached compiled plan per (frontend, schema path, leniency).  The
   frontend and the leniency flag both change what parse_full accepts,
   so they are part of the key; the file content digest handles edits to
   the schema itself.  Keys read [<lang>:<strict|lenient>:<path>] — the
   stats op parses them back for its per-entry report. *)
let plan_key ~lang ~lenient path =
  Printf.sprintf "%s:%s:%s" (GP.Frontend.to_string lang)
    (if lenient then "lenient" else "strict")
    path

let plan_entry t ?lang ~lenient path =
  let lang = GP.Frontend.select ?lang ~path () in
  let key = plan_key ~lang ~lenient path in
  Cache.find t.plans ~key ~path ~load:(fun ~content ->
    match GP.Frontend.parse_full ~consistency:(not lenient) lang (Lazy.force content) with
    | Ok (sch, _warnings) -> Ok (GP.Plan.of_schema sch)
    | Error diags -> Error diags)

(* Snapshots intern labels into the symtab of the exact plan instance
   that loads them, so a cached snapshot is only valid against that one
   compiled plan value.  The key is the plan entry's uid — unique per
   build — never the schema content digest: the lenient and strict
   plans for one schema, and successive recompiles after an eviction,
   share a digest while holding different symtabs, and crossing them
   makes the kernels render violations through a symtab that lacks (or
   differently assigns) the snapshot's interned ids.  Callers hold the
   plan entry's lock. *)
let snapshot_entry t ~plan_uid ~symtab path =
  let key = string_of_int plan_uid ^ ":" ^ path in
  Cache.find t.snapshots ~key ~path ~load:(fun ~content:_ ->
    match GP.Snapshot_io.load symtab path with
    | Ok snap -> Ok snap
    | Error e -> Error [ GP.Diag.error ~code:e.GP.Snapshot_io.code e.GP.Snapshot_io.message ])

let run_validate t ~cancel (r : Protocol.validate_req) =
  let engine = r.engine and mode = r.mode in
  check_counts ~engine ~domains:r.domains ~shards:r.shards;
  (* Plan lookup / compile.  An unreadable schema file is the one spot
     with no CLI envelope to mirror (cmdliner rejects the path before
     the subcommand runs); IO001 is the natural code for it. *)
  let plan_slot =
    match plan_entry t ?lang:r.schema_lang ~lenient:r.lenient r.schema with
    | Ok slot -> slot
    | Error msg -> reply_error ~code:"IO001" ~cls:GP.Diag.Exit.Input_error (r.schema ^ ": " ^ msg)
  in
  let plan =
    match plan_slot.Cache.value with Ok plan -> plan | Error diags -> reply_diags diags
  in
  (* Budget: the request's own flags win; the server defaults fill in
     for absent ones.  An unbudgeted request runs under the inert
     governor — attaching even just the drain [cancel] flag would
     switch the report's scan counters to the budgeted accounting and
     break byte-parity with the unbudgeted CLI. *)
  let deadline_ms, imposed_deadline =
    match (r.deadline_ms, t.cfg.default_deadline_ms) with
    | (Some _ as d), _ -> (d, false)
    | None, (Some _ as d) -> (d, true)
    | None, None -> (None, false)
  in
  let max_violations =
    match r.max_violations with Some _ as m -> m | None -> t.cfg.default_max_violations
  in
  (* Budgeted requests get a private cancellation flag (never the
     server's shared drain flag: the watchdog cancels one wedged job by
     [Governor.cancel], and on a shared flag that would cancel every
     in-flight request).  The drain reaches budgeted jobs through the
     job registry instead — see [with_job] / [cancel_inflight]. *)
  let budgeted = deadline_ms <> None || max_violations <> None in
  let gov =
    if budgeted then
      GP.Governor.make ?deadline_ms ?max_violations ~cancel:(Atomic.make false) ()
    else GP.Governor.make ()
  in
  (* Parsing the graph text is plan-independent, so it runs outside the
     plan entry's lock and concurrent requests for one schema only
     serialize on the freeze + kernel phase below (plan reuse is
     sequential-only: freezing interns labels into the plan's symtab). *)
  let graph =
    if r.snapshot then None
    else
      match GP.Pgf.load r.graph with
      | Ok g -> Some g
      | Error e ->
        reply_diags [ GP.Diag.error ~code:"IO001" (Format.asprintf "%a" GP.Pgf.pp_error e) ]
  in
  Mutex.protect plan_slot.Cache.lock (fun () ->
    let check =
      if r.snapshot then begin
        if engine = GP.Validate.Naive then
          usage
            "--engine naive validates the source graph text; use linear, indexed, \
             parallel, or sharded with --snapshot";
        if engine = GP.Validate.Sharded then
          (* Out-of-core: the mapped handle holds a file descriptor, so
             it is opened per attempt (retry-safe) rather than cached,
             and closed before the response goes out. *)
          fun () ->
            let md =
              match GP.Snapshot_io.open_mapped (GP.Plan.symtab plan) r.graph with
              | Ok md -> md
              | Error e ->
                reply_error ~code:e.GP.Snapshot_io.code ~cls:GP.Diag.Exit.Input_error
                  e.GP.Snapshot_io.message
            in
            Fun.protect
              ~finally:(fun () -> GP.Snapshot_io.close_mapped md)
              (fun () ->
                match GP.Validate.check_mapped ~mode ?shards:r.shards ~gov plan md with
                | Ok report -> report
                | Error e ->
                  reply_error ~code:e.GP.Snapshot_io.code ~cls:GP.Diag.Exit.Input_error
                    e.GP.Snapshot_io.message)
        else begin
          let snap =
            match
              snapshot_entry t ~plan_uid:plan_slot.Cache.uid ~symtab:(GP.Plan.symtab plan)
                r.graph
            with
            | Ok { Cache.value = Ok snap; _ } -> snap
            | Ok { Cache.value = Error diags; _ } -> reply_diags diags
            | Error msg ->
              reply_error ~code:"IO001" ~cls:GP.Diag.Exit.Input_error (r.graph ^ ": " ^ msg)
          in
          fun () -> GP.Validate.check_snapshot ~engine ~mode ?domains:r.domains ~gov plan snap
        end
      end
      else begin
        let g = Option.get graph in
        fun () ->
          GP.Validate.check_compiled ~engine ~mode ?domains:r.domains ?shards:r.shards ~gov plan g
      end
    in
    (* [Reply] must tunnel through the supervisor (it is the finished
       response, not a crash), so the job wraps it into a result. *)
    let job () = try Ok (check ()) with Reply resp -> Error resp in
    let outcome, wedged =
      if budgeted then with_job t ~drain:cancel ~deadline_ms ~gov (fun () -> supervised t job)
      else (supervised t job, false)
    in
    match outcome with
    | GP.Supervisor.Done (Error resp, _attempts) -> resp
    | GP.Supervisor.Done (Ok report, _attempts) ->
      let diags = GP.Validate.diagnostics report in
      let diags =
        if imposed_deadline && not report.GP.Validate.complete then
          diags
          @ [
              GP.Diag.error ~code:"SRV003" ~subject:r.graph
                (Printf.sprintf
                   "%s: the server's default deadline (%gms) expired before validation \
                    completed"
                   r.graph
                   (Option.get deadline_ms));
            ]
        else diags
      in
      let diags =
        if wedged then
          diags
          @ [
              GP.Diag.error ~code:"SRV006" ~subject:r.graph
                (Printf.sprintf
                   "%s: request ran past its %gms deadline plus the watchdog grace and \
                    was cancelled"
                   r.graph
                   (Option.value deadline_ms ~default:0.));
            ]
        else diags
      in
      render_envelope ~command:"validate"
        ~summary:(GP.Diag_report.validate_summary report)
        diags
    | GP.Supervisor.Crashed crash -> crash_response t ~command:"validate" ~subject:r.graph crash)

(* ---- other operations ---- *)

let ping_response () =
  render_envelope ~command:"ping" ~summary:[ ("pong", Json.Bool true) ] []

let cache_stats_json (s : Cache.stats) =
  Json.Assoc
    [
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("evictions", Json.Int s.evictions);
      ("invalidations", Json.Int s.invalidations);
      ("size", Json.Int s.size);
    ]

(* One record per resident plan, with the frontend and leniency parsed
   back out of the cache key (see [plan_key]). *)
let plan_entry_json key =
  match String.split_on_char ':' key with
  | lang :: strictness :: rest ->
    Json.Assoc
      [
        ("schema", Json.String (String.concat ":" rest));
        ("frontend", Json.String lang);
        ("lenient", Json.Bool (strictness = "lenient"));
      ]
  | _ -> Json.Assoc [ ("schema", Json.String key) ]

let stats_response t =
  render_envelope ~command:"server-stats"
    ~summary:
      [
        ("requests", Json.Int (Atomic.get t.requests));
        ("crashed", Json.Int (Atomic.get t.crashes));
        ("shed", Json.Int (Atomic.get t.shed));
        ("plan_cache", cache_stats_json (Cache.stats t.plans));
        ("plan_entries", Json.List (List.map plan_entry_json (Cache.keys t.plans)));
        ("snapshot_cache", cache_stats_json (Cache.stats t.snapshots));
      ]
    []

(* The operational self-report.  Base fields come from the service's
   own counters; the host probe (installed by the server via
   {!set_probe}) appends what only the accept loop can see: queue
   depth, worker count, accept backoffs, drain state. *)
let health_response t =
  let base =
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
      ("requests", Json.Int (Atomic.get t.requests));
      ("crashed", Json.Int (Atomic.get t.crashes));
      ("shed", Json.Int (Atomic.get t.shed));
      ("in_flight_jobs", Json.Int (in_flight_jobs t));
      ("watchdog_cancelled", Json.Int (Atomic.get t.watchdog_cancels));
      ("plan_cache", cache_stats_json (Cache.stats t.plans));
      ("snapshot_cache", cache_stats_json (Cache.stats t.snapshots));
    ]
  in
  render_envelope ~command:"server-health" ~summary:(base @ (Atomic.get t.probe) ()) []

let debug_disabled op =
  malformed (Printf.sprintf "op %S is a debug operation (start the server with --debug-ops)" op)

let handle t ?cancel line =
  Atomic.incr t.requests;
  try
    match Protocol.parse line with
    | Error msg -> malformed msg
    | Ok Protocol.Ping -> ping_response ()
    | Ok Protocol.Stats -> stats_response t
    | Ok Protocol.Health -> health_response t
    | Ok (Protocol.Validate r) -> run_validate t ~cancel r
    | Ok Protocol.Debug_boom when not t.cfg.debug_ops -> debug_disabled "boom"
    | Ok (Protocol.Debug_sleep _) when not t.cfg.debug_ops -> debug_disabled "sleep"
    | Ok (Protocol.Debug_stall _) when not t.cfg.debug_ops -> debug_disabled "stall"
    | Ok Protocol.Debug_boom -> (
      match supervised t (fun () -> failwith "injected crash (debug op)") with
      | GP.Supervisor.Done ((), _) -> ping_response ()
      | GP.Supervisor.Crashed crash -> crash_response t ~command:"boom" ~subject:"debug" crash)
    | Ok (Protocol.Debug_sleep s) ->
      Unix.sleepf (Float.max 0. s);
      render_envelope ~command:"sleep" ~summary:[ ("slept_s", Json.Float s) ] []
    | Ok (Protocol.Debug_stall s) ->
      (* A controllable wedged job: registered with a 0 ms deadline it
         then ignores, so only a cancellation — the watchdog's, or the
         drain's — ends it before its full duration. *)
      let flag = Atomic.make false in
      let gov = GP.Governor.make ~deadline_ms:0. ~cancel:flag () in
      let (), wedged =
        with_job t ~drain:cancel ~deadline_ms:(Some 0.) ~gov (fun () ->
          let stop_at = Unix.gettimeofday () +. Float.max 0. s in
          while Unix.gettimeofday () < stop_at && not (Atomic.get flag) do
            Unix.sleepf 0.02
          done)
      in
      if wedged then
        srv_error ~command:"stall" ~code:"SRV006" ~subject:"debug"
          ~cls:GP.Diag.Exit.Budget
          "debug: stalled request cancelled by the watchdog"
      else render_envelope ~command:"stall" ~summary:[ ("stalled_s", Json.Float s) ] []
  with
  | Reply response -> response
  | e ->
    (* Nothing outside a supervised job should raise, but the worker
       must survive it if something does. *)
    Atomic.incr t.crashes;
    srv_error ~command:"serve" ~code:"SRV005"
      (Printf.sprintf "request handling crashed: %s" (Printexc.to_string e))
