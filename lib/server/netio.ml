(* Newline framing over Unix sockets, hardened for daemon residency.

   Reads are sliced into short [select] windows so a blocked worker still
   notices a server drain within a fraction of a second, and every
   syscall retries [EINTR] (signals are routine in a process that fields
   SIGTERM).  Writes loop over short counts and turn peer death into an
   [Error] value — with SIGPIPE ignored process-wide, [EPIPE] is just
   another errno. *)

module Retry = Graphql_pg.Retry

type conn = { fd : Unix.file_descr; pending : Buffer.t }

let conn fd = { fd; pending = Buffer.create 256 }

type frame =
  | Frame of string
  | Eof
  | Timeout
  | Stopped
  | Oversized
  | Failed of string

(* How often the blocked read re-checks [should_stop]; also bounds how
   stale a [Timeout] verdict can be. *)
let slice_s = 0.25

(* Extract the first complete line from [pending], if any. *)
let take_line c =
  let s = Buffer.contents c.pending in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    let line = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    Buffer.clear c.pending;
    Buffer.add_string c.pending rest;
    Some line

let read_frame ?(max_bytes = 1 lsl 20) ?(timeout_s = infinity) ?(should_stop = fun () -> false) c =
  let chunk = Bytes.create 8192 in
  let start = Unix.gettimeofday () in
  let rec loop () =
    match take_line c with
    | Some line ->
      (* the limit also binds when a whole oversized frame lands in one
         read and so never trips the partial-buffer check below *)
      if String.length line > max_bytes then begin
        Buffer.clear c.pending;
        Oversized
      end
      else Frame line
    | None ->
      if Buffer.length c.pending > max_bytes then begin
        (* The rest of this frame is unbounded garbage; the caller must
           close the connection — there is no way to find the next
           frame boundary without reading it all. *)
        Buffer.clear c.pending;
        Oversized
      end
      else if should_stop () then Stopped
      else if Unix.gettimeofday () -. start > timeout_s then Timeout
      else begin
        match Unix.select [ c.fd ] [] [] slice_s with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | [], _, _ -> loop ()
        | _ -> (
          match Retry.read c.fd chunk 0 (Bytes.length chunk) with
          | 0 ->
            (* Peer closed.  A partial trailing line is a client that
               died mid-request: drop it rather than parse a truncated
               frame. *)
            Buffer.clear c.pending;
            Eof
          | n ->
            Buffer.add_subbytes c.pending chunk 0 n;
            loop ())
      end
  in
  match loop () with
  | frame -> frame
  | exception Unix.Unix_error (err, _, _) -> Failed (Unix.error_message err)

let write_frame fd s =
  let b = Bytes.unsafe_of_string s in
  match Retry.really_write fd b 0 (Bytes.length b) with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
