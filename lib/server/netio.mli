(** Socket framing for the validation service.

    The wire protocol is newline-delimited: one request per line in, one
    response per line out.  This module owns the robustness half of that
    contract — bounded frame sizes, read timeouts, cooperative stop
    polling, and writes that survive a vanished peer — so the layers
    above never see a raw [Unix] failure.

    The process must ignore [SIGPIPE] (the {!Server} does so at startup);
    a write to a closed peer then surfaces as an [EPIPE] error value
    instead of killing the daemon. *)

type conn
(** One connection's read state: the descriptor plus any bytes received
    beyond the last complete frame. *)

val conn : Unix.file_descr -> conn

type frame =
  | Frame of string  (** one complete request line, newline stripped *)
  | Eof  (** peer closed; any partial trailing line is discarded *)
  | Timeout  (** no complete frame within the read timeout *)
  | Stopped  (** the [should_stop] poll answered yes (server drain) *)
  | Oversized  (** frame exceeded [max_bytes] before its newline *)
  | Failed of string  (** the socket itself failed (reset, bad fd, ...) *)

val read_frame :
  ?max_bytes:int ->
  ?timeout_s:float ->
  ?should_stop:(unit -> bool) ->
  conn ->
  frame
(** Block until one full line arrives (default [max_bytes] 1 MiB, no
    timeout).  The wait is sliced into short [select] windows so
    [should_stop] is polled a few times a second — a draining server
    abandons an idle connection within one slice.  [EINTR] never
    surfaces: interrupted waits and reads resume.  After [Oversized] the
    connection cannot be re-synchronized and must be closed. *)

val write_frame : Unix.file_descr -> string -> (unit, string) result
(** Write the whole string (the caller includes the trailing newline),
    looping over partial writes with [EINTR] retry.  A dead peer
    ([EPIPE], [ECONNRESET], ...) is an [Error], never an exception or a
    signal. *)
