(** Content-addressed LRU cache for compiled artefacts.

    The daemon keeps compiled {!Graphql_pg.Plan}s and loaded
    {!Graphql_pg.Snapshot}s across requests.  Files on disk can change
    under a long-lived process, so every lookup validates the cached
    entry against the file: a [stat] fast path (same size, mtime, and
    inode, outside the racy-write window) accepts the entry without
    touching its bytes, and anything else falls back to an incremental
    content digest — a mismatch discards and rebuilds the entry
    (counted as an invalidation + miss), never serves it.  Capacity is
    bounded; the least-recently-used entry is evicted when a new one
    would overflow it.

    Thread-safety: bookkeeping is guarded by one internal mutex, but
    [load] runs {e outside} it behind a per-key latch — concurrent
    lookups of one key build it once (single-flight) while lookups of
    other keys proceed unblocked.  Cached values that are not safe to
    share across domains (a [Plan] whose symtab interns during a run)
    carry a per-entry [lock]; callers must hold it for the duration of
    any use of [value]. *)

type 'a entry = {
  value : 'a;
  lock : Mutex.t;  (** serializes use of [value] across worker domains *)
  digest : string;  (** hex digest of the file content that built [value] *)
  uid : int;
      (** unique per built value, never reused within one cache — not
          even for the same key.  Derived artefacts that are only valid
          against the producing value (a snapshot interned into one
          plan's symtab) must key on [uid], not [digest]: entries built
          from identical bytes (a recompile after eviction, the same
          file under two keys) share a digest while being distinct
          values. *)
}

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be at least 1. *)

val find :
  'a t ->
  key:string ->
  path:string ->
  load:(content:string Lazy.t -> 'a) ->
  ('a entry, string) result
(** Look up [key], validating the cached entry against the current
    content of [path].  On a miss (or stale hit) [load] is called and
    its result cached; [content] is the file's bytes, read only when
    forced, so a loader that opens [path] itself never materializes the
    string.  [load] runs outside the cache mutex; a per-key latch parks
    concurrent lookups of the same key until the build resolves, so
    each key is built once.  [Error msg] means the file itself could
    not be read — nothing new is cached for unreadable paths.
    Exceptions from [load] (and from forcing [content]) propagate,
    release the latch, and cache nothing. *)

type stats = {
  hits : int;  (** includes digest-confirmed revalidations *)
  misses : int;  (** includes the rebuild after each invalidation *)
  evictions : int;  (** capacity-driven LRU removals *)
  invalidations : int;  (** content-digest mismatches on lookup *)
  size : int;  (** entries currently resident *)
}

val stats : 'a t -> stats

val keys : 'a t -> string list
(** The keys of the resident (fully built) entries, sorted; entries mid-build
    are omitted.  For introspection ([gpgs serve]'s stats op). *)
