(** Content-addressed LRU cache for compiled artefacts.

    The daemon keeps compiled {!Graphql_pg.Plan}s and loaded
    {!Graphql_pg.Snapshot}s across requests.  Files on disk can change
    under a long-lived process, so every lookup re-reads the file and
    compares its content digest against the cached entry: a stale entry
    is discarded and rebuilt (counted as an invalidation + miss), never
    served.  Capacity is bounded; the least-recently-used entry is
    evicted when a new one would overflow it.

    Thread-safety: the cache itself is guarded by one internal mutex.
    Cached values that are not safe to share across domains (a [Plan]
    whose symtab interns during a run) carry a per-entry [lock]; callers
    must hold it for the duration of any use of [value]. *)

type 'a entry = {
  value : 'a;
  lock : Mutex.t;  (** serializes use of [value] across worker domains *)
  digest : string;  (** hex digest of the file content that built [value] *)
}

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be at least 1. *)

val find :
  'a t -> key:string -> path:string -> load:(content:string -> 'a) -> ('a entry, string) result
(** Look up [key], validating the cached entry against the current
    content of [path].  On a miss (or stale hit) the file content is
    passed to [load] and the result cached; [load] runs under the cache
    mutex, so concurrent requests for the same key build it once.
    [Error msg] means the file itself could not be read — nothing is
    cached for unreadable paths.  Exceptions from [load] propagate (the
    mutex is released) and cache nothing. *)

type stats = {
  hits : int;
  misses : int;  (** includes the rebuild after each invalidation *)
  evictions : int;  (** capacity-driven LRU removals *)
  invalidations : int;  (** content-digest mismatches on lookup *)
  size : int;  (** entries currently resident *)
}

val stats : 'a t -> stats
