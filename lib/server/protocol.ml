(* Request parsing for the NDJSON wire protocol (see protocol.mli).

   Field names, accepted values and defaults deliberately mirror the
   [gpgs validate] flags one-for-one, because the acceptance contract of
   the daemon is byte-identical envelopes: a request must denote exactly
   one CLI invocation. *)

module GP = Graphql_pg
module Json = GP.Json

type validate_req = {
  schema : string;
  schema_lang : GP.Frontend.lang option;
  graph : string;
  engine : GP.Validate.engine;
  mode : GP.Validate.mode;
  domains : int option;
  shards : int option;
  snapshot : bool;
  lenient : bool;
  deadline_ms : float option;
  max_violations : int option;
}

type request =
  | Ping
  | Stats
  | Health
  | Validate of validate_req
  | Debug_boom
  | Debug_sleep of float
  | Debug_stall of float

let ( let* ) = Result.bind

(* Same alternatives as the CLI's Arg.enum converters. *)
let engine_of_string = function
  | "indexed" -> Ok GP.Validate.Indexed
  | "linear" -> Ok GP.Validate.Linear
  | "naive" -> Ok GP.Validate.Naive
  | "parallel" -> Ok GP.Validate.Parallel
  | "sharded" -> Ok GP.Validate.Sharded
  | s -> Error (Printf.sprintf "unknown engine %S (expected indexed, linear, naive, parallel, or sharded)" s)

let mode_of_string = function
  | "strong" -> Ok GP.Validate.Strong
  | "weak" -> Ok GP.Validate.Weak
  | "directives" -> Ok GP.Validate.Directives
  | s -> Error (Printf.sprintf "unknown mode %S (expected strong, weak, or directives)" s)

(* Stricter than the CLI's converter on purpose: the wire names are the
   canonical two, no aliases. *)
let lang_of_string = function
  | "sdl" -> Ok GP.Frontend.Sdl
  | "pgschema" -> Ok GP.Frontend.Pgschema
  | s -> Error (Printf.sprintf "unknown schema_lang %S (expected sdl or pgschema)" s)

let opt_field fields name decode =
  match List.assoc_opt name fields with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match decode v with
    | Ok x -> Ok (Some x)
    | Error want ->
      Error (Printf.sprintf "field %S must be %s" name want))

let req_string fields name =
  let* v = opt_field fields name (function Json.String s -> Ok s | _ -> Error "a string") in
  match v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is required" name)

let opt_int fields name =
  opt_field fields name (function Json.Int i -> Ok i | _ -> Error "an integer")

let opt_number fields name =
  opt_field fields name (function
    | Json.Int i -> Ok (float_of_int i)
    | Json.Float f -> Ok f
    | _ -> Error "a number")

let opt_bool fields name =
  opt_field fields name (function Json.Bool b -> Ok b | _ -> Error "a boolean")

let opt_enum fields name of_string =
  match List.assoc_opt name fields with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Result.map Option.some (of_string s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let parse_validate fields =
  let* schema = req_string fields "schema" in
  let* schema_lang = opt_enum fields "schema_lang" lang_of_string in
  let* graph = req_string fields "graph" in
  let* engine = opt_enum fields "engine" engine_of_string in
  let* mode = opt_enum fields "mode" mode_of_string in
  let* domains = opt_int fields "domains" in
  let* shards = opt_int fields "shards" in
  let* snapshot = opt_bool fields "snapshot" in
  let* lenient = opt_bool fields "lenient" in
  let* deadline_ms = opt_number fields "deadline_ms" in
  let* max_violations = opt_int fields "max_violations" in
  Ok
    (Validate
       {
         schema;
         schema_lang;
         graph;
         engine = Option.value engine ~default:GP.Validate.Indexed;
         mode = Option.value mode ~default:GP.Validate.Strong;
         domains;
         shards;
         snapshot = Option.value snapshot ~default:false;
         lenient = Option.value lenient ~default:false;
         deadline_ms;
         max_violations;
       })

let parse line =
  match Json.of_string line with
  | Error msg -> Error ("request is not valid JSON: " ^ msg)
  | Ok (Json.Assoc fields) -> (
    let* op = req_string fields "op" in
    match op with
    | "ping" -> Ok Ping
    | "stats" -> Ok Stats
    | "health" -> Ok Health
    | "validate" -> parse_validate fields
    | "boom" -> Ok Debug_boom
    | "sleep" ->
      let* s = opt_number fields "seconds" in
      Ok (Debug_sleep (Option.value s ~default:1.0))
    | "stall" ->
      let* s = opt_number fields "seconds" in
      Ok (Debug_stall (Option.value s ~default:1.0))
    | op -> Error (Printf.sprintf "unknown op %S" op))
  | Ok _ -> Error "request must be a JSON object"

let render json = Json.to_string json ^ "\n"
