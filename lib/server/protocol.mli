(** Wire protocol of the validation service.

    One JSON object per line in, one per line out.  A request is

    {v
    {"op":"validate","schema":"s.graphql","graph":"g.pgf",
     "engine":"indexed","mode":"strong","domains":4,"shards":8,
     "snapshot":false,"lenient":false,
     "deadline_ms":250,"max_violations":100}
    v}

    where everything after ["graph"] is optional and defaults to the
    corresponding [gpgs validate] flag default.  The response line for a
    [validate] is the {!Graphql_pg.Diag_report} envelope — the same JSON
    document [gpgs validate --format json] prints, compact-rendered.
    Other operations: ["ping"] (liveness), ["stats"] (request and
    cache counters) and ["health"] (operational self-report: uptime,
    queue depth, in-flight jobs, cache counters, accept backoffs,
    watchdog cancellations, last-drain status — the op a load balancer
    or orchestrator probes).  The debug operations ["boom"] (crash a
    worker), ["sleep"] (hold a worker busy) and ["stall"] (hold a
    worker busy while {e ignoring} its deadline — a wedged job for
    watchdog tests) exist for fault-injection tests and are only
    honoured when the service was started with [debug_ops]. *)

type validate_req = {
  schema : string;  (** path to the schema file *)
  schema_lang : Graphql_pg.Frontend.lang option;
      (** schema frontend ("sdl" or "pgschema"); default: inferred from
          the [schema] extension, as in the CLI *)
  graph : string;  (** path to the PGF graph (or snapshot) *)
  engine : Graphql_pg.Validate.engine;
  mode : Graphql_pg.Validate.mode;
  domains : int option;
  shards : int option;
  snapshot : bool;  (** [graph] is a persisted binary snapshot *)
  lenient : bool;  (** skip the schema consistency gate *)
  deadline_ms : float option;
  max_violations : int option;
}

type request =
  | Ping
  | Stats
  | Health  (** operational self-report (always available, never queued behind work) *)
  | Validate of validate_req
  | Debug_boom  (** raise inside the worker (tests the SRV005 path) *)
  | Debug_sleep of float  (** hold the worker for [s] seconds (tests shedding) *)
  | Debug_stall of float
      (** hold the worker for [s] seconds ignoring the deadline — a
          wedged job only the watchdog can end (tests the SRV006 path) *)

val parse : string -> (request, string) result
(** Parse one request line.  [Error] carries a human-readable reason
    (not valid JSON, not an object, unknown op, bad field type...);
    the caller maps it to an SRV001 envelope.  Unknown fields are
    ignored for forward compatibility. *)

val render : Graphql_pg.Json.t -> string
(** Compact-render a response plus the frame-terminating newline. *)
