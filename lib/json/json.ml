type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Assoc x, Assoc y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Assoc _), _ -> false

let member k = function Assoc fields -> Option.value ~default:Null (List.assoc_opt k fields) | _ -> Null
let index i = function List l when i >= 0 && i < List.length l -> List.nth l i | _ -> Null

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let r = Printf.sprintf "%.12g" f in
    if float_of_string r = f then r else Printf.sprintf "%.17g" f

let to_string ?(indent = false) json =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 json;
  Buffer.contents buf

let pp ppf json = Format.pp_print_string ppf (to_string ~indent:true json)

(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string text =
  let pos = ref 0 in
  let n = String.length text in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %S" word)
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub text !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
          | Some code when code < 0x800 ->
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          | Some code ->
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          | None -> fail "malformed \\u escape");
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit c = c >= '0' && c <= '9' in
    let rec digits () =
      match peek () with Some c when is_digit c -> advance (); digits () | _ -> ()
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let textv = String.sub text start (!pos - start) in
    if !is_float then
      match float_of_string_opt textv with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt textv with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt textv with Some f -> Float f | None -> fail "bad number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (string_body ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Assoc []
      end
      else begin
        let entry () =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          (k, v)
        in
        let rec entries acc =
          let e = entry () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            entries (e :: acc)
          | Some '}' ->
            advance ();
            List.rev (e :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Assoc (entries [])
      end
    | Some c when c = '-' || (c >= '0' && c <= '9') -> number ()
    | _ -> fail "expected a JSON value"
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing characters at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

let rec of_property_value (v : Pg_graph.Value.t) =
  match v with
  | Pg_graph.Value.Int i -> Int i
  | Pg_graph.Value.Float f -> Float f
  | Pg_graph.Value.String s -> String s
  | Pg_graph.Value.Bool b -> Bool b
  | Pg_graph.Value.Id s -> String s
  | Pg_graph.Value.Enum s -> String s
  | Pg_graph.Value.List vs -> List (List.map of_property_value vs)
