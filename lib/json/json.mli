(** JSON values — the response format of GraphQL execution (spec
    Section 7).  Self-contained (no JSON library ships with the sealed
    environment); the printer emits standards-compliant JSON and the
    parser accepts it back, which is property-tested. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list  (** insertion order preserved *)

val equal : t -> t -> bool

val member : string -> t -> t
(** [member k (Assoc ...)] or [Null]. *)

val index : int -> t -> t
(** [index i (List ...)] or [Null]. *)

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two spaces. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printed. *)

val of_string : string -> (t, string) result

val of_property_value : Pg_graph.Value.t -> t
(** Embed a Property Graph value ([Id] and [Enum] become strings). *)
