(** Schema frontend selection.

    The schema core ({!Pg_schema.Schema} and its compiled {!Pg_schema.Plan})
    is frontend-neutral: any surface language that lowers onto it gets the
    whole validation stack — six engines, satisfiability, the query
    executor — for free.  This module names the available frontends and
    routes text to the right parser, so every layer (CLI, batch driver,
    server) selects a frontend the same way.

    - {!Sdl} — the GraphQL SDL of the paper ([Pg_schema.Of_ast]);
    - {!Pgschema} — the PG-Schema fragment ([Pg_pgschema.Lower]).

    When no language is given explicitly the file extension decides:
    [.pgs] means PG-Schema, everything else (([.graphql], [.sdl], ...)
    the SDL default. *)

type lang = Sdl | Pgschema

let all = [ Sdl; Pgschema ]
let to_string = function Sdl -> "sdl" | Pgschema -> "pgschema"

let of_string s =
  match String.lowercase_ascii s with
  | "sdl" | "graphql" -> Some Sdl
  | "pgschema" | "pgs" | "pg-schema" -> Some Pgschema
  | _ -> None

(* The extension-based default, used when no explicit language is given. *)
let infer ~path =
  if Filename.check_suffix path ".pgs" then Pgschema else Sdl

let select ?lang ~path () = match lang with Some l -> l | None -> infer ~path

(** [parse_full lang text] parses and lowers [text] through the chosen
    frontend onto the shared schema IR; identical result shape for every
    frontend: the schema plus its warnings, or the error diagnostics. *)
let parse_full ?consistency lang text :
    (Pg_schema.Schema.t * Pg_diag.Diag.t list, Pg_diag.Diag.t list) result =
  match lang with
  | Sdl -> Pg_schema.Of_ast.parse_full ?consistency text
  | Pgschema -> Pg_pgschema.Lower.parse_full ?consistency text

let parse lang text =
  match lang with
  | Sdl -> Pg_schema.Of_ast.parse text
  | Pgschema -> Pg_pgschema.Lower.parse text

let parse_lenient lang text =
  match lang with
  | Sdl -> Pg_schema.Of_ast.parse_lenient text
  | Pgschema -> Pg_pgschema.Lower.parse_lenient text
