(** The machine-readable report contract of the gpgs CLI: one JSON
    envelope per command, shared between [bin/gpgs.ml] and the golden
    tests so the [--format json] output cannot drift from what the tests
    pin down. *)

val envelope :
  command:string ->
  ?summary:(string * Pg_json.Json.t) list ->
  ?cls:Pg_diag.Diag.Exit.cls ->
  Pg_diag.Diag.t list ->
  Pg_json.Json.t
(** {!Pg_diag.Diag.envelope} with [tool = "gpgs"]. *)

val to_string : Pg_json.Json.t -> string
(** Indented rendering — the exact bytes the CLI prints. *)

val schema_summary : Pg_schema.Schema.t -> (string * Pg_json.Json.t) list
val engine_name : Pg_validation.Validate.engine -> string
val mode_name : Pg_validation.Validate.mode -> string
val validate_summary : Pg_validation.Validate.report -> (string * Pg_json.Json.t) list
val verdict_json : Pg_sat.Tableau.verdict -> Pg_json.Json.t
val sat_summary : Pg_sat.Satisfiability.report -> (string * Pg_json.Json.t) list

val check_summary :
  Pg_schema.Schema.t ->
  Pg_schema.Consistency.issue list ->
  (string * Pg_sat.Satisfiability.report) list ->
  (string * Pg_json.Json.t) list

val ingest_diagnostics : file:string -> Pg_graph.Stream.outcome -> Pg_diag.Diag.t list
(** One [IO002] per skipped record, plus a trailing [IO003] when the
    error budget stopped ingestion early.  The [Stream] -> [Diag] bridge
    lives here because [pg_graph] sits below [pg_diag] in the library
    stack. *)

val ingest_summary : Pg_graph.Stream.outcome -> (string * Pg_json.Json.t) list
(** Summary fields merged into a command's envelope when streaming
    ingestion was used: [ingest_complete], [records], [records_skipped]. *)

val batch_summary : Pg_validation.Supervisor.batch -> (string * Pg_json.Json.t) list
(** The [gpgs batch] envelope summary: a [jobs] array (file, status,
    attempts, diagnostic count) plus per-status totals. *)

val diff_summary : Pg_validation.Schema_diff.change list -> (string * Pg_json.Json.t) list
