(* The machine-readable report contract of the gpgs CLI.

   Each subcommand's [--format json] output is one envelope built here,
   so the CLI and the golden tests share a single definition of the
   format.  The envelope (see [Pg_diag.Diag.envelope]) carries the
   command name, the computed exit status/code, severity counts, a
   command-specific summary object, and the diagnostics array. *)

module Diag = Pg_diag.Diag
module Json = Pg_json.Json

let envelope ~command ?summary ?cls diagnostics =
  Diag.envelope ~tool:"gpgs" ~command ?summary ?cls diagnostics

let to_string json = Json.to_string ~indent:true json

(* ---- command-specific summaries ---- *)

let schema_summary (sch : Pg_schema.Schema.t) =
  let count f = Json.Int (List.length (f sch)) in
  [
    ("objects", count Pg_schema.Schema.object_names);
    ("interfaces", count Pg_schema.Schema.interface_names);
    ("unions", count Pg_schema.Schema.union_names);
    ("enums", count Pg_schema.Schema.enum_names);
    ("scalars", count Pg_schema.Schema.scalar_names);
    ("directives", count Pg_schema.Schema.directive_names);
  ]

let engine_name = function
  | Pg_validation.Validate.Naive -> "naive"
  | Pg_validation.Validate.Linear -> "linear"
  | Pg_validation.Validate.Indexed -> "indexed"
  | Pg_validation.Validate.Parallel -> "parallel"
  | Pg_validation.Validate.Sharded -> "sharded"

let mode_name = function
  | Pg_validation.Validate.Weak -> "weak"
  | Pg_validation.Validate.Directives -> "directives"
  | Pg_validation.Validate.Strong -> "strong"

let validate_summary (r : Pg_validation.Validate.report) =
  [
    ("engine", Json.String (engine_name r.engine));
    ("mode", Json.String (mode_name r.mode));
    ("nodes", Json.Int r.nodes_checked);
    ("edges", Json.Int r.edges_checked);
    ("complete", Json.Bool r.complete);
    ("nodes_scanned", Json.Int r.nodes_scanned);
    ("edges_scanned", Json.Int r.edges_scanned);
    ("violations", Json.Int (List.length r.violations));
  ]

let verdict_json = function
  | Pg_sat.Tableau.Satisfiable -> Json.Assoc [ ("verdict", Json.String "satisfiable") ]
  | Pg_sat.Tableau.Unsatisfiable -> Json.Assoc [ ("verdict", Json.String "unsatisfiable") ]
  | Pg_sat.Tableau.Unknown reason ->
    Json.Assoc [ ("verdict", Json.String "unknown"); ("reason", Json.String reason) ]

let sat_summary (r : Pg_sat.Satisfiability.report) =
  [
    ("alcqi", verdict_json r.alcqi);
    ("finite", verdict_json r.finite);
    ("witness", Json.Bool (r.witness <> None));
  ]

let check_summary sch (issues : Pg_schema.Consistency.issue list)
    (sat_reports : (string * Pg_sat.Satisfiability.report) list) =
  [
    ("schema", Json.Assoc (schema_summary sch));
    ("consistency_issues", Json.Int (List.length issues));
    ( "satisfiability",
      Json.Assoc
        (List.map (fun (ot, r) -> (ot, Json.Assoc (sat_summary r))) sat_reports) );
  ]

(* ---- streaming ingestion (pg_graph cannot depend on pg_diag, so the
   Stream -> Diag bridge lives here) ---- *)

let ingest_diagnostics ~file (o : Pg_graph.Stream.outcome) =
  (* IO-family diagnostics render as bare messages in text mode, so each
     message carries the file and record context itself *)
  let skipped =
    List.map
      (fun (f : Pg_graph.Stream.fault) ->
        Diag.error ~code:"IO002" ~subject:file
          (Printf.sprintf "%s: %s: skipped malformed record: %s" file f.subject f.message))
      o.faults
  in
  if o.budget_exhausted then
    skipped
    @ [
        Diag.error ~code:"IO003" ~subject:file
          (Printf.sprintf
             "%s: input error budget exhausted after %d malformed record(s); ingestion stopped at record %d"
             file (List.length o.faults) o.records);
      ]
  else skipped

let ingest_summary (o : Pg_graph.Stream.outcome) =
  [
    ("ingest_complete", Json.Bool o.complete);
    ("records", Json.Int o.records);
    ("records_skipped", Json.Int (List.length o.faults));
  ]

(* ---- batch runs ---- *)

let job_json (j : Pg_validation.Supervisor.job_report) =
  Json.Assoc
    [
      ("file", Json.String j.job);
      ("status", Json.String (Pg_validation.Supervisor.status_name j.job_status));
      ("attempts", Json.Int j.attempts);
      ("diagnostics", Json.Int (List.length j.diags));
    ]

let batch_summary (b : Pg_validation.Supervisor.batch) =
  [
    ("jobs", Json.List (List.map job_json b.jobs));
    ("completed", Json.Int b.completed);
    ("partial", Json.Int b.partial);
    ("crashed", Json.Int b.crashed);
    ("unreadable", Json.Int b.unreadable);
  ]

let diff_summary (changes : Pg_validation.Schema_diff.change list) =
  let count sev =
    List.length
      (List.filter (fun (c : Pg_validation.Schema_diff.change) -> c.severity = sev) changes)
  in
  [
    ("breaking", Json.Int (count Pg_validation.Schema_diff.Breaking));
    ("compatible", Json.Int (count Pg_validation.Schema_diff.Compatible));
  ]
