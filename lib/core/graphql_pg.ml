(** GraphQL SDL schemas for Property Graphs — umbrella API.

    This module re-exports the subsystem libraries under one namespace and
    provides the one-line entry points most applications need:

    {[
      let schema = Graphql_pg.schema_of_string_exn sdl_text in
      let graph = Graphql_pg.graph_of_pgf_exn pgf_text in
      assert (Graphql_pg.conforms schema graph);
      match Graphql_pg.satisfiable schema "User" with ...
    ]}

    Subsystems:
    - {!Diag} and {!Diag_registry} (the unified diagnostic model with
      stable codes) plus {!Diag_report} (the CLI's machine-readable
      report envelope) and {!Json} (the shared JSON representation),
    - {!Sdl} (lexer/parser/printer for the GraphQL SDL) and {!Pgschema}
      (the PG-Schema frontend: its own lexer/recovering parser and the
      lowering onto the shared schema IR), with {!Frontend} selecting
      between them by name or file extension,
    - {!Value}, {!Property_graph}, {!Builder}, {!Pgf}, {!Stats}, plus the
      compiled representations {!Symtab} (string interner), {!Snapshot}
      (frozen off-heap CSR view) and {!Snapshot_io} (persisted binary
      snapshots with mmap loading), and the streaming fault-tolerant
      ingestion layer
      {!Chunked}/{!Stream} (the Property Graph substrate),
    - {!Wrapped}, {!Schema}, {!Subtype}, {!Values_w}, {!Consistency},
      {!Of_ast}, {!To_sdl}, {!Api_extension}, and the compiled validation
      {!Plan} (the formal schema model of Section 4),
    - {!Violation}, {!Validate} (+ engines {!Naive}, the fused {!Linear},
      the per-rule {!Indexed}, the multicore {!Parallel} — the latter
      three consume one compiled plan — and the update-driven
      {!Incremental}, with {!Governor} budgets and the {!Supervisor} job
      runner) (the validation semantics of Section 5),
    - {!Cnf}, {!Dpll}, {!Alcqi}, {!Tableau}, {!Translate}, {!Counting},
      {!Model_search}, {!Reduction}, {!Satisfiability} (the satisfiability
      analysis of Section 6),
    - {!Json}, {!Query_ast}, {!Query_parser}, {!Executor} (a GraphQL query
      engine over conforming Property Graphs — Section 3.6's natural next
      step),
    - {!Angles_schema}, {!Angles_validate}, {!Angles_of_graphql} (the
      baseline model of Section 2.1),
    - {!Social}, {!Corruption}, {!Schema_gen}, {!Instance_gen}, {!Ksat}
      (workload generators). *)

module Diag = Pg_diag.Diag
module Diag_registry = Pg_diag.Registry
module Diag_report = Diag_report

module Sdl = struct
  module Source = Pg_sdl.Source
  module Token = Pg_sdl.Token
  module Lexer = Pg_sdl.Lexer
  module Ast = Pg_sdl.Ast
  module Parser = Pg_sdl.Parser
  module Printer = Pg_sdl.Printer
  module Lint = Pg_sdl.Lint
end

module Ir_values = Pg_ir.Values

module Pgschema = struct
  module Token = Pg_pgschema.Token
  module Lexer = Pg_pgschema.Lexer
  module Ast = Pg_pgschema.Ast
  module Parser = Pg_pgschema.Parser
  module Printer = Pg_pgschema.Printer
  module Lower = Pg_pgschema.Lower
  module To_pgschema = Pg_pgschema.To_pgschema
end

module Frontend = Frontend

module Value = Pg_graph.Value
module Property_graph = Pg_graph.Property_graph
module Builder = Pg_graph.Builder
module Pgf = Pg_graph.Pgf
module Graphml = Pg_graph.Graphml
module Chunked = Pg_graph.Chunked
module Stream = Pg_graph.Stream
module Retry = Pg_graph.Retry
module Fault = Pg_fault.Fault
module Durable = Pg_graph.Durable
module Stats = Pg_graph.Stats
module Symtab = Pg_graph.Symtab
module Snapshot = Pg_graph.Snapshot
module Snapshot_io = Pg_graph.Snapshot_io
module Partition = Pg_graph.Partition
module Wrapped = Pg_schema.Wrapped
module Schema = Pg_schema.Schema
module Subtype = Pg_schema.Subtype
module Values_w = Pg_schema.Values_w
module Consistency = Pg_schema.Consistency
module Of_ast = Pg_schema.Of_ast
module To_sdl = Pg_schema.To_sdl
module Api_extension = Pg_schema.Api_extension
module Schema_doc = Pg_schema.Schema_doc
module Plan = Pg_schema.Plan
module Governor = Pg_validation.Governor
module Supervisor = Pg_validation.Supervisor
module Violation = Pg_validation.Violation
module Validate = Pg_validation.Validate
module Naive = Pg_validation.Naive
module Linear = Pg_validation.Linear
module Indexed = Pg_validation.Indexed
module Parallel = Pg_validation.Parallel
module Shard_stream = Pg_validation.Shard_stream
module Incremental = Pg_validation.Incremental
module Schema_diff = Pg_validation.Schema_diff
module Cnf = Pg_sat.Cnf
module Dpll = Pg_sat.Dpll
module Alcqi = Pg_sat.Alcqi
module Tableau = Pg_sat.Tableau
module Translate = Pg_sat.Translate
module Counting = Pg_sat.Counting
module Model_search = Pg_sat.Model_search
module Reduction = Pg_sat.Reduction
module Satisfiability = Pg_sat.Satisfiability
module Angles_schema = Pg_angles.Angles_schema
module Angles_validate = Pg_angles.Angles_validate
module Angles_of_graphql = Pg_angles.Of_graphql
module Angles_of_pgschema = Pg_angles.Of_pgschema
module Neo4j_ddl = Pg_angles.Neo4j_ddl
module Json = Pg_json.Json
module Query_ast = Pg_query.Query_ast
module Query_parser = Pg_query.Query_parser
module Executor = Pg_query.Executor
module Mutation = Pg_query.Mutation
module Social = Pg_gen.Social
module Corruption = Pg_gen.Corruption
module Schema_gen = Pg_gen.Schema_gen
module Pgschema_gen = Pg_gen.Pgschema_gen
module Instance_gen = Pg_gen.Instance_gen
module Ksat = Pg_gen.Ksat

(* ------------------------------------------------------------------ *)
(* One-line entry points.                                               *)

let schema_of_string = Of_ast.parse
let schema_of_string_exn = Of_ast.parse_exn
let schema_to_string = To_sdl.to_string

let graph_of_pgf text =
  Result.map_error (fun e -> Format.asprintf "%a" Pgf.pp_error e) (Pgf.parse text)

let graph_of_pgf_exn text =
  match graph_of_pgf text with Ok g -> g | Error msg -> invalid_arg msg

let graph_to_pgf = Pgf.print

let validate ?engine ?env ?domains schema graph =
  Validate.check ?engine ?env ?domains schema graph

let conforms ?engine ?env ?domains schema graph =
  Validate.conforms ?engine ?env ?domains schema graph

let satisfiable ?fuel ?max_nodes schema object_type =
  Satisfiability.satisfiable ?fuel ?max_nodes schema object_type

let unsatisfiable_types ?fuel ?max_nodes schema =
  Satisfiability.unsatisfiable_types ?fuel ?max_nodes schema

let query ?operation ?variables schema graph text =
  Executor.run ?operation ?variables schema graph text

let mutate ?variables state text = Mutation.execute ?variables state text
