(** GraphQL schemas (paper Definition 4.1).

    A schema [S] over finite sets [(F, A, T, S, D)] consists of the
    assignments [typeS] (field, field-argument, and directive-argument
    types), [unionS], [implementationS], and [directivesS].  This module
    materializes those assignments as persistent maps together with the
    helper functions [fieldsS], [argsS] of Section 4.2.

    [T] is partitioned into object types [OT], interface types [IT], union
    types [UT], and scalar types [S]; following the paper's footnote 1,
    enum types are kept in [S] (they are "scalars" whose value set is the
    set of declared enum symbols), but remain observable as enums through
    {!type_kind}. *)

type directive_use = { du_name : string; du_args : (string * Pg_ir.Values.value) list }
(** One occurrence of a directive, e.g. [@key(fields: ["id"])]: an element
    of [D x AV] (Definition 4.1). *)

type argument = {
  arg_type : Wrapped.t;  (** [typeAF_S((t, f), a)] or [typeAD_S(d, a)] *)
  arg_directives : directive_use list;  (** [directivesAF_S] *)
  arg_default : Pg_ir.Values.value option;
}

type field = {
  fd_type : Wrapped.t;  (** [typeF_S(t, f)] *)
  fd_args : (string * argument) list;  (** in declaration order *)
  fd_directives : directive_use list;  (** [directivesF_S(t, f)] *)
  fd_description : string option;
}

type object_type = {
  ot_interfaces : string list;
  ot_fields : (string * field) list;  (** in declaration order *)
  ot_directives : directive_use list;
  ot_description : string option;
}

type interface_type = {
  it_fields : (string * field) list;
  it_directives : directive_use list;
  it_description : string option;
}

type union_type = {
  ut_members : string list;  (** [unionS]; non-empty *)
  ut_directives : directive_use list;
  ut_description : string option;
}

type enum_type = {
  et_values : string list;
  et_directives : directive_use list;
  et_description : string option;
}

type scalar_type = {
  sc_builtin : bool;
  sc_directives : directive_use list;
  sc_description : string option;
}

type directive_def = {
  dd_args : (string * argument) list;  (** [typeAD_S(d, -)] *)
  dd_locations : Pg_ir.Values.directive_location list;
}

type t = {
  objects : object_type Map.Make(String).t;
  interfaces : interface_type Map.Make(String).t;
  unions : union_type Map.Make(String).t;
  enums : enum_type Map.Make(String).t;
  scalars : scalar_type Map.Make(String).t;
  directive_defs : directive_def Map.Make(String).t;
  implementations : string list Map.Make(String).t;
      (** [implementationS]: interface name -> implementing object types,
          derived from the object types' [implements] clauses *)
}

type kind = Object | Interface | Union | Enum | Scalar

val empty : t
(** A schema with no user types; the five built-in scalars and the standard
    directive definitions (see {!Std_directives}) are present. *)

(** {1 The paper's lookup notation} *)

val type_kind : t -> string -> kind option
(** The partition cell of a named type, or [None] if the name is not in [T]. *)

val mem_type : t -> string -> bool

val is_scalar_like : t -> string -> bool
(** [true] iff the named type is in [S] (a scalar or an enum type). *)

val is_composite : t -> string -> bool
(** [true] iff the named type is an object, interface, or union type. *)

val fields : t -> string -> (string * field) list
(** [fieldsS(t)] with full field records, for [t] an object or interface
    type; [[]] for other names. *)

val field : t -> string -> string -> field option
(** [field s t f] is the field record of [(t, f)] when
    [(t, f) ∈ dom(typeF_S)]. *)

val type_f : t -> string -> string -> Wrapped.t option
(** [typeF_S(t, f)]. *)

val args : t -> string -> string -> (string * argument) list
(** [argsS(t, f)] with argument records. *)

val arg_type : t -> string -> string -> string -> Wrapped.t option
(** [typeAF_S((t, f), a)]. *)

val directive_args : t -> string -> (string * argument) list option
(** [argsS(d)] with types ([typeAD_S]); [None] if the directive is not
    declared. *)

val union_members : t -> string -> string list
(** [unionS(ut)]; [[]] for non-union names. *)

val implementations_of : t -> string -> string list
(** [implementationS(it)]; [[]] for non-interface names. *)

val object_names : t -> string list
(** [OT], sorted. *)

val interface_names : t -> string list
val union_names : t -> string list
val enum_names : t -> string list
val scalar_names : t -> string list
(** [S] without the enum types. *)

val builtin_scalar_names : string list
(** The five built-in scalars ([Int], [Float], [String], [Boolean], [ID]):
    the single authority every frontend consults. *)

val directive_names : t -> string list

(** {1 Field classification (paper Section 3.1)} *)

type field_class =
  | Attribute  (** base type is a scalar or enum: defines a node property *)
  | Relationship  (** base type is an object, interface, or union: defines edges *)

val classify_field : t -> field -> field_class option
(** [None] when the base type is not in [T] (e.g. an input object type),
    in which case the field definition is ignored per Section 3.6. *)

(** {1 Directive occurrence helpers} *)

val find_directives : directive_use list -> string -> directive_use list
(** All occurrences with the given name, in order ([@key] may repeat). *)

val has_directive : directive_use list -> string -> bool

val is_open : t -> string -> bool
(** [true] iff the named object type carries [@open]: its nodes may hold
    properties beyond the declared fields, so the strong justification
    rule SS2 does not apply to them.  Lowered from PG-Schema [OPEN] node
    types and [LOOSE] graph types; SDL opts in with a user-declared
    [directive @open on OBJECT]. *)

val key_fields : directive_use -> string list option
(** For a [@key] occurrence, the value of its [fields] argument (a list of
    property names); [None] if the argument is missing or ill-typed. *)

(** {1 Construction (programmatic; most schemas come from {!Of_ast})} *)

val add_object : t -> string -> object_type -> t
val add_interface : t -> string -> interface_type -> t
val add_union : t -> string -> union_type -> t
val add_enum : t -> string -> enum_type -> t
val add_scalar : t -> string -> scalar_type -> t
val add_directive_def : t -> string -> directive_def -> t

val rebuild_implementations : t -> t
(** Recompute the derived [implementations] map from the object types;
    called automatically by the [add_*] functions. *)

(** {1 Statistics} *)

val size : t -> int
(** A size measure used in benchmarks: number of types + fields + arguments
    + directive occurrences. *)

val pp_summary : Format.formatter -> t -> unit
