module Sm = Map.Make (String)
module Value = Pg_graph.Value

(* IR constant values, shared by every frontend (the SDL AST re-declares
   this type, so [Pg_sdl.Ast.value] still matches). *)
module Ast = Pg_ir.Values

type env = (Value.t -> bool) Sm.t

let default_env = Sm.empty
let register env name p = Sm.add name p env

(* GraphQL Int is a signed 32-bit integer (spec 3.5.1). *)
let int32_min = -2147483648
let int32_max = 2147483647

let builtin_mem name (v : Value.t) =
  match name, v with
  | "Int", Value.Int i -> i >= int32_min && i <= int32_max
  | "Float", (Value.Float _ | Value.Int _) -> true
  | "String", Value.String _ -> true
  | "Boolean", Value.Bool _ -> true
  | "ID", (Value.Id _ | Value.String _ | Value.Int _) -> true
  | _, _ -> false

let scalar_mem ?(env = default_env) sch name v =
  match Schema.type_kind sch name with
  | Some Schema.Enum -> (
    match v with
    | Value.Enum sym -> (
      match Sm.find_opt name sch.Schema.enums with
      | Some et -> List.exists (String.equal sym) et.Schema.et_values
      | None -> false)
    | _ -> false)
  | Some Schema.Scalar -> (
    match Sm.find_opt name sch.Schema.scalars with
    | Some sc when sc.Schema.sc_builtin -> builtin_mem name v
    | Some _ -> (
      match Sm.find_opt name env with
      | Some p -> Value.is_atomic v && p v
      | None -> Value.is_atomic v)
    | None -> false)
  | Some (Schema.Object | Schema.Interface | Schema.Union) | None -> false

let mem ?(env = default_env) sch (wt : Wrapped.t) v =
  match wt with
  | Wrapped.Named t | Wrapped.Non_null t -> scalar_mem ~env sch t v
  | Wrapped.List { item; _ } -> (
    match v with
    | Value.List elems -> List.for_all (scalar_mem ~env sch item) elems
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Compiled membership: [compile sch wt] partially evaluates [mem] on
   the schema and the wrapped type, so the per-value check does no
   type-kind dispatch or schema-map lookup.  The env stays a call-time
   parameter: custom-scalar predicates are registered per check, after
   the schema (and any validation plan) is compiled. *)

type checker = env -> Value.t -> bool

let compile_builtin name : Value.t -> bool =
  match name with
  | "Int" -> ( function Value.Int i -> i >= int32_min && i <= int32_max | _ -> false)
  | "Float" -> ( function Value.Float _ | Value.Int _ -> true | _ -> false)
  | "String" -> ( function Value.String _ -> true | _ -> false)
  | "Boolean" -> ( function Value.Bool _ -> true | _ -> false)
  | "ID" -> ( function Value.Id _ | Value.String _ | Value.Int _ -> true | _ -> false)
  | _ -> fun _ -> false

let compile_scalar sch name : checker =
  match Schema.type_kind sch name with
  | Some Schema.Enum ->
    let values =
      match Sm.find_opt name sch.Schema.enums with
      | Some et -> Array.of_list et.Schema.et_values
      | None -> [||]
    in
    fun _env v ->
      (match v with
      | Value.Enum sym -> Array.exists (String.equal sym) values
      | _ -> false)
  | Some Schema.Scalar -> (
    match Sm.find_opt name sch.Schema.scalars with
    | Some sc when sc.Schema.sc_builtin ->
      let p = compile_builtin name in
      fun _env v -> p v
    | Some _ ->
      fun env v ->
        (match Sm.find_opt name env with
        | Some p -> Value.is_atomic v && p v
        | None -> Value.is_atomic v)
    | None -> fun _ _ -> false)
  | Some (Schema.Object | Schema.Interface | Schema.Union) | None -> fun _ _ -> false

let compile sch (wt : Wrapped.t) : checker =
  match wt with
  | Wrapped.Named t | Wrapped.Non_null t -> compile_scalar sch t
  | Wrapped.List { item; _ } ->
    let item_mem = compile_scalar sch item in
    fun env v ->
      (match v with
      | Value.List elems -> List.for_all (item_mem env) elems
      | _ -> false)

let value_of_ast (v : Ast.value) =
  let rec go = function
    | Ast.Int_value i -> Some (Value.Int i)
    | Ast.Float_value f -> Some (Value.Float f)
    | Ast.String_value s -> Some (Value.String s)
    | Ast.Boolean_value b -> Some (Value.Bool b)
    | Ast.Enum_value e -> Some (Value.Enum e)
    | Ast.Null_value | Ast.Object_value _ -> None
    | Ast.List_value vs ->
      let elems = List.map go vs in
      if List.for_all Option.is_some elems then
        Some (Value.List (List.filter_map Fun.id elems))
      else None
  in
  go v

let rec ast_of_value (v : Value.t) : Ast.value =
  match v with
  | Value.Int i -> Ast.Int_value i
  | Value.Float f -> Ast.Float_value f
  | Value.String s -> Ast.String_value s
  | Value.Bool b -> Ast.Boolean_value b
  | Value.Id s -> Ast.String_value s
  | Value.Enum e -> Ast.Enum_value e
  | Value.List vs -> Ast.List_value (List.map ast_of_value vs)

let ast_mem ?(env = default_env) sch (wt : Wrapped.t) (v : Ast.value) =
  match wt, v with
  | (Wrapped.Named _ | Wrapped.List { non_null = false; _ }), Ast.Null_value -> true
  | (Wrapped.Non_null _ | Wrapped.List { non_null = true; _ }), Ast.Null_value -> false
  | (Wrapped.Named t | Wrapped.Non_null t), _ -> (
    match value_of_ast v with Some pv -> scalar_mem ~env sch t pv | None -> false)
  | Wrapped.List { item; item_non_null; _ }, Ast.List_value elems ->
    List.for_all
      (fun e ->
        match e with
        | Ast.Null_value -> not item_non_null
        | _ -> (
          match value_of_ast e with
          | Some pv -> scalar_mem ~env sch item pv
          | None -> false))
      elems
  | Wrapped.List _, _ -> false
