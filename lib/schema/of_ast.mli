(** Translation from parsed SDL documents to formal schemas
    (Definition 4.1), with diagnostics.

    The translation enforces the structural rules the formalization
    relies on and applies the paper's "ignore what does not fit" policy
    (Section 3.6):

    - type extensions are merged into their base definitions;
    - field types must be named types of the document (or built-ins) and
      may not be input object types;
    - wrapped types are restricted to the six forms of Section 4.1
      (nested lists are errors);
    - field arguments and directive arguments whose base type is an input
      object type are {e dropped with a warning} — they cannot describe
      edge properties, cf. Section 3.6;
    - root operation types declared in a [schema { ... }] block are noted
      and otherwise ignored;
    - the standard Property Graph directives (Section 4.3) are predeclared
      and may be redeclared compatibly by the document. *)

type severity = Error | Warning

type diagnostic = {
  code : string;  (** a stable code: [SCH001]/[SCH002], or the [LINT0xx] of an embedded lint issue *)
  at : Pg_sdl.Source.span;
  severity : severity;
  message : string;
}

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val to_diagnostic : diagnostic -> Pg_diag.Diag.t

val build : Pg_sdl.Ast.document -> (Schema.t * diagnostic list, diagnostic list) result
(** [build doc] is [Ok (schema, warnings)] or [Error diagnostics] where the
    diagnostics contain at least one error. *)

val parse_full :
  ?consistency:bool ->
  string ->
  (Schema.t * Pg_diag.Diag.t list, Pg_diag.Diag.t list) result
(** The whole front end — lex, parse (with recovery), lint, build, and
    (unless [~consistency:false]) the Definition 4.5 consistency gate —
    with every finding as a unified diagnostic: [Ok (schema, warnings)]
    or [Error diagnostics].  {!parse} and {!parse_lenient} are this
    function with the diagnostics rendered to their legacy one-per-line
    text. *)

val parse : string -> (Schema.t, string) result
(** One-step convenience: lex, parse, lint, build, and check consistency
    (Definition 4.5).  The error string aggregates all diagnostics.
    Warnings are discarded; use {!build} to observe them. *)

val parse_lenient : string -> (Schema.t, string) result
(** Like {!parse} but without the consistency gate of Definition 4.5.
    Needed for the paper's own Example 6.1, whose schemas are {e not}
    interface consistent under Definition 4.3 as written: the object
    types declare [hasOT1: [OT1]] against the interface's [hasOT1: OT1],
    and no subtype rule derives [[OT1] ⊑ OT1] (rule 5 gives only the
    opposite direction).  See the errata list in DESIGN.md. *)

val parse_exn : string -> Schema.t
(** @raise Invalid_argument with the aggregated message on failure. *)
