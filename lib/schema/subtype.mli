(** The subtype relation [⊑S] (paper Section 4.3).

    [⊑S] is the smallest relation over [T ∪ WT] closed under the seven
    rules: (1) reflexivity, (2) interface implementation, (3) union
    membership, (4) list covariance, (5) injection into a list, (6)
    dropping non-null on the left, and (7) non-null covariance.

    In June-2018 GraphQL, interfaces implement nothing and unions contain
    only object types, so the named-type fragment of the relation has no
    nontrivial transitive chains; the wrapped fragment is decided
    structurally by the rules. *)

val named : Schema.t -> string -> string -> bool
(** [named s t u] decides [t ⊑S u] for named types. *)

val wrapped : Schema.t -> Wrapped.t -> Wrapped.t -> bool
(** [wrapped s a b] decides [a ⊑S b] over [T ∪ WT]. *)

val all_named : Schema.t -> string list
(** Every declared type name (objects, interfaces, unions, enums,
    scalars): the universe the relation is computed over. *)

val supertypes : Schema.t -> string -> string list
(** All named types [u] with [t ⊑S u], including [t]; sorted.  Used by the
    indexed validator to precompute per-label applicability of directive
    constraints. *)

val subtypes : Schema.t -> string -> string list
(** All named types [t] with [t ⊑S u], including [u]; sorted. *)
