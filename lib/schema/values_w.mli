(** The semantics of scalar and wrapped scalar types: the functions
    [values] and [valuesW] of paper Section 4.1.

    [values : Scalars -> 2^Vals] assigns a value set to every scalar type.
    For the five built-ins the sets are fixed (with the input-coercion
    tolerances of the GraphQL spec: [Float] accepts integer values, [ID]
    accepts strings and integers).  Enum types accept their declared
    symbols.  A user-declared scalar type (e.g. [scalar Time]) accepts any
    atomic value by default — the paper treats scalar-value membership as
    an oracle — unless a predicate is registered in the {!env}.

    [valuesW] extends [values] to wrapped types: non-null strips [null],
    list wraps into finite lists.  Property values stored in a graph
    ([sigma]) can never be [null] (sigma is partial instead), so for stored
    values nullability only matters inside directive arguments; {!ast_mem}
    covers that case. *)

type env
(** Registered semantics for user-declared scalar types. *)

val default_env : env
(** Every custom scalar accepts every atomic value. *)

val register : env -> string -> (Pg_graph.Value.t -> bool) -> env
(** [register env name p] makes the custom scalar [name] accept exactly the
    atomic values satisfying [p]. *)

val scalar_mem : ?env:env -> Schema.t -> string -> Pg_graph.Value.t -> bool
(** [scalar_mem schema t v] decides [v ∈ values(t)] for [t ∈ S].  Returns
    [false] if [t] is not a scalar or enum type of the schema. *)

val mem : ?env:env -> Schema.t -> Wrapped.t -> Pg_graph.Value.t -> bool
(** [mem schema wt v] decides [v ∈ valuesW(wt)] for a stored (non-null)
    property value.  List types require an actual list value whose elements
    are in the item type's value set ("the property value must be an array
    of values of the wrapped type", Section 3.2). *)

type checker = env -> Pg_graph.Value.t -> bool
(** A compiled membership test; the env is late-bound because custom
    scalar predicates are registered per check, not per schema. *)

val compile : Schema.t -> Wrapped.t -> checker
(** [compile sch wt] partially evaluates {!mem} on the schema and the
    wrapped type: [compile sch wt env v = mem ~env sch wt v] with the
    type-kind dispatch and schema lookups done once up front. *)

val ast_mem : ?env:env -> Schema.t -> Wrapped.t -> Pg_ir.Values.value -> bool
(** Membership for constant AST values, used to check directive argument
    values (Definition 4.4(2)); here [null] is a possible value and is in
    [valuesW(t)] exactly when the outermost wrapper is not non-null. *)

val value_of_ast : Pg_ir.Values.value -> Pg_graph.Value.t option
(** Convert a constant AST value into a storable property value; [None] for
    [null] and for object values, which cannot be property values. *)

val ast_of_value : Pg_graph.Value.t -> Pg_ir.Values.value
(** The embedding of property values into constant AST values. *)
