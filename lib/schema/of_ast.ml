module Ast = Pg_sdl.Ast
module Source = Pg_sdl.Source
module Sm = Map.Make (String)

type severity = Error | Warning

type diagnostic = { code : string; at : Source.span; severity : severity; message : string }

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s: %a: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    Source.pp_span d.at d.message

let to_diagnostic d =
  let severity = match d.severity with Error -> Pg_diag.Diag.Error | Warning -> Pg_diag.Diag.Warning in
  Pg_diag.Diag.make ~code:d.code ~severity ~span:d.at d.message

type ctx = {
  mutable diagnostics : diagnostic list;
  (* names of input object types: legal in the document but outside T *)
  input_objects : (string, unit) Hashtbl.t;
  (* every named type of the document plus built-ins, with its kind *)
  kinds : (string, Schema.kind) Hashtbl.t;
}

(* SCH001: the document does not translate to a Property Graph schema;
   SCH002: a construct was dropped or ignored (Section 3.6). *)
let error ctx at fmt =
  Format.kasprintf
    (fun message ->
      ctx.diagnostics <- { code = "SCH001"; at; severity = Error; message } :: ctx.diagnostics)
    fmt

let warning ctx at fmt =
  Format.kasprintf
    (fun message ->
      ctx.diagnostics <- { code = "SCH002"; at; severity = Warning; message } :: ctx.diagnostics)
    fmt

let directive_use (d : Ast.directive) : Schema.directive_use =
  { Schema.du_name = d.Ast.d_name; du_args = d.Ast.d_arguments }

let directive_uses ds = List.map directive_use ds

(* A field or argument type reference: must be one of the six wrapped
   forms and its base type must be known. *)
let wrapped_of ctx at (ty : Ast.type_ref) =
  match Wrapped.of_ast ty with
  | Error msg ->
    error ctx at "%s" msg;
    None
  | Ok wt ->
    let base = Wrapped.basetype wt in
    if Hashtbl.mem ctx.kinds base || Hashtbl.mem ctx.input_objects base then Some wt
    else begin
      error ctx at "unknown type %S" base;
      None
    end

(* Arguments of fields and of directive definitions must have base types in
   S (scalar or enum).  Input-object-typed arguments are dropped with a
   warning (Section 3.6); object/interface/union-typed arguments are
   invalid GraphQL. *)
let argument_of ctx owner (iv : Ast.input_value_def) : (string * Schema.argument) option =
  match wrapped_of ctx iv.Ast.iv_span iv.Ast.iv_type with
  | None -> None
  | Some wt -> (
    let base = Wrapped.basetype wt in
    if Hashtbl.mem ctx.input_objects base then begin
      warning ctx iv.Ast.iv_span
        "argument %S of %s has input object type %s and cannot describe an edge property; \
         ignored (Section 3.6)"
        iv.Ast.iv_name owner base;
      None
    end
    else
      match Hashtbl.find_opt ctx.kinds base with
      | Some (Schema.Scalar | Schema.Enum) ->
        Some
          ( iv.Ast.iv_name,
            {
              Schema.arg_type = wt;
              arg_directives = directive_uses iv.Ast.iv_directives;
              arg_default = iv.Ast.iv_default;
            } )
      | Some (Schema.Object | Schema.Interface | Schema.Union) ->
        error ctx iv.Ast.iv_span
          "argument %S of %s has type %s, which is not an input type" iv.Ast.iv_name owner
          base;
        None
      | None -> None)

let field_of ctx owner (f : Ast.field_def) : (string * Schema.field) option =
  match wrapped_of ctx f.Ast.f_span f.Ast.f_type with
  | None -> None
  | Some wt ->
    let base = Wrapped.basetype wt in
    if Hashtbl.mem ctx.input_objects base then begin
      error ctx f.Ast.f_span
        "field %S of %s has input object type %s, which is not an output type" f.Ast.f_name
        owner base;
      None
    end
    else begin
      let args =
        List.filter_map
          (fun iv -> argument_of ctx (Printf.sprintf "field %s.%s" owner f.Ast.f_name) iv)
          f.Ast.f_arguments
      in
      Some
        ( f.Ast.f_name,
          {
            Schema.fd_type = wt;
            fd_args = args;
            fd_directives = directive_uses f.Ast.f_directives;
            fd_description = f.Ast.f_description;
          } )
    end

(* ---------------------------------------------------------------- *)
(* Merging type extensions into their base definitions.              *)

let merge_extensions ctx (doc : Ast.document) =
  let base_defs =
    List.filter_map (function Ast.Type_definition td -> Some td | _ -> None) doc
  in
  let extensions =
    List.filter_map (function Ast.Type_extension ext -> Some ext | _ -> None) doc
  in
  let by_name = Hashtbl.create 16 in
  List.iter (fun td -> Hashtbl.replace by_name (Ast.type_def_name td) td) base_defs;
  let merged =
    List.fold_left
      (fun acc ext ->
        let apply name span combine =
          match Hashtbl.find_opt acc name with
          | None ->
            error ctx span "extension of undefined type %S" name;
            acc
          | Some base -> (
            match combine base with
            | Some td -> Hashtbl.replace acc name td; acc
            | None ->
              error ctx span "extension of %S does not match the kind of its definition" name;
              acc)
        in
        match ext with
        | Ast.Object_extension d ->
          apply d.Ast.o_name d.Ast.o_span (function
            | Ast.Object_type base ->
              Some
                (Ast.Object_type
                   {
                     base with
                     Ast.o_interfaces = base.Ast.o_interfaces @ d.Ast.o_interfaces;
                     o_directives = base.Ast.o_directives @ d.Ast.o_directives;
                     o_fields = base.Ast.o_fields @ d.Ast.o_fields;
                   })
            | _ -> None)
        | Ast.Interface_extension d ->
          apply d.Ast.i_name d.Ast.i_span (function
            | Ast.Interface_type base ->
              Some
                (Ast.Interface_type
                   {
                     base with
                     Ast.i_directives = base.Ast.i_directives @ d.Ast.i_directives;
                     i_fields = base.Ast.i_fields @ d.Ast.i_fields;
                   })
            | _ -> None)
        | Ast.Union_extension d ->
          apply d.Ast.u_name d.Ast.u_span (function
            | Ast.Union_type base ->
              Some
                (Ast.Union_type
                   {
                     base with
                     Ast.u_directives = base.Ast.u_directives @ d.Ast.u_directives;
                     u_members = base.Ast.u_members @ d.Ast.u_members;
                   })
            | _ -> None)
        | Ast.Enum_extension d ->
          apply d.Ast.e_name d.Ast.e_span (function
            | Ast.Enum_type base ->
              Some
                (Ast.Enum_type
                   {
                     base with
                     Ast.e_directives = base.Ast.e_directives @ d.Ast.e_directives;
                     e_values = base.Ast.e_values @ d.Ast.e_values;
                   })
            | _ -> None)
        | Ast.Scalar_extension d ->
          apply d.Ast.s_name d.Ast.s_span (function
            | Ast.Scalar_type base ->
              Some
                (Ast.Scalar_type
                   { base with Ast.s_directives = base.Ast.s_directives @ d.Ast.s_directives })
            | _ -> None)
        | Ast.Input_object_extension d ->
          apply d.Ast.io_name d.Ast.io_span (function
            | Ast.Input_object_type base ->
              Some
                (Ast.Input_object_type
                   {
                     base with
                     Ast.io_directives = base.Ast.io_directives @ d.Ast.io_directives;
                     io_fields = base.Ast.io_fields @ d.Ast.io_fields;
                   })
            | _ -> None))
      by_name extensions
  in
  (* keep original document order *)
  List.filter_map
    (fun td ->
      let name = Ast.type_def_name td in
      match Hashtbl.find_opt merged name with
      | Some td' ->
        Hashtbl.remove merged name;
        Some td'
      | None -> None)
    base_defs

(* ---------------------------------------------------------------- *)

let build (doc : Ast.document) =
  let lint_issues = Pg_sdl.Lint.check doc in
  let ctx =
    {
      diagnostics =
        List.rev_map
          (fun (i : Pg_sdl.Lint.issue) ->
            {
              code = i.Pg_sdl.Lint.code;
              at = i.Pg_sdl.Lint.at;
              severity = (match i.Pg_sdl.Lint.severity with Pg_sdl.Lint.Error -> Error | Pg_sdl.Lint.Warning -> Warning);
              message = i.Pg_sdl.Lint.message;
            })
          lint_issues;
      input_objects = Hashtbl.create 8;
      kinds = Hashtbl.create 32;
    }
  in
  let type_defs = merge_extensions ctx doc in
  (* pass 1: register names and kinds (built-ins first) *)
  List.iter (fun b -> Hashtbl.replace ctx.kinds b Schema.Scalar) Schema.builtin_scalar_names;
  List.iter
    (fun td ->
      match td with
      | Ast.Scalar_type d -> Hashtbl.replace ctx.kinds d.Ast.s_name Schema.Scalar
      | Ast.Object_type d -> Hashtbl.replace ctx.kinds d.Ast.o_name Schema.Object
      | Ast.Interface_type d -> Hashtbl.replace ctx.kinds d.Ast.i_name Schema.Interface
      | Ast.Union_type d -> Hashtbl.replace ctx.kinds d.Ast.u_name Schema.Union
      | Ast.Enum_type d -> Hashtbl.replace ctx.kinds d.Ast.e_name Schema.Enum
      | Ast.Input_object_type d -> Hashtbl.replace ctx.input_objects d.Ast.io_name ())
    type_defs;
  (* pass 2: build the schema *)
  let sch = ref Schema.empty in
  (* user-declared directive definitions first, so occurrences can refer to
     them regardless of document order *)
  List.iter
    (function
      | Ast.Directive_definition (dd : Ast.directive_def) ->
        let args =
          List.filter_map
            (fun iv -> argument_of ctx (Printf.sprintf "directive @%s" dd.Ast.dd_name) iv)
            dd.Ast.dd_arguments
        in
        sch :=
          Schema.add_directive_def !sch dd.Ast.dd_name
            { Schema.dd_args = args; dd_locations = dd.Ast.dd_locations }
      | Ast.Schema_definition _ | Ast.Type_definition _ | Ast.Type_extension _ -> ())
    doc;
  List.iter
    (fun td ->
      match td with
      | Ast.Scalar_type d ->
        sch :=
          Schema.add_scalar !sch d.Ast.s_name
            {
              Schema.sc_builtin = false;
              sc_directives = directive_uses d.Ast.s_directives;
              sc_description = d.Ast.s_description;
            }
      | Ast.Enum_type d ->
        sch :=
          Schema.add_enum !sch d.Ast.e_name
            {
              Schema.et_values = List.map (fun (ev : Ast.enum_value_def) -> ev.Ast.ev_name) d.Ast.e_values;
              et_directives = directive_uses d.Ast.e_directives;
              et_description = d.Ast.e_description;
            }
      | Ast.Union_type d ->
        List.iter
          (fun m ->
            match Hashtbl.find_opt ctx.kinds m with
            | Some Schema.Object -> ()
            | Some _ ->
              error ctx d.Ast.u_span "union %S member %S is not an object type" d.Ast.u_name m
            | None -> error ctx d.Ast.u_span "union %S member %S is undefined" d.Ast.u_name m)
          d.Ast.u_members;
        sch :=
          Schema.add_union !sch d.Ast.u_name
            {
              Schema.ut_members = d.Ast.u_members;
              ut_directives = directive_uses d.Ast.u_directives;
              ut_description = d.Ast.u_description;
            }
      | Ast.Interface_type d ->
        let fields =
          List.filter_map (fun f -> field_of ctx ("interface " ^ d.Ast.i_name) f) d.Ast.i_fields
        in
        sch :=
          Schema.add_interface !sch d.Ast.i_name
            {
              Schema.it_fields = fields;
              it_directives = directive_uses d.Ast.i_directives;
              it_description = d.Ast.i_description;
            }
      | Ast.Object_type d ->
        List.iter
          (fun i ->
            match Hashtbl.find_opt ctx.kinds i with
            | Some Schema.Interface -> ()
            | Some _ ->
              error ctx d.Ast.o_span "type %S implements %S, which is not an interface"
                d.Ast.o_name i
            | None ->
              error ctx d.Ast.o_span "type %S implements undefined interface %S" d.Ast.o_name i)
          d.Ast.o_interfaces;
        let fields =
          List.filter_map (fun f -> field_of ctx ("type " ^ d.Ast.o_name) f) d.Ast.o_fields
        in
        sch :=
          Schema.add_object !sch d.Ast.o_name
            {
              Schema.ot_interfaces = d.Ast.o_interfaces;
              ot_fields = fields;
              ot_directives = directive_uses d.Ast.o_directives;
              ot_description = d.Ast.o_description;
            }
      | Ast.Input_object_type d ->
        (* outside T; remembered only so argument types can be resolved *)
        warning ctx d.Ast.io_span
          "input type %S is outside the Property Graph schema formalization and is ignored"
          d.Ast.io_name)
    type_defs;
  (* root operation types: ignored for Property Graph purposes (3.6) *)
  List.iter
    (function
      | Ast.Schema_definition (sd : Ast.schema_def) ->
        List.iter
          (fun (op, ty) ->
            match Hashtbl.find_opt ctx.kinds ty with
            | Some Schema.Object ->
              warning ctx sd.Ast.sd_span
                "root operation type %s: %s is ignored for Property Graph validation \
                 (Section 3.6)"
                (Ast.operation_type_name op) ty
            | Some _ ->
              error ctx sd.Ast.sd_span "root operation type %S is not an object type" ty
            | None -> error ctx sd.Ast.sd_span "root operation type %S is undefined" ty)
          sd.Ast.sd_operations
      | Ast.Type_definition _ | Ast.Type_extension _ | Ast.Directive_definition _ -> ())
    doc;
  let diagnostics = List.rev ctx.diagnostics in
  let errors = List.filter (fun d -> d.severity = Error) diagnostics in
  if errors <> [] then Result.Error diagnostics
  else Ok (Schema.rebuild_implementations !sch, diagnostics)

(* The structured front door: every stage's findings as unified
   diagnostics.  [parse] and [parse_lenient] below render these to the
   exact legacy strings, so the two views can never drift. *)
let parse_full ?(consistency = true) text =
  match Pg_sdl.Parser.parse_with_recovery text with
  | _, (_ :: _ as errors) ->
    (* every syntax error found in the document, in source order *)
    Result.Error (List.map Source.to_diagnostic errors)
  | doc, [] -> (
    match build doc with
    | Result.Error diagnostics -> Result.Error (List.map to_diagnostic diagnostics)
    | Ok (sch, warnings) ->
      if not consistency then Ok (sch, List.map to_diagnostic warnings)
      else (
        match Consistency.check sch with
        | [] -> Ok (sch, List.map to_diagnostic warnings)
        | issues -> Result.Error (List.map Consistency.to_diagnostic issues)))

let parse_with ~check_consistency text =
  match parse_full ~consistency:check_consistency text with
  | Ok (sch, _warnings) -> Ok sch
  | Result.Error diagnostics ->
    (* one rendered line per diagnostic, identical to the historical
       aggregated error strings *)
    Result.Error (String.concat "\n" (List.map Pg_diag.Diag.to_text diagnostics))

let parse text = parse_with ~check_consistency:true text
let parse_lenient text = parse_with ~check_consistency:false text

let parse_exn text =
  match parse text with Ok sch -> sch | Result.Error msg -> invalid_arg msg
