(* The compiled schema: every name the validation rules consult is
   resolved to an interned id, the named-subtype relation is a bitset
   matrix over the schema's type universe, and the directive constraint
   tables are grouped per owning label.  Compiled once per schema, reused
   by every engine and every check.

   The type universe is [Subtype.all_named] plus every basetype referenced
   by a field (targets of WS3/DS4 subtype queries) and every union member,
   interned first so the matrix covers all ids below [n_types].  Graph
   labels interned later (by {!Pg_graph.Snapshot.build}) get ids >=
   [n_types] and are a subtype of nothing, which is exactly the semantics
   of [Subtype.named] for names outside the schema (the right-hand side of
   every rule's subtype query is a schema name). *)

module Sm = Map.Make (String)
module Symtab = Pg_graph.Symtab

type arg_info = { ai_type_str : string; ai_mem : Values_w.checker }

type field_info = {
  fi_field : int;  (* interned field name *)
  fi_name : string;
  fi_type_str : string;  (* Wrapped.to_string fd_type, for messages *)
  fi_attr : bool;  (* attribute (scalar-like base) vs relationship *)
  fi_list : bool;
  fi_base : int;  (* interned basetype; always < n_types *)
  fi_mem : Values_w.checker;
  fi_args : (int * arg_info) array;  (* sorted by interned argument name *)
}

type field_constraint = {
  fc_owner : int;
  fc_owner_name : string;
  fc_field : int;
  fc_field_name : string;
  fc_info : field_info;
}

type key = {
  key_owner : int;
  key_owner_name : string;
  key_fields : string list;  (* as declared, for messages *)
  key_attrs : int array;  (* the attribute-typed key fields, interned *)
  key_attr_names : string array;
}

type t = {
  schema : Schema.t;
  symtab : Symtab.t;
  n_types : int;
  sub_bits : Bytes.t;  (* row-major [l * n_types + u] *)
  object_at : bool array;
  open_at : bool array;  (* type sym -> @open object type (SS2 exempt) *)
  fields_at : field_info array array;  (* type sym -> fields sorted by fi_field *)
  required_at : field_constraint array array;  (* label sym -> @required, label ⊑ owner *)
  required_tgt_at : field_constraint array array;  (* label sym -> @requiredForTarget, label ⊑ base *)
  distinct_at : field_constraint array array;  (* source label sym -> @distinct *)
  no_loops_at : field_constraint array array;
  unique_tgt : field_constraint array;  (* @uniqueForTarget; cannot be label-grouped *)
  keys : key array;
}

let schema t = t.schema
let symtab t = t.symtab
let n_types t = t.n_types
let find t name = Symtab.find t.symtab name
let name t id = Symtab.name t.symtab id

let set_bit bits i =
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Bytes.set bits byte (Char.chr (Char.code (Bytes.get bits byte) lor mask))

let is_sub t l u = l < t.n_types && Char.code (Bytes.get t.sub_bits ((l * t.n_types + u) lsr 3)) lsr ((l * t.n_types + u) land 7) land 1 = 1

let is_object t l = l < t.n_types && t.object_at.(l)
let is_open t l = l < t.n_types && t.open_at.(l)

(* Binary search of a field row sorted by [fi_field]. *)
let field_in (row : field_info array) fsym =
  let lo = ref 0 and hi = ref (Array.length row) in
  let found = ref None in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let fi = row.(mid) in
    if fi.fi_field = fsym then begin
      found := Some fi;
      lo := !hi
    end
    else if fi.fi_field < fsym then lo := mid + 1
    else hi := mid
  done;
  !found

let field t l fsym = if l < t.n_types then field_in t.fields_at.(l) fsym else None

let arg (fi : field_info) asym =
  let row = fi.fi_args in
  let lo = ref 0 and hi = ref (Array.length row) in
  let found = ref None in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let a, info = row.(mid) in
    if a = asym then begin
      found := Some info;
      lo := !hi
    end
    else if a < asym then lo := mid + 1
    else hi := mid
  done;
  !found

let no_constraints : field_constraint array = [||]

let required_at t l = if l < t.n_types then t.required_at.(l) else no_constraints
let required_tgt_at t l = if l < t.n_types then t.required_tgt_at.(l) else no_constraints
let distinct_at t l = if l < t.n_types then t.distinct_at.(l) else no_constraints
let no_loops_at t l = if l < t.n_types then t.no_loops_at.(l) else no_constraints
let unique_tgt t = t.unique_tgt
let keys t = t.keys

(* Name-keyed lookups for callers that work on the mutable graph rather
   than a snapshot (the Incremental engine). *)
let field_named t l fname =
  match find t fname with Some fsym -> field t l fsym | None -> None

let arg_named t fi aname =
  match find t aname with Some asym -> arg fi asym | None -> None

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

let dedup_first key_of l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      let k = key_of x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    l

let build_field sch st (fname, (fd : Schema.field)) =
  let wt = fd.Schema.fd_type in
  let base = Wrapped.basetype wt in
  let args =
    dedup_first fst fd.Schema.fd_args
    |> List.map (fun (a, (arg : Schema.argument)) ->
           ( Symtab.intern st a,
             {
               ai_type_str = Wrapped.to_string arg.Schema.arg_type;
               ai_mem = Values_w.compile sch arg.Schema.arg_type;
             } ))
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    |> Array.of_list
  in
  {
    fi_field = Symtab.intern st fname;
    fi_name = fname;
    fi_type_str = Wrapped.to_string wt;
    fi_attr = Schema.is_scalar_like sch base;
    fi_list = Wrapped.is_list wt;
    fi_base = Symtab.intern st base;
    fi_mem = Values_w.compile sch wt;
    fi_args = args;
  }

let compile sch =
  let st = Symtab.create ~size_hint:64 () in
  (* the type universe: declared names, field basetypes, union members *)
  List.iter (fun n -> ignore (Symtab.intern st n)) (Subtype.all_named sch);
  let owners = Schema.object_names sch @ Schema.interface_names sch in
  List.iter
    (fun t ->
      List.iter
        (fun (_, (fd : Schema.field)) ->
          ignore (Symtab.intern st (Wrapped.basetype fd.Schema.fd_type)))
        (Schema.fields sch t))
    owners;
  List.iter
    (fun u -> List.iter (fun m -> ignore (Symtab.intern st m)) (Schema.union_members sch u))
    (Schema.union_names sch);
  let n_types = Symtab.size st in
  (* the named-subtype relation: reflexivity, interface implementation,
     union membership — exactly [Subtype.named] restricted to the
     universe *)
  let sub_bits = Bytes.make (((n_types * n_types) + 7) / 8) '\000' in
  for i = 0 to n_types - 1 do
    set_bit sub_bits ((i * n_types) + i)
  done;
  let relate t u =
    match Symtab.find st t with
    | Some tsym -> set_bit sub_bits ((tsym * n_types) + u)
    | None -> ()
  in
  List.iter
    (fun iface ->
      let usym = Symtab.intern st iface in
      List.iter (fun t -> relate t usym) (Schema.implementations_of sch iface))
    (Schema.interface_names sch);
  List.iter
    (fun union ->
      let usym = Symtab.intern st union in
      List.iter (fun t -> relate t usym) (Schema.union_members sch union))
    (Schema.union_names sch);
  let object_at = Array.make n_types false in
  List.iter (fun o -> object_at.(Symtab.intern st o) <- true) (Schema.object_names sch);
  let open_at = Array.make n_types false in
  List.iter
    (fun o -> if Schema.is_open sch o then open_at.(Symtab.intern st o) <- true)
    (Schema.object_names sch);
  (* field tables per type *)
  let fields_at = Array.make n_types [||] in
  List.iter
    (fun t ->
      let row =
        dedup_first fst (Schema.fields sch t)
        |> List.map (build_field sch st)
        |> Array.of_list
      in
      Array.sort (fun a b -> compare a.fi_field b.fi_field) row;
      fields_at.(Symtab.intern st t) <- row)
    owners;
  (* directive constraint tables *)
  let constrained directive =
    List.concat_map
      (fun owner ->
        List.filter_map
          (fun (fname, (fd : Schema.field)) ->
            if Schema.has_directive fd.Schema.fd_directives directive then
              Some
                {
                  fc_owner = Symtab.intern st owner;
                  fc_owner_name = owner;
                  fc_field = Symtab.intern st fname;
                  fc_field_name = fname;
                  fc_info = build_field sch st (fname, fd);
                }
            else None)
          (Schema.fields sch owner))
      owners
  in
  let test_sub l u =
    Char.code (Bytes.get sub_bits (((l * n_types) + u) lsr 3)) lsr (((l * n_types) + u) land 7) land 1 = 1
  in
  let rows_by pred cs = Array.init n_types (fun l -> Array.of_list (List.filter (pred l) cs)) in
  let required = constrained "required" in
  let required_tgt = constrained "requiredForTarget" in
  let distinct = constrained "distinct" in
  let no_loops = constrained "noLoops" in
  let unique_tgt = Array.of_list (constrained "uniqueForTarget") in
  let key_of_type owner directives acc =
    List.fold_left
      (fun acc du ->
        match Schema.key_fields du with
        | Some fs ->
          let attrs =
            List.filter
              (fun f ->
                match Schema.type_f sch owner f with
                | Some wt -> Schema.is_scalar_like sch (Wrapped.basetype wt)
                | None -> false)
              fs
          in
          {
            key_owner = Symtab.intern st owner;
            key_owner_name = owner;
            key_fields = fs;
            key_attrs = Array.of_list (List.map (Symtab.intern st) attrs);
            key_attr_names = Array.of_list attrs;
          }
          :: acc
        | None -> acc)
      acc
      (Schema.find_directives directives "key")
  in
  let keys =
    let acc =
      List.fold_left
        (fun acc o -> key_of_type o (Sm.find o sch.Schema.objects).Schema.ot_directives acc)
        [] (Schema.object_names sch)
    in
    let acc =
      List.fold_left
        (fun acc i -> key_of_type i (Sm.find i sch.Schema.interfaces).Schema.it_directives acc)
        acc (Schema.interface_names sch)
    in
    Array.of_list (List.rev acc)
  in
  {
    schema = sch;
    symtab = st;
    n_types;
    sub_bits;
    object_at;
    open_at;
    fields_at;
    required_at = rows_by (fun l fc -> test_sub l fc.fc_owner) required;
    required_tgt_at = rows_by (fun l fc -> test_sub l fc.fc_info.fi_base) required_tgt;
    distinct_at = rows_by (fun l fc -> test_sub l fc.fc_owner) distinct;
    no_loops_at = rows_by (fun l fc -> test_sub l fc.fc_owner) no_loops;
    unique_tgt;
    keys;
  }

(* The single lowering entry point of the frontend-neutral core: any
   frontend (SDL via [Of_ast], PG-Schema via [Pg_pgschema.Lower], or a
   programmatic builder) produces a [Schema.t]; everything downstream —
   engines, governor, server, diagnostics — consumes the plan. *)
let of_schema = compile
