(** The compiled validation plan: a schema with every name the rules of
    Section 5 consult resolved to an interned id, the named-subtype
    relation precomputed as a bitset matrix, and the directive constraint
    tables grouped per owning label.

    Compile once per schema ({!compile}), then share read-only: engines
    resolve a graph against the plan by freezing it into a
    {!Pg_graph.Snapshot} over the same symbol table.  Symbols below
    {!n_types} are the schema's type universe (covered by the subtype
    matrix); later symbols are field/argument/property names and
    graph-only labels, which are subtypes of nothing — matching
    [Subtype.named] for names outside the schema.

    Reusing one plan across checks is sequential-only: freezing a graph
    interns new labels into the plan's symbol table.  Within a single
    check the plan is frozen before kernels run, so sharing across the
    {!Parallel} engine's domains is safe. *)

type arg_info = { ai_type_str : string; ai_mem : Values_w.checker }

type field_info = {
  fi_field : int;  (** interned field name *)
  fi_name : string;
  fi_type_str : string;  (** [Wrapped.to_string] of the field type *)
  fi_attr : bool;  (** attribute definition (scalar-like basetype)? *)
  fi_list : bool;
  fi_base : int;  (** interned basetype; always below {!n_types} *)
  fi_mem : Values_w.checker;
  fi_args : (int * arg_info) array;  (** sorted by interned argument name *)
}

type field_constraint = {
  fc_owner : int;
  fc_owner_name : string;
  fc_field : int;
  fc_field_name : string;
  fc_info : field_info;
}

type key = {
  key_owner : int;
  key_owner_name : string;
  key_fields : string list;  (** as declared, for messages *)
  key_attrs : int array;  (** the attribute-typed key fields, interned *)
  key_attr_names : string array;
}

type t

val compile : Schema.t -> t

val of_schema : Schema.t -> t
(** The documented lowering entry point of the frontend-neutral core
    (alias of {!compile}): every schema frontend — SDL ([Of_ast]),
    PG-Schema ([Pg_pgschema.Lower]), or a programmatic builder —
    produces a {!Schema.t}, and this is the only way schemas reach the
    engines.  Nothing below this point knows which surface language the
    schema came from. *)

val schema : t -> Schema.t
val symtab : t -> Pg_graph.Symtab.t

val n_types : t -> int

val find : t -> string -> int option
(** Interned id of a name, without interning ([None] if never seen). *)

val name : t -> int -> string
(** Reverse lookup, for diagnostics. *)

val is_sub : t -> int -> int -> bool
(** [is_sub plan l u] decides [l ⊑S u] ([Subtype.named]).  [u] must be a
    schema type symbol (below {!n_types}); [l] may be any symbol. *)

val is_object : t -> int -> bool
(** Is the symbol the name of an object type (SS1)? *)

val is_open : t -> int -> bool
(** Is the symbol the name of an [@open] object type?  Compiled
    {!Schema.is_open}: nodes of an open type keep their WS1 typing of
    declared properties but are exempt from SS2 (undeclared properties
    are allowed). *)

val field : t -> int -> int -> field_info option
(** [field plan l f]: the declaration of field [f] on object or interface
    type [l] — the compiled [Schema.type_f]. *)

val arg : field_info -> int -> arg_info option
(** Compiled [Schema.arg_type]. *)

val field_named : t -> int -> string -> field_info option
(** {!field} with a string field name (for graph-level callers). *)

val arg_named : t -> field_info -> string -> arg_info option

val required_at : t -> int -> field_constraint array
(** The [@required] constraints applying to nodes labelled [l]
    (those with [l ⊑ owner]): the DS5/DS6 work list. *)

val required_tgt_at : t -> int -> field_constraint array
(** The [@requiredForTarget] constraints whose target basetype [l] is a
    subtype of: the DS4 work list. *)

val distinct_at : t -> int -> field_constraint array
(** The [@distinct] constraints applying to source label [l] (DS1). *)

val no_loops_at : t -> int -> field_constraint array
(** The [@noLoops] constraints applying to source label [l] (DS2). *)

val unique_tgt : t -> field_constraint array
(** All [@uniqueForTarget] constraints (DS3 filters by source label per
    edge group; the target label is unconstrained). *)

val keys : t -> key array
(** All [@key] constraints (DS7). *)
