(** Schema consistency (paper Definitions 4.3, 4.4, 4.5).

    A schema is {e consistent} when it is interface consistent — every
    implementing object type provides at least the interface's fields, at
    covariant types, with matching argument types and no extra non-null
    arguments — and directives consistent — every directive occurrence
    supplies values for all non-null declared arguments and only supplies
    values that belong to the declared argument types. *)

type issue =
  | Missing_field of { interface : string; object_type : string; field : string }
      (** Definition 4.3(1), first half *)
  | Field_type_not_subtype of {
      interface : string;
      object_type : string;
      field : string;
      interface_type : Wrapped.t;
      object_field_type : Wrapped.t;
    }  (** Definition 4.3(1), second half: [typeS(f, ot) ⋢S typeS(f, it)] *)
  | Missing_argument of {
      interface : string;
      object_type : string;
      field : string;
      argument : string;
    }  (** Definition 4.3(2), first half *)
  | Argument_type_mismatch of {
      interface : string;
      object_type : string;
      field : string;
      argument : string;
      interface_arg_type : Wrapped.t;
      object_arg_type : Wrapped.t;
    }  (** Definition 4.3(2): argument types must be equal *)
  | Extra_non_null_argument of {
      interface : string;
      object_type : string;
      field : string;
      argument : string;
    }  (** Definition 4.3(3) *)
  | Unknown_directive of { directive : string; context : string }
      (** the occurrence's name is not in [D] *)
  | Unknown_directive_argument of { directive : string; argument : string; context : string }
      (** [argvals] is defined outside [argsS(d)] *)
  | Missing_directive_argument of { directive : string; argument : string; context : string }
      (** Definition 4.4(1): a non-null argument has no value *)
  | Directive_argument_type_error of {
      directive : string;
      argument : string;
      context : string;
      expected : Wrapped.t;
      value : Pg_ir.Values.value;
    }  (** Definition 4.4(2): [argvals(a) ∉ valuesW(typeAD(d, a))] *)

val pp_issue : Format.formatter -> issue -> unit
val issue_to_string : issue -> string

val code : issue -> string
(** The stable code of the issue's rule: [SCH010] ... [SCH018]. *)

val to_diagnostic : issue -> Pg_diag.Diag.t
(** Severity error; the subject names the type or directive context.
    Consistency issues carry no source span (they are facts about the
    built schema, not about a document position). *)

val check_interfaces : Schema.t -> issue list
(** Interface consistency (Definition 4.3). *)

val check_directives : ?env:Values_w.env -> Schema.t -> issue list
(** Directives consistency (Definition 4.4), over every directive
    occurrence on types, fields, and field arguments. *)

val check : ?env:Values_w.env -> Schema.t -> issue list
(** Consistency (Definition 4.5): both checks, in order. *)

val is_consistent : ?env:Values_w.env -> Schema.t -> bool
