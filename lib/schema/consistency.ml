module Sm = Map.Make (String)

type issue =
  | Missing_field of { interface : string; object_type : string; field : string }
  | Field_type_not_subtype of {
      interface : string;
      object_type : string;
      field : string;
      interface_type : Wrapped.t;
      object_field_type : Wrapped.t;
    }
  | Missing_argument of {
      interface : string;
      object_type : string;
      field : string;
      argument : string;
    }
  | Argument_type_mismatch of {
      interface : string;
      object_type : string;
      field : string;
      argument : string;
      interface_arg_type : Wrapped.t;
      object_arg_type : Wrapped.t;
    }
  | Extra_non_null_argument of {
      interface : string;
      object_type : string;
      field : string;
      argument : string;
    }
  | Unknown_directive of { directive : string; context : string }
  | Unknown_directive_argument of { directive : string; argument : string; context : string }
  | Missing_directive_argument of { directive : string; argument : string; context : string }
  | Directive_argument_type_error of {
      directive : string;
      argument : string;
      context : string;
      expected : Wrapped.t;
      value : Pg_ir.Values.value;
    }

let pp_issue ppf = function
  | Missing_field { interface; object_type; field } ->
    Format.fprintf ppf "type %s implements %s but lacks its field %S" object_type interface
      field
  | Field_type_not_subtype { interface; object_type; field; interface_type; object_field_type }
    ->
    Format.fprintf ppf
      "field %S of type %s has type %a, which is not a subtype of %a declared by interface %s"
      field object_type Wrapped.pp object_field_type Wrapped.pp interface_type interface
  | Missing_argument { interface; object_type; field; argument } ->
    Format.fprintf ppf
      "field %S of type %s lacks argument %S required by interface %s" field object_type
      argument interface
  | Argument_type_mismatch
      { interface; object_type; field; argument; interface_arg_type; object_arg_type } ->
    Format.fprintf ppf
      "argument %S of field %S in type %s has type %a, but interface %s declares %a" argument
      field object_type Wrapped.pp object_arg_type interface Wrapped.pp interface_arg_type
  | Extra_non_null_argument { interface; object_type; field; argument } ->
    Format.fprintf ppf
      "argument %S of field %S in type %s is non-null but is not declared by interface %s"
      argument field object_type interface
  | Unknown_directive { directive; context } ->
    Format.fprintf ppf "unknown directive @%s on %s" directive context
  | Unknown_directive_argument { directive; argument; context } ->
    Format.fprintf ppf "directive @%s on %s has undeclared argument %S" directive context
      argument
  | Missing_directive_argument { directive; argument; context } ->
    Format.fprintf ppf "directive @%s on %s is missing its non-null argument %S" directive
      context argument
  | Directive_argument_type_error { directive; argument; context; expected; value } ->
    Format.fprintf ppf
      "argument %S of directive @%s on %s has value %s, which is not in valuesW(%a)" argument
      directive context
      (Pg_ir.Values.to_string value)
      Wrapped.pp expected

let issue_to_string i = Format.asprintf "%a" pp_issue i

(* Stable codes SCH010-SCH018, one per consistency rule. *)
let code = function
  | Missing_field _ -> "SCH010"
  | Field_type_not_subtype _ -> "SCH011"
  | Missing_argument _ -> "SCH012"
  | Argument_type_mismatch _ -> "SCH013"
  | Extra_non_null_argument _ -> "SCH014"
  | Unknown_directive _ -> "SCH015"
  | Unknown_directive_argument _ -> "SCH016"
  | Missing_directive_argument _ -> "SCH017"
  | Directive_argument_type_error _ -> "SCH018"

let subject = function
  | Missing_field { object_type; _ }
  | Field_type_not_subtype { object_type; _ }
  | Missing_argument { object_type; _ }
  | Argument_type_mismatch { object_type; _ }
  | Extra_non_null_argument { object_type; _ } -> Printf.sprintf "type %s" object_type
  | Unknown_directive { context; _ }
  | Unknown_directive_argument { context; _ }
  | Missing_directive_argument { context; _ }
  | Directive_argument_type_error { context; _ } -> context

let to_diagnostic i =
  Pg_diag.Diag.error ~code:(code i) ~subject:(subject i) (issue_to_string i)

(* Definition 4.3 *)
let check_interfaces (sch : Schema.t) =
  let check_implementation it_name (it : Schema.interface_type) ot_name issues =
    List.fold_left
      (fun issues (f_name, (it_field : Schema.field)) ->
        match Schema.field sch ot_name f_name with
        | None ->
          Missing_field { interface = it_name; object_type = ot_name; field = f_name }
          :: issues
        | Some ot_field ->
          let issues =
            if Subtype.wrapped sch ot_field.Schema.fd_type it_field.Schema.fd_type then issues
            else
              Field_type_not_subtype
                {
                  interface = it_name;
                  object_type = ot_name;
                  field = f_name;
                  interface_type = it_field.Schema.fd_type;
                  object_field_type = ot_field.Schema.fd_type;
                }
              :: issues
          in
          (* 4.3(2): interface arguments present with equal types *)
          let issues =
            List.fold_left
              (fun issues (a_name, (it_arg : Schema.argument)) ->
                match List.assoc_opt a_name ot_field.Schema.fd_args with
                | None ->
                  Missing_argument
                    {
                      interface = it_name;
                      object_type = ot_name;
                      field = f_name;
                      argument = a_name;
                    }
                  :: issues
                | Some ot_arg ->
                  if Wrapped.equal ot_arg.Schema.arg_type it_arg.Schema.arg_type then issues
                  else
                    Argument_type_mismatch
                      {
                        interface = it_name;
                        object_type = ot_name;
                        field = f_name;
                        argument = a_name;
                        interface_arg_type = it_arg.Schema.arg_type;
                        object_arg_type = ot_arg.Schema.arg_type;
                      }
                    :: issues)
              issues it_field.Schema.fd_args
          in
          (* 4.3(3): extra arguments must be nullable *)
          List.fold_left
            (fun issues (a_name, (ot_arg : Schema.argument)) ->
              if List.mem_assoc a_name it_field.Schema.fd_args then issues
              else if Wrapped.is_non_null ot_arg.Schema.arg_type then
                Extra_non_null_argument
                  {
                    interface = it_name;
                    object_type = ot_name;
                    field = f_name;
                    argument = a_name;
                  }
                :: issues
              else issues)
            issues ot_field.Schema.fd_args)
      issues it.Schema.it_fields
  in
  let issues =
    Sm.fold
      (fun it_name it issues ->
        List.fold_left
          (fun issues ot_name -> check_implementation it_name it ot_name issues)
          issues
          (Schema.implementations_of sch it_name))
      sch.Schema.interfaces []
  in
  List.rev issues

(* Definition 4.4, applied to one directive occurrence *)
let check_directive_use ?env (sch : Schema.t) context (du : Schema.directive_use) issues =
  match Schema.directive_args sch du.Schema.du_name with
  | None -> Unknown_directive { directive = du.Schema.du_name; context } :: issues
  | Some declared ->
    (* unknown arguments *)
    let issues =
      List.fold_left
        (fun issues (a_name, _) ->
          if List.mem_assoc a_name declared then issues
          else
            Unknown_directive_argument
              { directive = du.Schema.du_name; argument = a_name; context }
            :: issues)
        issues du.Schema.du_args
    in
    (* 4.4(1): non-null declared arguments must be given *)
    let issues =
      List.fold_left
        (fun issues (a_name, (arg : Schema.argument)) ->
          if
            Wrapped.is_non_null arg.Schema.arg_type
            && (not (List.mem_assoc a_name du.Schema.du_args))
            && arg.Schema.arg_default = None
          then
            Missing_directive_argument
              { directive = du.Schema.du_name; argument = a_name; context }
            :: issues
          else issues)
        issues declared
    in
    (* 4.4(2): given values must be in valuesW of the declared type *)
    List.fold_left
      (fun issues (a_name, value) ->
        match List.assoc_opt a_name declared with
        | None -> issues (* already reported as unknown *)
        | Some (arg : Schema.argument) ->
          if Values_w.ast_mem ?env sch arg.Schema.arg_type value then issues
          else
            Directive_argument_type_error
              {
                directive = du.Schema.du_name;
                argument = a_name;
                context;
                expected = arg.Schema.arg_type;
                value;
              }
            :: issues)
      issues du.Schema.du_args

let check_directives ?env (sch : Schema.t) =
  let check_uses context uses issues =
    List.fold_left (fun issues du -> check_directive_use ?env sch context du issues) issues uses
  in
  let check_fields owner fields issues =
    List.fold_left
      (fun issues (f_name, (fd : Schema.field)) ->
        let issues =
          check_uses (Printf.sprintf "field %s.%s" owner f_name) fd.Schema.fd_directives issues
        in
        List.fold_left
          (fun issues (a_name, (arg : Schema.argument)) ->
            check_uses
              (Printf.sprintf "argument %s.%s(%s:)" owner f_name a_name)
              arg.Schema.arg_directives issues)
          issues fd.Schema.fd_args)
      issues fields
  in
  let issues = [] in
  let issues =
    Sm.fold
      (fun name (ot : Schema.object_type) issues ->
        let issues = check_uses (Printf.sprintf "type %s" name) ot.Schema.ot_directives issues in
        check_fields name ot.Schema.ot_fields issues)
      sch.Schema.objects issues
  in
  let issues =
    Sm.fold
      (fun name (it : Schema.interface_type) issues ->
        let issues =
          check_uses (Printf.sprintf "interface %s" name) it.Schema.it_directives issues
        in
        check_fields name it.Schema.it_fields issues)
      sch.Schema.interfaces issues
  in
  let issues =
    Sm.fold
      (fun name (ut : Schema.union_type) issues ->
        check_uses (Printf.sprintf "union %s" name) ut.Schema.ut_directives issues)
      sch.Schema.unions issues
  in
  let issues =
    Sm.fold
      (fun name (et : Schema.enum_type) issues ->
        check_uses (Printf.sprintf "enum %s" name) et.Schema.et_directives issues)
      sch.Schema.enums issues
  in
  let issues =
    Sm.fold
      (fun name (sc : Schema.scalar_type) issues ->
        check_uses (Printf.sprintf "scalar %s" name) sc.Schema.sc_directives issues)
      sch.Schema.scalars issues
  in
  List.rev issues

let check ?env sch = check_interfaces sch @ check_directives ?env sch
let is_consistent ?env sch = check ?env sch = []
