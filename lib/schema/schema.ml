module Sm = Map.Make (String)

(* The schema IR is frontend-neutral: values and directive locations are
   the [Pg_ir.Values] types (which the SDL AST re-declares by equation),
   so any frontend — SDL, PG-Schema — lowers onto the same record. *)

type directive_use = { du_name : string; du_args : (string * Pg_ir.Values.value) list }

type argument = {
  arg_type : Wrapped.t;
  arg_directives : directive_use list;
  arg_default : Pg_ir.Values.value option;
}

type field = {
  fd_type : Wrapped.t;
  fd_args : (string * argument) list;
  fd_directives : directive_use list;
  fd_description : string option;
}

type object_type = {
  ot_interfaces : string list;
  ot_fields : (string * field) list;
  ot_directives : directive_use list;
  ot_description : string option;
}

type interface_type = {
  it_fields : (string * field) list;
  it_directives : directive_use list;
  it_description : string option;
}

type union_type = {
  ut_members : string list;
  ut_directives : directive_use list;
  ut_description : string option;
}

type enum_type = {
  et_values : string list;
  et_directives : directive_use list;
  et_description : string option;
}

type scalar_type = {
  sc_builtin : bool;
  sc_directives : directive_use list;
  sc_description : string option;
}

type directive_def = {
  dd_args : (string * argument) list;
  dd_locations : Pg_ir.Values.directive_location list;
}

type t = {
  objects : object_type Sm.t;
  interfaces : interface_type Sm.t;
  unions : union_type Sm.t;
  enums : enum_type Sm.t;
  scalars : scalar_type Sm.t;
  directive_defs : directive_def Sm.t;
  implementations : string list Sm.t;
}

type kind = Object | Interface | Union | Enum | Scalar

let builtin_scalar = { sc_builtin = true; sc_directives = []; sc_description = None }

(* The one list every frontend and every pass must agree on: building a
   kinds table, refusing to shadow a built-in, printing a schema back
   out.  Exposed so no caller keeps a private copy that can drift. *)
let builtin_scalar_names = [ "Int"; "Float"; "String"; "Boolean"; "ID" ]

let builtin_scalars =
  List.fold_left (fun m name -> Sm.add name builtin_scalar m) Sm.empty builtin_scalar_names

(* The standard directive declarations assumed by the paper (end of
   Section 4.3): the six Property Graph directives, of which only @key has
   an argument (fields: [String!]!).  @deprecated is the SDL built-in. *)
let standard_directive_defs =
  let no_args locations = { dd_args = []; dd_locations = locations } in
  let field_loc = [ Pg_ir.Values.Loc_field_definition ] in
  Sm.empty
  |> Sm.add "required" (no_args field_loc)
  |> Sm.add "distinct" (no_args field_loc)
  |> Sm.add "noLoops" (no_args field_loc)
  |> Sm.add "uniqueForTarget" (no_args field_loc)
  |> Sm.add "requiredForTarget" (no_args field_loc)
  |> Sm.add "key"
       {
         dd_args =
           [
             ( "fields",
               {
                 arg_type = Wrapped.List { item = "String"; item_non_null = true; non_null = true };
                 arg_directives = [];
                 arg_default = None;
               } );
           ];
         dd_locations = [ Pg_ir.Values.Loc_object ];
       }
  |> Sm.add "deprecated"
       {
         dd_args =
           [
             ( "reason",
               { arg_type = Wrapped.Named "String"; arg_directives = []; arg_default = None } );
           ];
         dd_locations = [ Pg_ir.Values.Loc_field_definition; Pg_ir.Values.Loc_enum_value ];
       }

let empty =
  {
    objects = Sm.empty;
    interfaces = Sm.empty;
    unions = Sm.empty;
    enums = Sm.empty;
    scalars = builtin_scalars;
    directive_defs = standard_directive_defs;
    implementations = Sm.empty;
  }

let type_kind s name =
  if Sm.mem name s.objects then Some Object
  else if Sm.mem name s.interfaces then Some Interface
  else if Sm.mem name s.unions then Some Union
  else if Sm.mem name s.enums then Some Enum
  else if Sm.mem name s.scalars then Some Scalar
  else None

let mem_type s name = type_kind s name <> None

let is_scalar_like s name =
  match type_kind s name with Some (Scalar | Enum) -> true | Some _ | None -> false

let is_composite s name =
  match type_kind s name with
  | Some (Object | Interface | Union) -> true
  | Some _ | None -> false

let fields s t =
  match Sm.find_opt t s.objects with
  | Some ot -> ot.ot_fields
  | None -> (
    match Sm.find_opt t s.interfaces with Some it -> it.it_fields | None -> [])

let field s t f = List.assoc_opt f (fields s t)
let type_f s t f = Option.map (fun fd -> fd.fd_type) (field s t f)
let args s t f = match field s t f with Some fd -> fd.fd_args | None -> []
let arg_type s t f a = Option.map (fun arg -> arg.arg_type) (List.assoc_opt a (args s t f))

let directive_args s d =
  Option.map (fun dd -> dd.dd_args) (Sm.find_opt d s.directive_defs)

let union_members s ut =
  match Sm.find_opt ut s.unions with Some u -> u.ut_members | None -> []

let implementations_of s it =
  match Sm.find_opt it s.implementations with Some l -> l | None -> []

let names m = Sm.fold (fun k _ acc -> k :: acc) m [] |> List.rev
let object_names s = names s.objects
let interface_names s = names s.interfaces
let union_names s = names s.unions
let enum_names s = names s.enums
let scalar_names s = names s.scalars
let directive_names s = names s.directive_defs

type field_class = Attribute | Relationship

let classify_field s fd =
  match type_kind s (Wrapped.basetype fd.fd_type) with
  | Some (Scalar | Enum) -> Some Attribute
  | Some (Object | Interface | Union) -> Some Relationship
  | None -> None

let find_directives ds name =
  List.filter (fun du -> String.equal du.du_name name) ds

let has_directive ds name = List.exists (fun du -> String.equal du.du_name name) ds

let key_fields du =
  match List.assoc_opt "fields" du.du_args with
  | Some (Pg_ir.Values.List_value vs) ->
    let strings =
      List.filter_map (function Pg_ir.Values.String_value f -> Some f | _ -> None) vs
    in
    if List.length strings = List.length vs then Some strings else None
  | Some _ | None -> None

(* [@open] marks an object type as open-world: additional node
   properties beyond its field declarations are allowed, so the strong
   justification rule SS2 does not apply to its nodes.  The PG-Schema
   frontend lowers [OPEN] node types (and [LOOSE] graph types) to this
   directive; SDL documents can opt in by declaring
   [directive @open on OBJECT] and annotating a type. *)
let is_open s name =
  match Sm.find_opt name s.objects with
  | Some ot -> has_directive ot.ot_directives "open"
  | None -> false

let rebuild_implementations s =
  let implementations =
    Sm.fold
      (fun ot_name ot acc ->
        List.fold_left
          (fun acc it ->
            Sm.update it
              (function Some l -> Some (ot_name :: l) | None -> Some [ ot_name ])
              acc)
          acc ot.ot_interfaces)
      s.objects Sm.empty
  in
  (* object names sorted for determinism *)
  { s with implementations = Sm.map (List.sort String.compare) implementations }

let add_object s name ot = rebuild_implementations { s with objects = Sm.add name ot s.objects }
let add_interface s name it = { s with interfaces = Sm.add name it s.interfaces }
let add_union s name ut = { s with unions = Sm.add name ut s.unions }
let add_enum s name et = { s with enums = Sm.add name et s.enums }
let add_scalar s name sc = { s with scalars = Sm.add name sc s.scalars }

let add_directive_def s name dd =
  { s with directive_defs = Sm.add name dd s.directive_defs }

let size s =
  let field_size (_, fd) = 1 + List.length fd.fd_args + List.length fd.fd_directives in
  let fields_size fs = List.fold_left (fun acc f -> acc + field_size f) 0 fs in
  Sm.fold (fun _ ot acc -> acc + 1 + fields_size ot.ot_fields + List.length ot.ot_directives) s.objects 0
  + Sm.fold (fun _ it acc -> acc + 1 + fields_size it.it_fields) s.interfaces 0
  + Sm.fold (fun _ ut acc -> acc + 1 + List.length ut.ut_members) s.unions 0
  + Sm.fold (fun _ et acc -> acc + 1 + List.length et.et_values) s.enums 0
  + Sm.cardinal s.scalars + Sm.cardinal s.directive_defs

let pp_summary ppf s =
  Format.fprintf ppf
    "schema: %d object, %d interface, %d union, %d enum, %d scalar type(s); %d directive(s)"
    (Sm.cardinal s.objects) (Sm.cardinal s.interfaces) (Sm.cardinal s.unions)
    (Sm.cardinal s.enums) (Sm.cardinal s.scalars)
    (Sm.cardinal s.directive_defs)
