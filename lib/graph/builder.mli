(** Imperative convenience layer for constructing Property Graphs.

    A builder keeps a mutable graph under construction together with a
    namespace of string handles for nodes, so that test fixtures and
    generators can write

    {[
      let b = Builder.create () in
      Builder.node b "alice" ~label:"User" ~props:[ "login", Value.String "alice" ];
      Builder.node b "s1" ~label:"UserSession";
      Builder.edge b "s1" "alice" ~label:"user";
      let g = Builder.graph b
    ]}

    without threading the persistent graph through every call. *)

type t

val create : unit -> t

val node :
  t -> string -> label:string -> ?props:(string * Value.t) list -> unit -> Property_graph.node
(** [node b handle ~label ~props ()] adds a node and registers it under
    [handle].  @raise Invalid_argument if the handle is already used. *)

val edge :
  t ->
  string ->
  string ->
  label:string ->
  ?props:(string * Value.t) list ->
  unit ->
  Property_graph.edge
(** [edge b src tgt ~label ~props ()] adds an edge between the nodes
    registered under the two handles.
    @raise Not_found if either handle is unknown. *)

val connect :
  t ->
  Property_graph.node ->
  Property_graph.node ->
  label:string ->
  ?props:(string * Value.t) list ->
  unit ->
  Property_graph.edge
(** Like {!edge}, but between nodes already in hand — used by the
    streaming loaders, which resolve handles themselves so they can
    report their own record-level errors. *)

val find : t -> string -> Property_graph.node
(** The node registered under a handle. @raise Not_found if unknown. *)

val find_opt : t -> string -> Property_graph.node option

val mem : t -> string -> bool
(** Whether a handle is already registered. *)

val graph : t -> Property_graph.t
(** The graph built so far (snapshot; the builder can keep going). *)
