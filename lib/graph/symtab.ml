(* A string interner: labels and property keys mapped to dense ints.

   Validation compares labels billions of times on large graphs; interning
   turns every comparison into an integer equality and every table keyed
   by label into an array.  The reverse mapping is kept for diagnostics
   (violation messages print names, not ids).

   Interning mutates the table and is not thread-safe: all interning must
   happen before read-only sharing across domains (the engines intern
   during plan compilation and snapshot construction, strictly before any
   kernel runs). *)

type t = {
  mutable names : string array; (* id -> name; first [count] slots live *)
  mutable count : int;
  ids : (string, int) Hashtbl.t; (* name -> id *)
}

let create ?(size_hint = 64) () =
  { names = Array.make (max 1 size_hint) ""; count = 0; ids = Hashtbl.create size_hint }

let size t = t.count

let intern t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None ->
    let id = t.count in
    if id = Array.length t.names then begin
      let bigger = Array.make (2 * id) "" in
      Array.blit t.names 0 bigger 0 id;
      t.names <- bigger
    end;
    t.names.(id) <- name;
    t.count <- id + 1;
    Hashtbl.add t.ids name id;
    id

let find t name = Hashtbl.find_opt t.ids name

let name t id =
  if id < 0 || id >= t.count then invalid_arg "Symtab.name: unknown id";
  t.names.(id)
