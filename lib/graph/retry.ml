(* EINTR-hardened I/O primitives.  See retry.mli. *)

(* Every primitive below enters the kernel through the {!Fault} plane,
   so a fault plan can interpose EINTR, short transfers, or errnos on
   exactly the calls these wrappers claim to harden.  With no plan
   active [Fault.input] etc. are the raw primitives. *)
module Fault = Pg_fault.Fault

(* The Unix layer raises [Unix_error (EINTR, _, _)]; buffered channels
   translate the errno into a [Sys_error] carrying strerror(3) text, so
   the message is the only thing left to match on. *)
let interrupted = function
  | Unix.Unix_error (Unix.EINTR, _, _) -> true
  | Sys_error msg ->
    let sub = "Interrupted system call" in
    let n = String.length msg and k = String.length sub in
    let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
    scan 0
  | _ -> false

let rec syscall f = try f () with e when interrupted e -> syscall f

let input ic buf pos len = syscall (fun () -> Fault.input ic buf pos len)

let rec really_input ic buf pos len =
  if len > 0 then begin
    let n = input ic buf pos len in
    if n = 0 then raise End_of_file;
    really_input ic buf (pos + n) (len - n)
  end

let read fd buf pos len = syscall (fun () -> Fault.read fd buf pos len)
let write fd buf pos len = syscall (fun () -> Fault.write fd buf pos len)

let rec really_write fd buf pos len =
  if len > 0 then begin
    let n = write fd buf pos len in
    really_write fd buf (pos + n) (len - n)
  end
