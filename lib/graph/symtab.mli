(** String interner: dense integer ids for labels and property keys.

    The compile-once validation pipeline resolves every schema and graph
    name to an id exactly once ({!Plan} at schema compilation, {!Snapshot}
    at graph freezing); the rule kernels then work with pure integer
    comparisons.  The reverse mapping serves diagnostics.

    A table is mutable and {b not} thread-safe while interning; freeze it
    (stop interning) before sharing across domains.  Lookups ({!find},
    {!name}) on a frozen table are safe to share. *)

type t

val create : ?size_hint:int -> unit -> t

val intern : t -> string -> int
(** The id of [name], allocating the next dense id on first sight. *)

val find : t -> string -> int option
(** The id of [name] if it was interned before, without allocating. *)

val name : t -> int -> string
(** Reverse lookup. @raise Invalid_argument on an unknown id. *)

val size : t -> int
(** Number of interned symbols; ids are [0 .. size - 1]. *)
