(* Node-range partitions of a frozen snapshot (see the .mli).

   The cut is a greedy prefix walk: node i weighs 1 + out-degree, and a
   boundary is placed as soon as the cumulative weight crosses the next
   multiple of total/k.  That balances node-rule and owned-edge work
   without a second pass, and keeps shards contiguous — which is what
   makes every shard view a [Bigarray.Array1.sub] (an alias of the
   snapshot's storage, not a copy) and the owned edge set a contiguous
   slice of [out_adj].

   The frontier is computed in one pass over the edge columns: an edge
   whose source and target map to different shards is recorded, and both
   endpoints are flagged.  Everything is sized up front (count, then
   fill), so a partition allocates O(n + frontier) and no lists. *)

type shard = {
  index : int;
  node_lo : int;
  node_hi : int;
  adj_lo : int;
  adj_hi : int;
  node_id : Snapshot.ints;
  node_label : Snapshot.ints;
  out_start : Snapshot.ints;
  out_adj : Snapshot.ints;
}

type t = {
  snap : Snapshot.t;
  k : int;
  bounds : int array; (* length k+1; shard s is [bounds.(s), bounds.(s+1)) *)
  shards : shard array;
  out_cross : Bytes.t; (* byte i <> 0 iff node i owns a cross-shard edge *)
  in_cross : Bytes.t; (* byte i <> 0 iff node i receives a cross-shard edge *)
  frontier_edges : int array;
  frontier_out_nodes : int array;
  frontier_in_nodes : int array;
}

let sub (a : Snapshot.ints) lo len : Snapshot.ints = Bigarray.Array1.sub a lo len

(* Largest s with bounds.(s) <= i: empty shards (equal consecutive cut
   points) are skipped because the search prefers the highest index. *)
let find_shard bounds k i =
  let lo = ref 0 and hi = ref (k - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if bounds.(mid) <= i then lo := mid else hi := mid - 1
  done;
  !lo

let make (snap : Snapshot.t) ~shards:k =
  if k < 1 then invalid_arg "Partition.make: the shard count must be at least 1";
  let n = snap.Snapshot.n and m = snap.Snapshot.m in
  let total = n + m in
  let bounds = Array.make (k + 1) n in
  bounds.(0) <- 0;
  let s = ref 1 in
  let cum = ref 0 in
  for i = 0 to n - 1 do
    cum := !cum + 1 + (snap.Snapshot.out_start.{i + 1} - snap.Snapshot.out_start.{i});
    while !s < k && !cum * k >= !s * total do
      bounds.(!s) <- i + 1;
      incr s
    done
  done;
  let shards =
    Array.init k (fun s ->
        let node_lo = bounds.(s) and node_hi = bounds.(s + 1) in
        let adj_lo = snap.Snapshot.out_start.{node_lo} in
        let adj_hi = snap.Snapshot.out_start.{node_hi} in
        {
          index = s;
          node_lo;
          node_hi;
          adj_lo;
          adj_hi;
          node_id = sub snap.Snapshot.node_id node_lo (node_hi - node_lo);
          node_label = sub snap.Snapshot.node_label node_lo (node_hi - node_lo);
          out_start = sub snap.Snapshot.out_start node_lo (node_hi - node_lo + 1);
          out_adj = sub snap.Snapshot.out_adj adj_lo (adj_hi - adj_lo);
        })
  in
  let out_cross = Bytes.make (max 1 n) '\000' in
  let in_cross = Bytes.make (max 1 n) '\000' in
  let nfe = ref 0 in
  for j = 0 to m - 1 do
    let src = snap.Snapshot.edge_src.{j} and tgt = snap.Snapshot.edge_tgt.{j} in
    if find_shard bounds k src <> find_shard bounds k tgt then begin
      incr nfe;
      Bytes.set out_cross src '\001';
      Bytes.set in_cross tgt '\001'
    end
  done;
  let frontier_edges = Array.make !nfe 0 in
  let w = ref 0 in
  for j = 0 to m - 1 do
    let src = snap.Snapshot.edge_src.{j} and tgt = snap.Snapshot.edge_tgt.{j} in
    if find_shard bounds k src <> find_shard bounds k tgt then begin
      frontier_edges.(!w) <- j;
      incr w
    end
  done;
  let collect flags =
    let count = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.get flags i <> '\000' then incr count
    done;
    let out = Array.make !count 0 in
    let w = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.get flags i <> '\000' then begin
        out.(!w) <- i;
        incr w
      end
    done;
    out
  in
  {
    snap;
    k;
    bounds;
    shards;
    out_cross;
    in_cross;
    frontier_edges;
    frontier_out_nodes = collect out_cross;
    frontier_in_nodes = collect in_cross;
  }

let snapshot t = t.snap
let shard_count t = t.k
let shard t s = t.shards.(s)
let shard_of_node t i = find_shard t.bounds t.k i

let bounds_of_node t i =
  let s = find_shard t.bounds t.k i in
  (t.bounds.(s), t.bounds.(s + 1))

let has_cross_out t i = Bytes.get t.out_cross i <> '\000'
let has_cross_in t i = Bytes.get t.in_cross i <> '\000'
let frontier_edges t = t.frontier_edges
let frontier_out_nodes t = t.frontier_out_nodes
let frontier_in_nodes t = t.frontier_in_nodes

let owned_edges t s =
  let sh = t.shards.(s) in
  let owned = Array.make (sh.adj_hi - sh.adj_lo) 0 in
  for x = 0 to Array.length owned - 1 do
    owned.(x) <- t.snap.Snapshot.out_adj.{sh.adj_lo + x}
  done;
  Array.sort Int.compare owned;
  owned
