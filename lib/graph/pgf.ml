type error = { line : int; message : string }

let pp_error ppf e =
  (* line 0 marks an I/O failure, which has no position in the text *)
  if e.line = 0 then Format.fprintf ppf "PGF error: %s" e.message
  else Format.fprintf ppf "PGF parse error at line %d: %s" e.line e.message

exception Error of error

(* A tiny per-line scanner.  PGF is line-oriented, so each declaration is
   scanned independently; values never span lines. *)
module Scan = struct
  type t = { s : string; mutable pos : int; line : int }

  let make line s = { s; pos = 0; line }
  let fail sc message = raise (Error { line = sc.line; message })
  let peek sc = if sc.pos < String.length sc.s then Some sc.s.[sc.pos] else None
  let advance sc = sc.pos <- sc.pos + 1

  let skip_ws sc =
    let rec loop () =
      match peek sc with
      | Some (' ' | '\t' | '\r') ->
        advance sc;
        loop ()
      | _ -> ()
    in
    loop ()

  let at_end sc =
    skip_ws sc;
    peek sc = None

  let expect_char sc c =
    skip_ws sc;
    match peek sc with
    | Some c' when c' = c -> advance sc
    | Some c' -> fail sc (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail sc (Printf.sprintf "expected %C, found end of line" c)

  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

  let is_ident_char c =
    is_ident_start c || (c >= '0' && c <= '9')

  let ident sc =
    skip_ws sc;
    let start = sc.pos in
    (match peek sc with
    | Some c when is_ident_start c -> advance sc
    | Some c -> fail sc (Printf.sprintf "expected identifier, found %C" c)
    | None -> fail sc "expected identifier, found end of line");
    let rec loop () =
      match peek sc with
      | Some c when is_ident_char c ->
        advance sc;
        loop ()
      | _ -> ()
    in
    loop ();
    String.sub sc.s start (sc.pos - start)

  let try_char sc c =
    skip_ws sc;
    match peek sc with
    | Some c' when c' = c ->
      advance sc;
      true
    | _ -> false

  let try_arrow sc =
    skip_ws sc;
    if
      sc.pos + 1 < String.length sc.s
      && sc.s.[sc.pos] = '-'
      && sc.s.[sc.pos + 1] = '>'
    then begin
      sc.pos <- sc.pos + 2;
      true
    end
    else false

  let string_literal sc =
    expect_char sc '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek sc with
      | None -> fail sc "unterminated string literal"
      | Some '"' -> advance sc
      | Some '\\' ->
        advance sc;
        (match peek sc with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'u' ->
          (* \uXXXX, kept as the raw byte for code points < 256; PGF is a
             test/interchange format and does not claim full Unicode *)
          advance sc;
          let hex = Buffer.create 4 in
          for _ = 1 to 4 do
            match peek sc with
            | Some c ->
              Buffer.add_char hex c;
              if Buffer.length hex < 4 then advance sc
            | None -> fail sc "truncated \\u escape"
          done;
          (* decode by hand: int_of_string_opt on "0x…" would also accept
             OCaml numeric-literal underscores, letting "\u1_2f" through *)
          let digit c =
            match c with
            | '0' .. '9' -> Some (Char.code c - Char.code '0')
            | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
            | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
            | _ -> None
          in
          let code =
            String.fold_left
              (fun acc c ->
                match (acc, digit c) with
                | Some acc, Some d -> Some ((acc * 16) + d)
                | _ -> None)
              (Some 0) (Buffer.contents hex)
          in
          (match code with
          | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> fail sc "\\u escape above \\u00FF is not supported by PGF"
          | None -> fail sc "malformed \\u escape")
        | Some c -> fail sc (Printf.sprintf "invalid escape \\%c" c)
        | None -> fail sc "unterminated escape");
        advance sc;
        loop ()
      | Some c ->
        advance sc;
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf

  let number sc =
    skip_ws sc;
    let start = sc.pos in
    if peek sc = Some '-' then advance sc;
    let rec digits () =
      match peek sc with
      | Some c when c >= '0' && c <= '9' ->
        advance sc;
        digits ()
      | _ -> ()
    in
    digits ();
    let is_float = ref false in
    if peek sc = Some '.' then begin
      is_float := true;
      advance sc;
      digits ()
    end;
    (match peek sc with
    | Some ('e' | 'E') ->
      is_float := true;
      advance sc;
      (match peek sc with Some ('+' | '-') -> advance sc | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub sc.s start (sc.pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Value.Float f
      | None -> fail sc (Printf.sprintf "malformed float %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Value.Int i
      | None -> fail sc (Printf.sprintf "malformed integer %S" text)

  let rec value sc =
    skip_ws sc;
    match peek sc with
    | Some '"' -> Value.String (string_literal sc)
    | Some '@' ->
      advance sc;
      Value.Id (string_literal sc)
    | Some '[' ->
      advance sc;
      let rec elements acc =
        skip_ws sc;
        if peek sc = Some ']' then begin
          advance sc;
          List.rev acc
        end
        else begin
          let v = value sc in
          skip_ws sc;
          if try_char sc ',' then elements (v :: acc)
          else begin
            expect_char sc ']';
            List.rev (v :: acc)
          end
        end
      in
      Value.List (elements [])
    | Some '-' when sc.pos + 1 < String.length sc.s && is_ident_start sc.s.[sc.pos + 1] ->
      (* the printer renders negative infinity as "-inf" *)
      advance sc;
      (match ident sc with
      | "inf" | "infinity" -> Value.Float Float.neg_infinity
      | name -> fail sc (Printf.sprintf "unknown numeric literal -%s" name))
    | Some c when c = '-' || (c >= '0' && c <= '9') -> number sc
    | Some c when is_ident_start c -> (
      (* true/false/nan/inf are value keywords, not enum symbols *)
      match ident sc with
      | "true" -> Value.Bool true
      | "false" -> Value.Bool false
      | "nan" -> Value.Float Float.nan
      | "inf" | "infinity" -> Value.Float Float.infinity
      | name -> Value.Enum name)
    | Some c -> fail sc (Printf.sprintf "expected a value, found %C" c)
    | None -> fail sc "expected a value, found end of line"

  let props sc =
    if not (try_char sc '{') then []
    else begin
      let rec entries acc =
        skip_ws sc;
        if try_char sc '}' then List.rev acc
        else begin
          let name = ident sc in
          expect_char sc ':';
          let v = value sc in
          skip_ws sc;
          if try_char sc ',' then entries ((name, v) :: acc)
          else begin
            expect_char sc '}';
            List.rev ((name, v) :: acc)
          end
        end
      in
      entries []
    end
end

(* Incremental (record-at-a-time) parsing.  One PGF line is one record;
   [inc_line_exn] applies it to the builder atomically — every scan check
   and handle lookup happens before the first mutation, so a failing line
   leaves the graph under construction exactly as it was.  [parse],
   [read] and the fault-tolerant {!Stream} reader are all folds over this
   one function, which is what makes slurp and streaming byte-identical. *)

type inc = Builder.t

let inc_create () = Builder.create ()
let inc_graph b = Builder.graph b

let inc_line_exn b lineno raw =
  let line = String.trim raw in
  if line = "" || line.[0] = '#' then ()
  else begin
    let sc = Scan.make lineno line in
    match Scan.ident sc with
    | "node" ->
      let handle = Scan.ident sc in
      if Builder.mem b handle then
        Scan.fail sc (Printf.sprintf "duplicate node handle %S" handle);
      Scan.expect_char sc ':';
      let label = Scan.ident sc in
      let props = Scan.props sc in
      if not (Scan.at_end sc) then Scan.fail sc "trailing characters";
      ignore (Builder.node b handle ~label ~props ())
    | "edge" ->
      let first = Scan.ident sc in
      (* "edge e0 n1 -> n0 :l" (handle + endpoints) or "edge n1 -> n0 :l" *)
      let src_handle =
        if Scan.try_arrow sc then first
        else
          let second = Scan.ident sc in
          if not (Scan.try_arrow sc) then Scan.fail sc "expected '->'";
          second
      in
      let tgt_handle = Scan.ident sc in
      Scan.expect_char sc ':';
      let label = Scan.ident sc in
      let props = Scan.props sc in
      if not (Scan.at_end sc) then Scan.fail sc "trailing characters";
      let find h =
        match Builder.find_opt b h with
        | Some v -> v
        | None -> Scan.fail sc (Printf.sprintf "unknown node handle %S" h)
      in
      (* target resolved first: the historical slurp parser passed both
         lookups as arguments to [add_edge], which OCaml evaluates
         right-to-left, so when both handles are unknown the error names
         the target *)
      let vtgt = find tgt_handle in
      let vsrc = find src_handle in
      ignore (Builder.connect b vsrc vtgt ~label ~props ())
    | kw -> Scan.fail sc (Printf.sprintf "expected 'node' or 'edge', found %S" kw)
  end

let inc_line b lineno raw =
  match inc_line_exn b lineno raw with
  | () -> Ok ()
  | exception Error e -> Result.Error e

let parse text =
  let b = inc_create () in
  try
    List.iteri (fun i raw -> inc_line_exn b (i + 1) raw) (String.split_on_char '\n' text);
    Ok (inc_graph b)
  with Error e -> Result.Error e

let read source =
  let b = inc_create () in
  try
    Chunked.iter_lines source (inc_line_exn b);
    Ok (inc_graph b)
  with Error e -> Result.Error e

let print_value buf v =
  let rec go = function
    | Value.Id s ->
      Buffer.add_char buf '@';
      Buffer.add_string buf (Value.to_string (Value.String s))
    | Value.List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          go v)
        vs;
      Buffer.add_char buf ']'
    | v -> Buffer.add_string buf (Value.to_string v)
  in
  go v

let print_props buf props =
  if props <> [] then begin
    Buffer.add_string buf " {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf k;
        Buffer.add_string buf ": ";
        print_value buf v)
      props;
    Buffer.add_char buf '}'
  end

let print g =
  let buf = Buffer.create 1024 in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "node n%d :%s" (Property_graph.node_id v) (Property_graph.node_label g v));
      print_props buf (Property_graph.node_props g v);
      Buffer.add_char buf '\n')
    (Property_graph.nodes g);
  List.iter
    (fun e ->
      let src, tgt = Property_graph.edge_ends g e in
      Buffer.add_string buf
        (Printf.sprintf "edge e%d n%d -> n%d :%s" (Property_graph.edge_id e)
           (Property_graph.node_id src) (Property_graph.node_id tgt)
           (Property_graph.edge_label g e));
      print_props buf (Property_graph.edge_props g e);
      Buffer.add_char buf '\n')
    (Property_graph.edges g);
  Buffer.contents buf

let value_to_string v =
  let buf = Buffer.create 16 in
  print_value buf v;
  Buffer.contents buf

let value_of_string s =
  try
    let sc = Scan.make 1 s in
    let v = Scan.value sc in
    if Scan.at_end sc then Ok v
    else Result.Error { line = 1; message = "trailing characters after value" }
  with Error e -> Result.Error e

let load path =
  (* streams the file through the record-at-a-time reader; behaviour
     (graphs and error Results) is identical to parsing the slurped text *)
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> read (Chunked.of_channel ic))
  with
  | exception Sys_error message -> Result.Error { line = 0; message }
  | r -> r

let save path g =
  let oc = open_out_bin path in
  output_string oc (print g);
  close_out oc
