(** Crash-safe file writes: temp + fsync(file) + rename + fsync(dir).

    Every artifact this project persists (binary snapshots, quarantine
    records, bench JSON) goes through this writer, which gives the one
    guarantee a reader can build on: {e after a crash at any point, the
    destination path either does not exist, still holds its previous
    complete content, or holds the new complete content} — never a torn
    file.  The recipe is the classic one: write to [path ^ ".tmp"],
    [fsync] the file so the data precedes the rename in the journal,
    [rename] over the destination (atomic on POSIX), then [fsync] the
    containing directory so the rename itself survives power loss.

    Each boundary in that sequence carries a named {!Fault.crash_point}
    ({!crash_points}), which is what lets the crash-point matrix test
    the claim literally: kill the process at every point, then check
    the destination is absent or passes full validation. *)

type t
(** An open durable writer: an fd on [path ^ ".tmp"] plus the
    destination path.  Not thread-safe; one writer per file. *)

val create : string -> t
(** Open [path ^ ".tmp"] (truncating any stale temp from a previous
    crash) for writing to [path].  Raises [Unix_error] if the temp
    file cannot be created. *)

val write : t -> string -> unit
(** Append bytes to the temp file, looping over partial writes with
    EINTR retry. *)

val commit : t -> unit
(** Seal the write: fsync the temp file, close it, rename it over the
    destination, fsync the directory.  After [commit] returns the new
    content is durable.  The writer must not be used afterwards. *)

val abort : t -> unit
(** Close and delete the temp file, leaving the destination untouched.
    Never raises — safe in an exception handler. *)

val path : t -> string
(** Destination path this writer commits to. *)

val write_file : string -> string list -> unit
(** [write_file path chunks]: the whole create/write/commit sequence,
    aborting (temp removed, destination untouched) if any step
    raises. *)

val crash_points : string list
(** The named crash points this module declares, in execution order:
    [durable.tmp_open] (temp file just created), [durable.mid_write]
    (after each chunk), [durable.data_written] (all data written,
    nothing synced), [durable.file_synced] (file fsynced, not yet
    renamed), [durable.renamed] (renamed, directory not yet fsynced).
    The crash-matrix test iterates this list — a new point added here
    is automatically covered. *)
