(** Node-range partitions of a frozen {!Snapshot}: the shard abstraction
    the sharded validation engine runs on.

    {!make} cuts the node range [\[0, n)] into [shards] contiguous
    ranges, balanced by node-plus-out-degree weight, and computes the
    {e frontier}: the edges whose endpoints fall in different shards,
    plus the nodes incident to them.  Because every rule of the paper is
    a first-order check over a bounded neighbourhood (Theorem 1 places
    validation in AC0), a shard can be validated against only its own
    column slices; the frontier is exactly the state two shards share.

    Each {!shard} carries zero-copy [Bigarray.Array1.sub] views of the
    snapshot's node columns and of its CSR slice: the views alias the
    snapshot's storage (no bytes are copied), so a worker that touches
    only its shard's views touches only that shard's pages — which is
    what lets the streaming pipeline validate a mapped snapshot without
    ever materializing the whole property set.

    A shard {e owns} the edges of its out-adjacency slice (every edge
    has exactly one source, so ownership is a partition of the edge
    set).  An owned edge is {e intra} when its target is also inside
    the shard, {e cross} otherwise; cross edges appear in
    {!frontier_edges}. *)

type shard = {
  index : int;
  node_lo : int;
  node_hi : int;  (** the shard's node range [\[node_lo, node_hi)] *)
  adj_lo : int;
  adj_hi : int;
      (** the owned slice of the snapshot's [out_adj],
          [= out_start.{node_lo} .. out_start.{node_hi}] *)
  node_id : Snapshot.ints;  (** sub-view of [node_id], length [node_hi - node_lo] *)
  node_label : Snapshot.ints;  (** sub-view of [node_label] *)
  out_start : Snapshot.ints;
      (** sub-view of [out_start], length [node_hi - node_lo + 1]; its
          values are absolute indexes into the snapshot's [out_adj] —
          subtract [adj_lo] to index the [out_adj] sub-view below
          (per-shard CSR rebasing) *)
  out_adj : Snapshot.ints;  (** sub-view of [out_adj], length [adj_hi - adj_lo] *)
}

type t

val make : Snapshot.t -> shards:int -> t
(** Cut the snapshot into [shards] contiguous node ranges (weights
    [1 + out-degree], greedy prefix cut) and compute the frontier in one
    pass over the edges.  Shards beyond the node count come out empty.
    @raise Invalid_argument if [shards < 1]. *)

val snapshot : t -> Snapshot.t
val shard_count : t -> int

val shard : t -> int -> shard
(** The [s]-th shard, [0 <= s < shard_count]. *)

val shard_of_node : t -> int -> int
(** The index of the shard containing node [i] (binary search over the
    cut points; empty shards are skipped). *)

val bounds_of_node : t -> int -> int * int
(** [(node_lo, node_hi)] of the shard containing node [i]. *)

val has_cross_out : t -> int -> bool
(** Does node [i] own at least one cross-shard (outgoing) edge? *)

val has_cross_in : t -> int -> bool
(** Does node [i] receive at least one edge from another shard? *)

val frontier_edges : t -> int array
(** Edge indexes with endpoints in different shards, ascending. *)

val frontier_out_nodes : t -> int array
(** Nodes with at least one cross-shard outgoing edge, ascending. *)

val frontier_in_nodes : t -> int array
(** Nodes with at least one cross-shard incoming edge, ascending. *)

val owned_edges : t -> int -> int array
(** The edge indexes owned by shard [s] (its [out_adj] slice), sorted
    ascending — the order the streaming pipeline wants for coalesced
    property reads. *)
