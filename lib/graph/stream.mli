(** Streaming fault-tolerant ingestion.

    Record-at-a-time readers for PGF and GraphML that feed a
    {!Builder}-backed graph from a fixed-size chunked buffer — the whole
    input is never materialized.  Malformed records are skipped and
    reported as {!fault}s (and optionally written to a quarantine file);
    ingestion stops early only when a configurable error budget is
    exhausted.  Partial graphs carry a [complete : bool] flag mirroring
    the validation governor's partial-result contract, so downstream
    consumers treat a truncated ingest exactly like a truncated
    validation run.

    The strict loaders ({!Pgf.load}, {!Graphml.load}) are thin wrappers
    over the same streaming machinery with a zero-tolerance policy. *)

type source = Chunked.source

val of_channel : ?chunk_size:int -> in_channel -> source
val of_string : ?chunk_size:int -> string -> source

type fault = {
  record : int;  (** 1-based record ordinal (PGF: line number) *)
  subject : string;  (** e.g. ["line 7"] or [node "n3"] *)
  text : string;  (** raw text of the offending record *)
  message : string;  (** the parser's error message *)
}

type outcome = {
  graph : Property_graph.t;  (** everything that parsed cleanly *)
  complete : bool;  (** no faults and no early stop *)
  faults : fault list;  (** skipped records, in document order *)
  budget_exhausted : bool;  (** stopped early: the error budget ran out *)
  records : int;  (** records encountered before stopping *)
}

val read_pgf : ?max_errors:int -> ?on_fault:(fault -> unit) -> source -> outcome
(** Tolerant PGF ingestion.  One line is one record; a malformed line is
    skipped atomically (the graph is as if the line were absent), so a
    dropped [node] line also faults every later edge that references its
    handle.  [max_errors] is the error budget: [n] faults are tolerated,
    fault [n+1] is still reported and then ingestion stops with
    [budget_exhausted = true]; omitted means unlimited.  [on_fault] runs
    as each fault is found (the quarantine writers hook in here). *)

val read_graphml :
  ?max_errors:int ->
  ?on_fault:(fault -> unit) ->
  source ->
  (outcome, Graphml.error) result
(** Tolerant GraphML ingestion over {!Graphml.read_tolerant}.  A record
    is one key/node/edge element.  Scanner-level XML errors are
    structural rather than record-local and remain fatal ([Error]). *)

val load_pgf :
  ?max_errors:int -> ?quarantine:string -> string -> (outcome, Pgf.error) result
(** [load_pgf path] streams a PGF file through {!read_pgf}.
    [quarantine] names a file that receives the raw text of every
    skipped record, one per line; it is created lazily on the first
    fault (a clean ingest leaves no file behind) and committed through
    {!Durable} when the ingest completes, so a crash mid-ingest never
    leaves a torn quarantine file.  I/O failures are returned as
    [Error] with [line = 0], never raised. *)

val load_graphml :
  ?max_errors:int -> ?quarantine:string -> string -> (outcome, Graphml.error) result
(** GraphML counterpart of {!load_pgf}. *)
