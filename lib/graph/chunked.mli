(** Chunked byte sources — the fixed-size-buffer reading discipline
    shared by the streaming loaders ({!Pgf.read}, {!Graphml.read},
    {!Stream}).

    A source yields successive chunks of an input and [None] at end of
    input.  Consumers never concatenate the chunks into one string: the
    streaming readers hold at most one record (plus one chunk) in memory
    at a time, so ingesting a multi-gigabyte graph file needs the memory
    of its largest record, not of the file. *)

type source = unit -> string option
(** Successive chunks, [None] at end of input.  A source must never
    yield an empty chunk. *)

val default_chunk_size : int
(** 64 KiB. *)

val of_channel : ?chunk_size:int -> in_channel -> source
(** Read the channel in chunks of at most [chunk_size] bytes.  The
    source does not close the channel. *)

val of_string : ?chunk_size:int -> string -> source
(** Serve an in-memory string in chunks — the differential tests drive
    the streaming readers with every chunk size from 1 byte up to the
    whole input to pin down that chunking is unobservable. *)

val iter_lines : source -> (int -> string -> unit) -> unit
(** [iter_lines source f] calls [f lineno line] for every
    ['\n']-terminated line (terminator stripped) and for a non-empty
    final line.  Line numbers are 1-based and count terminators, exactly
    like [String.split_on_char '\n'] — whose trailing [""] artifact is
    the only line this iteration does not deliver, which is observably
    identical for consumers that skip blank lines.  Exceptions raised by
    [f] abort the iteration and propagate. *)
