module Im = Map.Make (Int)
module Sm = Map.Make (String)

type node = int
type edge = int

type t = {
  next_node : int;
  next_edge : int;
  node_label : string Im.t; (* lambda restricted to V; its domain is V *)
  edge_label : string Im.t; (* lambda restricted to E; its domain is E *)
  edge_ends : (int * int) Im.t; (* rho *)
  node_props : Value.t Sm.t Im.t; (* sigma restricted to V *)
  edge_props : Value.t Sm.t Im.t; (* sigma restricted to E *)
  out_adj : edge list Im.t; (* incidence index: v -> outgoing edges, newest first *)
  in_adj : edge list Im.t;
}

let node_id v = v
let edge_id e = e

let empty =
  {
    next_node = 0;
    next_edge = 0;
    node_label = Im.empty;
    edge_label = Im.empty;
    edge_ends = Im.empty;
    node_props = Im.empty;
    edge_props = Im.empty;
    out_adj = Im.empty;
    in_adj = Im.empty;
  }

let mem_node g v = Im.mem v g.node_label
let mem_edge g e = Im.mem e g.edge_label

let node_of_id g i = if mem_node g i then Some i else None
let edge_of_id g i = if mem_edge g i then Some i else None

let props_of_list l = List.fold_left (fun m (k, v) -> Sm.add k v m) Sm.empty l

let add_node g ~label ?(props = []) () =
  let v = g.next_node in
  let g =
    {
      g with
      next_node = v + 1;
      node_label = Im.add v label g.node_label;
      node_props =
        (if props = [] then g.node_props else Im.add v (props_of_list props) g.node_props);
      out_adj = Im.add v [] g.out_adj;
      in_adj = Im.add v [] g.in_adj;
    }
  in
  (g, v)

let adj_add m v e = Im.update v (function Some l -> Some (e :: l) | None -> Some [ e ]) m

let add_edge g ~label ?(props = []) src tgt =
  if not (mem_node g src) then invalid_arg "Property_graph.add_edge: unknown source node";
  if not (mem_node g tgt) then invalid_arg "Property_graph.add_edge: unknown target node";
  let e = g.next_edge in
  let g =
    {
      g with
      next_edge = e + 1;
      edge_label = Im.add e label g.edge_label;
      edge_ends = Im.add e (src, tgt) g.edge_ends;
      edge_props =
        (if props = [] then g.edge_props else Im.add e (props_of_list props) g.edge_props);
      out_adj = adj_add g.out_adj src e;
      in_adj = adj_add g.in_adj tgt e;
    }
  in
  (g, e)

let set_prop_in store id name value =
  Im.update id
    (function
      | Some props -> Some (Sm.add name value props)
      | None -> Some (Sm.singleton name value))
    store

let set_node_prop g v name value =
  if not (mem_node g v) then invalid_arg "Property_graph.set_node_prop: unknown node";
  { g with node_props = set_prop_in g.node_props v name value }

let set_edge_prop g e name value =
  if not (mem_edge g e) then invalid_arg "Property_graph.set_edge_prop: unknown edge";
  { g with edge_props = set_prop_in g.edge_props e name value }

let remove_prop_in store id name =
  Im.update id
    (function
      | Some props ->
        let props = Sm.remove name props in
        if Sm.is_empty props then None else Some props
      | None -> None)
    store

let remove_node_prop g v name = { g with node_props = remove_prop_in g.node_props v name }
let remove_edge_prop g e name = { g with edge_props = remove_prop_in g.edge_props e name }

let relabel_node g v label =
  if not (mem_node g v) then invalid_arg "Property_graph.relabel_node: unknown node";
  { g with node_label = Im.add v label g.node_label }

let relabel_edge g e label =
  if not (mem_edge g e) then invalid_arg "Property_graph.relabel_edge: unknown edge";
  { g with edge_label = Im.add e label g.edge_label }

let adj_remove m v e =
  Im.update v (function Some l -> Some (List.filter (fun e' -> e' <> e) l) | None -> None) m

let remove_edge g e =
  match Im.find_opt e g.edge_ends with
  | None -> g
  | Some (src, tgt) ->
    {
      g with
      edge_label = Im.remove e g.edge_label;
      edge_ends = Im.remove e g.edge_ends;
      edge_props = Im.remove e g.edge_props;
      out_adj = adj_remove g.out_adj src e;
      in_adj = adj_remove g.in_adj tgt e;
    }

let out_edges g v = match Im.find_opt v g.out_adj with Some l -> List.rev l | None -> []
let in_edges g v = match Im.find_opt v g.in_adj with Some l -> List.rev l | None -> []

let remove_node g v =
  if not (mem_node g v) then g
  else
    let incident = out_edges g v @ in_edges g v in
    let g = List.fold_left remove_edge g incident in
    {
      g with
      node_label = Im.remove v g.node_label;
      node_props = Im.remove v g.node_props;
      out_adj = Im.remove v g.out_adj;
      in_adj = Im.remove v g.in_adj;
    }

let node_count g = Im.cardinal g.node_label
let edge_count g = Im.cardinal g.edge_label
let node_label g v = Im.find v g.node_label
let edge_label g e = Im.find e g.edge_label
let edge_ends g e = Im.find e g.edge_ends

let prop_in store id name =
  match Im.find_opt id store with None -> None | Some props -> Sm.find_opt name props

let node_prop g v name = prop_in g.node_props v name
let edge_prop g e name = prop_in g.edge_props e name

let props_in store id =
  match Im.find_opt id store with None -> [] | Some props -> Sm.bindings props

let prop_count_in store id =
  match Im.find_opt id store with None -> 0 | Some props -> Sm.cardinal props

let node_prop_count g v = prop_count_in g.node_props v
let edge_prop_count g e = prop_count_in g.edge_props e

let node_props g v = props_in g.node_props v
let edge_props g e = props_in g.edge_props e
let nodes g = Im.fold (fun v _ acc -> v :: acc) g.node_label [] |> List.rev
let edges g = Im.fold (fun e _ acc -> e :: acc) g.edge_label [] |> List.rev
let fold_nodes f g acc = Im.fold (fun v _ acc -> f v acc) g.node_label acc
let fold_edges f g acc = Im.fold (fun e _ acc -> f e acc) g.edge_label acc
let iter_nodes f g = Im.iter (fun v _ -> f v) g.node_label
let iter_edges f g = Im.iter (fun e _ -> f e) g.edge_label

let array_of_ids count iter store =
  let n = count in
  if n = 0 then [||]
  else begin
    let arr = Array.make n 0 in
    let i = ref 0 in
    iter
      (fun id _ ->
        arr.(!i) <- id;
        incr i)
      store;
    arr
  end

let nodes_array g = array_of_ids (node_count g) Im.iter g.node_label
let edges_array g = array_of_ids (edge_count g) Im.iter g.edge_label
let to_arrays g = (nodes_array g, edges_array g)

let equal g1 g2 =
  Im.equal String.equal g1.node_label g2.node_label
  && Im.equal String.equal g1.edge_label g2.edge_label
  && Im.equal (fun (a, b) (c, d) -> a = c && b = d) g1.edge_ends g2.edge_ends
  && Im.equal (Sm.equal Value.equal) g1.node_props g2.node_props
  && Im.equal (Sm.equal Value.equal) g1.edge_props g2.edge_props

let pp ppf g =
  Format.fprintf ppf "graph with %d nodes, %d edges" (node_count g) (edge_count g)

let pp_props ppf props =
  if props <> [] then begin
    let pp_prop ppf (k, v) = Format.fprintf ppf "%s: %a" k Value.pp v in
    Format.fprintf ppf " {%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_prop)
      props
  end

let pp_full ppf g =
  List.iter
    (fun v ->
      Format.fprintf ppf "node n%d :%s%a@." v (node_label g v) pp_props (node_props g v))
    (nodes g);
  List.iter
    (fun e ->
      let src, tgt = edge_ends g e in
      Format.fprintf ppf "edge e%d n%d -> n%d :%s%a@." e src tgt (edge_label g e) pp_props
        (edge_props g e))
    (edges g)
