(** Persisted binary snapshots: write a frozen {!Snapshot} to disk once,
    reopen it in O(graph-independent work + one mmap) instead of
    reparsing the source text.

    {2 On-disk format (version 1)}

    All integers are 64-bit little-endian.  The file is:

    {v
    magic "GPGSNAP1" | version | n | m | nsyms | total size
    section offset table (13 entries)
    symtab section        nsyms length-prefixed strings
    10 integer sections   node_id, edge_id, node_label, edge_label,
                          edge_src, edge_tgt, out_start, out_adj,
                          in_start, in_adj (8-byte aligned, mmap-ready)
    2 property sections   node_props, edge_props (tagged values)
    trailing CRC-32       over every preceding byte
    v}

    {!load} verifies magic, version, size and checksum, maps the ten
    integer sections with [Unix.map_file] (shared copy-on-write pages —
    the CSR is never copied through the OCaml heap), and then {e remaps}
    the stored symbols into the caller's symbol table: label columns and
    property keys are rewritten through an [old id -> intern] table and
    property vectors re-sorted.  Kernels only rely on equal labels being
    contiguous within a CSR segment, so the mapped adjacency needs no
    re-sort and validation reports are byte-identical to a fresh
    {!Snapshot.build} over the same graph.  A snapshot file is therefore
    self-contained and schema-independent: it can be validated against
    any plan. *)

type error = { code : string; message : string }
(** [code] is a stable {!Pg_diag.Registry} code: [IO001] for filesystem
    failures, [IO004] for format errors (bad magic, unsupported version,
    truncation, malformed layout), [IO005] for checksum mismatches. *)

val pp_error : Format.formatter -> error -> unit

type info = {
  version : int;
  nodes : int;
  edges : int;
  symbols : int;
  bytes : int;  (** total file size *)
}

val format_version : int
(** The version this build writes (and the only one it reads). *)

val write : Symtab.t -> Snapshot.t -> string -> (unit, error) result
(** [write st snap path] persists [snap] together with the symbols of
    [st] it references.  The file is written to a temporary sibling and
    renamed into place, so a crashed writer never leaves a torn file
    under [path]. *)

val load : Symtab.t -> string -> (Snapshot.t, error) result
(** [load st path] maps a snapshot back, interning its symbols into
    [st] (mutating it, like {!Snapshot.build} — sequential-only while
    interning).  The integer sections are validated structurally (CSR
    offsets monotone and closed, endpoints in range) so a malformed file
    fails with a diagnostic instead of a kernel exception. *)

val info : string -> (info, error) result
(** Header summary of a snapshot file, after the same magic / version /
    size / checksum verification as {!load}. *)

val checksum : string -> int64
(** The CRC-32 (IEEE, as used for the trailing checksum) of a raw byte
    string.  Exposed so corruption tests can re-seal a deliberately
    patched file and reach the checks behind the checksum. *)
