(** Persisted binary snapshots: write a frozen {!Snapshot} to disk once,
    reopen it in O(graph-independent work + one mmap) instead of
    reparsing the source text.

    {2 On-disk format (version 2)}

    All integers are 64-bit little-endian.  The file is:

    {v
    magic "GPGSNAP1" | version | n | m | nsyms | total size
    section offset table (15 entries)
    symtab section        nsyms length-prefixed strings
    10 integer sections   node_id, edge_id, node_label, edge_label,
                          edge_src, edge_tgt, out_start, out_adj,
                          in_start, in_adj (8-byte aligned, mmap-ready)
    2 offset indexes      node_prop_off (n+1), edge_prop_off (m+1):
                          absolute byte positions of each element's
                          property vector (mmap-ready int columns)
    2 property sections   node_props, edge_props (tagged values)
    trailing CRC-32       over every preceding byte
    v}

    {!load} verifies magic, version, size and checksum, maps the twelve
    integer sections with [Unix.map_file] (shared copy-on-write pages —
    the CSR is never copied through the OCaml heap), and then {e remaps}
    the stored symbols into the caller's symbol table: label columns and
    property keys are rewritten through an [old id -> intern] table and
    property vectors re-sorted.  Kernels only rely on equal labels being
    contiguous within a CSR segment, so the mapped adjacency needs no
    re-sort and validation reports are byte-identical to a fresh
    {!Snapshot.build} over the same graph.  A snapshot file is therefore
    self-contained and schema-independent: it can be validated against
    any plan.

    {2 Shard-addressable loading}

    The property offset indexes (new in version 2) make a snapshot
    addressable below whole-file granularity: {!open_mapped} performs
    the same verification and mapping as {!load} but reads {e no}
    property bytes, and {!load_node_props}/{!load_edge_props} then pull
    exactly the requested elements' byte ranges off disk.  The sharded
    streaming validator materializes one {!Partition} shard's properties
    at a time, validates, and {!drop_node_props}s them before touching
    the next shard — other shards' property pages are never read. *)

type error = { code : string; message : string }
(** [code] is a stable {!Pg_diag.Registry} code: [IO001] for filesystem
    failures, [IO004] for format errors (bad magic, unsupported version,
    truncation, malformed layout), [IO005] for checksum mismatches. *)

val pp_error : Format.formatter -> error -> unit

type info = {
  version : int;
  nodes : int;
  edges : int;
  symbols : int;
  bytes : int;  (** total file size *)
}

val format_version : int
(** The version this build writes (and the only one it reads). *)

val write : Symtab.t -> Snapshot.t -> string -> (unit, error) result
(** [write st snap path] persists [snap] together with the symbols of
    [st] it references.  The file is written to a temporary sibling and
    renamed into place, so a crashed writer never leaves a torn file
    under [path]. *)

val load : Symtab.t -> string -> (Snapshot.t, error) result
(** [load st path] maps a snapshot back, interning its symbols into
    [st] (mutating it, like {!Snapshot.build} — sequential-only while
    interning).  The integer sections are validated structurally (CSR
    offsets monotone and closed, endpoints in range, property offset
    indexes monotone and within their sections) so a malformed file
    fails with a diagnostic instead of a kernel exception. *)

val info : string -> (info, error) result
(** Header summary of a snapshot file, after the same magic / version /
    size / checksum verification as {!load}. *)

(** {2 Out-of-core access} *)

type mapped
(** A verified snapshot whose int columns are mmapped but whose property
    vectors are loaded on demand: {!mapped_snapshot} starts with every
    property slot empty ([[||]]).  Holds an open file descriptor until
    {!close_mapped}. *)

val open_mapped : Symtab.t -> string -> (mapped, error) result
(** Same verification, mapping and symbol interning as {!load}, but no
    property bytes are read.  Errors carry the same codes as {!load}. *)

val mapped_snapshot : mapped -> Snapshot.t
(** The underlying snapshot view.  Property slots are filled and cleared
    in place by the calls below; the int columns are complete from the
    start, so topology-only kernels can run immediately. *)

val load_node_props : mapped -> lo:int -> hi:int -> (unit, error) result
(** Read the property vectors of nodes [\[lo, hi)] — one contiguous byte
    range located through the offset index — into the snapshot's
    [node_props] slots.
    @raise Invalid_argument if the range is out of bounds. *)

val load_edge_props : mapped -> int array -> (unit, error) result
(** Read the property vectors of the given edges (ascending indexes)
    into the snapshot's [edge_props] slots.  Nearby edges share one read
    request (ranges within 4 KiB coalesce), so a shard's clustered owned
    edges cost a few sequential reads.
    @raise Invalid_argument on out-of-bounds or unsorted indexes. *)

val drop_node_props : mapped -> lo:int -> hi:int -> unit
(** Reset the property slots of nodes [\[lo, hi)] to empty, releasing
    the heap they held — the "dropped" half of the streaming pipeline's
    build / validate / drop cycle. *)

val drop_edge_props : mapped -> int array -> unit

val close_mapped : mapped -> unit
(** Close the underlying channel.  The mapped int columns stay valid
    (the mapping outlives the descriptor); only
    {!load_node_props}/{!load_edge_props} become unusable. *)

val checksum : string -> int64
(** The CRC-32 (IEEE, as used for the trailing checksum) of a raw byte
    string.  Exposed so corruption tests can re-seal a deliberately
    patched file and reach the checks behind the checksum. *)
