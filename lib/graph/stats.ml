module Sm = Map.Make (String)

type t = {
  nodes : int;
  edges : int;
  node_labels : (string * int) list;
  edge_labels : (string * int) list;
  node_properties : int;
  edge_properties : int;
  max_out_degree : int;
  max_in_degree : int;
  mean_out_degree : float;
}

let bump m k = Sm.update k (function Some n -> Some (n + 1) | None -> Some 1) m

let compute g =
  let module G = Property_graph in
  let node_labels, node_properties, max_out, max_in =
    G.fold_nodes
      (fun v (labels, props, mo, mi) ->
        ( bump labels (G.node_label g v),
          props + G.node_prop_count g v,
          max mo (List.length (G.out_edges g v)),
          max mi (List.length (G.in_edges g v)) ))
      g (Sm.empty, 0, 0, 0)
  in
  let edge_labels, edge_properties =
    G.fold_edges
      (fun e (labels, props) ->
        (bump labels (G.edge_label g e), props + G.edge_prop_count g e))
      g (Sm.empty, 0)
  in
  let nodes = G.node_count g and edges = G.edge_count g in
  {
    nodes;
    edges;
    node_labels = Sm.bindings node_labels;
    edge_labels = Sm.bindings edge_labels;
    node_properties;
    edge_properties;
    max_out_degree = max_out;
    max_in_degree = max_in;
    mean_out_degree = (if nodes = 0 then 0. else float_of_int edges /. float_of_int nodes);
  }

let pp ppf s =
  let pp_hist ppf l =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (label, n) -> Format.fprintf ppf "%s:%d" label n)
      ppf l
  in
  Format.fprintf ppf
    "@[<v>nodes: %d (%a)@,edges: %d (%a)@,properties: %d node / %d edge@,degree: max out %d, max in %d, mean out %.2f@]"
    s.nodes pp_hist s.node_labels s.edges pp_hist s.edge_labels s.node_properties
    s.edge_properties s.max_out_degree s.max_in_degree s.mean_out_degree
