(* A frozen structure-of-arrays view of a Property_graph.

   Built in one pass over the persistent graph, then read-only: dense
   0-based node/edge indexes, interned label ids, CSR adjacency in both
   directions, and per-element property vectors sorted by interned key.
   Everything the validation kernels touch is an int array probe — no
   string hashing, no map lookups — and the whole structure is safe to
   share across domains once [build] returns.

   CSR segments are sorted so that the pair rules become run scans:
   - the out segment of a node is sorted by (edge label, target, edge id),
     so WS4 runs (same label), DS1 runs (same label and target) and DS2
     loops (target = self) are contiguous;
   - the in segment is sorted by (edge label, source, edge id) for DS3. *)

module G = Property_graph

type t = {
  n : int;  (** node count *)
  m : int;  (** edge count *)
  node_id : int array;  (** node index -> external id *)
  edge_id : int array;
  node_label : int array;  (** node index -> interned label *)
  edge_label : int array;
  edge_src : int array;  (** edge index -> node index *)
  edge_tgt : int array;
  node_props : (int * Value.t) array array;
      (** node index -> properties sorted by interned key *)
  edge_props : (int * Value.t) array array;
  out_start : int array;  (** CSR offsets, length n + 1 *)
  out_adj : int array;  (** edge indexes, segment-sorted (label, tgt, id) *)
  in_start : int array;
  in_adj : int array;  (** edge indexes, segment-sorted (label, src, id) *)
}

let props_array st props =
  match props with
  | [] -> [||]
  | _ ->
    let arr = Array.of_list (List.map (fun (k, v) -> (Symtab.intern st k, v)) props) in
    (* bindings come sorted by name; interned ids need not preserve that
       order, so re-sort by key id for binary search *)
    Array.sort (fun (a, _) (b, _) -> compare (a : int) b) arr;
    arr

(* Binary search of a sorted property vector. *)
let find_prop (props : (int * Value.t) array) key =
  let lo = ref 0 and hi = ref (Array.length props) in
  let found = ref None in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let k, v = props.(mid) in
    if k = key then begin
      found := Some v;
      lo := !hi
    end
    else if k < key then lo := mid + 1
    else hi := mid
  done;
  !found

let sort_segments start adj ~compare_edges =
  let n = Array.length start - 1 in
  for i = 0 to n - 1 do
    let lo = start.(i) and hi = start.(i + 1) in
    if hi - lo > 1 then begin
      let seg = Array.sub adj lo (hi - lo) in
      Array.sort compare_edges seg;
      Array.blit seg 0 adj lo (hi - lo)
    end
  done

let build st g =
  let nodes, edges = G.to_arrays g in
  let n = Array.length nodes and m = Array.length edges in
  let node_id = Array.map G.node_id nodes in
  let edge_id = Array.map G.edge_id edges in
  let index_of_id = Hashtbl.create (2 * n) in
  Array.iteri (fun i id -> Hashtbl.add index_of_id id i) node_id;
  let node_label = Array.map (fun v -> Symtab.intern st (G.node_label g v)) nodes in
  let edge_label = Array.map (fun e -> Symtab.intern st (G.edge_label g e)) edges in
  let node_props = Array.map (fun v -> props_array st (G.node_props g v)) nodes in
  let edge_props = Array.map (fun e -> props_array st (G.edge_props g e)) edges in
  let edge_src = Array.make m 0 and edge_tgt = Array.make m 0 in
  Array.iteri
    (fun j e ->
      let v1, v2 = G.edge_ends g e in
      edge_src.(j) <- Hashtbl.find index_of_id (G.node_id v1);
      edge_tgt.(j) <- Hashtbl.find index_of_id (G.node_id v2))
    edges;
  (* CSR in both directions: count, prefix-sum, fill, sort segments *)
  let out_start = Array.make (n + 1) 0 and in_start = Array.make (n + 1) 0 in
  for j = 0 to m - 1 do
    out_start.(edge_src.(j) + 1) <- out_start.(edge_src.(j) + 1) + 1;
    in_start.(edge_tgt.(j) + 1) <- in_start.(edge_tgt.(j) + 1) + 1
  done;
  for i = 1 to n do
    out_start.(i) <- out_start.(i) + out_start.(i - 1);
    in_start.(i) <- in_start.(i) + in_start.(i - 1)
  done;
  let out_adj = Array.make m 0 and in_adj = Array.make m 0 in
  let out_fill = Array.copy out_start and in_fill = Array.copy in_start in
  for j = 0 to m - 1 do
    out_adj.(out_fill.(edge_src.(j))) <- j;
    out_fill.(edge_src.(j)) <- out_fill.(edge_src.(j)) + 1;
    in_adj.(in_fill.(edge_tgt.(j))) <- j;
    in_fill.(edge_tgt.(j)) <- in_fill.(edge_tgt.(j)) + 1
  done;
  sort_segments out_start out_adj ~compare_edges:(fun a b ->
      match compare edge_label.(a) edge_label.(b) with
      | 0 -> (
        match compare edge_tgt.(a) edge_tgt.(b) with
        | 0 -> compare edge_id.(a) edge_id.(b)
        | c -> c)
      | c -> c);
  sort_segments in_start in_adj ~compare_edges:(fun a b ->
      match compare edge_label.(a) edge_label.(b) with
      | 0 -> (
        match compare edge_src.(a) edge_src.(b) with
        | 0 -> compare edge_id.(a) edge_id.(b)
        | c -> c)
      | c -> c);
  {
    n;
    m;
    node_id;
    edge_id;
    node_label;
    edge_label;
    edge_src;
    edge_tgt;
    node_props;
    edge_props;
    out_start;
    out_adj;
    in_start;
    in_adj;
  }
