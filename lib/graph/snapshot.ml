(* A frozen structure-of-arrays view of a Property_graph.

   Built in one pass over the persistent graph, then read-only: dense
   0-based node/edge indexes, interned label ids, CSR adjacency in both
   directions, and per-element property vectors sorted by interned key.
   Everything the validation kernels touch is an integer probe — no
   string hashing, no map lookups — and the whole structure is safe to
   share across domains once [build] returns.

   The integer columns are Bigarray-backed (off-heap): the GC neither
   scans nor moves them, so large graphs do not inflate major-heap
   marking, and {!Snapshot_io} can persist them verbatim and map them
   back from disk without a deserialization pass.  Property vectors keep
   boxed {!Value.t} payloads and therefore stay on the OCaml heap.

   CSR segments are sorted so that the pair rules become run scans:
   - the out segment of a node is sorted by (edge label, target, edge id),
     so WS4 runs (same label), DS1 runs (same label and target) and DS2
     loops (target = self) are contiguous;
   - the in segment is sorted by (edge label, source, edge id) for DS3. *)

module G = Property_graph

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;  (** node count *)
  m : int;  (** edge count *)
  node_id : ints;  (** node index -> external id *)
  edge_id : ints;
  node_label : ints;  (** node index -> interned label *)
  edge_label : ints;
  edge_src : ints;  (** edge index -> node index *)
  edge_tgt : ints;
  node_props : (int * Value.t) array array;
      (** node index -> properties sorted by interned key *)
  edge_props : (int * Value.t) array array;
  out_start : ints;  (** CSR offsets, length n + 1 *)
  out_adj : ints;  (** edge indexes, segment-sorted (label, tgt, id) *)
  in_start : ints;
  in_adj : ints;  (** edge indexes, segment-sorted (label, src, id) *)
}

exception Build_error of string

let ints_create len = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len

let ints_of_array (a : int array) =
  let b = ints_create (Array.length a) in
  Array.iteri (fun i x -> b.{i} <- x) a;
  b

let props_array st props =
  match props with
  | [] -> [||]
  | _ ->
    let arr = Array.of_list (List.map (fun (k, v) -> (Symtab.intern st k, v)) props) in
    (* bindings come sorted by name; interned ids need not preserve that
       order, so re-sort by key id for binary search *)
    Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
    arr

(* Binary search of a sorted property vector.  Monomorphic int
   comparisons: this is the hottest lookup of the DS5/DS7 kernels and
   must not go through caml_compare. *)
let find_prop (props : (int * Value.t) array) key =
  let lo = ref 0 and hi = ref (Array.length props) in
  let found = ref None in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let k, v = props.(mid) in
    if Int.equal k key then begin
      found := Some v;
      lo := !hi
    end
    else if k < key then lo := mid + 1
    else hi := mid
  done;
  !found

let sort_segments start adj ~compare_edges =
  let n = Array.length start - 1 in
  for i = 0 to n - 1 do
    let lo = start.(i) and hi = start.(i + 1) in
    if hi - lo > 1 then begin
      let seg = Array.sub adj lo (hi - lo) in
      Array.sort compare_edges seg;
      Array.blit seg 0 adj lo (hi - lo)
    end
  done

let build st g =
  let nodes, edges = G.to_arrays g in
  let n = Array.length nodes and m = Array.length edges in
  let node_id = Array.map G.node_id nodes in
  let edge_id = Array.map G.edge_id edges in
  let index_of_id = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i id ->
      if Hashtbl.mem index_of_id id then
        raise
          (Build_error
             (Printf.sprintf
                "duplicate node id n%d: two distinct nodes share one external id" id));
      Hashtbl.add index_of_id id i)
    node_id;
  let node_label = Array.map (fun v -> Symtab.intern st (G.node_label g v)) nodes in
  let edge_label = Array.map (fun e -> Symtab.intern st (G.edge_label g e)) edges in
  let node_props = Array.map (fun v -> props_array st (G.node_props g v)) nodes in
  let edge_props = Array.map (fun e -> props_array st (G.edge_props g e)) edges in
  let edge_src = Array.make m 0 and edge_tgt = Array.make m 0 in
  let resolve j id =
    match Hashtbl.find_opt index_of_id id with
    | Some i -> i
    | None ->
      raise
        (Build_error
           (Printf.sprintf "edge e%d references node n%d, which is not in the graph"
              edge_id.(j) id))
  in
  Array.iteri
    (fun j e ->
      let v1, v2 = G.edge_ends g e in
      edge_src.(j) <- resolve j (G.node_id v1);
      edge_tgt.(j) <- resolve j (G.node_id v2))
    edges;
  (* CSR in both directions: count, prefix-sum, fill, sort segments *)
  let out_start = Array.make (n + 1) 0 and in_start = Array.make (n + 1) 0 in
  for j = 0 to m - 1 do
    out_start.(edge_src.(j) + 1) <- out_start.(edge_src.(j) + 1) + 1;
    in_start.(edge_tgt.(j) + 1) <- in_start.(edge_tgt.(j) + 1) + 1
  done;
  for i = 1 to n do
    out_start.(i) <- out_start.(i) + out_start.(i - 1);
    in_start.(i) <- in_start.(i) + in_start.(i - 1)
  done;
  let out_adj = Array.make m 0 and in_adj = Array.make m 0 in
  let out_fill = Array.copy out_start and in_fill = Array.copy in_start in
  for j = 0 to m - 1 do
    out_adj.(out_fill.(edge_src.(j))) <- j;
    out_fill.(edge_src.(j)) <- out_fill.(edge_src.(j)) + 1;
    in_adj.(in_fill.(edge_tgt.(j))) <- j;
    in_fill.(edge_tgt.(j)) <- in_fill.(edge_tgt.(j)) + 1
  done;
  sort_segments out_start out_adj ~compare_edges:(fun a b ->
      match Int.compare edge_label.(a) edge_label.(b) with
      | 0 -> (
        match Int.compare edge_tgt.(a) edge_tgt.(b) with
        | 0 -> Int.compare edge_id.(a) edge_id.(b)
        | c -> c)
      | c -> c);
  sort_segments in_start in_adj ~compare_edges:(fun a b ->
      match Int.compare edge_label.(a) edge_label.(b) with
      | 0 -> (
        match Int.compare edge_src.(a) edge_src.(b) with
        | 0 -> Int.compare edge_id.(a) edge_id.(b)
        | c -> c)
      | c -> c);
  {
    n;
    m;
    node_id = ints_of_array node_id;
    edge_id = ints_of_array edge_id;
    node_label = ints_of_array node_label;
    edge_label = ints_of_array edge_label;
    edge_src = ints_of_array edge_src;
    edge_tgt = ints_of_array edge_tgt;
    node_props;
    edge_props;
    out_start = ints_of_array out_start;
    out_adj = ints_of_array out_adj;
    in_start = ints_of_array in_start;
    in_adj = ints_of_array in_adj;
  }
