(** Frozen structure-of-arrays snapshot of a {!Property_graph}.

    Dense node/edge indexes, interned labels, CSR adjacency both ways and
    sorted property vectors — the read-only substrate the compiled
    validation kernels run on (see {!Symtab} for the interning contract).

    All integer columns are off-heap [Bigarray] arrays ([ints]): the GC
    never scans them, they are shared across domains without copying, and
    a persisted snapshot ({!Snapshot_io}) maps them straight from disk.
    Property vectors stay on the OCaml heap because they carry boxed
    {!Value.t} payloads.

    The out segment of node [i] is [out_adj.{out_start.{i}} ..
    out_adj.{out_start.{i+1} - 1}], sorted by (edge label, target index,
    edge id); the in segment is sorted by (edge label, source index, edge
    id).  Property vectors are sorted by interned key id.  Kernels only
    rely on equal labels being {e contiguous} within a segment (run
    scans), never on the numeric order of label ids — which is what lets
    {!Snapshot_io.load} remap symbols without re-sorting the CSR. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** An off-heap vector of native ints. *)

type t = {
  n : int;
  m : int;
  node_id : ints;
  edge_id : ints;
  node_label : ints;
  edge_label : ints;
  edge_src : ints;
  edge_tgt : ints;
  node_props : (int * Value.t) array array;
  edge_props : (int * Value.t) array array;
  out_start : ints;
  out_adj : ints;
  in_start : ints;
  in_adj : ints;
}

exception Build_error of string
(** The graph under freeze is not a well-formed Property Graph: an edge
    endpoint is missing from the node set, or two nodes share an external
    id (which would silently re-bind every edge of the first to the
    last).  [build] detects both instead of escaping with [Not_found] or
    mis-wiring the CSR. *)

val build : Symtab.t -> Property_graph.t -> t
(** One pass over the graph; interns every label and property key it
    meets (mutating the symbol table), then freezes.  The result is safe
    to share across domains.
    @raise Build_error on dangling edge endpoints or duplicate node ids. *)

val find_prop : (int * Value.t) array -> int -> Value.t option
(** Binary search of a sorted property vector by interned key. *)

val ints_create : int -> ints
(** An uninitialized off-heap vector of the given length. *)

val ints_of_array : int array -> ints
(** Copy a heap array into a fresh off-heap vector. *)
