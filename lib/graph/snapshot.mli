(** Frozen structure-of-arrays snapshot of a {!Property_graph}.

    Dense node/edge indexes, interned labels, CSR adjacency both ways and
    sorted property vectors — the read-only substrate the compiled
    validation kernels run on (see {!Symtab} for the interning contract).

    The out segment of node [i] is [out_adj.(out_start.(i)) ..
    out_adj.(out_start.(i+1) - 1)], sorted by (edge label, target index,
    edge id); the in segment is sorted by (edge label, source index, edge
    id).  Property vectors are sorted by interned key id. *)

type t = {
  n : int;
  m : int;
  node_id : int array;
  edge_id : int array;
  node_label : int array;
  edge_label : int array;
  edge_src : int array;
  edge_tgt : int array;
  node_props : (int * Value.t) array array;
  edge_props : (int * Value.t) array array;
  out_start : int array;
  out_adj : int array;
  in_start : int array;
  in_adj : int array;
}

val build : Symtab.t -> Property_graph.t -> t
(** One pass over the graph; interns every label and property key it
    meets (mutating the symbol table), then freezes.  The result is safe
    to share across domains. *)

val find_prop : (int * Value.t) array -> int -> Value.t option
(** Binary search of a sorted property vector by interned key. *)
