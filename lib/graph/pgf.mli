(** PGF — a plain-text serialization for Property Graphs.

    The paper's experiments need graphs to be stored, diffed, and fed to the
    CLI; GraphQL has no instance syntax and no JSON library is available
    offline, so we define a minimal line-oriented format:

    {v
    # a comment
    node n0 :User {id: @"u1", login: "alice", nicknames: ["al", "lissa"]}
    node n1 :UserSession {id: @"s1", startTime: "2019-06-30T09:00"}
    edge e0 n1 -> n0 :user {certainty: 0.9}
    v}

    Values use GraphQL literal syntax with one extension: [@"..."] denotes a
    value of the [ID] scalar type (so that printing and parsing round-trip;
    plain ["..."] is a [String]).  The identifiers [true], [false], [nan],
    [inf] (and [-inf]) are value keywords — non-finite floats round-trip,
    at the price that an enum symbol cannot carry those four names.  Node
    handles ([n0]) are arbitrary identifiers scoped to the document; edge
    handles are optional documentation and are re-numbered on input. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Property_graph.t, error) result
(** Parse a PGF document.  Nodes receive fresh ids in document order. *)

(** {2 Streaming (record-at-a-time) parsing}

    One PGF line is one record.  [parse], {!read} and the fault-tolerant
    {!Stream.read_pgf} are all folds over {!inc_line}, so slurped and
    streamed input is processed by the same code path. *)

type inc
(** A graph under incremental construction (a {!Builder.t} with the
    document's handle namespace). *)

val inc_create : unit -> inc

val inc_line : inc -> int -> string -> (unit, error) result
(** [inc_line b lineno raw] applies one raw input line (blank and [#]
    comment lines are no-ops).  Atomic: on [Error] the graph under
    construction is unchanged, so a tolerant reader can skip the record
    and continue. *)

val inc_graph : inc -> Property_graph.t
(** The graph built so far (snapshot; more lines may follow). *)

val read : Chunked.source -> (Property_graph.t, error) result
(** Strict streaming parse of a chunked source.  Equivalent to [parse]
    of the concatenated chunks, but holds at most one line plus one
    chunk in memory. *)

val print : Property_graph.t -> string
(** Serialize; [parse (print g)] succeeds and yields a graph {!Property_graph.equal}
    to [g] up to re-numbering of ids (exactly equal when ids are dense and
    in insertion order, as produced by {!Property_graph.add_node}). *)

val value_to_string : Value.t -> string
(** One value in PGF literal syntax (the right-hand side of a property). *)

val value_of_string : string -> (Value.t, error) result
(** Parse one value in PGF literal syntax; the whole string must be
    consumed.  [value_of_string (value_to_string v)] yields a value
    {!Value.equal} to [v] (bit-exact for finite floats, [nan] and the
    infinities; [-0.0] round-trips to [-0.0]). *)

val load : string -> (Property_graph.t, error) result
(** [load path] reads and parses a file by streaming it through {!read}
    from a fixed-size chunked buffer (the whole file is never held in
    memory).  I/O failures (missing file, permissions) are returned as
    [Error] with [line = 0], never raised. *)

val save : string -> Property_graph.t -> unit
(** [save path g] writes [print g] to a file. *)
