(* Crash-safe temp+fsync+rename writes.  See durable.mli. *)

module Fault = Pg_fault.Fault

type t = { dest : string; tmp : string; fd : Unix.file_descr }

let pt_tmp_open = "durable.tmp_open"
let pt_mid_write = "durable.mid_write"
let pt_data_written = "durable.data_written"
let pt_file_synced = "durable.file_synced"
let pt_renamed = "durable.renamed"

let crash_points =
  [ pt_tmp_open; pt_mid_write; pt_data_written; pt_file_synced; pt_renamed ]

let create dest =
  let tmp = dest ^ ".tmp" in
  let fd = Fault.openfile tmp [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fault.crash_point pt_tmp_open;
  { dest; tmp; fd }

let path t = t.dest

let write t s =
  let buf = Bytes.unsafe_of_string s in
  let len = Bytes.length buf in
  let pos = ref 0 in
  while !pos < len do
    match Fault.write t.fd buf !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Fault.crash_point pt_mid_write

(* fsync the directory so the rename entry itself is on disk.  Some
   filesystems reject fsync on a directory fd (EINVAL) — there the
   rename is as durable as the platform allows and we move on. *)
let fsync_dir dest =
  let dir = Filename.dirname dest in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
      (fun () ->
        try Fault.fsync dfd with
        | Unix.Unix_error ((Unix.EINVAL | Unix.EBADF | Unix.EROFS), _, _) -> ())

let commit t =
  Fault.crash_point pt_data_written;
  Fault.fsync t.fd;
  Fault.crash_point pt_file_synced;
  Unix.close t.fd;
  Fault.rename t.tmp t.dest;
  Fault.crash_point pt_renamed;
  fsync_dir t.dest

let abort t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  try Sys.remove t.tmp with Sys_error _ -> ()

let write_file dest chunks =
  let t = create dest in
  match
    List.iter (write t) chunks;
    commit t
  with
  | () -> ()
  | exception e ->
    abort t;
    raise e
