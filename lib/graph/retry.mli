(** EINTR-hardened I/O primitives.

    A process that installs signal handlers (the validation daemon
    handles [SIGTERM]/[SIGINT]; any embedder may add its own) turns every
    blocking syscall into one that can fail spuriously with [EINTR] —
    surfaced by the [Unix] layer as [Unix_error (EINTR, _, _)] and by
    buffered channels as [Sys_error "...: Interrupted system call"].
    Long-lived readers ({!Chunked}, {!Snapshot_io}) must not treat an
    interrupted read as a corrupt input, so their syscalls go through the
    wrappers below, which retry on interruption and loop over partial
    transfers.  [EAGAIN] is deliberately {e not} retried: on a
    non-blocking descriptor it means "no data", and spinning on it would
    busy-wait — callers that poll handle it explicitly. *)

val syscall : (unit -> 'a) -> 'a
(** Run the thunk, retrying as long as it raises an interrupted-syscall
    error ([Unix.EINTR] or the equivalent [Sys_error]).  Every other
    outcome — values and exceptions alike — passes through. *)

(** {1 Buffered channels} *)

val input : in_channel -> bytes -> int -> int -> int
(** [Stdlib.input] with EINTR retry.  Returns [0] only at end of file. *)

val really_input : in_channel -> bytes -> int -> int -> unit
(** [Stdlib.really_input] semantics (raises [End_of_file] on a short
    file), built from retried {!input} calls so an interrupted partial
    read resumes instead of failing. *)

(** {1 File descriptors} *)

val read : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read] with EINTR retry. *)

val write : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.write] with EINTR retry. *)

val really_write : Unix.file_descr -> bytes -> int -> int -> unit
(** Write the whole range, looping over partial writes with EINTR
    retry.  Non-transient errors ([EPIPE], [ECONNRESET], ...) propagate
    to the caller. *)
