type t = {
  mutable g : Property_graph.t;
  names : (string, Property_graph.node) Hashtbl.t;
}

let create () = { g = Property_graph.empty; names = Hashtbl.create 64 }

let node b handle ~label ?(props = []) () =
  if Hashtbl.mem b.names handle then
    invalid_arg (Printf.sprintf "Builder.node: duplicate handle %S" handle);
  let g, v = Property_graph.add_node b.g ~label ~props () in
  b.g <- g;
  Hashtbl.add b.names handle v;
  v

let mem b handle = Hashtbl.mem b.names handle
let find_opt b handle = Hashtbl.find_opt b.names handle

let find b handle =
  match Hashtbl.find_opt b.names handle with
  | Some v -> v
  | None -> raise Not_found

let connect b vsrc vtgt ~label ?(props = []) () =
  let g, e = Property_graph.add_edge b.g ~label ~props vsrc vtgt in
  b.g <- g;
  e

let edge b src tgt ~label ?(props = []) () =
  let vsrc = find b src and vtgt = find b tgt in
  connect b vsrc vtgt ~label ~props ()

let graph b = b.g
