(* Chunked byte sources: the fixed-size-buffer reading discipline shared
   by the streaming loaders.  See chunked.mli. *)

let default_chunk_size = 65536

type source = unit -> string option

let of_channel ?(chunk_size = default_chunk_size) ic =
  if chunk_size <= 0 then
    invalid_arg "Chunked.of_channel: chunk_size must be positive";
  let buf = Bytes.create chunk_size in
  fun () ->
    (* EINTR-retried: a signal delivered to a daemon-resident reader must
       not truncate the stream (Retry.input) *)
    match Retry.input ic buf 0 chunk_size with
    | 0 -> None
    | n -> Some (Bytes.sub_string buf 0 n)
    | exception End_of_file -> None

let of_string ?(chunk_size = default_chunk_size) text =
  if chunk_size <= 0 then
    invalid_arg "Chunked.of_string: chunk_size must be positive";
  let pos = ref 0 in
  fun () ->
    if !pos >= String.length text then None
    else begin
      let n = min chunk_size (String.length text - !pos) in
      let s = String.sub text !pos n in
      pos := !pos + n;
      Some s
    end

let iter_lines source f =
  let carry = Buffer.create 256 in
  let lineno = ref 1 in
  let rec drain chunk start =
    match String.index_from_opt chunk start '\n' with
    | Some i ->
      let line =
        if Buffer.length carry = 0 then String.sub chunk start (i - start)
        else begin
          Buffer.add_substring carry chunk start (i - start);
          let l = Buffer.contents carry in
          Buffer.clear carry;
          l
        end
      in
      f !lineno line;
      incr lineno;
      drain chunk (i + 1)
    | None -> Buffer.add_substring carry chunk start (String.length chunk - start)
  in
  let rec loop () =
    match source () with
    | Some chunk ->
      drain chunk 0;
      loop ()
    | None -> if Buffer.length carry > 0 then f !lineno (Buffer.contents carry)
  in
  loop ()
