(** GraphML import/export, for exchanging Property Graphs with standard
    tooling (Gephi, yEd, Cytoscape).

    Nodes and edges carry their label in a [label] attribute; every
    property becomes a data key.  The four standard GraphML value types
    ([int], [double], [boolean], [string]) are used where they fit; [ID],
    enum and list values — and properties used at more than one type —
    are declared as [attr.type="string"] with a [pg.kind] extension
    attribute and rendered in PGF literal syntax, so the full value
    vocabulary round-trips: [parse (to_string g)] yields a graph equal to
    [g] up to re-numbering of ids (exactly equal when ids are dense and
    in insertion order).  Standard tools ignore [pg.kind] and read the
    string rendering.

    {!parse} covers the XML subset {!to_string} emits (it is an exchange
    format for this toolchain, not a general XML reader).  A property
    named [label] would collide with the label key and is not
    round-trippable. *)

type error = { message : string }

val pp_error : Format.formatter -> error -> unit

val to_string : Property_graph.t -> string
val save : string -> Property_graph.t -> unit

val parse : string -> (Property_graph.t, error) result
(** Parse a GraphML document produced by {!to_string}.  Nodes receive
    fresh ids in document order. *)

val read : Chunked.source -> (Property_graph.t, error) result
(** Strict streaming parse of a chunked source; equivalent to [parse] of
    the concatenated chunks.  The raw text is scanned incrementally (the
    window is bounded by the largest single XML construct plus one
    chunk); the event stream is buffered so that scan errors preempt
    semantic errors exactly as in {!parse}. *)

val load : string -> (Property_graph.t, error) result
(** Like {!parse}, reading from a file through {!read}.  I/O failures
    are returned as [Error], never raised. *)

(** {2 Fault-tolerant streaming import} *)

type fault = {
  f_record : int;  (** ordinal of the record (key/node/edge element), 1-based *)
  f_subject : string;  (** e.g. [node "n3"] *)
  f_raw : string;  (** raw text of the record up to the defect *)
  f_message : string;
}

val read_tolerant :
  ?max_skipped:int ->
  ?on_fault:(fault -> unit) ->
  Chunked.source ->
  (Property_graph.t * fault list * bool * int, error) result
(** Record-at-a-time import that skips malformed records instead of
    failing: each skipped record is reported as a {!fault} (in document
    order, via [on_fault] as it is found) and the graph is built as if
    the record were absent — so dropping a node also faults every edge
    that references it.  [max_skipped] is the error budget: the fault
    after the budget is still reported, then ingestion stops early and
    the third component of the result is [true].  The fourth component
    counts records encountered.  Holds only the open record in memory.
    Scanner-level XML errors are structural, not record-local, and stay
    fatal ([Error]). *)
