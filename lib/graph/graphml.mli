(** GraphML import/export, for exchanging Property Graphs with standard
    tooling (Gephi, yEd, Cytoscape).

    Nodes and edges carry their label in a [label] attribute; every
    property becomes a data key.  The four standard GraphML value types
    ([int], [double], [boolean], [string]) are used where they fit; [ID],
    enum and list values — and properties used at more than one type —
    are declared as [attr.type="string"] with a [pg.kind] extension
    attribute and rendered in PGF literal syntax, so the full value
    vocabulary round-trips: [parse (to_string g)] yields a graph equal to
    [g] up to re-numbering of ids (exactly equal when ids are dense and
    in insertion order).  Standard tools ignore [pg.kind] and read the
    string rendering.

    {!parse} covers the XML subset {!to_string} emits (it is an exchange
    format for this toolchain, not a general XML reader).  A property
    named [label] would collide with the label key and is not
    round-trippable. *)

type error = { message : string }

val pp_error : Format.formatter -> error -> unit

val to_string : Property_graph.t -> string
val save : string -> Property_graph.t -> unit

val parse : string -> (Property_graph.t, error) result
(** Parse a GraphML document produced by {!to_string}.  Nodes receive
    fresh ids in document order. *)

val load : string -> (Property_graph.t, error) result
(** Like {!parse}, reading from a file.  I/O failures are returned as
    [Error], never raised. *)
