(* Streaming fault-tolerant ingestion.  See stream.mli. *)

type source = Chunked.source

let of_channel = Chunked.of_channel
let of_string = Chunked.of_string

type fault = { record : int; subject : string; text : string; message : string }

type outcome = {
  graph : Property_graph.t;
  complete : bool;
  faults : fault list;
  budget_exhausted : bool;
  records : int;
}

exception Stop

let make_outcome graph faults budget_exhausted records =
  { graph; complete = faults = [] && not budget_exhausted; faults; budget_exhausted; records }

let read_pgf ?max_errors ?(on_fault = fun _ -> ()) source =
  let b = Pgf.inc_create () in
  let faults = ref [] in
  let nfaults = ref 0 in
  let records = ref 0 in
  let exhausted = ref false in
  (try
     Chunked.iter_lines source (fun lineno raw ->
         let t = String.trim raw in
         if not (t = "" || t.[0] = '#') then incr records;
         match Pgf.inc_line b lineno raw with
         | Ok () -> ()
         | Error e ->
           let f =
             {
               record = lineno;
               subject = Printf.sprintf "line %d" lineno;
               text = raw;
               message = e.Pgf.message;
             }
           in
           faults := f :: !faults;
           incr nfaults;
           on_fault f;
           (match max_errors with
           | Some m when !nfaults > m ->
             exhausted := true;
             raise Stop
           | _ -> ()))
   with Stop -> ());
  make_outcome (Pgf.inc_graph b) (List.rev !faults) !exhausted !records

let fault_of_graphml (gf : Graphml.fault) =
  { record = gf.Graphml.f_record; subject = gf.f_subject; text = gf.f_raw; message = gf.f_message }

let read_graphml ?max_errors ?(on_fault = fun _ -> ()) source =
  match
    Graphml.read_tolerant ?max_skipped:max_errors
      ~on_fault:(fun gf -> on_fault (fault_of_graphml gf))
      source
  with
  | Ok (graph, gfaults, exhausted, records) ->
    Ok (make_outcome graph (List.map fault_of_graphml gfaults) exhausted records)
  | Error e -> Error e

(* Quarantine files collect the raw text of skipped records, one per
   line, created lazily so a clean ingest leaves no file behind.  The
   records are the operator's only copy of the data that was dropped,
   so they go through {!Durable}: written to a temp file, fsynced and
   renamed into place when the ingest finishes — a crash mid-ingest
   leaves no half-written quarantine, and a completed ingest's
   quarantine survives power loss. *)
let with_quarantine path k =
  let w = ref None in
  let write (f : fault) =
    let out =
      match !w with
      | Some out -> out
      | None ->
        let out = Durable.create path in
        w := Some out;
        out
    in
    Durable.write out f.text;
    Durable.write out "\n"
  in
  match k write with
  | v ->
    Option.iter Durable.commit !w;
    v
  | exception e ->
    Option.iter Durable.abort !w;
    raise e

let load_pgf ?max_errors ?quarantine path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let go on_fault = read_pgf ?max_errors ~on_fault (of_channel ic) in
        match quarantine with
        | None -> go (fun _ -> ())
        | Some qpath -> with_quarantine qpath go)
  with
  | exception Sys_error message -> Result.Error { Pgf.line = 0; message }
  | exception Unix.Unix_error (e, _, _) ->
    Result.Error { Pgf.line = 0; message = Unix.error_message e }
  | outcome -> Ok outcome

let load_graphml ?max_errors ?quarantine path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let go on_fault = read_graphml ?max_errors ~on_fault (of_channel ic) in
        match quarantine with
        | None -> go (fun _ -> ())
        | Some qpath -> with_quarantine qpath go)
  with
  | exception Sys_error message -> Result.Error { Graphml.message }
  | exception Unix.Unix_error (e, _, _) ->
    Result.Error { Graphml.message = Unix.error_message e }
  | r -> r
