(* Binary snapshot persistence.

   Layout (all integers 64-bit little-endian; "section" offsets are
   absolute byte positions, each 8-byte aligned so the int columns can
   be mapped as Bigarrays of kind [int] directly):

     0   magic "GPGSNAP1"
     8   format version (= 2)
     16  n (nodes)
     24  m (edges)
     32  nsyms (interned symbols referenced by the snapshot)
     40  total file size in bytes (including the trailing checksum)
     48  15 section offsets: sym, node_id, edge_id, node_label,
         edge_label, edge_src, edge_tgt, out_start, out_adj, in_start,
         in_adj, node_prop_off, edge_prop_off, node_props, edge_props
     168 sections ...
     size-8  CRC-32 (IEEE) of bytes [0, size-8), stored as int64

   The symtab section is nsyms length-prefixed strings in id order.
   Property sections are per-element vectors of (key id, tagged value).
   The twelve integer sections are the raw native-int columns; on a
   64-bit little-endian host they are byte-compatible with the mmapped
   view, so [load] never copies them through the heap.

   Version 2 adds the two property offset indexes: [node_prop_off] is
   n+1 absolute byte positions, entry i the start of node i's vector
   inside the node_props section (entry n its end); [edge_prop_off] the
   same for edges.  They are what makes a snapshot shard-addressable:
   {!open_mapped} maps the int columns and the offset indexes but reads
   no property bytes at all, and {!load_node_props}/{!load_edge_props}
   then pull exactly one shard's byte range off disk — the streaming
   sharded validator never touches the other shards' pages.

   Symbol ids inside the file are the ids of the *writing* symtab.  The
   loader interns every stored name into the target table and rewrites
   label columns and property keys through the resulting old->new map —
   that is what makes a snapshot schema-independent (see the .mli). *)

module Fault = Pg_fault.Fault

let format_version = 2
let magic = "GPGSNAP1"
let n_sections = 15
let header_size = 48 + (8 * n_sections)

type error = { code : string; message : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.code e.message

type info = { version : int; nodes : int; edges : int; symbols : int; bytes : int }

let err code fmt = Printf.ksprintf (fun message -> Error { code; message }) fmt

(* ---------- CRC-32 (IEEE 802.3), slicing-by-8 ---------- *)

(* Table k gives the CRC contribution of a byte k positions back, so eight
   independent lookups replace eight serially-dependent ones per block.  The
   byte-at-a-time loop's latency chain is what dominates loading: the CRC
   runs over the whole file, and the mmap path does nothing else that is
   O(bytes). *)
let crc_table =
  lazy
    (let t = Array.make_matrix 8 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
       done;
       t.(0).(n) <- !c
     done;
     for k = 1 to 7 do
       for n = 0 to 255 do
         let p = t.(k - 1).(n) in
         t.(k).(n) <- (p lsr 8) lxor t.(0).(p land 0xFF)
       done
     done;
     t)

let crc32_update crc s pos len =
  let t = Lazy.force crc_table in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let t4 = t.(4) and t5 = t.(5) and t6 = t.(6) and t7 = t.(7) in
  let c = ref (crc lxor 0xFFFFFFFF) in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 8 do
    let b k = Char.code (String.unsafe_get s (!i + k)) in
    let x = !c lxor (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)) in
    c :=
      Array.unsafe_get t7 (x land 0xFF)
      lxor Array.unsafe_get t6 ((x lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((x lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((x lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (b 4)
      lxor Array.unsafe_get t2 (b 5)
      lxor Array.unsafe_get t1 (b 6)
      lxor Array.unsafe_get t0 (b 7);
    i := !i + 8
  done;
  while !i < stop do
    c :=
      Array.unsafe_get t0 ((!c lxor Char.code (String.unsafe_get s !i)) land 0xFF)
      lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

let checksum s = Int64.of_int (crc32_update 0 s 0 (String.length s))

(* ---------- writing ---------- *)

let add_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_string_pfx buf s =
  add_i64 buf (String.length s);
  Buffer.add_string buf s

let pad_to_8 buf =
  while Buffer.length buf land 7 <> 0 do
    Buffer.add_char buf '\000'
  done

let add_ints buf (a : Snapshot.ints) =
  for i = 0 to Bigarray.Array1.dim a - 1 do
    add_i64 buf a.{i}
  done

let rec add_value buf = function
  | Value.Int i ->
    Buffer.add_char buf 'i';
    add_i64 buf i
  | Value.Float f ->
    Buffer.add_char buf 'f';
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.String s ->
    Buffer.add_char buf 's';
    add_string_pfx buf s
  | Value.Id s ->
    Buffer.add_char buf 'd';
    add_string_pfx buf s
  | Value.Enum s ->
    Buffer.add_char buf 'e';
    add_string_pfx buf s
  | Value.Bool b ->
    Buffer.add_char buf 'b';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Value.List vs ->
    Buffer.add_char buf 'l';
    add_i64 buf (List.length vs);
    List.iter (add_value buf) vs

(* Write the vectors and record each one's absolute start position into
   [offs] (length count+1; the last entry is the end of the section's
   payload) — the offset index is patched into its placeholder section
   once the whole body is in bytes. *)
let add_props buf (offs : int array) (props : (int * Value.t) array array) =
  Array.iteri
    (fun i vec ->
      offs.(i) <- Buffer.length buf;
      add_i64 buf (Array.length vec);
      Array.iter
        (fun (k, v) ->
          add_i64 buf k;
          add_value buf v)
        vec)
    props;
  offs.(Array.length props) <- Buffer.length buf

let write st (snap : Snapshot.t) path =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  add_i64 buf format_version;
  add_i64 buf snap.Snapshot.n;
  add_i64 buf snap.Snapshot.m;
  let nsyms = Symtab.size st in
  add_i64 buf nsyms;
  add_i64 buf 0 (* total size, patched below *);
  for _ = 1 to n_sections do
    add_i64 buf 0 (* section offsets, patched below *)
  done;
  assert (Buffer.length buf = header_size);
  let offsets = Array.make n_sections 0 in
  let section k fill =
    pad_to_8 buf;
    offsets.(k) <- Buffer.length buf;
    fill ()
  in
  section 0 (fun () ->
      for id = 0 to nsyms - 1 do
        add_string_pfx buf (Symtab.name st id)
      done);
  let int_sections =
    [|
      snap.Snapshot.node_id; snap.Snapshot.edge_id; snap.Snapshot.node_label;
      snap.Snapshot.edge_label; snap.Snapshot.edge_src; snap.Snapshot.edge_tgt;
      snap.Snapshot.out_start; snap.Snapshot.out_adj; snap.Snapshot.in_start;
      snap.Snapshot.in_adj;
    |]
  in
  Array.iteri (fun k a -> section (1 + k) (fun () -> add_ints buf a)) int_sections;
  (* placeholder offset indexes; the real positions exist only after the
     property sections are written, so they are patched into the body *)
  section 11 (fun () ->
      for _ = 0 to snap.Snapshot.n do
        add_i64 buf 0
      done);
  section 12 (fun () ->
      for _ = 0 to snap.Snapshot.m do
        add_i64 buf 0
      done);
  let noffs = Array.make (snap.Snapshot.n + 1) 0 in
  let eoffs = Array.make (snap.Snapshot.m + 1) 0 in
  section 13 (fun () -> add_props buf noffs snap.Snapshot.node_props);
  section 14 (fun () -> add_props buf eoffs snap.Snapshot.edge_props);
  pad_to_8 buf;
  let total = Buffer.length buf + 8 in
  let body = Buffer.to_bytes buf in
  Bytes.set_int64_le body 40 (Int64.of_int total);
  Array.iteri (fun k off -> Bytes.set_int64_le body (48 + (8 * k)) (Int64.of_int off)) offsets;
  Array.iteri
    (fun i off -> Bytes.set_int64_le body (offsets.(11) + (8 * i)) (Int64.of_int off))
    noffs;
  Array.iteri
    (fun i off -> Bytes.set_int64_le body (offsets.(12) + (8 * i)) (Int64.of_int off))
    eoffs;
  let crc = crc32_update 0 (Bytes.unsafe_to_string body) 0 (Bytes.length body) in
  let tail = Bytes.create 8 in
  Bytes.set_int64_le tail 0 (Int64.of_int crc);
  (* Durable temp+fsync+rename: a crash at any point (the matrix test
     kills the process at every Durable crash point) leaves [path]
     either absent, its previous content, or fully valid. *)
  try
    Durable.write_file path
      [ Bytes.unsafe_to_string body; Bytes.unsafe_to_string tail ];
    Ok ()
  with
  | Sys_error msg -> err "IO001" "cannot write snapshot %s: %s" path msg
  | Unix.Unix_error (e, _, _) ->
    err "IO001" "cannot write snapshot %s: %s" path (Unix.error_message e)

(* ---------- reading ---------- *)

(* A cursor over fully-read header / symtab / property bytes.  The int
   sections are not read through this — they are mmapped. *)
type cursor = { data : string; mutable pos : int }

exception Malformed of string

let need cur len =
  if cur.pos + len > String.length cur.data then
    raise (Malformed "unexpected end of section")

let read_i64 cur =
  need cur 8;
  let v = String.get_int64_le cur.data cur.pos in
  cur.pos <- cur.pos + 8;
  let n = Int64.to_int v in
  if Int64.of_int n <> v then raise (Malformed "integer out of native range");
  n

let read_len cur what =
  let n = read_i64 cur in
  if n < 0 || n > String.length cur.data - cur.pos then
    raise (Malformed (Printf.sprintf "bad %s length %d" what n));
  n

let read_string_pfx cur =
  let len = read_len cur "string" in
  let s = String.sub cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let rec read_value cur =
  need cur 1;
  let tag = cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  match tag with
  | 'i' -> Value.Int (read_i64 cur)
  | 'f' ->
    need cur 8;
    let bits = String.get_int64_le cur.data cur.pos in
    cur.pos <- cur.pos + 8;
    Value.Float (Int64.float_of_bits bits)
  | 's' -> Value.String (read_string_pfx cur)
  | 'd' -> Value.Id (read_string_pfx cur)
  | 'e' -> Value.Enum (read_string_pfx cur)
  | 'b' ->
    need cur 1;
    let b = cur.data.[cur.pos] in
    cur.pos <- cur.pos + 1;
    Value.Bool (b <> '\000')
  | 'l' ->
    let count = read_len cur "list" in
    Value.List (List.init count (fun _ -> read_value cur))
  | c -> raise (Malformed (Printf.sprintf "unknown value tag %C" c))

(* [remap] translates a stored symbol id to the target symtab's id. *)
let read_vec cur remap =
  let len = read_len cur "property vector" in
  let vec =
    Array.init len (fun _ ->
        let k = read_i64 cur in
        let v = read_value cur in
        (remap k, v))
  in
  (* key order under the writer's ids need not survive the remap *)
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) vec;
  vec

let read_header ic path =
  let hdr = Bytes.create header_size in
  (try Retry.really_input ic hdr 0 header_size
   with End_of_file -> raise (Malformed "file shorter than header"));
  let hdr = Bytes.unsafe_to_string hdr in
  if String.sub hdr 0 8 <> magic then
    raise (Malformed (Printf.sprintf "%s is not a snapshot file (bad magic)" path));
  let cur = { data = hdr; pos = 8 } in
  let version = read_i64 cur in
  if version <> format_version then
    raise
      (Malformed
         (Printf.sprintf "unsupported snapshot format version %d (this build reads %d)"
            version format_version));
  let n = read_i64 cur in
  let m = read_i64 cur in
  let nsyms = read_i64 cur in
  let total = read_i64 cur in
  if n < 0 || m < 0 || nsyms < 0 then raise (Malformed "negative count in header");
  let actual = in_channel_length ic in
  if total <> actual then
    raise (Malformed (Printf.sprintf "header declares %d bytes, file has %d" total actual));
  let offsets = Array.init n_sections (fun _ -> read_i64 cur) in
  Array.iteri
    (fun k off ->
      if off < header_size || off > total - 8 || off land 7 <> 0 then
        raise (Malformed (Printf.sprintf "section %d offset %d out of bounds" k off)))
    offsets;
  (version, n, m, nsyms, total, offsets)

let verify_crc ic total =
  seek_in ic 0;
  let body_len = total - 8 in
  let chunk = Bytes.create 65536 in
  let crc = ref 0 in
  let remaining = ref body_len in
  while !remaining > 0 do
    let k = min !remaining (Bytes.length chunk) in
    Retry.really_input ic chunk 0 k;
    crc := crc32_update !crc (Bytes.unsafe_to_string chunk) 0 k;
    remaining := !remaining - k
  done;
  let tail = Bytes.create 8 in
  Retry.really_input ic tail 0 8;
  let stored = Bytes.get_int64_le tail 0 in
  if stored <> Int64.of_int !crc then
    Error
      { code = "IO005";
        message =
          Printf.sprintf "checksum mismatch: stored %Lx, computed %x — file is corrupt"
            stored !crc }
  else Ok ()

let read_section ic ~from ~until =
  seek_in ic from;
  let len = until - from in
  let b = Bytes.create len in
  Retry.really_input ic b 0 len;
  { data = Bytes.unsafe_to_string b; pos = 0 }

(* Map [len] native ints starting at byte [pos].  Zero-length maps are
   rejected by the OS, so hand back a fresh empty vector instead. *)
let map_ints fd ~pos ~len =
  if len = 0 then Snapshot.ints_create 0
  else
    let g =
      Fault.map_file fd ~pos:(Int64.of_int pos) Bigarray.int Bigarray.c_layout false
        [| len |]
    in
    Bigarray.array1_of_genarray g

(* Structural validation of the mmapped CSR: anything a kernel indexes
   with must be proven in range here, so a malformed (but checksummed)
   file fails with a diagnostic instead of a Bigarray bounds exception
   deep inside an engine. *)
let validate_structure ~n ~m ~(edge_src : Snapshot.ints) ~(edge_tgt : Snapshot.ints)
    ~(out_start : Snapshot.ints) ~(out_adj : Snapshot.ints) ~(in_start : Snapshot.ints)
    ~(in_adj : Snapshot.ints) =
  for j = 0 to m - 1 do
    if edge_src.{j} < 0 || edge_src.{j} >= n || edge_tgt.{j} < 0 || edge_tgt.{j} >= n
    then raise (Malformed (Printf.sprintf "edge %d endpoint out of range" j))
  done;
  let check_csr what (start : Snapshot.ints) (adj : Snapshot.ints) =
    if start.{0} <> 0 || start.{n} <> m then
      raise (Malformed (Printf.sprintf "%s CSR offsets do not cover the edge set" what));
    for i = 0 to n - 1 do
      if start.{i} > start.{i + 1} then
        raise (Malformed (Printf.sprintf "%s CSR offsets not monotone at node %d" what i))
    done;
    for k = 0 to m - 1 do
      if adj.{k} < 0 || adj.{k} >= m then
        raise (Malformed (Printf.sprintf "%s adjacency entry %d out of range" what k))
    done
  in
  check_csr "out" out_start out_adj;
  check_csr "in" in_start in_adj

(* The property offset indexes are what load_node_props/load_edge_props
   seek by, so prove them monotone and inside their section here — one
   pass at open time instead of a bounds check per property read. *)
let validate_prop_offsets what (offs : Snapshot.ints) count ~base ~limit =
  if offs.{0} <> base then
    raise (Malformed (Printf.sprintf "%s offset index does not start at its section" what));
  for i = 0 to count - 1 do
    if offs.{i} > offs.{i + 1} then
      raise (Malformed (Printf.sprintf "%s offset index not monotone at %d" what i))
  done;
  if offs.{count} > limit then
    raise (Malformed (Printf.sprintf "%s offset index overruns its section" what))

let remap_labels remap (a : Snapshot.ints) =
  let len = Bigarray.Array1.dim a in
  let b = Snapshot.ints_create len in
  for i = 0 to len - 1 do
    b.{i} <- remap a.{i}
  done;
  b

(* ---------- the mapped handle ---------- *)

type mapped = {
  m_path : string;
  m_ic : in_channel; (* kept open for property reads; close_mapped closes it *)
  m_snap : Snapshot.t; (* int columns mapped; property slots start empty *)
  m_trans : int array;
  m_nsyms : int;
  m_node_off : Snapshot.ints;
  m_edge_off : Snapshot.ints;
}

let mapped_snapshot md = md.m_snap
let close_mapped md = close_in_noerr md.m_ic

let remap_of md id =
  if id < 0 || id >= md.m_nsyms then
    raise (Malformed (Printf.sprintf "symbol id %d out of range" id));
  md.m_trans.(id)

let open_mapped st path =
  match
    let ic = Retry.syscall (fun () -> Fault.open_in_bin path) in
    let ok = ref false in
    Fun.protect
      ~finally:(fun () -> if not !ok then close_in_noerr ic)
      (fun () ->
        let _, n, m, nsyms, total, offsets = read_header ic path in
        match verify_crc ic total with
        | Error e -> Error e
        | Ok () ->
          (* symtab: intern stored names into the target table; [trans]
             translates writer ids to target ids from here on *)
          let sym_cur = read_section ic ~from:offsets.(0) ~until:offsets.(1) in
          let trans = Array.make (max 1 nsyms) 0 in
          for id = 0 to nsyms - 1 do
            trans.(id) <- Symtab.intern st (read_string_pfx sym_cur)
          done;
          let remap id =
            if id < 0 || id >= nsyms then
              raise (Malformed (Printf.sprintf "symbol id %d out of range" id));
            trans.(id)
          in
          let expect k len =
            let have = (offsets.(k + 1) - offsets.(k)) / 8 in
            if have < len then
              raise (Malformed (Printf.sprintf "section %d too short for %d ints" k len))
          in
          expect 1 n;
          expect 2 m;
          expect 3 n;
          expect 4 m;
          expect 5 m;
          expect 6 m;
          expect 7 (n + 1);
          expect 8 m;
          expect 9 (n + 1);
          expect 10 m;
          expect 11 (n + 1);
          expect 12 (m + 1);
          (* mmap the int columns; the mapping outlives the fd *)
          let fd = Retry.syscall (fun () -> Fault.openfile path [ Unix.O_RDONLY ] 0) in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              let sec k len = map_ints fd ~pos:offsets.(k) ~len in
              let node_id = sec 1 n and edge_id = sec 2 m in
              let node_label = sec 3 n and edge_label = sec 4 m in
              let edge_src = sec 5 m and edge_tgt = sec 6 m in
              let out_start = sec 7 (n + 1) and out_adj = sec 8 m in
              let in_start = sec 9 (n + 1) and in_adj = sec 10 m in
              let node_off = sec 11 (n + 1) and edge_off = sec 12 (m + 1) in
              validate_structure ~n ~m ~edge_src ~edge_tgt ~out_start ~out_adj
                ~in_start ~in_adj;
              validate_prop_offsets "node property" node_off n ~base:offsets.(13)
                ~limit:offsets.(14);
              validate_prop_offsets "edge property" edge_off m ~base:offsets.(14)
                ~limit:(total - 8);
              (* label columns carry writer ids: rewrite them through the
                 remap into fresh (non-mapped) vectors.  Remapping is
                 injective, so equal-label runs inside each CSR segment
                 stay contiguous and no re-sort is needed. *)
              let node_label = remap_labels remap node_label in
              let edge_label = remap_labels remap edge_label in
              ok := true;
              Ok
                {
                  m_path = path;
                  m_ic = ic;
                  m_trans = trans;
                  m_nsyms = nsyms;
                  m_node_off = node_off;
                  m_edge_off = edge_off;
                  m_snap =
                    {
                      Snapshot.n;
                      m;
                      node_id;
                      edge_id;
                      node_label;
                      edge_label;
                      edge_src;
                      edge_tgt;
                      node_props = Array.make n [||];
                      edge_props = Array.make m [||];
                      out_start;
                      out_adj;
                      in_start;
                      in_adj;
                    };
                }))
  with
  | result -> result
  | exception Sys_error msg -> err "IO001" "cannot read snapshot %s: %s" path msg
  | exception Malformed msg -> err "IO004" "malformed snapshot %s: %s" path msg
  | exception End_of_file -> err "IO004" "malformed snapshot %s: unexpected end of file" path
  | exception Unix.Unix_error (e, fn, _) ->
    (* device-level failure (EIO on a faulted page, mmap refusal, ...):
       a different repair story than IO001's "file unreadable", so it
       gets its own code *)
    err "IO006" "I/O failure opening snapshot %s: %s failed: %s" path fn
      (Unix.error_message e)

(* [section] names what was being pulled off disk ("node properties",
   "edge properties") so an IO006 from a faulted page read says which
   part of the snapshot is unreadable, not just which file. *)
let wrap_prop_errors md ~section f =
  match f () with
  | () -> Ok ()
  | exception Sys_error msg -> err "IO001" "cannot read snapshot %s: %s" md.m_path msg
  | exception Malformed msg -> err "IO004" "malformed snapshot %s: %s" md.m_path msg
  | exception End_of_file ->
    err "IO004" "malformed snapshot %s: unexpected end of file" md.m_path
  | exception Unix.Unix_error (e, fn, _) ->
    err "IO006" "I/O failure reading %s of snapshot %s: %s failed: %s" section
      md.m_path fn (Unix.error_message e)

(* Parse the vectors of [offs]-indexed elements [parse_at] lists out of
   one contiguous byte range [base, stop) read in a single request. *)
let read_range md ~base ~stop =
  seek_in md.m_ic base;
  let b = Bytes.create (stop - base) in
  Retry.really_input md.m_ic b 0 (stop - base);
  { data = Bytes.unsafe_to_string b; pos = 0 }

let parse_at md cur ~base (offs : Snapshot.ints) i =
  cur.pos <- offs.{i} - base;
  let vec = read_vec cur (remap_of md) in
  if cur.pos <> offs.{i + 1} - base then
    raise (Malformed (Printf.sprintf "property vector %d does not end at its offset" i));
  vec

let load_node_props md ~lo ~hi =
  wrap_prop_errors md ~section:"node properties" (fun () ->
      if lo < 0 || hi > md.m_snap.Snapshot.n || lo > hi then
        invalid_arg "Snapshot_io.load_node_props: range out of bounds";
      if hi > lo then begin
        let base = md.m_node_off.{lo} in
        let cur = read_range md ~base ~stop:md.m_node_off.{hi} in
        for i = lo to hi - 1 do
          md.m_snap.Snapshot.node_props.(i) <- parse_at md cur ~base md.m_node_off i
        done
      end)

(* Coalesced reads: consecutive requested edges whose byte ranges are
   within [gap] of each other share one read request, so a shard's owned
   edges (clustered by construction) cost a few sequential reads instead
   of one seek per edge. *)
let coalesce_gap = 4096

let load_edge_props md (edges : int array) =
  wrap_prop_errors md ~section:"edge properties" (fun () ->
      let len = Array.length edges in
      Array.iteri
        (fun x e ->
          if e < 0 || e >= md.m_snap.Snapshot.m then
            invalid_arg "Snapshot_io.load_edge_props: edge index out of bounds";
          if x > 0 && edges.(x - 1) > e then
            invalid_arg "Snapshot_io.load_edge_props: edge indexes must be ascending")
        edges;
      let x = ref 0 in
      while !x < len do
        let y = ref (!x + 1) in
        while
          !y < len
          && md.m_edge_off.{edges.(!y)} - md.m_edge_off.{edges.(!y - 1) + 1}
             <= coalesce_gap
        do
          incr y
        done;
        let base = md.m_edge_off.{edges.(!x)} in
        let cur = read_range md ~base ~stop:md.m_edge_off.{edges.(!y - 1) + 1} in
        for z = !x to !y - 1 do
          let e = edges.(z) in
          md.m_snap.Snapshot.edge_props.(e) <- parse_at md cur ~base md.m_edge_off e
        done;
        x := !y
      done)

let drop_node_props md ~lo ~hi =
  for i = lo to hi - 1 do
    md.m_snap.Snapshot.node_props.(i) <- [||]
  done

let drop_edge_props md (edges : int array) =
  Array.iter (fun e -> md.m_snap.Snapshot.edge_props.(e) <- [||]) edges

(* ---------- full load / info ---------- *)

let load st path =
  match open_mapped st path with
  | Error e -> Error e
  | Ok md ->
    Fun.protect
      ~finally:(fun () -> close_mapped md)
      (fun () ->
        let n = md.m_snap.Snapshot.n and m = md.m_snap.Snapshot.m in
        match load_node_props md ~lo:0 ~hi:n with
        | Error e -> Error e
        | Ok () -> (
          match load_edge_props md (Array.init m Fun.id) with
          | Error e -> Error e
          | Ok () -> Ok md.m_snap))

let info path =
  match
    let ic = Retry.syscall (fun () -> Fault.open_in_bin path) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let version, n, m, nsyms, total, _ = read_header ic path in
        match verify_crc ic total with
        | Error e -> Error e
        | Ok () ->
          Ok { version; nodes = n; edges = m; symbols = nsyms; bytes = total })
  with
  | result -> result
  | exception Sys_error msg -> err "IO001" "cannot read snapshot %s: %s" path msg
  | exception Malformed msg -> err "IO004" "malformed snapshot %s: %s" path msg
  | exception End_of_file -> err "IO004" "malformed snapshot %s: unexpected end of file" path
  | exception Unix.Unix_error (e, fn, _) ->
    err "IO006" "I/O failure reading snapshot %s: %s failed: %s" path fn
      (Unix.error_message e)
