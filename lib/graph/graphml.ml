module Sm = Map.Make (String)

type error = { message : string }

let pp_error ppf e = Format.fprintf ppf "GraphML parse error: %s" e.message

exception Fail of string

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let xml_unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '&' then begin
       match String.index_from_opt s !i ';' with
       | Some j when j - !i <= 6 ->
         (match String.sub s !i (j - !i + 1) with
         | "&amp;" -> Buffer.add_char buf '&'
         | "&lt;" -> Buffer.add_char buf '<'
         | "&gt;" -> Buffer.add_char buf '>'
         | "&quot;" -> Buffer.add_char buf '"'
         | "&apos;" -> Buffer.add_char buf '\''
         | ent -> raise (Fail (Printf.sprintf "unknown XML entity %S" ent)));
         i := j
       | _ -> raise (Fail "unterminated XML entity")
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Export                                                               *)

(* The kind of a single value.  Kinds refine GraphML's attr.type so that
   the value vocabulary round-trips: int/double/boolean/string are the
   standard types; id/enum/list (and mixed, for a property used at more
   than one kind) are declared as attr.type="string" with a pg.kind
   attribute, their values rendered in PGF literal syntax. *)
let kind_of (v : Value.t) =
  match v with
  | Value.Int _ -> "int"
  | Value.Float _ -> "double"
  | Value.Bool _ -> "boolean"
  | Value.String _ -> "string"
  | Value.Id _ -> "id"
  | Value.Enum _ -> "enum"
  | Value.List _ -> "list"

let is_standard = function "int" | "double" | "boolean" | "string" -> true | _ -> false

let render_value kind (v : Value.t) =
  match kind, v with
  | "int", Value.Int i -> string_of_int i
  | "double", Value.Float f -> Printf.sprintf "%.17g" f
  | "boolean", Value.Bool b -> string_of_bool b
  | "string", Value.String s -> s
  | "id", Value.Id s -> s
  | "enum", Value.Enum s -> s
  | _, v -> Pgf.value_to_string v

(* One key declaration per (domain, property name); a name used at
   several kinds degrades to "mixed". *)
let collect_keys g =
  let merge keys domain props =
    List.fold_left
      (fun keys (name, v) ->
        let id = domain ^ "_" ^ name in
        let kind = kind_of v in
        Sm.update id
          (function
            | Some (d, n, existing) ->
              Some (d, n, if String.equal existing kind then existing else "mixed")
            | None -> Some (domain, name, kind))
          keys)
      keys props
  in
  let keys =
    List.fold_left
      (fun keys v -> merge keys "node" (Property_graph.node_props g v))
      Sm.empty (Property_graph.nodes g)
  in
  List.fold_left
    (fun keys e -> merge keys "edge" (Property_graph.edge_props g e))
    keys (Property_graph.edges g)

let to_string g =
  let module G = Property_graph in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line {|<?xml version="1.0" encoding="UTF-8"?>|};
  line {|<graphml xmlns="http://graphml.graphdrawing.org/xmlns">|};
  line {|  <key id="node_label" for="node" attr.name="label" attr.type="string"/>|};
  line {|  <key id="edge_label" for="edge" attr.name="label" attr.type="string"/>|};
  let keys = collect_keys g in
  Sm.iter
    (fun id (domain, name, kind) ->
      if is_standard kind then
        line {|  <key id="%s" for="%s" attr.name="%s" attr.type="%s"/>|} (xml_escape id)
          domain (xml_escape name) kind
      else
        line {|  <key id="%s" for="%s" attr.name="%s" attr.type="string" pg.kind="%s"/>|}
          (xml_escape id) domain (xml_escape name) kind)
    keys;
  let kind_at domain name =
    match Sm.find_opt (domain ^ "_" ^ name) keys with
    | Some (_, _, kind) -> kind
    | None -> "mixed"
  in
  line {|  <graph id="G" edgedefault="directed">|};
  List.iter
    (fun v ->
      line {|    <node id="n%d">|} (G.node_id v);
      line {|      <data key="node_label">%s</data>|} (xml_escape (G.node_label g v));
      List.iter
        (fun (name, value) ->
          line {|      <data key="node_%s">%s</data>|} (xml_escape name)
            (xml_escape (render_value (kind_at "node" name) value)))
        (G.node_props g v);
      line {|    </node>|})
    (G.nodes g);
  List.iter
    (fun e ->
      let src, tgt = G.edge_ends g e in
      line {|    <edge id="e%d" source="n%d" target="n%d">|} (G.edge_id e) (G.node_id src)
        (G.node_id tgt);
      line {|      <data key="edge_label">%s</data>|} (xml_escape (G.edge_label g e));
      List.iter
        (fun (name, value) ->
          line {|      <data key="edge_%s">%s</data>|} (xml_escape name)
            (xml_escape (render_value (kind_at "edge" name) value)))
        (G.edge_props g e);
      line {|    </edge>|})
    (G.edges g);
  line {|  </graph>|};
  line {|</graphml>|};
  Buffer.contents buf

let save path g =
  let oc = open_out_bin path in
  output_string oc (to_string g);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Import: a minimal XML event scanner covering the subset {!to_string}
   emits (declarations, comments, start/end tags with double-quoted
   attributes, text content; no CDATA, no nested documents).            *)

type event =
  | Start of string * (string * string) list * bool  (* name, attrs, self-closing *)
  | End of string
  | Text of string

let scan_events (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let events = ref [] in
  let emit e = events := e :: !events in
  let rest_has prefix =
    !pos + String.length prefix <= n && String.sub s !pos (String.length prefix) = prefix
  in
  let skip_until sub =
    match
      let m = String.length sub in
      let rec find i = if i + m > n then None else if String.sub s i m = sub then Some i else find (i + 1) in
      find !pos
    with
    | Some i -> pos := i + String.length sub
    | None -> raise (Fail (Printf.sprintf "unterminated construct (no %S)" sub))
  in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.' || c = ':'
  in
  let name () =
    let start = !pos in
    while !pos < n && is_name_char s.[!pos] do incr pos done;
    if !pos = start then raise (Fail "expected an XML name");
    String.sub s start (!pos - start)
  in
  let skip_ws () = while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r') do incr pos done in
  while !pos < n do
    if s.[!pos] = '<' then begin
      if rest_has "<?" then skip_until "?>"
      else if rest_has "<!--" then skip_until "-->"
      else if rest_has "</" then begin
        pos := !pos + 2;
        let tag = name () in
        skip_ws ();
        if !pos < n && s.[!pos] = '>' then incr pos else raise (Fail "expected '>'");
        emit (End tag)
      end
      else begin
        incr pos;
        let tag = name () in
        let attrs = ref [] in
        let self_closing = ref false in
        let rec attrs_loop () =
          skip_ws ();
          if !pos >= n then raise (Fail "unterminated tag")
          else if s.[!pos] = '>' then incr pos
          else if rest_has "/>" then begin
            pos := !pos + 2;
            self_closing := true
          end
          else begin
            let a = name () in
            skip_ws ();
            if not (!pos < n && s.[!pos] = '=') then raise (Fail "expected '='");
            incr pos;
            skip_ws ();
            if not (!pos < n && s.[!pos] = '"') then raise (Fail "expected '\"'");
            incr pos;
            let start = !pos in
            while !pos < n && s.[!pos] <> '"' do incr pos done;
            if !pos >= n then raise (Fail "unterminated attribute value");
            attrs := (a, xml_unescape (String.sub s start (!pos - start))) :: !attrs;
            incr pos;
            attrs_loop ()
          end
        in
        attrs_loop ();
        emit (Start (tag, List.rev !attrs, !self_closing))
      end
    end
    else begin
      let start = !pos in
      while !pos < n && s.[!pos] <> '<' do incr pos done;
      let text = String.sub s start (!pos - start) in
      if String.trim text <> "" then emit (Text (xml_unescape text))
    end
  done;
  List.rev !events

let decode_value kind text =
  match kind with
  | "int" -> (
    match int_of_string_opt text with
    | Some i -> Value.Int i
    | None -> raise (Fail (Printf.sprintf "malformed int %S" text)))
  | "double" -> (
    match float_of_string_opt text with
    | Some f -> Value.Float f
    | None -> raise (Fail (Printf.sprintf "malformed double %S" text)))
  | "boolean" -> (
    match bool_of_string_opt text with
    | Some b -> Value.Bool b
    | None -> raise (Fail (Printf.sprintf "malformed boolean %S" text)))
  | "string" -> Value.String text
  | "id" -> Value.Id text
  | "enum" -> Value.Enum text
  | "list" | "mixed" -> (
    match Pgf.value_of_string text with
    | Ok v -> v
    | Error e -> raise (Fail (Printf.sprintf "malformed %s value %S: %s" kind text e.Pgf.message)))
  | k -> raise (Fail (Printf.sprintf "unknown attr.type %S" k))

type pending = {
  p_domain : string;  (* "node" or "edge" *)
  p_xml_id : string;
  p_source : string;  (* edges only *)
  p_target : string;
  mutable p_label : string option;
  mutable p_props : (string * Value.t) list;  (* reversed *)
}

let parse text =
  try
    let events = scan_events text in
    let keys : (string, string * string) Hashtbl.t = Hashtbl.create 16 in
    let nodes = ref [] and edges = ref [] in
    let current : pending option ref = ref None in
    let data_key : string option ref = ref None in
    let data_text = Buffer.create 64 in
    let attr name attrs =
      match List.assoc_opt name attrs with
      | Some v -> v
      | None -> raise (Fail (Printf.sprintf "missing attribute %S" name))
    in
    let finish_data () =
      match !current, !data_key with
      | _, None -> ()
      | None, Some _ -> raise (Fail "<data> outside a node or edge")
      | Some p, Some key ->
        let text = Buffer.contents data_text in
        (if String.equal key (p.p_domain ^ "_label") then p.p_label <- Some text
         else begin
           match Hashtbl.find_opt keys key with
           | Some (name, kind) -> p.p_props <- (name, decode_value kind text) :: p.p_props
           | None -> raise (Fail (Printf.sprintf "undeclared data key %S" key))
         end);
        data_key := None
    in
    List.iter
      (fun ev ->
        match ev with
        | Start ("key", attrs, _) ->
          let kind =
            match List.assoc_opt "pg.kind" attrs with
            | Some k -> k
            | None -> attr "attr.type" attrs
          in
          Hashtbl.replace keys (attr "id" attrs) (attr "attr.name" attrs, kind)
        | Start ("node", attrs, self) ->
          let p =
            {
              p_domain = "node";
              p_xml_id = attr "id" attrs;
              p_source = "";
              p_target = "";
              p_label = None;
              p_props = [];
            }
          in
          if self then nodes := p :: !nodes else current := Some p
        | Start ("edge", attrs, self) ->
          let p =
            {
              p_domain = "edge";
              p_xml_id = (match List.assoc_opt "id" attrs with Some i -> i | None -> "");
              p_source = attr "source" attrs;
              p_target = attr "target" attrs;
              p_label = None;
              p_props = [];
            }
          in
          if self then edges := p :: !edges else current := Some p
        | Start ("data", attrs, self) ->
          if self then ()
          else begin
            data_key := Some (attr "key" attrs);
            Buffer.clear data_text
          end
        | Start (("graphml" | "graph"), _, _) -> ()
        | Start (t, _, _) -> raise (Fail (Printf.sprintf "unexpected element <%s>" t))
        | Text t -> if !data_key <> None then Buffer.add_string data_text t
        | End "data" -> finish_data ()
        | End "node" | End "edge" -> (
          match !current with
          | Some p ->
            (if p.p_domain = "node" then nodes := p :: !nodes else edges := p :: !edges);
            current := None
          | None -> raise (Fail "unmatched end tag"))
        | End _ -> ())
      events;
    let by_xml_id : (string, Property_graph.node) Hashtbl.t = Hashtbl.create 64 in
    let g =
      List.fold_left
        (fun g p ->
          let label =
            match p.p_label with
            | Some l -> l
            | None -> raise (Fail (Printf.sprintf "node %S has no label" p.p_xml_id))
          in
          let g, v = Property_graph.add_node g ~label ~props:(List.rev p.p_props) () in
          if Hashtbl.mem by_xml_id p.p_xml_id then
            raise (Fail (Printf.sprintf "duplicate node id %S" p.p_xml_id));
          Hashtbl.add by_xml_id p.p_xml_id v;
          g)
        Property_graph.empty (List.rev !nodes)
    in
    let node_of id =
      match Hashtbl.find_opt by_xml_id id with
      | Some v -> v
      | None -> raise (Fail (Printf.sprintf "unknown node id %S" id))
    in
    let g =
      List.fold_left
        (fun g p ->
          let label =
            match p.p_label with
            | Some l -> l
            | None -> raise (Fail (Printf.sprintf "edge %S has no label" p.p_xml_id))
          in
          let g, _ =
            Property_graph.add_edge g ~label ~props:(List.rev p.p_props)
              (node_of p.p_source) (node_of p.p_target)
          in
          g)
        g (List.rev !edges)
    in
    Ok g
  with Fail message -> Result.Error { message }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error message -> Result.Error { message }
  | exception End_of_file ->
    Result.Error { message = path ^ ": unexpected end of file" }
  | text -> parse text
