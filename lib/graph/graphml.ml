module Sm = Map.Make (String)

type error = { message : string }

let pp_error ppf e = Format.fprintf ppf "GraphML parse error: %s" e.message

exception Fail of string

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let xml_unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '&' then begin
       match String.index_from_opt s !i ';' with
       | Some j when j - !i <= 6 ->
         (match String.sub s !i (j - !i + 1) with
         | "&amp;" -> Buffer.add_char buf '&'
         | "&lt;" -> Buffer.add_char buf '<'
         | "&gt;" -> Buffer.add_char buf '>'
         | "&quot;" -> Buffer.add_char buf '"'
         | "&apos;" -> Buffer.add_char buf '\''
         | ent -> raise (Fail (Printf.sprintf "unknown XML entity %S" ent)));
         i := j
       | _ -> raise (Fail "unterminated XML entity")
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Export                                                               *)

(* The kind of a single value.  Kinds refine GraphML's attr.type so that
   the value vocabulary round-trips: int/double/boolean/string are the
   standard types; id/enum/list (and mixed, for a property used at more
   than one kind) are declared as attr.type="string" with a pg.kind
   attribute, their values rendered in PGF literal syntax. *)
let kind_of (v : Value.t) =
  match v with
  | Value.Int _ -> "int"
  | Value.Float _ -> "double"
  | Value.Bool _ -> "boolean"
  | Value.String _ -> "string"
  | Value.Id _ -> "id"
  | Value.Enum _ -> "enum"
  | Value.List _ -> "list"

let is_standard = function "int" | "double" | "boolean" | "string" -> true | _ -> false

let render_value kind (v : Value.t) =
  match kind, v with
  | "int", Value.Int i -> string_of_int i
  | "double", Value.Float f -> Printf.sprintf "%.17g" f
  | "boolean", Value.Bool b -> string_of_bool b
  | "string", Value.String s -> s
  | "id", Value.Id s -> s
  | "enum", Value.Enum s -> s
  | _, v -> Pgf.value_to_string v

(* One key declaration per (domain, property name); a name used at
   several kinds degrades to "mixed". *)
let collect_keys g =
  let merge keys domain props =
    List.fold_left
      (fun keys (name, v) ->
        let id = domain ^ "_" ^ name in
        let kind = kind_of v in
        Sm.update id
          (function
            | Some (d, n, existing) ->
              Some (d, n, if String.equal existing kind then existing else "mixed")
            | None -> Some (domain, name, kind))
          keys)
      keys props
  in
  let keys =
    List.fold_left
      (fun keys v -> merge keys "node" (Property_graph.node_props g v))
      Sm.empty (Property_graph.nodes g)
  in
  List.fold_left
    (fun keys e -> merge keys "edge" (Property_graph.edge_props g e))
    keys (Property_graph.edges g)

let to_string g =
  let module G = Property_graph in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line {|<?xml version="1.0" encoding="UTF-8"?>|};
  line {|<graphml xmlns="http://graphml.graphdrawing.org/xmlns">|};
  line {|  <key id="node_label" for="node" attr.name="label" attr.type="string"/>|};
  line {|  <key id="edge_label" for="edge" attr.name="label" attr.type="string"/>|};
  let keys = collect_keys g in
  Sm.iter
    (fun id (domain, name, kind) ->
      if is_standard kind then
        line {|  <key id="%s" for="%s" attr.name="%s" attr.type="%s"/>|} (xml_escape id)
          domain (xml_escape name) kind
      else
        line {|  <key id="%s" for="%s" attr.name="%s" attr.type="string" pg.kind="%s"/>|}
          (xml_escape id) domain (xml_escape name) kind)
    keys;
  let kind_at domain name =
    match Sm.find_opt (domain ^ "_" ^ name) keys with
    | Some (_, _, kind) -> kind
    | None -> "mixed"
  in
  line {|  <graph id="G" edgedefault="directed">|};
  List.iter
    (fun v ->
      line {|    <node id="n%d">|} (G.node_id v);
      line {|      <data key="node_label">%s</data>|} (xml_escape (G.node_label g v));
      List.iter
        (fun (name, value) ->
          line {|      <data key="node_%s">%s</data>|} (xml_escape name)
            (xml_escape (render_value (kind_at "node" name) value)))
        (G.node_props g v);
      line {|    </node>|})
    (G.nodes g);
  List.iter
    (fun e ->
      let src, tgt = G.edge_ends g e in
      line {|    <edge id="e%d" source="n%d" target="n%d">|} (G.edge_id e) (G.node_id src)
        (G.node_id tgt);
      line {|      <data key="edge_label">%s</data>|} (xml_escape (G.edge_label g e));
      List.iter
        (fun (name, value) ->
          line {|      <data key="edge_%s">%s</data>|} (xml_escape name)
            (xml_escape (render_value (kind_at "edge" name) value)))
        (G.edge_props g e);
      line {|    </edge>|})
    (G.edges g);
  line {|  </graph>|};
  line {|</graphml>|};
  Buffer.contents buf

let save path g =
  let oc = open_out_bin path in
  output_string oc (to_string g);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Import: a minimal XML event scanner covering the subset {!to_string}
   emits (declarations, comments, start/end tags with double-quoted
   attributes, text content; no CDATA, no nested documents).            *)

type event =
  | Start of string * (string * string) list * bool  (* name, attrs, self-closing *)
  | End of string
  | Text of string

let scan_events (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let events = ref [] in
  let emit e = events := e :: !events in
  let rest_has prefix =
    !pos + String.length prefix <= n && String.sub s !pos (String.length prefix) = prefix
  in
  let skip_until sub =
    match
      let m = String.length sub in
      let rec find i = if i + m > n then None else if String.sub s i m = sub then Some i else find (i + 1) in
      find !pos
    with
    | Some i -> pos := i + String.length sub
    | None -> raise (Fail (Printf.sprintf "unterminated construct (no %S)" sub))
  in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.' || c = ':'
  in
  let name () =
    let start = !pos in
    while !pos < n && is_name_char s.[!pos] do incr pos done;
    if !pos = start then raise (Fail "expected an XML name");
    String.sub s start (!pos - start)
  in
  let skip_ws () = while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r') do incr pos done in
  while !pos < n do
    if s.[!pos] = '<' then begin
      if rest_has "<?" then skip_until "?>"
      else if rest_has "<!--" then skip_until "-->"
      else if rest_has "</" then begin
        pos := !pos + 2;
        let tag = name () in
        skip_ws ();
        if !pos < n && s.[!pos] = '>' then incr pos else raise (Fail "expected '>'");
        emit (End tag)
      end
      else begin
        incr pos;
        let tag = name () in
        let attrs = ref [] in
        let self_closing = ref false in
        let rec attrs_loop () =
          skip_ws ();
          if !pos >= n then raise (Fail "unterminated tag")
          else if s.[!pos] = '>' then incr pos
          else if rest_has "/>" then begin
            pos := !pos + 2;
            self_closing := true
          end
          else begin
            let a = name () in
            skip_ws ();
            if not (!pos < n && s.[!pos] = '=') then raise (Fail "expected '='");
            incr pos;
            skip_ws ();
            if not (!pos < n && s.[!pos] = '"') then raise (Fail "expected '\"'");
            incr pos;
            let start = !pos in
            while !pos < n && s.[!pos] <> '"' do incr pos done;
            if !pos >= n then raise (Fail "unterminated attribute value");
            attrs := (a, xml_unescape (String.sub s start (!pos - start))) :: !attrs;
            incr pos;
            attrs_loop ()
          end
        in
        attrs_loop ();
        emit (Start (tag, List.rev !attrs, !self_closing))
      end
    end
    else begin
      let start = !pos in
      while !pos < n && s.[!pos] <> '<' do incr pos done;
      let text = String.sub s start (!pos - start) in
      if String.trim text <> "" then emit (Text (xml_unescape text))
    end
  done;
  List.rev !events

let decode_value kind text =
  match kind with
  | "int" -> (
    match int_of_string_opt text with
    | Some i -> Value.Int i
    | None -> raise (Fail (Printf.sprintf "malformed int %S" text)))
  | "double" -> (
    match float_of_string_opt text with
    | Some f -> Value.Float f
    | None -> raise (Fail (Printf.sprintf "malformed double %S" text)))
  | "boolean" -> (
    match bool_of_string_opt text with
    | Some b -> Value.Bool b
    | None -> raise (Fail (Printf.sprintf "malformed boolean %S" text)))
  | "string" -> Value.String text
  | "id" -> Value.Id text
  | "enum" -> Value.Enum text
  | "list" | "mixed" -> (
    match Pgf.value_of_string text with
    | Ok v -> v
    | Error e -> raise (Fail (Printf.sprintf "malformed %s value %S: %s" kind text e.Pgf.message)))
  | k -> raise (Fail (Printf.sprintf "unknown attr.type %S" k))

type pending = {
  p_domain : string;  (* "node" or "edge" *)
  p_xml_id : string;
  p_source : string;  (* edges only *)
  p_target : string;
  mutable p_label : string option;
  mutable p_props : (string * Value.t) list;  (* reversed *)
}

(* The semantic phase, shared by the slurp and streaming strict parsers.
   Raises [Fail].  Scan errors must preempt semantic errors for
   byte-identical behaviour, so both callers fully scan the event stream
   before calling this. *)
let graph_of_events events =
  begin
    let keys : (string, string * string) Hashtbl.t = Hashtbl.create 16 in
    let nodes = ref [] and edges = ref [] in
    let current : pending option ref = ref None in
    let data_key : string option ref = ref None in
    let data_text = Buffer.create 64 in
    let attr name attrs =
      match List.assoc_opt name attrs with
      | Some v -> v
      | None -> raise (Fail (Printf.sprintf "missing attribute %S" name))
    in
    let finish_data () =
      match !current, !data_key with
      | _, None -> ()
      | None, Some _ -> raise (Fail "<data> outside a node or edge")
      | Some p, Some key ->
        let text = Buffer.contents data_text in
        (if String.equal key (p.p_domain ^ "_label") then p.p_label <- Some text
         else begin
           match Hashtbl.find_opt keys key with
           | Some (name, kind) -> p.p_props <- (name, decode_value kind text) :: p.p_props
           | None -> raise (Fail (Printf.sprintf "undeclared data key %S" key))
         end);
        data_key := None
    in
    List.iter
      (fun ev ->
        match ev with
        | Start ("key", attrs, _) ->
          let kind =
            match List.assoc_opt "pg.kind" attrs with
            | Some k -> k
            | None -> attr "attr.type" attrs
          in
          Hashtbl.replace keys (attr "id" attrs) (attr "attr.name" attrs, kind)
        | Start ("node", attrs, self) ->
          let p =
            {
              p_domain = "node";
              p_xml_id = attr "id" attrs;
              p_source = "";
              p_target = "";
              p_label = None;
              p_props = [];
            }
          in
          if self then nodes := p :: !nodes else current := Some p
        | Start ("edge", attrs, self) ->
          let p =
            {
              p_domain = "edge";
              p_xml_id = (match List.assoc_opt "id" attrs with Some i -> i | None -> "");
              p_source = attr "source" attrs;
              p_target = attr "target" attrs;
              p_label = None;
              p_props = [];
            }
          in
          if self then edges := p :: !edges else current := Some p
        | Start ("data", attrs, self) ->
          if self then ()
          else begin
            data_key := Some (attr "key" attrs);
            Buffer.clear data_text
          end
        | Start (("graphml" | "graph"), _, _) -> ()
        | Start (t, _, _) -> raise (Fail (Printf.sprintf "unexpected element <%s>" t))
        | Text t -> if !data_key <> None then Buffer.add_string data_text t
        | End "data" -> finish_data ()
        | End "node" | End "edge" -> (
          match !current with
          | Some p ->
            (if p.p_domain = "node" then nodes := p :: !nodes else edges := p :: !edges);
            current := None
          | None -> raise (Fail "unmatched end tag"))
        | End _ -> ())
      events;
    let by_xml_id : (string, Property_graph.node) Hashtbl.t = Hashtbl.create 64 in
    let g =
      List.fold_left
        (fun g p ->
          let label =
            match p.p_label with
            | Some l -> l
            | None -> raise (Fail (Printf.sprintf "node %S has no label" p.p_xml_id))
          in
          let g, v = Property_graph.add_node g ~label ~props:(List.rev p.p_props) () in
          if Hashtbl.mem by_xml_id p.p_xml_id then
            raise (Fail (Printf.sprintf "duplicate node id %S" p.p_xml_id));
          Hashtbl.add by_xml_id p.p_xml_id v;
          g)
        Property_graph.empty (List.rev !nodes)
    in
    let node_of id =
      match Hashtbl.find_opt by_xml_id id with
      | Some v -> v
      | None -> raise (Fail (Printf.sprintf "unknown node id %S" id))
    in
    let g =
      List.fold_left
        (fun g p ->
          let label =
            match p.p_label with
            | Some l -> l
            | None -> raise (Fail (Printf.sprintf "edge %S has no label" p.p_xml_id))
          in
          let g, _ =
            Property_graph.add_edge g ~label ~props:(List.rev p.p_props)
              (node_of p.p_source) (node_of p.p_target)
          in
          g)
        g (List.rev !edges)
    in
    g
  end

let parse text =
  try Ok (graph_of_events (scan_events text)) with Fail message -> Result.Error { message }

(* ------------------------------------------------------------------ *)
(* Incremental scanning: the same grammar as {!scan_events}, but over a
   chunked source.  [scan_construct] scans exactly one construct of the
   buffered window; [Incomplete] signals that the construct may extend
   past the buffered input and the driver must refill.  With [eof = true]
   it never raises [Incomplete] and fails with exactly the message the
   whole-string scanner would produce, so the two scanners agree
   event-for-event (the differential tests drive this at every chunk
   size).  Memory is bounded by the largest single construct plus one
   chunk, never the document.                                           *)

exception Incomplete

let scan_construct ~eof s start =
  let n = String.length s in
  let pos = ref start in
  (* at the end of the buffered window: if more input may follow, the
     construct is incomplete; at eof, fall through to the whole-string
     scanner's behaviour *)
  let more () = if not eof then raise Incomplete in
  let rest_has prefix =
    let m = String.length prefix in
    let avail = n - !pos in
    if avail >= m then String.sub s !pos m = prefix
    else if String.sub s !pos avail = String.sub prefix 0 avail then begin
      more ();
      false
    end
    else false
  in
  let skip_until sub =
    let m = String.length sub in
    let rec find i = if i + m > n then None else if String.sub s i m = sub then Some i else find (i + 1) in
    match find !pos with
    | Some i -> pos := i + m
    | None ->
      more ();
      raise (Fail (Printf.sprintf "unterminated construct (no %S)" sub))
  in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.' || c = ':'
  in
  let name () =
    let st = !pos in
    while !pos < n && is_name_char s.[!pos] do incr pos done;
    if !pos = n then more ();
    if !pos = st then raise (Fail "expected an XML name");
    String.sub s st (!pos - st)
  in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r') do
      incr pos
    done;
    if !pos = n then more ()
  in
  let event =
    if s.[!pos] = '<' then begin
      if rest_has "<?" then begin
        skip_until "?>";
        None
      end
      else if rest_has "<!--" then begin
        skip_until "-->";
        None
      end
      else if rest_has "</" then begin
        pos := !pos + 2;
        let tag = name () in
        skip_ws ();
        if !pos < n && s.[!pos] = '>' then incr pos else raise (Fail "expected '>'");
        Some (End tag)
      end
      else begin
        incr pos;
        let tag = name () in
        let attrs = ref [] in
        let self_closing = ref false in
        let rec attrs_loop () =
          skip_ws ();
          if !pos >= n then raise (Fail "unterminated tag")
          else if s.[!pos] = '>' then incr pos
          else if rest_has "/>" then begin
            pos := !pos + 2;
            self_closing := true
          end
          else begin
            let a = name () in
            skip_ws ();
            if not (!pos < n && s.[!pos] = '=') then raise (Fail "expected '='");
            incr pos;
            skip_ws ();
            if not (!pos < n && s.[!pos] = '"') then raise (Fail "expected '\"'");
            incr pos;
            let st = !pos in
            while !pos < n && s.[!pos] <> '"' do incr pos done;
            if !pos >= n then begin
              more ();
              raise (Fail "unterminated attribute value")
            end;
            attrs := (a, xml_unescape (String.sub s st (!pos - st))) :: !attrs;
            incr pos;
            attrs_loop ()
          end
        in
        attrs_loop ();
        Some (Start (tag, List.rev !attrs, !self_closing))
      end
    end
    else begin
      (* a text run is one construct: it is never split at a chunk
         boundary, so the whitespace-only filter sees the same runs as
         the whole-string scanner *)
      let st = !pos in
      while !pos < n && s.[!pos] <> '<' do incr pos done;
      if !pos = n then more ();
      let text = String.sub s st (!pos - st) in
      if String.trim text <> "" then Some (Text (xml_unescape text)) else None
    end
  in
  (event, !pos)

(* Drive [scan_construct] over a chunked source; [f raw event] receives
   each construct's raw text and its event ([None] for declarations,
   comments and whitespace).  Raises [Fail] on scan errors. *)
let scan_source source f =
  let buf = ref "" in
  let pos = ref 0 in
  let eof = ref false in
  let refill () =
    if !pos > 0 then begin
      buf := String.sub !buf !pos (String.length !buf - !pos);
      pos := 0
    end;
    match source () with
    | Some chunk -> buf := (if !buf = "" then chunk else !buf ^ chunk)
    | None -> eof := true
  in
  let rec next () =
    if !pos >= String.length !buf then begin
      if not !eof then begin
        refill ();
        next ()
      end
    end
    else
      match scan_construct ~eof:!eof !buf !pos with
      | event, pos' ->
        f (String.sub !buf !pos (pos' - !pos)) event;
        pos := pos';
        next ()
      | exception Incomplete ->
        refill ();
        next ()
  in
  next ()

let read source =
  (* the event stream must be fully scanned before the semantic phase so
     that scan errors preempt semantic errors exactly like [parse]; the
     event list is structured data — the input text itself is never held
     whole *)
  match
    let events = ref [] in
    scan_source source (fun _raw ev -> Option.iter (fun e -> events := e :: !events) ev);
    graph_of_events (List.rev !events)
  with
  | g -> Ok g
  | exception Fail message -> Result.Error { message }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> read (Chunked.of_channel ic))
  with
  | exception Sys_error message -> Result.Error { message }
  | r -> r

(* ------------------------------------------------------------------ *)
(* Fault-tolerant streaming import.  Records (key / node / edge
   elements) are applied eagerly as they complete; a malformed record is
   reported as a [fault] and skipped, leaving the graph as if the record
   were absent.  Edges are queued and resolved once the scan finishes so
   forward references keep working.  Unlike the strict path this holds
   only the open record in memory.  Scanner-level XML errors stay fatal:
   after a structural break there is no reliable record boundary to
   resync on.                                                           *)

type fault = {
  f_record : int;
  f_subject : string;
  f_raw : string;
  f_message : string;
}

exception Stop_tolerant

let read_tolerant ?max_skipped ?(on_fault = fun _ -> ()) source =
  let keys : (string, string * string) Hashtbl.t = Hashtbl.create 16 in
  let b = Builder.create () in
  let edges = ref [] in
  let current = ref None in
  let current_record = ref 0 in
  let current_raw = Buffer.create 256 in
  let current_tag = ref "" in
  let skip = ref None in
  let data_key = ref None in
  let data_text = Buffer.create 64 in
  let records = ref 0 in
  let faults = ref [] in
  let nfaults = ref 0 in
  let exhausted = ref false in
  let fault ~record ~subject ~raw message =
    let f = { f_record = record; f_subject = subject; f_raw = raw; f_message = message } in
    faults := f :: !faults;
    incr nfaults;
    on_fault f;
    match max_skipped with
    | Some m when !nfaults > m ->
      exhausted := true;
      raise Stop_tolerant
    | _ -> ()
  in
  let attr name attrs =
    match List.assoc_opt name attrs with
    | Some v -> Ok v
    | None -> Result.Error (Printf.sprintf "missing attribute %S" name)
  in
  let subject_of p = Printf.sprintf "%s %S" p.p_domain p.p_xml_id in
  (* discard the open record and resync at its end tag *)
  let fault_current p message =
    let record = !current_record and raw = Buffer.contents current_raw in
    current := None;
    data_key := None;
    skip := Some !current_tag;
    fault ~record ~subject:(subject_of p) ~raw message
  in
  let open_record p tag raw =
    current := Some p;
    current_record := !records;
    current_tag := tag;
    Buffer.clear current_raw;
    Buffer.add_string current_raw raw
  in
  let commit p ~record ~raw =
    match p.p_label with
    | None ->
      fault ~record ~subject:(subject_of p) ~raw
        (Printf.sprintf "%s %S has no label" p.p_domain p.p_xml_id)
    | Some label ->
      if p.p_domain = "node" then begin
        if Builder.mem b p.p_xml_id then
          fault ~record ~subject:(subject_of p) ~raw
            (Printf.sprintf "duplicate node id %S" p.p_xml_id)
        else ignore (Builder.node b p.p_xml_id ~label ~props:(List.rev p.p_props) ())
      end
      else edges := (record, raw, p) :: !edges
  in
  let finish_data raw =
    match !current, !data_key with
    | _, None -> ()
    | None, Some _ ->
      data_key := None;
      fault ~record:!records ~subject:"data" ~raw "<data> outside a node or edge"
    | Some p, Some key ->
      let text = Buffer.contents data_text in
      data_key := None;
      if String.equal key (p.p_domain ^ "_label") then p.p_label <- Some text
      else begin
        match Hashtbl.find_opt keys key with
        | Some (name, kind) -> (
          match decode_value kind text with
          | v -> p.p_props <- (name, v) :: p.p_props
          | exception Fail message -> fault_current p message)
        | None -> fault_current p (Printf.sprintf "undeclared data key %S" key)
      end
  in
  let handle raw ev =
    match !skip, ev with
    | Some tag, Some (End t) when String.equal t tag -> skip := None
    | Some _, _ -> ()
    | None, None -> if !current <> None then Buffer.add_string current_raw raw
    | None, Some ev ->
      if !current <> None then Buffer.add_string current_raw raw;
      (match ev with
      | Start ("key", attrs, _) -> (
        incr records;
        let kind =
          match List.assoc_opt "pg.kind" attrs with
          | Some k -> Ok k
          | None -> attr "attr.type" attrs
        in
        match attr "id" attrs, attr "attr.name" attrs, kind with
        | Ok id, Ok name, Ok kind -> Hashtbl.replace keys id (name, kind)
        | Error m, _, _ | _, Error m, _ | _, _, Error m ->
          fault ~record:!records ~subject:"key" ~raw m)
      | Start ("node", attrs, self) -> (
        incr records;
        match attr "id" attrs with
        | Error m ->
          fault ~record:!records ~subject:"node" ~raw m;
          if not self then skip := Some "node"
        | Ok id ->
          let p =
            { p_domain = "node"; p_xml_id = id; p_source = ""; p_target = "";
              p_label = None; p_props = [] }
          in
          if self then commit p ~record:!records ~raw else open_record p "node" raw)
      | Start ("edge", attrs, self) -> (
        incr records;
        match attr "source" attrs, attr "target" attrs with
        | Ok src, Ok tgt ->
          let p =
            { p_domain = "edge";
              p_xml_id = (match List.assoc_opt "id" attrs with Some i -> i | None -> "");
              p_source = src; p_target = tgt; p_label = None; p_props = [] }
          in
          if self then commit p ~record:!records ~raw else open_record p "edge" raw
        | Error m, _ | _, Error m ->
          fault ~record:!records ~subject:"edge" ~raw m;
          if not self then skip := Some "edge")
      | Start ("data", attrs, self) ->
        if not self then begin
          match attr "key" attrs with
          | Ok k ->
            data_key := Some k;
            Buffer.clear data_text
          | Error m -> (
            match !current with
            | Some p -> fault_current p m
            | None -> fault ~record:!records ~subject:"data" ~raw m)
        end
      | Start (("graphml" | "graph"), _, _) -> ()
      | Start (t, _, self) ->
        fault ~record:!records ~subject:(Printf.sprintf "<%s>" t) ~raw
          (Printf.sprintf "unexpected element <%s>" t);
        if not self && !current = None then skip := Some t
      | Text t -> if !data_key <> None then Buffer.add_string data_text t
      | End "data" -> finish_data raw
      | End (("node" | "edge") as t) -> (
        match !current with
        | Some p ->
          let record = !current_record and raw = Buffer.contents current_raw in
          current := None;
          commit p ~record ~raw
        | None ->
          fault ~record:!records ~subject:(Printf.sprintf "</%s>" t) ~raw "unmatched end tag")
      | End _ -> ())
  in
  match
    (try
       scan_source source handle;
       (match !current with
       | Some p -> fault_current p "unterminated element"
       | None -> ());
       (* resolve queued edges in record order; faults may exhaust the
          budget, which stops resolution where it stands *)
       List.iter
         (fun (record, raw, p) ->
           let label = Option.get p.p_label in
           match Builder.find_opt b p.p_source, Builder.find_opt b p.p_target with
           | Some vsrc, Some vtgt ->
             ignore (Builder.connect b vsrc vtgt ~label ~props:(List.rev p.p_props) ())
           | None, _ ->
             fault ~record ~subject:(subject_of p) ~raw
               (Printf.sprintf "unknown node id %S" p.p_source)
           | _, None ->
             fault ~record ~subject:(subject_of p) ~raw
               (Printf.sprintf "unknown node id %S" p.p_target))
         (List.rev !edges)
     with Stop_tolerant -> ())
  with
  | () ->
    (* edge faults surface during end-of-scan resolution; stable-sort by
       record ordinal restores document order *)
    let faults =
      List.stable_sort (fun a b -> compare a.f_record b.f_record) (List.rev !faults)
    in
    Ok (Builder.graph b, faults, !exhausted, !records)
  | exception Fail message -> Result.Error { message }
