(** Property Graphs (Definition 2.1 of the paper, after Angles et al.).

    A Property Graph is a tuple [(V, E, rho, lambda, sigma)] where [V] is a
    finite set of nodes, [E] a finite set of edges disjoint from [V],
    [rho : E -> V x V] is total, [lambda : V u E -> Labels] is total, and
    [sigma : (V u E) x Props -> Values] is partial.

    The implementation is a persistent (immutable) structure; the ids of
    nodes and edges are abstract.  Disjointness of [V] and [E] is enforced
    structurally by giving nodes and edges distinct types.  Incidence
    indexes (outgoing/incoming edges per node) are maintained incrementally
    so that traversal is cheap for generators and validators. *)

type node
(** An element of [V]. *)

type edge
(** An element of [E]. *)

type t
(** A Property Graph. *)

val node_id : node -> int
(** A stable integer identifying the node within its graph. *)

val edge_id : edge -> int
(** A stable integer identifying the edge within its graph. *)

val node_of_id : t -> int -> node option
(** Inverse of {!node_id} for nodes present in the graph. *)

val edge_of_id : t -> int -> edge option

val empty : t
(** The graph with [V = E = {}]. *)

(** {1 Construction} *)

val add_node : t -> label:string -> ?props:(string * Value.t) list -> unit -> t * node
(** [add_node g ~label ~props ()] adds a fresh node with [lambda(v) = label]
    and [sigma(v, k) = x] for every [(k, x)] in [props].  Duplicate property
    names keep the last binding. *)

val add_edge :
  t -> label:string -> ?props:(string * Value.t) list -> node -> node -> t * edge
(** [add_edge g ~label src tgt] adds a fresh edge with [rho(e) = (src, tgt)].
    @raise Invalid_argument if either endpoint is not in the graph. *)

val set_node_prop : t -> node -> string -> Value.t -> t
(** Extends/overwrites [sigma] at [(v, name)].
    @raise Invalid_argument if the node is not in the graph. *)

val set_edge_prop : t -> edge -> string -> Value.t -> t

val remove_node_prop : t -> node -> string -> t
(** Removes [(v, name)] from the domain of [sigma]; no-op if absent. *)

val remove_edge_prop : t -> edge -> string -> t

val relabel_node : t -> node -> string -> t
(** Changes [lambda(v)]; used by fault injection.
    @raise Invalid_argument if the node is not in the graph. *)

val relabel_edge : t -> edge -> string -> t

val remove_edge : t -> edge -> t
(** Removes the edge; no-op if absent. *)

val remove_node : t -> node -> t
(** Removes the node and all incident edges; no-op if absent. *)

(** {1 Observation} *)

val mem_node : t -> node -> bool
val mem_edge : t -> edge -> bool

val node_count : t -> int
val edge_count : t -> int

val node_label : t -> node -> string
(** [lambda(v)]. @raise Not_found if absent. *)

val edge_label : t -> edge -> string
(** [lambda(e)]. @raise Not_found if absent. *)

val edge_ends : t -> edge -> node * node
(** [rho(e)]. @raise Not_found if absent. *)

val node_prop : t -> node -> string -> Value.t option
(** [sigma(v, name)], or [None] if [(v, name)] is outside [sigma]'s domain. *)

val edge_prop : t -> edge -> string -> Value.t option

val node_props : t -> node -> (string * Value.t) list
(** All properties of the node, sorted by name. *)

val edge_props : t -> edge -> (string * Value.t) list

val node_prop_count : t -> node -> int
(** [List.length (node_props g v)] without materializing the list. *)

val edge_prop_count : t -> edge -> int

val nodes : t -> node list
(** All nodes, in insertion order. *)

val edges : t -> edge list

val out_edges : t -> node -> edge list
(** Edges [e] with [rho(e) = (v, _)]. *)

val in_edges : t -> node -> edge list
(** Edges [e] with [rho(e) = (_, v)]. *)

val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a
val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a

val iter_nodes : (node -> unit) -> t -> unit
(** Like {!nodes} without materializing the list. *)

val iter_edges : (edge -> unit) -> t -> unit

val nodes_array : t -> node array
(** All nodes in insertion order, snapshotted into a fresh array.  The
    fast path for validation engines: a single allocation, O(1) slicing
    for sharded traversal, no per-element list cells. *)

val edges_array : t -> edge array

val to_arrays : t -> node array * edge array
(** [(nodes_array g, edges_array g)] in one call. *)

val equal : t -> t -> bool
(** Structural equality (same ids, labels, endpoints, and properties).
    This is not graph isomorphism. *)

val pp : Format.formatter -> t -> unit
(** A short human-readable summary ("graph with n nodes, m edges"). *)

val pp_full : Format.formatter -> t -> unit
(** Full listing of nodes and edges, in PGF syntax (see {!Pgf}). *)
