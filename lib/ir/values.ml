(** Frontend-neutral literal values and directive locations.

    These types are the part of the schema IR ({!Pg_schema.Schema}) that
    every frontend must produce: constant values (directive arguments,
    argument defaults, [@key] field lists) and the locations a directive
    declaration may attach to.  They carry no surface syntax — the SDL
    AST ([Pg_sdl.Ast]) re-declares them with type equations so existing
    constructors keep working, and the PG-Schema frontend builds them
    directly.  [Pg_schema] proper references only this module, which is
    what makes its core (schema / plan / consistency / values_w)
    independent of any concrete schema language. *)

type value =
  | Int_value of int
  | Float_value of float
  | String_value of string
  | Boolean_value of bool
  | Null_value
  | Enum_value of string
  | List_value of value list
  | Object_value of (string * value) list

type directive_location =
  | Loc_query
  | Loc_mutation
  | Loc_subscription
  | Loc_field
  | Loc_fragment_definition
  | Loc_fragment_spread
  | Loc_inline_fragment
  | Loc_schema
  | Loc_scalar
  | Loc_object
  | Loc_field_definition
  | Loc_argument_definition
  | Loc_interface
  | Loc_union
  | Loc_enum
  | Loc_enum_value
  | Loc_input_object
  | Loc_input_field_definition

let rec equal_value v1 v2 =
  match v1, v2 with
  | Int_value a, Int_value b -> a = b
  | Float_value a, Float_value b -> a = b || (Float.is_nan a && Float.is_nan b)
  | String_value a, String_value b -> String.equal a b
  | Boolean_value a, Boolean_value b -> a = b
  | Null_value, Null_value -> true
  | Enum_value a, Enum_value b -> String.equal a b
  | List_value a, List_value b ->
    List.length a = List.length b && List.for_all2 equal_value a b
  | Object_value a, Object_value b ->
    List.length a = List.length b
    && List.for_all2 (fun (k1, x1) (k2, x2) -> String.equal k1 k2 && equal_value x1 x2) a b
  | ( ( Int_value _ | Float_value _ | String_value _ | Boolean_value _ | Null_value
      | Enum_value _ | List_value _ | Object_value _ ),
      _ ) ->
    false

(* Rendering: byte-for-byte the historical [Pg_sdl.Printer.value_to_string]
   (the SDL printer now delegates here), so diagnostics that embed a value
   are identical whichever frontend produced it. *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec to_string = function
  | Int_value i -> string_of_int i
  | Float_value f -> float_literal f
  | String_value s -> Printf.sprintf "\"%s\"" (escape_string s)
  | Boolean_value b -> string_of_bool b
  | Null_value -> "null"
  | Enum_value n -> n
  | List_value vs -> Printf.sprintf "[%s]" (String.concat ", " (List.map to_string vs))
  | Object_value fields ->
    Printf.sprintf "{%s}"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s: %s" k (to_string v)) fields))
