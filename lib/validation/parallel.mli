(** The multicore validation engine.

    Semantically identical to {!Naive} and {!Indexed} (property-tested),
    and byte-identical in its reports to {!Indexed} (both run the same
    {!Kernels} and merge through the order-insensitive
    {!Violation.normalize}).  The graph is snapshotted once into arrays,
    every rule's slice universe is chunked, and the chunks are drained by
    [min (ncpus, k)] OCaml 5 domains pulling from a single atomic task
    counter, each with a private accumulator and subtype cache.  No new
    dependencies, no locks on the hot path.

    [domains] defaults to [Domain.recommended_domain_count ()]; [1] gives
    a sequential run over the same snapshot (still competitive with
    {!Indexed}, since strong mode builds its indexes once instead of per
    sub-mode).  Values above the core count are allowed — useful for
    testing scheduling, useless for speed. *)

val weak :
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Violation.t list
(** Rules WS1–WS4 (Definition 5.1), normalized. *)

val directives :
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Violation.t list
(** Rules DS1–DS7 (Definition 5.2), normalized. *)

val strong_extra :
  ?domains:int -> Pg_schema.Schema.t -> Pg_graph.Property_graph.t -> Violation.t list
(** Rules SS1–SS4 (Definition 5.3), normalized. *)

val strong :
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Violation.t list
(** All fifteen rules in one domain pool over one snapshot — the fast
    path used by [Validate.check ~engine:Parallel ~mode:Strong]. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)
