(** The multicore validation engine.

    Semantically identical to {!Naive} (property-tested), and
    byte-identical in its reports to {!Indexed} and {!Linear} (all run
    the same compiled {!Kernels} and merge through the order-insensitive
    {!Violation.normalize}).  Every rule's index range over the frozen
    snapshot is chunked, and the chunks are drained by [min (ncpus, k)]
    OCaml 5 domains pulling from a single atomic task counter, each with
    a private accumulator.  The compiled kernels are pure readers of the
    shared plan and snapshot — no caches, no locks on the hot path.

    [domains] defaults to [Domain.recommended_domain_count ()]; [1] gives
    a sequential run over the same snapshot.  Values above the core count
    are allowed — useful for testing scheduling, useless for speed. *)

val check : ?domains:int -> Kernels.ctx -> Kernels.rule_set -> Violation.t list
(** Violations of the selected rule families, normalized. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)
