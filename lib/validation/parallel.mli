(** The multicore validation engine: owner-computes over node-range
    shards.

    Semantically identical to {!Naive} (property-tested), and
    byte-identical in its reports to {!Indexed} and {!Linear} (all run
    the same compiled {!Kernels} and merge through the order-insensitive
    {!Violation.normalize}).  The frozen snapshot is cut by
    {!Pg_graph.Partition.make} into node-range shards; each shard is one
    task whose owner runs the whole shard-local pass over the shard's
    zero-copy column sub-views — a plain sequential sweep, no atomic
    operations on the hot path.  After the workers join, the main domain
    runs the cross-shard frontier pass and the global DS7 merge.

    [domains] defaults to [Domain.recommended_domain_count ()]; [1] gives
    a sequential run over the same snapshot.  Values above the core count
    are allowed — useful for testing scheduling, useless for speed. *)

val check : ?domains:int -> Kernels.ctx -> Kernels.rule_set -> Violation.t list
(** Violations of the selected rule families, normalized.  Cuts one
    shard per domain.
    @raise Invalid_argument if [domains < 1]. *)

val check_sharded :
  ?domains:int -> ?shards:int -> Kernels.ctx -> Kernels.rule_set -> Violation.t list
(** Like {!check} but with the shard count decoupled from the domain
    count ([shards] defaults to [domains]) — more shards than domains
    bounds the resident working set per task; the report is byte-
    identical either way.
    @raise Invalid_argument if [domains < 1] or [shards < 1]. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

type task = unit -> Violation.t list

val run_tasks : ?gov:Governor.run -> domains:int -> task list -> Violation.t list
(** Drain the tasks across [min domains (length tasks)] domains (the
    calling domain included), concatenating their results in an
    unspecified order.  Returns [[]] immediately — spawning nothing —
    when the list is empty or [gov] is already stopped on entry. *)
