(* Resource budgets and metered runs.  See governor.mli for the model.

   The cost discipline matters more than the feature set here: the five
   engines call [tick]/[stopped] inside their hottest loops, and an
   unlimited budget must not slow them down or perturb their output.  Two
   mechanisms keep it free:

   - [start unlimited] returns the shared inert [no_run], and every
     engine checks [active run] once per pass, falling back to its
     original un-metered loop.  The budgeted code is never on the
     unbudgeted path.
   - Even on the budgeted path, wall-clock polling ([Unix.gettimeofday])
     is strided: [tick] looks at the clock every 256th element and at
     element 0 (so a 0 ms deadline stops before any work). *)

type t = {
  b_deadline_ms : float option;
  b_max_violations : int option;
  b_cancel : bool Atomic.t;
  b_cancellable : bool;
      (* distinguishes "caller handed us a flag" from the dummy we
         allocate ourselves: a budget with only a cancel flag is still
         active, one with only the dummy is unlimited *)
}

let make ?deadline_ms ?max_violations ?cancel () =
  (match deadline_ms with
  | Some d when d < 0.0 -> invalid_arg "Governor.make: negative deadline_ms"
  | _ -> ());
  (match max_violations with
  | Some m when m < 0 -> invalid_arg "Governor.make: negative max_violations"
  | _ -> ());
  {
    b_deadline_ms = deadline_ms;
    b_max_violations = max_violations;
    b_cancel = (match cancel with Some c -> c | None -> Atomic.make false);
    b_cancellable = Option.is_some cancel;
  }

let unlimited = make ()

let is_unlimited b =
  b.b_deadline_ms = None && b.b_max_violations = None && not b.b_cancellable

let deadline_ms b = b.b_deadline_ms
let with_deadline_ms b ms = { b with b_deadline_ms = Some (Float.max ms 0.0) }
let cancel b = Atomic.set b.b_cancel true

type run = {
  r_active : bool;
  r_deadline : float; (* absolute seconds; [infinity] = none *)
  r_max_violations : int; (* [max_int] = none *)
  r_cancel : bool Atomic.t;
  r_stop : bool Atomic.t;
  r_found : int Atomic.t;
  r_node_scans : int Atomic.t;
  r_edge_scans : int Atomic.t;
}

let no_run =
  {
    r_active = false;
    r_deadline = infinity;
    r_max_violations = max_int;
    r_cancel = Atomic.make false;
    r_stop = Atomic.make false;
    r_found = Atomic.make 0;
    r_node_scans = Atomic.make 0;
    r_edge_scans = Atomic.make 0;
  }

let start b =
  if is_unlimited b then no_run
  else
    {
      r_active = true;
      r_deadline =
        (match b.b_deadline_ms with
        | None -> infinity
        | Some ms -> Unix.gettimeofday () +. (ms /. 1000.0));
      r_max_violations =
        (match b.b_max_violations with None -> max_int | Some m -> m);
      r_cancel = b.b_cancel;
      r_stop = Atomic.make false;
      r_found = Atomic.make 0;
      r_node_scans = Atomic.make 0;
      r_edge_scans = Atomic.make 0;
    }

let active run = run.r_active
let stop_now run = if run.r_active then Atomic.set run.r_stop true

let stopped run =
  run.r_active
  && (Atomic.get run.r_stop
     ||
     if Atomic.get run.r_cancel then (
       Atomic.set run.r_stop true;
       true)
     else false)

let expired run =
  stopped run
  ||
  if run.r_deadline < infinity && Unix.gettimeofday () > run.r_deadline then (
    Atomic.set run.r_stop true;
    true)
  else false

let tick run k =
  if not run.r_active then false
  else if stopped run then true
  else if k land 255 = 0 then expired run
  else false

let note_found run n =
  if run.r_active && n > 0 then
    let before = Atomic.fetch_and_add run.r_found n in
    if before + n >= run.r_max_violations then Atomic.set run.r_stop true

let note_node_scans run n =
  if run.r_active && n > 0 then ignore (Atomic.fetch_and_add run.r_node_scans n)

let note_edge_scans run n =
  if run.r_active && n > 0 then ignore (Atomic.fetch_and_add run.r_edge_scans n)

(* Rule bodies only ever cons onto the accumulator they are given, so the
   new findings of a pass are exactly the cells that sit in front of the
   old list: walk [acc'] until we hit [acc] *physically*.  O(added) with
   a single pointer comparison when nothing was added. *)
let added acc' acc =
  let rec go n l = if l == acc then n else match l with
    | [] -> n (* acc must have been [] too; count is complete *)
    | _ :: tl -> go (n + 1) tl
  in
  go 0 acc'

let complete run = not (run.r_active && Atomic.get run.r_stop)
let found run = Atomic.get run.r_found
let node_scans run = Atomic.get run.r_node_scans
let edge_scans run = Atomic.get run.r_edge_scans
let exhausted_reason = "budget exhausted"
