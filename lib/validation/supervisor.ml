(* Supervised job execution.  See supervisor.mli. *)

module Diag = Pg_diag.Diag

type policy = { retries : int; backoff_ms : float; multiplier : float }

let default_policy = { retries = 0; backoff_ms = 100.0; multiplier = 2.0 }

let policy ?(retries = 0) ?(backoff_ms = 100.0) ?(multiplier = 2.0) () =
  if retries < 0 then invalid_arg "Supervisor.policy: retries must be non-negative";
  if not (backoff_ms > 0.0) then invalid_arg "Supervisor.policy: backoff_ms must be positive";
  if not (multiplier > 0.0) then invalid_arg "Supervisor.policy: multiplier must be positive";
  { retries; backoff_ms; multiplier }

let delay_ms policy attempt =
  (* delay before retry [attempt+1], after failed attempt [attempt] *)
  policy.backoff_ms *. (policy.multiplier ** float_of_int (attempt - 1))

let backoff_delays policy = List.init policy.retries (fun i -> delay_ms policy (i + 1))

type crash = { crash_exn : string; crash_attempts : int; crash_transient : bool }

type 'a outcome = Done of 'a * int | Crashed of crash

(* Only genuinely transient conditions earn a retry: an interrupted or
   reset I/O operation can succeed on the next attempt, but ENOENT,
   EACCES and friends are deterministic — retrying them just multiplies
   the latency of an error that will never go away. *)
let transient_errno = function
  | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNRESET | Unix.ETIMEDOUT ->
    true
  (* ENOSPC is explicitly non-transient: a full disk does not drain
     itself between retry attempts, and every retry of a batch write
     would grind through the whole write again just to fail at the same
     byte.  Fail fast and let the operator reclaim space. *)
  | Unix.ENOSPC -> false
  | _ -> false

(* Buffered-channel I/O surfaces errnos as [Sys_error] carrying the
   strerror(3) text, so the message is all there is to classify on. *)
let transient_sys_error msg =
  let contains sub =
    let n = String.length msg and k = String.length sub in
    let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
    scan 0
  in
  contains "Interrupted system call"
  || contains "Resource temporarily unavailable"
  || contains "Operation would block"
  || contains "Connection reset by peer"
  || contains "Connection timed out"

let default_transient = function
  | Unix.Unix_error (errno, _, _) -> transient_errno errno
  | Sys_error msg -> transient_sys_error msg
  | _ -> false

let default_sleep ms = if ms > 0.0 then Unix.sleepf (ms /. 1000.0)

let supervise ?(policy = default_policy) ?(transient = default_transient)
    ?(sleep = default_sleep) job =
  let rec attempt k =
    match job () with
    | v -> Done (v, k)
    | exception exn ->
      let is_transient = transient exn in
      if is_transient && k <= policy.retries then begin
        sleep (delay_ms policy k);
        attempt (k + 1)
      end
      else Crashed { crash_exn = Printexc.to_string exn; crash_attempts = k; crash_transient = is_transient }
  in
  attempt 1

let crash_diagnostic ~subject crash =
  Diag.error ~code:"VAL002" ~subject
    (Printf.sprintf "%s: validation job crashed after %d attempt(s): %s" subject
       crash.crash_attempts crash.crash_exn)

type status = Completed | Partial | Crashed_job | Unreadable

let status_name = function
  | Completed -> "completed"
  | Partial -> "partial"
  | Crashed_job -> "crashed"
  | Unreadable -> "unreadable"

type job_report = {
  job : string;
  job_status : status;
  attempts : int;
  diags : Diag.t list;
}

type batch = {
  jobs : job_report list;
  completed : int;
  partial : int;
  crashed : int;
  unreadable : int;
}

let make_batch jobs =
  let count s = List.length (List.filter (fun j -> j.job_status = s) jobs) in
  {
    jobs;
    completed = count Completed;
    partial = count Partial;
    crashed = count Crashed_job;
    unreadable = count Unreadable;
  }

let batch_diagnostics batch = List.concat_map (fun j -> j.diags) batch.jobs

let pp_batch ppf batch =
  let parts =
    List.filter
      (fun (n, _) -> n > 0)
      [
        (batch.completed, "completed");
        (batch.partial, "partial");
        (batch.crashed, "crashed");
        (batch.unreadable, "unreadable");
      ]
  in
  let parts = if parts = [] then [ (0, "completed") ] else parts in
  Format.fprintf ppf "%d job(s): %s"
    (List.length batch.jobs)
    (String.concat ", " (List.map (fun (n, name) -> Printf.sprintf "%d %s" n name) parts))
