module G = Pg_graph.Property_graph
module Plan = Pg_schema.Plan

type engine = Naive | Linear | Indexed | Parallel
type mode = Weak | Directives | Strong

type report = {
  violations : Violation.t list;
  nodes_checked : int;
  edges_checked : int;
  mode : mode;
  engine : engine;
}

let compile = Plan.compile

let rules_of = function
  | Weak -> { Kernels.weak = true; dirs = false; strong = false }
  | Directives -> { Kernels.weak = false; dirs = true; strong = false }
  | Strong -> { Kernels.weak = true; dirs = true; strong = true }

(* The string-level specification path: per-mode quadratic evaluation on
   the raw graph, no plan involved. *)
let naive_violations ~mode ?env sch g =
  match mode with
  | Weak -> Naive.weak ?env sch g
  | Directives -> Naive.directives ?env sch g
  | Strong ->
    Violation.normalize
      (Naive.weak ?env sch g @ Naive.directives ?env sch g @ Naive.strong_extra sch g)

let check_compiled ?(engine = Indexed) ?(mode = Strong) ?env ?domains plan g =
  let violations =
    match engine with
    | Naive -> naive_violations ~mode ?env (Plan.schema plan) g
    | (Linear | Indexed | Parallel) as engine ->
      let ctx = Kernels.make_ctx ?env plan g in
      let rs = rules_of mode in
      (match engine with
      | Linear -> Linear.check ctx rs
      | Indexed -> Indexed.check ctx rs
      | Parallel -> Parallel.check ?domains ctx rs
      | Naive -> assert false)
  in
  {
    violations;
    nodes_checked = G.node_count g;
    edges_checked = G.edge_count g;
    mode;
    engine;
  }

let check ?(engine = Indexed) ?(mode = Strong) ?env ?domains sch g =
  match engine with
  | Naive ->
    {
      violations = naive_violations ~mode ?env sch g;
      nodes_checked = G.node_count g;
      edges_checked = G.edge_count g;
      mode;
      engine;
    }
  | Linear | Indexed | Parallel ->
    check_compiled ~engine ~mode ?env ?domains (Plan.compile sch) g

let conforms ?engine ?env ?domains sch g =
  (check ?engine ~mode:Strong ?env ?domains sch g).violations = []

let weakly_satisfies ?engine ?env ?domains sch g =
  (check ?engine ~mode:Weak ?env ?domains sch g).violations = []

let satisfies_directives ?engine ?env ?domains sch g =
  (check ?engine ~mode:Directives ?env ?domains sch g).violations = []

let violated_rules report =
  List.filter
    (fun r -> List.exists (fun v -> v.Violation.rule = r) report.violations)
    Violation.all_rules

let pp_report ppf report =
  let mode_name = function Weak -> "weak" | Directives -> "directives" | Strong -> "strong" in
  let engine_name = function
    | Naive -> "naive"
    | Linear -> "linear"
    | Indexed -> "indexed"
    | Parallel -> "parallel"
  in
  if report.violations = [] then
    Format.fprintf ppf "valid (%s satisfaction; %d nodes, %d edges; %s engine)"
      (mode_name report.mode) report.nodes_checked report.edges_checked
      (engine_name report.engine)
  else begin
    Format.fprintf ppf "%d violation(s) (%s satisfaction; %d nodes, %d edges; %s engine):"
      (List.length report.violations)
      (mode_name report.mode) report.nodes_checked report.edges_checked
      (engine_name report.engine);
    List.iter (fun v -> Format.fprintf ppf "@.  %a" Violation.pp v) report.violations
  end
