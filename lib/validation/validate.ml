module G = Pg_graph.Property_graph

type engine = Naive | Indexed | Parallel
type mode = Weak | Directives | Strong

type report = {
  violations : Violation.t list;
  nodes_checked : int;
  edges_checked : int;
  mode : mode;
  engine : engine;
}

let check ?(engine = Indexed) ?(mode = Strong) ?env ?domains sch g =
  let violations =
    match engine with
    | Parallel -> (
      (* one snapshot, one domain pool per check *)
      match mode with
      | Weak -> Parallel.weak ?env ?domains sch g
      | Directives -> Parallel.directives ?env ?domains sch g
      | Strong -> Parallel.strong ?env ?domains sch g)
    | Naive | Indexed -> (
      let weak, directives, strong_extra =
        match engine with
        | Naive -> (Naive.weak ?env, Naive.directives ?env, Naive.strong_extra)
        | Indexed | Parallel ->
          (Indexed.weak ?env, Indexed.directives ?env, Indexed.strong_extra)
      in
      match mode with
      | Weak -> weak sch g
      | Directives -> directives sch g
      | Strong -> Violation.normalize (weak sch g @ directives sch g @ strong_extra sch g))
  in
  {
    violations;
    nodes_checked = G.node_count g;
    edges_checked = G.edge_count g;
    mode;
    engine;
  }

let conforms ?engine ?env ?domains sch g =
  (check ?engine ~mode:Strong ?env ?domains sch g).violations = []

let weakly_satisfies ?engine ?env ?domains sch g =
  (check ?engine ~mode:Weak ?env ?domains sch g).violations = []

let satisfies_directives ?engine ?env ?domains sch g =
  (check ?engine ~mode:Directives ?env ?domains sch g).violations = []

let violated_rules report =
  List.filter
    (fun r -> List.exists (fun v -> v.Violation.rule = r) report.violations)
    Violation.all_rules

let pp_report ppf report =
  let mode_name = function Weak -> "weak" | Directives -> "directives" | Strong -> "strong" in
  let engine_name = function
    | Naive -> "naive"
    | Indexed -> "indexed"
    | Parallel -> "parallel"
  in
  if report.violations = [] then
    Format.fprintf ppf "valid (%s satisfaction; %d nodes, %d edges; %s engine)"
      (mode_name report.mode) report.nodes_checked report.edges_checked
      (engine_name report.engine)
  else begin
    Format.fprintf ppf "%d violation(s) (%s satisfaction; %d nodes, %d edges; %s engine):"
      (List.length report.violations)
      (mode_name report.mode) report.nodes_checked report.edges_checked
      (engine_name report.engine);
    List.iter (fun v -> Format.fprintf ppf "@.  %a" Violation.pp v) report.violations
  end
