module G = Pg_graph.Property_graph
module Plan = Pg_schema.Plan

type engine = Naive | Linear | Indexed | Parallel | Sharded
type mode = Weak | Directives | Strong

type report = {
  violations : Violation.t list;
  nodes_checked : int;
  edges_checked : int;
  complete : bool;
  nodes_scanned : int;
  edges_scanned : int;
  mode : mode;
  engine : engine;
}

let compile = Plan.compile

let rules_of = function
  | Weak -> { Kernels.weak = true; dirs = false; strong = false }
  | Directives -> { Kernels.weak = false; dirs = true; strong = false }
  | Strong -> { Kernels.weak = true; dirs = true; strong = true }

(* The string-level specification path: per-mode quadratic evaluation on
   the raw graph, no plan involved. *)
let naive_violations ~mode ?env ?(run = Governor.no_run) sch g =
  match mode with
  | Weak -> Naive.weak ?env ~gov:run sch g
  | Directives -> Naive.directives ?env ~gov:run sch g
  | Strong ->
    Violation.normalize
      (Naive.weak ?env ~gov:run sch g
      @ Naive.directives ?env ~gov:run sch g
      @ Naive.strong_extra ~gov:run sch g)

(* An inert run reports the graph totals as its scan counts: everything
   was scanned, and the unbudgeted record is built without touching the
   run's atomics. *)
let report_of_counts ~mode ~engine run violations ~nodes_checked ~edges_checked =
  let active = Governor.active run in
  {
    violations;
    nodes_checked;
    edges_checked;
    complete = Governor.complete run;
    nodes_scanned = (if active then Governor.node_scans run else nodes_checked);
    edges_scanned = (if active then Governor.edge_scans run else edges_checked);
    mode;
    engine;
  }

let report_of ~mode ~engine run violations g =
  report_of_counts ~mode ~engine run violations ~nodes_checked:(G.node_count g)
    ~edges_checked:(G.edge_count g)

let check_compiled ?(engine = Indexed) ?(mode = Strong) ?env ?domains ?shards
    ?(gov = Governor.unlimited) plan g =
  let run = Governor.start gov in
  let violations =
    match engine with
    | Naive -> naive_violations ~mode ?env ~run (Plan.schema plan) g
    | (Linear | Indexed | Parallel | Sharded) as engine ->
      let ctx = Kernels.make_ctx ?env ~gov:run plan g in
      let rs = rules_of mode in
      (match engine with
      | Linear -> Linear.check ctx rs
      | Indexed -> Indexed.check ctx rs
      | Parallel -> Parallel.check ?domains ctx rs
      | Sharded -> Parallel.check_sharded ?domains ?shards ctx rs
      | Naive -> assert false)
  in
  report_of ~mode ~engine run violations g

(* Validation over an already-frozen snapshot (e.g. mapped back from
   disk): the compiled engines run unchanged because they never touch the
   raw graph, only the ctx.  Naive is the one engine that cannot — it is
   a string-level oracle over the original Property_graph text, which a
   snapshot does not retain. *)
let check_snapshot ?(engine = Indexed) ?(mode = Strong) ?env ?domains ?shards
    ?(gov = Governor.unlimited) plan snap =
  let run = Governor.start gov in
  let violations =
    match engine with
    | Naive ->
      invalid_arg
        "Validate.check_snapshot: the naive engine needs the source graph, not a snapshot"
    | (Linear | Indexed | Parallel | Sharded) as engine ->
      let ctx = Kernels.ctx_of_snap ?env ~gov:run plan snap in
      let rs = rules_of mode in
      (match engine with
      | Linear -> Linear.check ctx rs
      | Indexed -> Indexed.check ctx rs
      | Parallel -> Parallel.check ?domains ctx rs
      | Sharded -> Parallel.check_sharded ?domains ?shards ctx rs
      | Naive -> assert false)
  in
  report_of_counts ~mode ~engine run violations ~nodes_checked:snap.Pg_graph.Snapshot.n
    ~edges_checked:snap.Pg_graph.Snapshot.m

(* Out-of-core validation: the streaming shard pipeline over a mapped
   snapshot, one shard's properties resident at a time.  Always the
   [Sharded] engine; errors are the I/O layer's (a failed property
   read). *)
let check_mapped ?(mode = Strong) ?env ?(shards = 1) ?(gov = Governor.unlimited) plan
    mapped =
  let run = Governor.start gov in
  match Shard_stream.check ?env ~gov:run ~shards plan mapped (rules_of mode) with
  | Error _ as e -> e
  | Ok violations ->
    let snap = Pg_graph.Snapshot_io.mapped_snapshot mapped in
    Ok
      (report_of_counts ~mode ~engine:Sharded run violations
         ~nodes_checked:snap.Pg_graph.Snapshot.n ~edges_checked:snap.Pg_graph.Snapshot.m)

let check ?(engine = Indexed) ?(mode = Strong) ?env ?domains ?shards
    ?(gov = Governor.unlimited) sch g =
  match engine with
  | Naive ->
    let run = Governor.start gov in
    report_of ~mode ~engine run (naive_violations ~mode ?env ~run sch g) g
  | Linear | Indexed | Parallel | Sharded ->
    check_compiled ~engine ~mode ?env ?domains ?shards ~gov (Plan.compile sch) g

let conforms ?engine ?env ?domains sch g =
  (check ?engine ~mode:Strong ?env ?domains sch g).violations = []

let weakly_satisfies ?engine ?env ?domains sch g =
  (check ?engine ~mode:Weak ?env ?domains sch g).violations = []

let satisfies_directives ?engine ?env ?domains sch g =
  (check ?engine ~mode:Directives ?env ?domains sch g).violations = []

let violated_rules report =
  List.filter
    (fun r -> List.exists (fun v -> v.Violation.rule = r) report.violations)
    Violation.all_rules

(* The report as unified diagnostics: one per violation, plus a VAL001
   budget marker when the run stopped early (so the exit-code policy can
   classify a partial report without out-of-band flags). *)
let diagnostics report =
  let ds = List.map Violation.to_diagnostic report.violations in
  if report.complete then ds
  else
    Pg_diag.Diag.error ~code:"VAL001"
      (Printf.sprintf
         "budget exhausted before the scan completed (%d node and %d edge visits over %d \
          nodes, %d edges)"
         report.nodes_scanned report.edges_scanned report.nodes_checked report.edges_checked)
    :: ds

let pp_report ppf report =
  let mode_name = function Weak -> "weak" | Directives -> "directives" | Strong -> "strong" in
  let engine_name = function
    | Naive -> "naive"
    | Linear -> "linear"
    | Indexed -> "indexed"
    | Parallel -> "parallel"
    | Sharded -> "sharded"
  in
  if not report.complete then begin
    (* Partial result: the scan counts are work units (per-rule engines
       visit an element once per rule), so they gauge progress, not a
       fraction of distinct elements. *)
    Format.fprintf ppf
      "partial: %d violation(s) before budget exhaustion (%s satisfaction; %d node and \
       %d edge visits over %d nodes, %d edges; %s engine)"
      (List.length report.violations)
      (mode_name report.mode) report.nodes_scanned report.edges_scanned
      report.nodes_checked report.edges_checked (engine_name report.engine);
    List.iter (fun v -> Format.fprintf ppf "@.  %a" Violation.pp v) report.violations
  end
  else if report.violations = [] then
    Format.fprintf ppf "valid (%s satisfaction; %d nodes, %d edges; %s engine)"
      (mode_name report.mode) report.nodes_checked report.edges_checked
      (engine_name report.engine)
  else begin
    Format.fprintf ppf "%d violation(s) (%s satisfaction; %d nodes, %d edges; %s engine):"
      (List.length report.violations)
      (mode_name report.mode) report.nodes_checked report.edges_checked
      (engine_name report.engine);
    List.iter (fun v -> Format.fprintf ppf "@.  %a" Violation.pp v) report.violations
  end
