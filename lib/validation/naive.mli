(** The reference validation engine: a direct transcription of the
    first-order formulas in the proof of Theorem 1.

    Every rule is implemented with the nested quantifiers of its statement
    in Section 5, entirely at the string level ([Schema] lookups,
    [Subtype.named], [Values_w.mem]) — rules that quantify over pairs of
    edges or nodes (WS4, DS1, DS3, DS7) run in quadratic time.  This
    engine is the executable specification and deliberately shares no code
    with the compiled {!Kernels} path; the plan-based engines must agree
    with it (property-tested), and the benchmark [validation_scaling]
    measures the gap.

    [gov] (default {!Governor.no_run}) adds a budget checkpoint per
    visited graph element — an inactive run leaves the specification
    path untouched; a stopped one returns the violations found so far.
    The violation cap is counted per visited element, like the compiled
    engines. *)

val weak :
  ?env:Pg_schema.Values_w.env ->
  ?gov:Governor.run ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Violation.t list
(** Rules WS1–WS4 (Definition 5.1), normalized. *)

val directives :
  ?env:Pg_schema.Values_w.env ->
  ?gov:Governor.run ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Violation.t list
(** Rules DS1–DS7 (Definition 5.2), normalized. *)

val strong_extra :
  ?gov:Governor.run ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  Violation.t list
(** Rules SS1–SS4 (Definition 5.3), normalized. *)
