(* The multicore validation engine.

   Theorem 1 of the paper puts strong-satisfaction validation in AC0:
   every rule is a first-order condition on a bounded neighbourhood, so
   the rule checks over disjoint slices of the graph are independent.
   This engine exploits that directly:

   1. snapshot the graph once ({!Kernels.make_ctx}: node/edge arrays plus
      the frozen edge indexes, all immutable from then on);
   2. cut every rule's slice universe into chunks and turn each chunk
      into a task (a closure running one {!Kernels} kernel on the chunk);
   3. drain the task queue with [min (ncpus, k)] domains — each domain
      owns a private accumulator and a private subtype cache, so the hot
      loop takes no locks and shares no mutable state;
   4. merge the per-domain lists through {!Violation.normalize}, which is
      order-insensitive — the report is therefore byte-identical to the
      sequential {!Indexed} engine's, whatever the scheduling.

   Tasks are consumed from a single atomic counter (work stealing in its
   simplest form): chunky rules (DS7 key grouping, big WS1 shards) do not
   stall the other domains, they just eat more queue. *)

module K = Kernels

let default_domains () = Domain.recommended_domain_count ()

(* A task evaluates some kernel slice with a domain-private cache. *)
type task = K.subtype_cache -> Violation.t list

let run_tasks ~domains (tasks : task list) =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let k = max 1 (min domains n) in
    let next = Atomic.make 0 in
    let worker () =
      let cache = K.make_cache () in
      let rec drain acc =
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then acc else drain (List.rev_append (tasks.(i) cache) acc)
      in
      drain []
    in
    if k = 1 then worker ()
    else begin
      let helpers = List.init (k - 1) (fun _ -> Domain.spawn worker) in
      let mine = worker () in
      List.fold_left (fun acc d -> List.rev_append (Domain.join d) acc) mine helpers
    end
  end

(* Cut [0, len) into ~4 chunks per domain (for load balancing), but never
   below [min_chunk] elements (so task overhead cannot dominate tiny
   graphs), and emit one task per chunk. *)
let min_chunk = 512

let chunked len ~domains kernel acc =
  if len = 0 then acc
  else begin
    let target = 4 * domains in
    let size = max min_chunk ((len + target - 1) / target) in
    let rec cut lo acc =
      if lo >= len then acc
      else begin
        let hi = min len (lo + size) in
        (fun cache -> kernel cache ~lo ~hi []) :: cut hi acc
      end
    in
    cut 0 acc
  end

let weak_tasks (ctx : K.ctx) ~domains acc =
  let nodes = Array.length ctx.K.nodes and edges = Array.length ctx.K.edges in
  acc
  |> chunked nodes ~domains (fun _cache ~lo ~hi acc -> K.ws1 ctx ~lo ~hi acc)
  |> chunked edges ~domains (fun _cache ~lo ~hi acc -> K.ws2 ctx ~lo ~hi acc)
  |> chunked edges ~domains (fun cache ~lo ~hi acc -> K.ws3 ctx cache ~lo ~hi acc)
  |> chunked
       (Array.length ctx.K.idx.K.out_groups)
       ~domains
       (fun _cache ~lo ~hi acc -> K.ws4 ctx ~lo ~hi acc)

let directives_tasks (ctx : K.ctx) ~domains acc =
  let nodes = Array.length ctx.K.nodes in
  let par_groups = Array.length ctx.K.idx.K.par_groups in
  acc
  |> chunked par_groups ~domains (fun cache ~lo ~hi acc -> K.ds1 ctx cache ~lo ~hi acc)
  |> chunked par_groups ~domains (fun cache ~lo ~hi acc -> K.ds2 ctx cache ~lo ~hi acc)
  |> chunked
       (Array.length ctx.K.idx.K.in_groups)
       ~domains
       (fun cache ~lo ~hi acc -> K.ds3 ctx cache ~lo ~hi acc)
  |> chunked nodes ~domains (fun cache ~lo ~hi acc -> K.ds4 ctx cache ~lo ~hi acc)
  |> chunked nodes ~domains (fun cache ~lo ~hi acc -> K.ds56 ctx cache ~lo ~hi acc)
  |> fun acc ->
  List.fold_left
    (fun acc kc -> (fun cache -> K.ds7 ctx cache kc []) :: acc)
    acc ctx.K.keys

let strong_tasks (ctx : K.ctx) ~domains acc =
  let nodes = Array.length ctx.K.nodes and edges = Array.length ctx.K.edges in
  acc
  |> chunked nodes ~domains (fun _cache ~lo ~hi acc -> K.ss1 ctx ~lo ~hi acc)
  |> chunked nodes ~domains (fun _cache ~lo ~hi acc -> K.ss2 ctx ~lo ~hi acc)
  |> chunked edges ~domains (fun _cache ~lo ~hi acc -> K.ss3 ctx ~lo ~hi acc)
  |> chunked edges ~domains (fun _cache ~lo ~hi acc -> K.ss4 ctx ~lo ~hi acc)

let run ?env ?domains sch g mk_tasks =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let ctx = K.make_ctx ?env sch g in
  run_tasks ~domains (mk_tasks ctx ~domains []) |> Violation.normalize

let weak ?env ?domains sch g = run ?env ?domains sch g weak_tasks
let directives ?env ?domains sch g = run ?env ?domains sch g directives_tasks
let strong_extra ?domains sch g = run ?domains sch g strong_tasks

let strong ?env ?domains sch g =
  run ?env ?domains sch g (fun ctx ~domains acc ->
      acc
      |> weak_tasks ctx ~domains
      |> directives_tasks ctx ~domains
      |> strong_tasks ctx ~domains)
