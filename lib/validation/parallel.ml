(* The multicore validation engine.

   Theorem 1 of the paper puts strong-satisfaction validation in AC0:
   every rule is a first-order condition on a bounded neighbourhood, so
   the rule checks over disjoint slices of the graph are independent.
   This engine exploits that directly:

   1. the caller freezes the graph once ({!Kernels.make_ctx}: the
      compiled plan plus the CSR snapshot, immutable from then on);
   2. every rule's index range (nodes or edges) is cut into chunks and
      each chunk becomes a task (a closure running one {!Kernels} kernel
      on the chunk);
   3. the task queue drains into [min (ncpus, k)] domains — each domain
      owns a private accumulator, and since the compiled kernels are pure
      readers of the frozen context (integer compares against the plan's
      bitsets and symbol ids, no memo caches), the hot loop takes no
      locks and shares no mutable state;
   4. the per-domain lists merge through {!Violation.normalize}, which is
      order-insensitive — the report is therefore byte-identical to the
      sequential {!Indexed} and {!Linear} engines', whatever the
      scheduling.

   Tasks are consumed from a single atomic counter (work stealing in its
   simplest form): chunky rules (DS7 key grouping, big WS1 shards) do not
   stall the other domains, they just eat more queue. *)

module K = Kernels
module Snapshot = Pg_graph.Snapshot

let default_domains () = Domain.recommended_domain_count ()

type task = unit -> Violation.t list

let run_tasks ?(gov = Governor.no_run) ~domains (tasks : task list) =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let k = max 1 (min domains n) in
    let next = Atomic.make 0 in
    let worker () =
      (* The stop flag is shared through the governor run's atomics, so a
         deadline noticed (or a cancellation raised) on one domain stops
         the queue for all of them; tasks already started terminate via
         their own kernel checkpoints. *)
      let rec drain acc =
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Governor.stopped gov then acc
        else drain (List.rev_append (tasks.(i) ()) acc)
      in
      drain []
    in
    if k = 1 then worker ()
    else begin
      let helpers = List.init (k - 1) (fun _ -> Domain.spawn worker) in
      let mine = worker () in
      List.fold_left (fun acc d -> List.rev_append (Domain.join d) acc) mine helpers
    end
  end

(* Cut [0, len) into ~4 chunks per domain (for load balancing), but never
   below [min_chunk] elements (so task overhead cannot dominate tiny
   graphs), and emit one task per chunk. *)
let min_chunk = 512

let chunked len ~domains kernel acc =
  if len = 0 then acc
  else begin
    let target = 4 * domains in
    let size = max min_chunk ((len + target - 1) / target) in
    let rec cut lo acc =
      if lo >= len then acc
      else begin
        let hi = min len (lo + size) in
        (fun () -> kernel ~lo ~hi []) :: cut hi acc
      end
    in
    cut 0 acc
  end

let tasks_of (ctx : K.ctx) (rs : K.rule_set) ~domains =
  let n = ctx.K.snap.Snapshot.n and m = ctx.K.snap.Snapshot.m in
  let nodes k acc = chunked n ~domains (k ctx) acc in
  let edges k acc = chunked m ~domains (k ctx) acc in
  let acc = [] in
  let acc =
    if rs.K.weak then acc |> nodes K.ws1 |> edges K.ws2 |> edges K.ws3 |> nodes K.ws4
    else acc
  in
  let acc =
    if rs.K.dirs then
      acc |> nodes K.ds1 |> nodes K.ds2 |> nodes K.ds3 |> nodes K.ds4 |> nodes K.ds56
      |> fun acc ->
      Array.fold_left
        (fun acc key -> (fun () -> K.ds7 ctx key []) :: acc)
        acc
        (Pg_schema.Plan.keys ctx.K.plan)
    else acc
  in
  if rs.K.strong then acc |> nodes K.ss1 |> nodes K.ss2 |> edges K.ss3 |> edges K.ss4
  else acc

let check ?domains (ctx : K.ctx) (rs : K.rule_set) =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  run_tasks ~gov:ctx.K.gov ~domains (tasks_of ctx rs ~domains) |> Violation.normalize
