(* The multicore validation engine: owner-computes over node-range
   shards.

   Theorem 1 of the paper puts strong-satisfaction validation in AC0:
   every rule is a first-order condition on a bounded neighbourhood, so
   the graph can be cut into disjoint node-range shards and validated
   with almost no shared state.  This engine exploits that directly:

   1. the caller freezes the graph once ({!Kernels.make_ctx}: the
      compiled plan plus the CSR snapshot, immutable from then on);
   2. {!Pg_graph.Partition.make} cuts the node range into shards
      (zero-copy column sub-views) and computes the frontier — the
      cross-shard edges and the nodes incident to them;
   3. each shard becomes ONE task: its owner runs the whole shard-local
      pass ({!Kernels.shard_local} — every rule that needs no other
      shard's state) plus the per-shard DS7 grouping into a private
      table.  Owner-computes means the task counter is touched once per
      shard, not per chunk: the hot path is a plain sequential sweep of
      the shard's column slices, with no atomic operations at all;
   4. after the workers join, the main domain runs the cross-shard
      frontier pass and the global DS7 merge (concatenating the
      per-shard group tables), both sequential — the frontier is the
      only state two shards share, and it is typically a small fraction
      of the graph;
   5. the per-domain lists merge through {!Violation.normalize}, which
      is order-insensitive, and every rule instance is computed exactly
      once across the local and frontier passes — the report is
      therefore byte-identical to the sequential {!Indexed} and
      {!Linear} engines', whatever the shard count or scheduling.

   Governor budgets are shared through the run's atomics, so a deadline
   noticed in one shard stops all of them at their next checkpoint, and
   the partial result (local prefixes + whatever the frontier pass adds
   before its own checkpoints fire) is a subset of the full report —
   prefix-consistent, like the other engines. *)

module K = Kernels
module Partition = Pg_graph.Partition
module Snapshot = Pg_graph.Snapshot
module Plan = Pg_schema.Plan

let default_domains () = Domain.recommended_domain_count ()

type task = unit -> Violation.t list

let run_tasks ?(gov = Governor.no_run) ~domains (tasks : task list) =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  (* A run stopped before entry (expired deadline, cancellation) spawns
     nothing: the empty prefix is a valid partial result and domain
     startup is not free. *)
  if n = 0 || Governor.stopped gov then []
  else begin
    let k = max 1 (min domains n) in
    let next = Atomic.make 0 in
    let worker () =
      (* The stop flag is shared through the governor run's atomics, so a
         deadline noticed (or a cancellation raised) on one domain stops
         the queue for all of them; tasks already started terminate via
         their own kernel checkpoints. *)
      let rec drain acc =
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Governor.stopped gov then acc
        else drain (List.rev_append (tasks.(i) ()) acc)
      in
      drain []
    in
    if k = 1 then worker ()
    else begin
      let helpers = List.init (k - 1) (fun _ -> Domain.spawn worker) in
      let mine = worker () in
      List.fold_left (fun acc d -> List.rev_append (Domain.join d) acc) mine helpers
    end
  end

let require what v =
  match v with
  | Some d when d < 1 ->
    invalid_arg (Printf.sprintf "Parallel: the %s count must be at least 1 (got %d)" what d)
  | Some d -> Some d
  | None -> None

(* The sharded check over an explicit partition.  One task per shard:
   the owner runs the shard-local pass and fills its private DS7 group
   tables (disjoint slots of [tables]; Domain.join publishes them to the
   main domain).  Then the frontier pass and the DS7 merge run here. *)
let check_partitioned ~domains ~shards (ctx : K.ctx) (rs : K.rule_set) =
  let part = Partition.make ctx.K.snap ~shards in
  let keys = if rs.K.dirs then Plan.keys ctx.K.plan else [||] in
  let nkeys = Array.length keys in
  let tables =
    Array.init shards (fun _ -> Array.init nkeys (fun _ -> Hashtbl.create 64))
  in
  let shard_task s () =
    let sh = Partition.shard part s in
    let acc = K.shard_local ctx part s rs [] in
    Array.iteri
      (fun ki key ->
        K.ds7_groups ctx key tables.(s).(ki) ~lo:sh.Partition.node_lo
          ~hi:sh.Partition.node_hi)
      keys;
    acc
  in
  let locals =
    run_tasks ~gov:ctx.K.gov ~domains (List.init shards shard_task)
  in
  let acc = K.frontier ctx part rs locals in
  let acc =
    if nkeys = 0 then acc
    else begin
      let merge ki acc =
        let merged : (string, int list) Hashtbl.t = Hashtbl.create 256 in
        for s = 0 to shards - 1 do
          Hashtbl.iter
            (fun k group ->
              match Hashtbl.find_opt merged k with
              | Some prev -> Hashtbl.replace merged k (List.rev_append group prev)
              | None -> Hashtbl.add merged k group)
            tables.(s).(ki)
        done;
        K.ds7_emit ctx keys.(ki) merged acc
      in
      let acc = ref acc in
      for ki = 0 to nkeys - 1 do
        acc := merge ki !acc
      done;
      !acc
    end
  in
  Violation.normalize acc

let check ?domains (ctx : K.ctx) (rs : K.rule_set) =
  let domains =
    match require "domain" domains with Some d -> d | None -> default_domains ()
  in
  check_partitioned ~domains ~shards:domains ctx rs

let check_sharded ?domains ?shards (ctx : K.ctx) (rs : K.rule_set) =
  let domains =
    match require "domain" domains with Some d -> d | None -> default_domains ()
  in
  let shards = match require "shard" shards with Some s -> s | None -> domains in
  check_partitioned ~domains ~shards ctx rs
