module Sm = Map.Make (String)
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype

type severity = Compatible | Breaking

type change = {
  severity : severity;
  subject : string;
  description : string;
  rule : Violation.rule option;
}

let pp_change ppf c =
  Format.fprintf ppf "%s: %s — %s%s"
    (match c.severity with Compatible -> "compatible" | Breaking -> "BREAKING")
    c.subject c.description
    (match c.rule with
    | Some r -> Printf.sprintf " (%s could fire)" (Violation.rule_name r)
    | None -> "")

let to_diagnostic c =
  let message =
    c.description
    ^ (match c.rule with
      | Some r -> Printf.sprintf " (%s could fire)" (Violation.rule_name r)
      | None -> "")
  in
  match c.severity with
  | Breaking -> Pg_diag.Diag.error ~code:"DIFF001" ~subject:c.subject message
  | Compatible -> Pg_diag.Diag.info ~code:"DIFF002" ~subject:c.subject message

let breaking changes = List.filter (fun c -> c.severity = Breaking) changes

let compatible subject description = { severity = Compatible; subject; description; rule = None }

let break ?rule subject description = { severity = Breaking; subject; description; rule }

(* keys present in one map but not the other *)
let added_removed old_map new_map =
  let added = Sm.fold (fun k _ acc -> if Sm.mem k old_map then acc else k :: acc) new_map [] in
  let removed = Sm.fold (fun k _ acc -> if Sm.mem k new_map then acc else k :: acc) old_map [] in
  (List.rev added, List.rev removed)

let directive_names dus = List.sort_uniq compare (List.map (fun du -> du.Schema.du_name) dus)

(* The constraint-bearing directives: adding one tightens, removing one
   relaxes. *)
let constraint_rules =
  [
    ("required", Violation.DS5 (* or DS6; DS5 shown for attributes *));
    ("distinct", Violation.DS1);
    ("noLoops", Violation.DS2);
    ("uniqueForTarget", Violation.DS3);
    ("requiredForTarget", Violation.DS4);
  ]

let diff_directives subject old_dus new_dus acc =
  let old_names = directive_names old_dus and new_names = directive_names new_dus in
  let acc =
    List.fold_left
      (fun acc name ->
        if List.mem name old_names then acc
        else
          match List.assoc_opt name constraint_rules with
          | Some rule -> break ~rule subject (Printf.sprintf "adds @%s" name) :: acc
          | None ->
            if name = "key" then
              break ~rule:Violation.DS7 subject "adds @key" :: acc
            else compatible subject (Printf.sprintf "adds @%s (no validation effect)" name) :: acc)
      acc new_names
  in
  List.fold_left
    (fun acc name ->
      if List.mem name new_names then acc
      else if List.mem_assoc name constraint_rules || name = "key" then
        compatible subject (Printf.sprintf "removes @%s (relaxes)" name) :: acc
      else compatible subject (Printf.sprintf "removes @%s (no validation effect)" name) :: acc)
    acc old_names

(* @key occurrences compare by their field lists, not just presence *)
let diff_keys subject old_dus new_dus acc =
  let keys dus =
    List.filter_map Schema.key_fields (Schema.find_directives dus "key")
    |> List.sort_uniq compare
  in
  let old_keys = keys old_dus and new_keys = keys new_dus in
  let acc =
    List.fold_left
      (fun acc k ->
        if List.mem k old_keys then acc
        else
          break ~rule:Violation.DS7 subject
            (Printf.sprintf "adds key [%s]" (String.concat ", " k))
          :: acc)
      acc new_keys
  in
  List.fold_left
    (fun acc k ->
      if List.mem k new_keys then acc
      else
        compatible subject (Printf.sprintf "removes key [%s] (relaxes)" (String.concat ", " k))
        :: acc)
    acc old_keys

(* Is every old-valid value/edge set for [old_t] still valid at [new_t]?
   Conservative widenings only. *)
let field_type_widens ~new_schema old_t new_t =
  if Wrapped.equal old_t new_t then true
  else begin
    let old_base = Wrapped.basetype old_t and new_base = Wrapped.basetype new_t in
    let base_ok =
      String.equal old_base new_base || Subtype.named new_schema old_base new_base
    in
    (* stored values never contain null, so non-null wrappers are inert;
       what matters is list-ness (WS1 shape, WS4 multiplicity): a non-list
       may widen to a list only for relationships (WS4 relaxes; for
       attributes the stored shape must change from atom to array, which
       breaks WS1) — callers pass ~attribute accordingly *)
    base_ok && Wrapped.is_list old_t = Wrapped.is_list new_t
  end

let field_type_widens_relationship ~new_schema old_t new_t =
  let old_base = Wrapped.basetype old_t and new_base = Wrapped.basetype new_t in
  let base_ok = String.equal old_base new_base || Subtype.named new_schema old_base new_base in
  base_ok && ((not (Wrapped.is_list old_t)) || Wrapped.is_list new_t)
(* non-list -> list relaxes WS4; list -> non-list tightens *)

let diff_fields owner old_fields new_fields ~old_schema ~new_schema acc =
  let acc =
    List.fold_left
      (fun acc (f_name, (new_fd : Schema.field)) ->
        let subject = Printf.sprintf "field %s.%s" owner f_name in
        match List.assoc_opt f_name old_fields with
        | None ->
          if Schema.has_directive new_fd.Schema.fd_directives "required" then
            let rule =
              match Schema.classify_field new_schema new_fd with
              | Some Schema.Attribute -> Violation.DS5
              | _ -> Violation.DS6
            in
            break ~rule subject "added with @required" :: acc
          else compatible subject "added (optional)" :: acc
        | Some old_fd ->
          let acc =
            let old_class = Schema.classify_field old_schema old_fd in
            let new_class = Schema.classify_field new_schema new_fd in
            if old_class <> new_class then
              break ~rule:Violation.SS2 subject
                "changes between attribute and relationship"
              :: acc
            else begin
              let widens =
                match new_class with
                | Some Schema.Relationship ->
                  field_type_widens_relationship ~new_schema old_fd.Schema.fd_type
                    new_fd.Schema.fd_type
                | _ -> field_type_widens ~new_schema old_fd.Schema.fd_type new_fd.Schema.fd_type
              in
              if widens then
                if Wrapped.equal old_fd.Schema.fd_type new_fd.Schema.fd_type then acc
                else
                  compatible subject
                    (Printf.sprintf "type %s widens to %s"
                       (Wrapped.to_string old_fd.Schema.fd_type)
                       (Wrapped.to_string new_fd.Schema.fd_type))
                  :: acc
              else
                break
                  ~rule:
                    (match new_class with
                    | Some Schema.Relationship -> Violation.WS3
                    | _ -> Violation.WS1)
                  subject
                  (Printf.sprintf "type changes from %s to %s"
                     (Wrapped.to_string old_fd.Schema.fd_type)
                     (Wrapped.to_string new_fd.Schema.fd_type))
                :: acc
            end
          in
          let acc =
            diff_directives subject old_fd.Schema.fd_directives new_fd.Schema.fd_directives acc
          in
          (* arguments: removing one orphans edge properties (SS3) *)
          let acc =
            List.fold_left
              (fun acc (a_name, (new_arg : Schema.argument)) ->
                let asubject = Printf.sprintf "argument %s.%s(%s:)" owner f_name a_name in
                match List.assoc_opt a_name old_fd.Schema.fd_args with
                | None -> compatible asubject "added" :: acc
                | Some old_arg ->
                  if Wrapped.equal old_arg.Schema.arg_type new_arg.Schema.arg_type then acc
                  else if
                    field_type_widens ~new_schema old_arg.Schema.arg_type
                      new_arg.Schema.arg_type
                  then compatible asubject "type widens" :: acc
                  else break ~rule:Violation.WS2 asubject "type changes" :: acc)
              acc new_fd.Schema.fd_args
          in
          List.fold_left
            (fun acc (a_name, _) ->
              if List.mem_assoc a_name new_fd.Schema.fd_args then acc
              else
                break ~rule:Violation.SS3
                  (Printf.sprintf "argument %s.%s(%s:)" owner f_name a_name)
                  "removed (existing edge properties become unjustified)"
                :: acc)
            acc old_fd.Schema.fd_args)
      acc new_fields
  in
  List.fold_left
    (fun acc (f_name, (old_fd : Schema.field)) ->
      if List.mem_assoc f_name new_fields then acc
      else
        let rule =
          match Schema.classify_field old_schema old_fd with
          | Some Schema.Attribute -> Violation.SS2
          | _ -> Violation.SS4
        in
        break ~rule
          (Printf.sprintf "field %s.%s" owner f_name)
          "removed (existing data becomes unjustified)"
        :: acc)
    acc old_fields

let diff (old_schema : Schema.t) (new_schema : Schema.t) =
  let acc = [] in
  (* object types *)
  let added, removed = added_removed old_schema.Schema.objects new_schema.Schema.objects in
  let acc =
    List.fold_left
      (fun acc name -> compatible (Printf.sprintf "type %s" name) "added" :: acc)
      acc added
  in
  let acc =
    List.fold_left
      (fun acc name ->
        break ~rule:Violation.SS1
          (Printf.sprintf "type %s" name)
          "removed (existing nodes lose their label's justification)"
        :: acc)
      acc removed
  in
  let acc =
    Sm.fold
      (fun name (new_ot : Schema.object_type) acc ->
        match Sm.find_opt name old_schema.Schema.objects with
        | None -> acc
        | Some old_ot ->
          let subject = Printf.sprintf "type %s" name in
          let acc = diff_keys subject old_ot.Schema.ot_directives new_ot.Schema.ot_directives acc in
          diff_fields name old_ot.Schema.ot_fields new_ot.Schema.ot_fields ~old_schema
            ~new_schema acc)
      new_schema.Schema.objects acc
  in
  (* interfaces: their fields carry constraints for implementing types *)
  let acc =
    Sm.fold
      (fun name (new_it : Schema.interface_type) acc ->
        match Sm.find_opt name old_schema.Schema.interfaces with
        | None -> acc
        | Some old_it ->
          diff_fields name old_it.Schema.it_fields new_it.Schema.it_fields ~old_schema
            ~new_schema acc)
      new_schema.Schema.interfaces acc
  in
  (* enums: removing a value strands stored properties (WS1) *)
  let acc =
    Sm.fold
      (fun name (new_et : Schema.enum_type) acc ->
        match Sm.find_opt name old_schema.Schema.enums with
        | None -> compatible (Printf.sprintf "enum %s" name) "added" :: acc
        | Some old_et ->
          let subject = Printf.sprintf "enum %s" name in
          let acc =
            List.fold_left
              (fun acc v ->
                if List.mem v old_et.Schema.et_values then acc
                else compatible subject (Printf.sprintf "adds value %s" v) :: acc)
              acc new_et.Schema.et_values
          in
          List.fold_left
            (fun acc v ->
              if List.mem v new_et.Schema.et_values then acc
              else
                break ~rule:Violation.WS1 subject
                  (Printf.sprintf "removes value %s (stored values become ill-typed)" v)
                :: acc)
            acc old_et.Schema.et_values)
      new_schema.Schema.enums acc
  in
  let acc =
    Sm.fold
      (fun name _ acc ->
        if Sm.mem name new_schema.Schema.enums then acc
        else break ~rule:Violation.WS1 (Printf.sprintf "enum %s" name) "removed" :: acc)
      old_schema.Schema.enums acc
  in
  (* unions: removing a member breaks WS3 on existing edges *)
  let acc =
    Sm.fold
      (fun name (new_ut : Schema.union_type) acc ->
        match Sm.find_opt name old_schema.Schema.unions with
        | None -> compatible (Printf.sprintf "union %s" name) "added" :: acc
        | Some old_ut ->
          let subject = Printf.sprintf "union %s" name in
          let acc =
            List.fold_left
              (fun acc m ->
                if List.mem m old_ut.Schema.ut_members then acc
                else compatible subject (Printf.sprintf "adds member %s (widens)" m) :: acc)
              acc new_ut.Schema.ut_members
          in
          List.fold_left
            (fun acc m ->
              if List.mem m new_ut.Schema.ut_members then acc
              else
                break ~rule:Violation.WS3 subject (Printf.sprintf "removes member %s" m) :: acc)
            acc old_ut.Schema.ut_members)
      new_schema.Schema.unions acc
  in
  (* interface implementations: removing one breaks WS3 where the
     interface is a target type *)
  let acc =
    Sm.fold
      (fun name _ acc ->
        let old_impls = Schema.implementations_of old_schema name in
        let new_impls = Schema.implementations_of new_schema name in
        let subject = Printf.sprintf "interface %s" name in
        let acc =
          List.fold_left
            (fun acc m ->
              if List.mem m old_impls then acc
              else
                compatible subject (Printf.sprintf "%s now implements it (widens)" m) :: acc)
            acc new_impls
        in
        List.fold_left
          (fun acc m ->
            if List.mem m new_impls then acc
            else
              break ~rule:Violation.WS3 subject
                (Printf.sprintf "%s no longer implements it" m)
              :: acc)
          acc old_impls)
      new_schema.Schema.interfaces acc
  in
  (* scalars: removing one strands stored values *)
  let acc =
    Sm.fold
      (fun name _ acc ->
        if Sm.mem name new_schema.Schema.scalars || Sm.mem name new_schema.Schema.enums then acc
        else break ~rule:Violation.WS1 (Printf.sprintf "scalar %s" name) "removed" :: acc)
      old_schema.Schema.scalars acc
  in
  List.sort_uniq compare (List.rev acc)

let is_compatible old_schema new_schema = breaking (diff old_schema new_schema) = []
