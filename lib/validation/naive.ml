module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype
module Values_w = Pg_schema.Values_w

(* Budget-guarded folds.  With an inactive run ([Governor.no_run], the
   default) both are exactly [List.fold_left] — the unbudgeted
   specification path is untouched.  [gfold] wraps the graph-element
   level of each rule: it checkpoints per element, counts the fresh
   violations of each visit against the violation cap, and records
   completed visits through [note] ([Governor.note_node_scans] or
   [note_edge_scans]).  [tfold] only checkpoints — for constraint lists
   and the inner loops of the quadratic pair rules, whose additions are
   already counted by the enclosing [gfold] element. *)
let gfold gov note f acc xs =
  if not (Governor.active gov) then List.fold_left f acc xs
  else begin
    let rec go k acc = function
      | [] ->
        note gov k;
        acc
      | x :: tl ->
        if Governor.tick gov k then begin
          note gov k;
          acc
        end
        else begin
          let acc' = f acc x in
          Governor.note_found gov (Governor.added acc' acc);
          go (k + 1) acc' tl
        end
    in
    go 0 acc xs
  end

let tfold gov f acc xs =
  if not (Governor.active gov) then List.fold_left f acc xs
  else begin
    let rec go k acc = function
      | [] -> acc
      | x :: tl -> if Governor.tick gov k then acc else go (k + 1) (f acc x) tl
    in
    go 0 acc xs
  end

(* WS1: node properties must be of the required type *)
let ws1 ?env gov sch g acc =
  gfold gov Governor.note_node_scans
    (fun acc v ->
      let label = G.node_label g v in
      List.fold_left
        (fun acc (p, value) ->
          match Schema.type_f sch label p with
          | Some t when Rules.is_attribute_type sch t ->
            if Values_w.mem ?env sch t value then acc
            else
              Violation.make Violation.WS1
                (Violation.Node_property (G.node_id v, p))
                (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                   (Wrapped.to_string t))
              :: acc
          | Some _ | None -> acc)
        acc (G.node_props g v))
    acc (G.nodes g)

(* WS2: edge properties must be of the required type *)
let ws2 ?env gov sch g acc =
  gfold gov Governor.note_edge_scans
    (fun acc e ->
      let v1, _ = G.edge_ends g e in
      let src_label = G.node_label g v1 and edge_label = G.edge_label g e in
      List.fold_left
        (fun acc (a, value) ->
          match Schema.arg_type sch src_label edge_label a with
          | Some t ->
            if Values_w.mem ?env sch t value then acc
            else
              Violation.make Violation.WS2
                (Violation.Edge_property (G.edge_id e, a))
                (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                   (Wrapped.to_string t))
              :: acc
          | None -> acc)
        acc (G.edge_props g e))
    acc (G.edges g)

(* WS3: target nodes must be of the required type *)
let ws3 gov sch g acc =
  gfold gov Governor.note_edge_scans
    (fun acc e ->
      let v1, v2 = G.edge_ends g e in
      match Schema.type_f sch (G.node_label g v1) (G.edge_label g e) with
      | Some t ->
        let base = Wrapped.basetype t in
        if Subtype.named sch (G.node_label g v2) base then acc
        else
          Violation.make Violation.WS3
            (Violation.Edge (G.edge_id e))
            (Printf.sprintf "target node n%d has label %S, which is not a subtype of %S"
               (G.node_id v2) (G.node_label g v2) base)
          :: acc
      | None -> acc)
    acc (G.edges g)

(* WS4: non-list fields contain at most one edge *)
let ws4 gov sch g acc =
  let edges = G.edges g in
  gfold gov Governor.note_edge_scans
    (fun acc e1 ->
      tfold gov
        (fun acc e2 ->
          if G.edge_id e1 >= G.edge_id e2 then acc
          else begin
            let v1, _ = G.edge_ends g e1 and v1', _ = G.edge_ends g e2 in
            let f = G.edge_label g e1 in
            if G.node_id v1 = G.node_id v1' && String.equal f (G.edge_label g e2) then
              match Schema.type_f sch (G.node_label g v1) f with
              | Some t when not (Rules.multi_edge t) ->
                Violation.make Violation.WS4
                  (Violation.Edge_pair (G.edge_id e1, G.edge_id e2))
                  (Printf.sprintf
                     "node n%d has two %S edges but the field type %s is not a list type"
                     (G.node_id v1) f (Wrapped.to_string t))
                :: acc
              | Some _ | None -> acc
            else acc
          end)
        acc edges)
    acc edges

let weak ?env ?(gov = Governor.no_run) sch g =
  [] |> ws1 ?env gov sch g |> ws2 ?env gov sch g |> ws3 gov sch g |> ws4 gov sch g
  |> Violation.normalize

(* DS1 (@distinct): edges identified by nodes and label.
   Erratum normalized: the source-node condition is lambda(v1) <= t. *)
let ds1 gov sch g acc =
  let edges = G.edges g in
  tfold gov
    (fun acc (fc : Rules.field_constraint) ->
      gfold gov Governor.note_edge_scans
        (fun acc e1 ->
          tfold gov
            (fun acc e2 ->
              if G.edge_id e1 >= G.edge_id e2 then acc
              else begin
                let v1, v2 = G.edge_ends g e1 and v1', v2' = G.edge_ends g e2 in
                if
                  G.node_id v1 = G.node_id v1'
                  && G.node_id v2 = G.node_id v2'
                  && String.equal (G.edge_label g e1) fc.Rules.field
                  && String.equal (G.edge_label g e2) fc.Rules.field
                  && Subtype.named sch (G.node_label g v1) fc.Rules.owner
                then
                  Violation.make Violation.DS1
                    (Violation.Edge_pair (G.edge_id e1, G.edge_id e2))
                    (Printf.sprintf
                       "parallel %S edges between n%d and n%d violate @distinct on %s.%s"
                       fc.Rules.field (G.node_id v1) (G.node_id v2) fc.Rules.owner
                       fc.Rules.field)
                  :: acc
                else acc
              end)
            acc edges)
        acc edges)
    acc
    (Rules.constrained_fields sch ~directive:"distinct")

(* DS2 (@noLoops) *)
let ds2 gov sch g acc =
  let edges = G.edges g in
  tfold gov
    (fun acc (fc : Rules.field_constraint) ->
      gfold gov Governor.note_edge_scans
        (fun acc e ->
          let v1, v2 = G.edge_ends g e in
          if
            G.node_id v1 = G.node_id v2
            && String.equal (G.edge_label g e) fc.Rules.field
            && Subtype.named sch (G.node_label g v1) fc.Rules.owner
          then
            Violation.make Violation.DS2
              (Violation.Edge (G.edge_id e))
              (Printf.sprintf "loop on node n%d violates @noLoops on %s.%s" (G.node_id v1)
                 fc.Rules.owner fc.Rules.field)
            :: acc
          else acc)
        acc edges)
    acc
    (Rules.constrained_fields sch ~directive:"noLoops")

(* DS3 (@uniqueForTarget).  Erratum normalized: both source nodes must be
   of (a subtype of) the declaring type t. *)
let ds3 gov sch g acc =
  let edges = G.edges g in
  tfold gov
    (fun acc (fc : Rules.field_constraint) ->
      gfold gov Governor.note_edge_scans
        (fun acc e1 ->
          tfold gov
            (fun acc e2 ->
              if G.edge_id e1 >= G.edge_id e2 then acc
              else begin
                let v1, v3 = G.edge_ends g e1 and v2, v3' = G.edge_ends g e2 in
                if
                  G.node_id v3 = G.node_id v3'
                  && String.equal (G.edge_label g e1) fc.Rules.field
                  && String.equal (G.edge_label g e2) fc.Rules.field
                  && Subtype.named sch (G.node_label g v1) fc.Rules.owner
                  && Subtype.named sch (G.node_label g v2) fc.Rules.owner
                then
                  Violation.make Violation.DS3
                    (Violation.Edge_pair (G.edge_id e1, G.edge_id e2))
                    (Printf.sprintf
                       "node n%d has two incoming %S edges, violating @uniqueForTarget on %s.%s"
                       (G.node_id v3) fc.Rules.field fc.Rules.owner fc.Rules.field)
                  :: acc
                else acc
              end)
            acc edges)
        acc edges)
    acc
    (Rules.constrained_fields sch ~directive:"uniqueForTarget")

(* DS4 (@requiredForTarget).  Erratum normalized: the target-node condition
   compares labels with basetype(typeS(t, f)). *)
let ds4 gov sch g acc =
  let nodes = G.nodes g and edges = G.edges g in
  tfold gov
    (fun acc (fc : Rules.field_constraint) ->
      let target_base = Wrapped.basetype fc.Rules.fd.Schema.fd_type in
      gfold gov Governor.note_node_scans
        (fun acc v2 ->
          if Subtype.named sch (G.node_label g v2) target_base then begin
            let has_incoming =
              List.exists
                (fun e ->
                  let v1, v2' = G.edge_ends g e in
                  G.node_id v2' = G.node_id v2
                  && String.equal (G.edge_label g e) fc.Rules.field
                  && Subtype.named sch (G.node_label g v1) fc.Rules.owner)
                edges
            in
            if has_incoming then acc
            else
              Violation.make Violation.DS4
                (Violation.Node (G.node_id v2))
                (Printf.sprintf
                   "node n%d (%S) has no incoming %S edge required by @requiredForTarget on \
                    %s.%s"
                   (G.node_id v2) (G.node_label g v2) fc.Rules.field fc.Rules.owner
                   fc.Rules.field)
              :: acc
          end
          else acc)
        acc nodes)
    acc
    (Rules.constrained_fields sch ~directive:"requiredForTarget")

(* DS5/DS6 (@required): property required for attribute definitions, edge
   required for relationship definitions. *)
let ds56 gov sch g acc =
  let nodes = G.nodes g and edges = G.edges g in
  tfold gov
    (fun acc (fc : Rules.field_constraint) ->
      let attr = Rules.is_attribute_type sch fc.Rules.fd.Schema.fd_type in
      gfold gov Governor.note_node_scans
        (fun acc v ->
          if not (Subtype.named sch (G.node_label g v) fc.Rules.owner) then acc
          else if attr then begin
            match G.node_prop g v fc.Rules.field with
            | None ->
              Violation.make Violation.DS5
                (Violation.Node_property (G.node_id v, fc.Rules.field))
                (Printf.sprintf "node n%d lacks the property %S required on %s.%s"
                   (G.node_id v) fc.Rules.field fc.Rules.owner fc.Rules.field)
              :: acc
            | Some value ->
              if Wrapped.is_list fc.Rules.fd.Schema.fd_type then begin
                match value with
                | Value.List (_ :: _) -> acc
                | _ (* empty list, or a non-list value: WS1 reports the type error *) ->
                  Violation.make Violation.DS5
                    (Violation.Node_property (G.node_id v, fc.Rules.field))
                    (Printf.sprintf
                       "property %S of node n%d must be a nonempty list (required list \
                        attribute)"
                       fc.Rules.field (G.node_id v))
                  :: acc
              end
              else acc
          end
          else begin
            let has_edge =
              List.exists
                (fun e ->
                  let v1, _ = G.edge_ends g e in
                  G.node_id v1 = G.node_id v
                  && String.equal (G.edge_label g e) fc.Rules.field)
                edges
            in
            if has_edge then acc
            else
              Violation.make Violation.DS6
                (Violation.Node (G.node_id v))
                (Printf.sprintf "node n%d lacks the outgoing %S edge required on %s.%s"
                   (G.node_id v) fc.Rules.field fc.Rules.owner fc.Rules.field)
              :: acc
          end)
        acc nodes)
    acc
    (Rules.constrained_fields sch ~directive:"required")

(* DS7 (@key) *)
let ds7 gov sch g acc =
  let all_nodes = G.nodes g in
  tfold gov
    (fun acc (owner, key_fields) ->
      (* only key fields with attribute types participate (Definition 5.2) *)
      let attribute_fields =
        List.filter
          (fun f ->
            match Schema.type_f sch owner f with
            | Some t -> Rules.is_attribute_type sch t
            | None -> false)
          key_fields
      in
      let nodes =
        List.filter (fun v -> Subtype.named sch (G.node_label g v) owner) all_nodes
      in
      gfold gov Governor.note_node_scans
        (fun acc v1 ->
          tfold gov
            (fun acc v2 ->
              if G.node_id v1 >= G.node_id v2 then acc
              else begin
                let agree f =
                  match G.node_prop g v1 f, G.node_prop g v2 f with
                  | None, None -> true
                  | Some x1, Some x2 -> Value.equal x1 x2
                  | Some _, None | None, Some _ -> false
                in
                if List.for_all agree attribute_fields then
                  Violation.make Violation.DS7
                    (Violation.Node_pair (G.node_id v1, G.node_id v2))
                    (Printf.sprintf
                       "distinct nodes n%d and n%d of type %s agree on key [%s]"
                       (G.node_id v1) (G.node_id v2) owner
                       (String.concat ", " key_fields))
                  :: acc
                else acc
              end)
            acc nodes)
        acc nodes)
    acc (Rules.key_constraints sch)

let directives ?env ?(gov = Governor.no_run) sch g =
  ignore env;
  []
  |> ds1 gov sch g
  |> ds2 gov sch g
  |> ds3 gov sch g
  |> ds4 gov sch g
  |> ds56 gov sch g
  |> ds7 gov sch g
  |> Violation.normalize

(* SS1-SS4 *)
let strong_extra ?(gov = Governor.no_run) sch g =
  let acc = [] in
  let acc =
    gfold gov Governor.note_node_scans
      (fun acc v ->
        let label = G.node_label g v in
        if Schema.type_kind sch label = Some Schema.Object then acc
        else
          Violation.make Violation.SS1
            (Violation.Node (G.node_id v))
            (Printf.sprintf "label %S is not an object type of the schema" label)
          :: acc)
      acc (G.nodes g)
  in
  let acc =
    gfold gov Governor.note_node_scans
      (fun acc v ->
        let label = G.node_label g v in
        if Schema.is_open sch label then acc
        else
        List.fold_left
          (fun acc (p, _) ->
            match Schema.type_f sch label p with
            | Some t when Rules.is_attribute_type sch t -> acc
            | Some _ ->
              Violation.make Violation.SS2
                (Violation.Node_property (G.node_id v, p))
                (Printf.sprintf "field %s.%s is a relationship definition, not an attribute"
                   label p)
              :: acc
            | None ->
              Violation.make Violation.SS2
                (Violation.Node_property (G.node_id v, p))
                (Printf.sprintf "no field %S is declared for type %S" p label)
              :: acc)
          acc (G.node_props g v))
      acc (G.nodes g)
  in
  let acc =
    gfold gov Governor.note_edge_scans
      (fun acc e ->
        let v1, _ = G.edge_ends g e in
        let src_label = G.node_label g v1 and edge_label = G.edge_label g e in
        List.fold_left
          (fun acc (a, _) ->
            match Schema.arg_type sch src_label edge_label a with
            | Some _ -> acc
            | None ->
              Violation.make Violation.SS3
                (Violation.Edge_property (G.edge_id e, a))
                (Printf.sprintf "no argument %S is declared for field %s.%s" a src_label
                   edge_label)
              :: acc)
          acc (G.edge_props g e))
      acc (G.edges g)
  in
  let acc =
    gfold gov Governor.note_edge_scans
      (fun acc e ->
        let v1, _ = G.edge_ends g e in
        let src_label = G.node_label g v1 and edge_label = G.edge_label g e in
        match Schema.type_f sch src_label edge_label with
        | Some t when not (Rules.is_attribute_type sch t) -> acc
        | Some _ ->
          Violation.make Violation.SS4
            (Violation.Edge (G.edge_id e))
            (Printf.sprintf "field %s.%s is an attribute definition and justifies no edges"
               src_label edge_label)
          :: acc
        | None ->
          Violation.make Violation.SS4
            (Violation.Edge (G.edge_id e))
            (Printf.sprintf "no field %S is declared for type %S" edge_label src_label)
          :: acc)
      acc (G.edges g)
  in
  Violation.normalize acc
