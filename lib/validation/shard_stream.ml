(* The streaming shard pipeline: validate a mapped snapshot one shard at
   a time, so the resident property set is bounded by the largest shard
   plus the frontier — never the whole graph.

   The int columns of a {!Snapshot_io.mapped} snapshot are mmapped up
   front (the OS pages them on demand), but its property slots start
   empty.  For each shard in turn the pipeline

   - {e builds} it: reads the shard's node property vectors (one
     contiguous range through the offset index) and its owned edges'
     vectors (coalesced range reads);
   - {e validates} it: the shard-local kernel pass plus the per-shard
     DS7 grouping, exactly as the in-memory sharded engine runs them;
   - {e drops} it: resets the node slots and the intra-edge slots to
     empty before the next shard is read.  Cross-shard edges' properties
     stay resident — the frontier pass still needs them — so the only
     state carried across shards is the frontier and the DS7 group
     tables.

   After the last shard the frontier pass and the global DS7 merge run
   over what was retained, and the union normalizes to the same
   byte-identical report as every other engine.  A governed stop between
   shards skips the remaining loads; the partial report stays a subset
   of the full one (unread properties can only remove findings, and the
   kernels treat an empty slot as a node or edge without properties). *)

module K = Kernels
module Partition = Pg_graph.Partition
module Snapshot = Pg_graph.Snapshot
module Sio = Pg_graph.Snapshot_io
module Plan = Pg_schema.Plan

let ( let* ) = Result.bind

let check ?env ?(gov = Governor.no_run) ~shards plan mapped (rs : K.rule_set) =
  let snap = Sio.mapped_snapshot mapped in
  let ctx = K.ctx_of_snap ?env ~gov plan snap in
  let part = Partition.make snap ~shards in
  let keys = if rs.K.dirs then Plan.keys plan else [||] in
  let tables = Array.map (fun _ -> Hashtbl.create 256) keys in
  let need_edge_props = rs.K.weak || rs.K.strong in
  let tgt = snap.Snapshot.edge_tgt in
  let rec loop s acc =
    if s >= shards || Governor.stopped gov then Ok acc
    else begin
      let sh = Partition.shard part s in
      let lo = sh.Partition.node_lo and hi = sh.Partition.node_hi in
      let owned = Partition.owned_edges part s in
      let* () = Sio.load_node_props mapped ~lo ~hi in
      let* () =
        if need_edge_props then Sio.load_edge_props mapped owned else Ok ()
      in
      let acc = K.shard_local ctx part s rs acc in
      Array.iteri (fun ki key -> K.ds7_groups ctx key tables.(ki) ~lo ~hi) keys;
      Sio.drop_node_props mapped ~lo ~hi;
      if need_edge_props then begin
        let intra =
          Array.to_list owned
          |> List.filter (fun e ->
                 let t = tgt.{e} in
                 t >= lo && t < hi)
          |> Array.of_list
        in
        Sio.drop_edge_props mapped intra
      end;
      loop (s + 1) acc
    end
  in
  let* locals = loop 0 [] in
  let acc = K.frontier ctx part rs locals in
  let acc = ref acc in
  Array.iteri (fun ki key -> acc := K.ds7_emit ctx key tables.(ki) !acc) keys;
  Ok (Violation.normalize !acc)
