(** Incremental validation: maintain the strong-satisfaction violation set
    of Section 5 across graph updates without revalidating from scratch.

    A database enforcing an SDL schema validates on every write; full
    revalidation is linear (or worse) in the graph, while the region a
    single update can affect is small.  This module tracks, per update,
    the set of elements whose violations can change — the updated element,
    its endpoints, and for relabelings the incident edges and their
    endpoints — removes the old violations involving that region and
    recomputes the fifteen rules restricted to it.  The recomputation
    touches the region's incident edges only, except for key constraints
    (DS7), where a changed node is compared against the other nodes of the
    keyed type (a per-type scan; an auxiliary key index would make it
    constant, at the cost of index maintenance).

    Locality argument per operation (where [v1 → v2] are edge endpoints):
    adding/removing an edge can only change violations that mention the
    edge or one of its endpoints (DS4/DS6 subjects are the endpoints; the
    pair rules WS4/DS1/DS3 always mention the edge); property updates only
    affect the carrying element and — for keys — pairs that include it;
    relabeling a node additionally affects its incident edges (their
    justification and target typing) and their endpoints.  Extensional
    equality with the batch engines after arbitrary update sequences is
    property-tested in [test/test_incremental.ml].

    The structure is persistent, like the graph itself. *)

type t

val create :
  ?env:Pg_schema.Values_w.env ->
  ?gov:Governor.t ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  t
(** Validates the initial graph once (indexed engine).  [gov] (default
    {!Governor.unlimited}) bounds that initial batch validation; if it
    stops early, {!complete} is [false] and the maintained set is a
    subset of the true violation set — updates keep it locally exact
    for the touched regions, but unscanned violations stay unknown. *)

val graph : t -> Pg_graph.Property_graph.t

val schema : t -> Pg_schema.Schema.t

val violations : t -> Violation.t list
(** Normalized, equal to a fresh strong validation of {!graph}. *)

val is_valid : t -> bool
(** No known violations {e and} the initial validation was complete. *)

val complete : t -> bool
(** [false] iff the initial batch validation was cut short by its
    budget, making {!violations} a lower bound. *)

(** {1 Updates}

    Each operation returns the updated state; they mirror
    {!Pg_graph.Property_graph}. *)

val add_node :
  t -> label:string -> ?props:(string * Pg_graph.Value.t) list -> unit ->
  t * Pg_graph.Property_graph.node

val add_edge :
  t ->
  label:string ->
  ?props:(string * Pg_graph.Value.t) list ->
  Pg_graph.Property_graph.node ->
  Pg_graph.Property_graph.node ->
  t * Pg_graph.Property_graph.edge

val remove_edge : t -> Pg_graph.Property_graph.edge -> t
val remove_node : t -> Pg_graph.Property_graph.node -> t
val set_node_prop : t -> Pg_graph.Property_graph.node -> string -> Pg_graph.Value.t -> t
val remove_node_prop : t -> Pg_graph.Property_graph.node -> string -> t
val set_edge_prop : t -> Pg_graph.Property_graph.edge -> string -> Pg_graph.Value.t -> t
val remove_edge_prop : t -> Pg_graph.Property_graph.edge -> string -> t
val relabel_node : t -> Pg_graph.Property_graph.node -> string -> t
