(* Pure per-rule validation kernels.

   Every rule of Section 5 (WS1-WS4, DS1-DS7, SS1-SS4) is implemented as a
   pure function over a *slice* of an immutable snapshot of the graph plus
   shared read-only indexes.  A kernel touches nothing but its slice, its
   accumulator, and (for the subtype-testing rules) a caller-supplied
   memoization cache, so the same kernels drive both the sequential
   {!Indexed} engine (one slice covering everything) and the multicore
   {!Parallel} engine (one slice per shard, one cache per domain).

   The slice universe differs per rule:
   - node rules (WS1, DS4, DS5/DS6, SS1, SS2) slice [ctx.nodes];
   - edge rules (WS2, WS3, SS3, SS4) slice [ctx.edges];
   - pair rules slice the *group arrays* of the edge indexes: WS4 the
     (source, label) groups, DS3 the (target, label) groups, DS1 and DS2
     the (source, target, label) groups — a loop is exactly a group whose
     source equals its target, so no kernel ever rescans all edges;
   - DS7 is one kernel invocation per @key constraint (grouping nodes by
     key vector is a global operation; constraints are few and
     independent, so they parallelize across, not within).

   All state shared between shards (the graph, the schema, the indexes,
   the snapshot arrays) is immutable or written strictly before the
   kernels run, which is what makes the parallel engine safe without
   locks. *)

module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Subtype = Pg_schema.Subtype
module Values_w = Pg_schema.Values_w

(* Cached named-subtype test: schemas are small, graphs are big, so the
   (label, type) pairs actually queried are few and worth memoizing.  A
   cache is private to one caller (one domain, in the parallel engine) —
   kernels only ever read the schema through it. *)
type subtype_cache = (string * string, bool) Hashtbl.t

let make_cache () : subtype_cache = Hashtbl.create 64

let is_sub cache sch label ty =
  match Hashtbl.find_opt cache (label, ty) with
  | Some b -> b
  | None ->
    let b = Subtype.named sch label ty in
    Hashtbl.add cache (label, ty) b;
    b

(* Edge indexes, built in one pass, then frozen.  The hash tables answer
   point lookups (DS4, DS5/DS6); the group arrays give the pair rules a
   sliceable universe. *)
type indexes = {
  out_by : (int * string, G.edge list) Hashtbl.t;  (* (source id, label) -> edges *)
  in_by : (int * string, G.edge list) Hashtbl.t;  (* (target id, label) -> edges *)
  parallel : (int * int * string, G.edge list) Hashtbl.t;
      (* (source id, target id, label) -> edges *)
  out_groups : ((int * string) * G.edge list) array;
  in_groups : ((int * string) * G.edge list) array;
  par_groups : ((int * int * string) * G.edge list) array;
}

let push tbl key e =
  match Hashtbl.find_opt tbl key with
  | Some l -> Hashtbl.replace tbl key (e :: l)
  | None -> Hashtbl.add tbl key [ e ]

let groups_of_table dummy tbl =
  let n = Hashtbl.length tbl in
  if n = 0 then [||]
  else begin
    let arr = Array.make n dummy in
    let i = ref 0 in
    Hashtbl.iter
      (fun key group ->
        arr.(!i) <- (key, group);
        incr i)
      tbl;
    arr
  end

let build_indexes g edges =
  let out_by = Hashtbl.create 256
  and in_by = Hashtbl.create 256
  and parallel = Hashtbl.create 256 in
  Array.iter
    (fun e ->
      let v1, v2 = G.edge_ends g e in
      let f = G.edge_label g e in
      push out_by (G.node_id v1, f) e;
      push in_by (G.node_id v2, f) e;
      push parallel (G.node_id v1, G.node_id v2, f) e)
    edges;
  {
    out_by;
    in_by;
    parallel;
    out_groups = groups_of_table ((0, "") , []) out_by;
    in_groups = groups_of_table ((0, ""), []) in_by;
    par_groups = groups_of_table ((0, 0, ""), []) parallel;
  }

(* The frozen validation context: one snapshot of the graph plus the
   schema-derived constraint lists.  Built once per check, read by every
   shard. *)
type ctx = {
  sch : Schema.t;
  g : G.t;
  env : Values_w.env option;
  nodes : G.node array;
  edges : G.edge array;
  idx : indexes;
  distinct : Rules.field_constraint list;
  no_loops : Rules.field_constraint list;
  unique_for_target : Rules.field_constraint list;
  required_for_target : Rules.field_constraint list;
  required : Rules.field_constraint list;
  keys : (string * string list) list;
}

let make_ctx ?env sch g =
  let nodes, edges = G.to_arrays g in
  {
    sch;
    g;
    env;
    nodes;
    edges;
    idx = build_indexes g edges;
    distinct = Rules.constrained_fields sch ~directive:"distinct";
    no_loops = Rules.constrained_fields sch ~directive:"noLoops";
    unique_for_target = Rules.constrained_fields sch ~directive:"uniqueForTarget";
    required_for_target = Rules.constrained_fields sch ~directive:"requiredForTarget";
    required = Rules.constrained_fields sch ~directive:"required";
    keys = Rules.key_constraints sch;
  }

type 'a kernel = ctx -> lo:int -> hi:int -> Violation.t list -> Violation.t list

type 'a cached_kernel =
  ctx -> subtype_cache -> lo:int -> hi:int -> Violation.t list -> Violation.t list

(* Fold [f] over the slice [lo, hi) of [arr]. *)
let fold_slice arr ~lo ~hi f acc =
  let acc = ref acc in
  for i = lo to hi - 1 do
    acc := f arr.(i) !acc
  done;
  !acc

(* All unordered pairs of a group, as violations. *)
let pairwise group mk acc =
  let rec go acc = function
    | [] -> acc
    | e1 :: rest -> go (List.fold_left (fun acc e2 -> mk e1 e2 :: acc) acc rest) rest
  in
  go acc group

let node_of_id_exn g id =
  match G.node_of_id g id with Some v -> v | None -> assert false

(* ------------------------------------------------------------------ *)
(* Weak satisfaction: WS1-WS4 (Definition 5.1)                          *)

(* WS1: node properties must be of the required type *)
let ws1 ctx ~lo ~hi acc =
  fold_slice ctx.nodes ~lo ~hi
    (fun v acc ->
      let label = G.node_label ctx.g v in
      List.fold_left
        (fun acc (p, value) ->
          match Schema.type_f ctx.sch label p with
          | Some t when Rules.is_attribute_type ctx.sch t ->
            if Values_w.mem ?env:ctx.env ctx.sch t value then acc
            else
              Violation.make Violation.WS1
                (Violation.Node_property (G.node_id v, p))
                (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                   (Wrapped.to_string t))
              :: acc
          | Some _ | None -> acc)
        acc (G.node_props ctx.g v))
    acc

(* WS2: edge properties must be of the required type *)
let ws2 ctx ~lo ~hi acc =
  fold_slice ctx.edges ~lo ~hi
    (fun e acc ->
      let v1, _ = G.edge_ends ctx.g e in
      let src_label = G.node_label ctx.g v1 and edge_label = G.edge_label ctx.g e in
      List.fold_left
        (fun acc (a, value) ->
          match Schema.arg_type ctx.sch src_label edge_label a with
          | Some t ->
            if Values_w.mem ?env:ctx.env ctx.sch t value then acc
            else
              Violation.make Violation.WS2
                (Violation.Edge_property (G.edge_id e, a))
                (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                   (Wrapped.to_string t))
              :: acc
          | None -> acc)
        acc (G.edge_props ctx.g e))
    acc

(* WS3: target nodes must be of the required type *)
let ws3 ctx cache ~lo ~hi acc =
  fold_slice ctx.edges ~lo ~hi
    (fun e acc ->
      let v1, v2 = G.edge_ends ctx.g e in
      match Schema.type_f ctx.sch (G.node_label ctx.g v1) (G.edge_label ctx.g e) with
      | Some t ->
        let base = Wrapped.basetype t in
        if is_sub cache ctx.sch (G.node_label ctx.g v2) base then acc
        else
          Violation.make Violation.WS3
            (Violation.Edge (G.edge_id e))
            (Printf.sprintf "target node n%d has label %S, which is not a subtype of %S"
               (G.node_id v2) (G.node_label ctx.g v2) base)
          :: acc
      | None -> acc)
    acc

(* WS4 over the (source, label) groups *)
let ws4 ctx ~lo ~hi acc =
  fold_slice ctx.idx.out_groups ~lo ~hi
    (fun ((src_id, f), group) acc ->
      match group with
      | [] | [ _ ] -> acc
      | _ -> (
        let src_label = G.node_label ctx.g (node_of_id_exn ctx.g src_id) in
        match Schema.type_f ctx.sch src_label f with
        | Some t when not (Rules.multi_edge t) ->
          pairwise group
            (fun e1 e2 ->
              Violation.make Violation.WS4
                (Violation.Edge_pair (G.edge_id e1, G.edge_id e2))
                (Printf.sprintf
                   "node n%d has two %S edges but the field type %s is not a list type"
                   src_id f (Wrapped.to_string t)))
            acc
        | Some _ | None -> acc))
    acc

(* ------------------------------------------------------------------ *)
(* Directive satisfaction: DS1-DS7 (Definition 5.2)                     *)

(* DS1: parallel-edge groups *)
let ds1 ctx cache ~lo ~hi acc =
  fold_slice ctx.idx.par_groups ~lo ~hi
    (fun ((src_id, _tgt_id, f), group) acc ->
      match group with
      | [] | [ _ ] -> acc
      | _ ->
        let src_label = G.node_label ctx.g (node_of_id_exn ctx.g src_id) in
        List.fold_left
          (fun acc (fc : Rules.field_constraint) ->
            if
              String.equal fc.Rules.field f
              && is_sub cache ctx.sch src_label fc.Rules.owner
            then
              pairwise group
                (fun e1 e2 ->
                  Violation.make Violation.DS1
                    (Violation.Edge_pair (G.edge_id e1, G.edge_id e2))
                    (Printf.sprintf
                       "parallel %S edges violate @distinct on %s.%s" f fc.Rules.owner
                       fc.Rules.field))
                acc
            else acc)
          acc ctx.distinct)
    acc

(* DS2: loops are exactly the (v, v, f) groups of the parallel index *)
let ds2 ctx cache ~lo ~hi acc =
  fold_slice ctx.idx.par_groups ~lo ~hi
    (fun ((src_id, tgt_id, f), group) acc ->
      if src_id <> tgt_id then acc
      else begin
        let label = G.node_label ctx.g (node_of_id_exn ctx.g src_id) in
        List.fold_left
          (fun acc (fc : Rules.field_constraint) ->
            if String.equal fc.Rules.field f && is_sub cache ctx.sch label fc.Rules.owner
            then
              List.fold_left
                (fun acc e ->
                  Violation.make Violation.DS2
                    (Violation.Edge (G.edge_id e))
                    (Printf.sprintf "loop on node n%d violates @noLoops on %s.%s" src_id
                       fc.Rules.owner fc.Rules.field)
                  :: acc)
                acc group
            else acc)
          acc ctx.no_loops
      end)
    acc

(* DS3: incoming groups, filtered to sources of the declaring type *)
let ds3 ctx cache ~lo ~hi acc =
  fold_slice ctx.idx.in_groups ~lo ~hi
    (fun ((tgt_id, f), group) acc ->
      match group with
      | [] | [ _ ] -> acc
      | _ ->
        List.fold_left
          (fun acc (fc : Rules.field_constraint) ->
            if not (String.equal fc.Rules.field f) then acc
            else begin
              let qualified =
                List.filter
                  (fun e ->
                    let v1, _ = G.edge_ends ctx.g e in
                    is_sub cache ctx.sch (G.node_label ctx.g v1) fc.Rules.owner)
                  group
              in
              pairwise qualified
                (fun e1 e2 ->
                  Violation.make Violation.DS3
                    (Violation.Edge_pair (G.edge_id e1, G.edge_id e2))
                    (Printf.sprintf
                       "node n%d has two incoming %S edges, violating @uniqueForTarget on \
                        %s.%s"
                       tgt_id f fc.Rules.owner fc.Rules.field))
                acc
            end)
          acc ctx.unique_for_target)
    acc

(* DS4: nodes of the target type need a qualified incoming edge *)
let ds4 ctx cache ~lo ~hi acc =
  fold_slice ctx.nodes ~lo ~hi
    (fun v2 acc ->
      let label = G.node_label ctx.g v2 in
      List.fold_left
        (fun acc (fc : Rules.field_constraint) ->
          let target_base = Wrapped.basetype fc.Rules.fd.Schema.fd_type in
          if not (is_sub cache ctx.sch label target_base) then acc
          else begin
            let incoming =
              Option.value ~default:[]
                (Hashtbl.find_opt ctx.idx.in_by (G.node_id v2, fc.Rules.field))
            in
            let ok =
              List.exists
                (fun e ->
                  let v1, _ = G.edge_ends ctx.g e in
                  is_sub cache ctx.sch (G.node_label ctx.g v1) fc.Rules.owner)
                incoming
            in
            if ok then acc
            else
              Violation.make Violation.DS4
                (Violation.Node (G.node_id v2))
                (Printf.sprintf
                   "node n%d (%S) has no incoming %S edge required by @requiredForTarget on \
                    %s.%s"
                   (G.node_id v2) label fc.Rules.field fc.Rules.owner fc.Rules.field)
              :: acc
          end)
        acc ctx.required_for_target)
    acc

(* DS5/DS6 *)
let ds56 ctx cache ~lo ~hi acc =
  fold_slice ctx.nodes ~lo ~hi
    (fun v acc ->
      let label = G.node_label ctx.g v in
      List.fold_left
        (fun acc (fc : Rules.field_constraint) ->
          if not (is_sub cache ctx.sch label fc.Rules.owner) then acc
          else if Rules.is_attribute_type ctx.sch fc.Rules.fd.Schema.fd_type then begin
            match G.node_prop ctx.g v fc.Rules.field with
            | None ->
              Violation.make Violation.DS5
                (Violation.Node_property (G.node_id v, fc.Rules.field))
                (Printf.sprintf "node n%d lacks the property %S required on %s.%s"
                   (G.node_id v) fc.Rules.field fc.Rules.owner fc.Rules.field)
              :: acc
            | Some value ->
              if Wrapped.is_list fc.Rules.fd.Schema.fd_type then begin
                match value with
                | Value.List (_ :: _) -> acc
                | _ ->
                  Violation.make Violation.DS5
                    (Violation.Node_property (G.node_id v, fc.Rules.field))
                    (Printf.sprintf
                       "property %S of node n%d must be a nonempty list (required list \
                        attribute)"
                       fc.Rules.field (G.node_id v))
                  :: acc
              end
              else acc
          end
          else begin
            match Hashtbl.find_opt ctx.idx.out_by (G.node_id v, fc.Rules.field) with
            | Some (_ :: _) -> acc
            | Some [] | None ->
              Violation.make Violation.DS6
                (Violation.Node (G.node_id v))
                (Printf.sprintf "node n%d lacks the outgoing %S edge required on %s.%s"
                   (G.node_id v) fc.Rules.field fc.Rules.owner fc.Rules.field)
              :: acc
          end)
        acc ctx.required)
    acc

(* A collision-free serialization of property values, compatible with
   Value.equal: tagged and length-prefixed (Value.to_string would conflate
   e.g. Id "x" and String "x"), with floats canonicalized by bit pattern
   (+0.0 = -0.0, one representative for nan). *)
let rec add_value_key buf (v : Value.t) =
  match v with
  | Value.Int i ->
    Buffer.add_char buf 'i';
    Buffer.add_string buf (string_of_int i)
  | Value.Float f ->
    Buffer.add_char buf 'f';
    if Float.is_nan f then Buffer.add_string buf "nan"
    else Buffer.add_string buf (Int64.to_string (Int64.bits_of_float (f +. 0.0)))
  | Value.String s ->
    Buffer.add_char buf 's';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  | Value.Bool b ->
    Buffer.add_char buf 'b';
    Buffer.add_char buf (if b then '1' else '0')
  | Value.Id s ->
    Buffer.add_char buf 'd';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  | Value.Enum s ->
    Buffer.add_char buf 'e';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  | Value.List vs ->
    Buffer.add_char buf 'l';
    Buffer.add_string buf (string_of_int (List.length vs));
    Buffer.add_char buf ':';
    List.iter (add_value_key buf) vs

(* DS7: one @key constraint at a time — group all nodes by key vector.
   Grouping is global (any two nodes of the keyed type may collide), so
   DS7 parallelizes across constraints, not across node shards. *)
let ds7 ctx cache (owner, key_fields) acc =
  let attribute_fields =
    List.filter
      (fun f ->
        match Schema.type_f ctx.sch owner f with
        | Some t -> Rules.is_attribute_type ctx.sch t
        | None -> false)
      key_fields
  in
  let groups : (string, G.node list) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun v ->
      if is_sub cache ctx.sch (G.node_label ctx.g v) owner then begin
        let buf = Buffer.create 32 in
        List.iter
          (fun f ->
            (match G.node_prop ctx.g v f with
            | None -> Buffer.add_char buf 'A' (* absent *)
            | Some value ->
              Buffer.add_char buf 'P';
              add_value_key buf value);
            Buffer.add_char buf '\x00')
          attribute_fields;
        push groups (Buffer.contents buf) v
      end)
    ctx.nodes;
  Hashtbl.fold
    (fun _key group acc ->
      match group with
      | [] | [ _ ] -> acc
      | _ ->
        pairwise group
          (fun v1 v2 ->
            Violation.make Violation.DS7
              (Violation.Node_pair (G.node_id v1, G.node_id v2))
              (Printf.sprintf "distinct nodes n%d and n%d of type %s agree on key [%s]"
                 (G.node_id v1) (G.node_id v2) owner
                 (String.concat ", " key_fields)))
          acc)
    groups acc

(* ------------------------------------------------------------------ *)
(* Strong satisfaction extras: SS1-SS4 (Definition 5.3)                 *)

(* SS1: all nodes are justified *)
let ss1 ctx ~lo ~hi acc =
  fold_slice ctx.nodes ~lo ~hi
    (fun v acc ->
      let label = G.node_label ctx.g v in
      if Schema.type_kind ctx.sch label = Some Schema.Object then acc
      else
        Violation.make Violation.SS1
          (Violation.Node (G.node_id v))
          (Printf.sprintf "label %S is not an object type of the schema" label)
        :: acc)
    acc

(* SS2: all node properties are justified *)
let ss2 ctx ~lo ~hi acc =
  fold_slice ctx.nodes ~lo ~hi
    (fun v acc ->
      let label = G.node_label ctx.g v in
      List.fold_left
        (fun acc (p, _) ->
          match Schema.type_f ctx.sch label p with
          | Some t when Rules.is_attribute_type ctx.sch t -> acc
          | Some _ ->
            Violation.make Violation.SS2
              (Violation.Node_property (G.node_id v, p))
              (Printf.sprintf "field %s.%s is a relationship definition, not an attribute"
                 label p)
            :: acc
          | None ->
            Violation.make Violation.SS2
              (Violation.Node_property (G.node_id v, p))
              (Printf.sprintf "no field %S is declared for type %S" p label)
            :: acc)
        acc (G.node_props ctx.g v))
    acc

(* SS3: all edge properties are justified *)
let ss3 ctx ~lo ~hi acc =
  fold_slice ctx.edges ~lo ~hi
    (fun e acc ->
      let v1, _ = G.edge_ends ctx.g e in
      let src_label = G.node_label ctx.g v1 and edge_label = G.edge_label ctx.g e in
      List.fold_left
        (fun acc (a, _) ->
          match Schema.arg_type ctx.sch src_label edge_label a with
          | Some _ -> acc
          | None ->
            Violation.make Violation.SS3
              (Violation.Edge_property (G.edge_id e, a))
              (Printf.sprintf "no argument %S is declared for field %s.%s" a src_label
                 edge_label)
            :: acc)
        acc (G.edge_props ctx.g e))
    acc

(* SS4: all edges are justified *)
let ss4 ctx ~lo ~hi acc =
  fold_slice ctx.edges ~lo ~hi
    (fun e acc ->
      let v1, _ = G.edge_ends ctx.g e in
      let src_label = G.node_label ctx.g v1 and edge_label = G.edge_label ctx.g e in
      match Schema.type_f ctx.sch src_label edge_label with
      | Some t when not (Rules.is_attribute_type ctx.sch t) -> acc
      | Some _ ->
        Violation.make Violation.SS4
          (Violation.Edge (G.edge_id e))
          (Printf.sprintf "field %s.%s is an attribute definition and justifies no edges"
             src_label edge_label)
        :: acc
      | None ->
        Violation.make Violation.SS4
          (Violation.Edge (G.edge_id e))
          (Printf.sprintf "no field %S is declared for type %S" edge_label src_label)
        :: acc)
    acc
